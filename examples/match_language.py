"""Extensible pattern matching as a library (``#lang racket/match-ext``).

``define-match-expander`` lets user code extend the *pattern* language the
way macros extend the expression language: a pattern whose head names an
expander is rewritten before compilation. The match compiler also builds
decision trees (adjacent clauses with the same root constructor share one
test) and reports exhaustiveness near-misses to the optimization coach.

Run:  python examples/match_language.py
"""

from repro import Runtime, Tracer

rt = Runtime()

print("== the familiar pattern language ==")
print(
    rt.run_source(
        """#lang racket/match-ext
(define (eval-expr e)
  (match e
    [(list 'num n) n]
    [(list 'add a b) (+ (eval-expr a) (eval-expr b))]
    [(list 'mul a b) (* (eval-expr a) (eval-expr b))]
    [_ (error "unknown expression")]))
(displayln (eval-expr '(add (num 2) (mul (num 4) (num 10)))))
"""
    )
)

print("== define-match-expander: user-defined patterns ==")
print(
    rt.run_source(
        """#lang racket/match-ext
;; a `point` pattern over plain tagged lists — pattern-position sugar
(define-match-expander point
  (syntax-rules () [(_ x y) (list 'point x y)]))

(define (mirror p)
  (match p
    [(point x y) (list 'point y x)]
    [_ 'not-a-point]))
(displayln (mirror (list 'point 3 4)))

;; expanders compose: a segment is two points
(define-match-expander segment
  (syntax-rules () [(_ x1 y1 x2 y2) (list (point x1 y1) (point x2 y2))]))
(define (run-length s)
  (match s
    [(segment x1 y1 x2 y2) (+ (abs (- x2 x1)) (abs (- y2 y1)))]))
(displayln (run-length (list (list 'point 0 0) (list 'point 3 4))))
"""
    )
)

print("== the coach reports what the match compiler saw ==")
tracer = Tracer()
with Runtime(trace=tracer) as traced:
    traced.run_source(
        """#lang racket/match-ext
(define (opcode i)
  (match i
    [(list 'push v) v]
    [(list 'pop) 'pop]
    [(list 'binop op a b) op]))
(displayln (opcode '(push 42)))
"""
    )
for event in tracer.events:
    if event.category == "coach":
        kind = event.attrs.get("replacement") or event.attrs.get("reason")
        print(f"  [{event.attrs['rule']}] {kind}")
