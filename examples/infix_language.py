"""Infix and mixfix operators as a library (``#lang racket/infix``).

The reader records brace lists with a ``paren-shape`` property; the infix
*dialect* — a whole-module rewrite that runs before macro expansion —
turns every brace expression into ordinary prefix forms by precedence
climbing. Operators are user-declarable with precedence, associativity,
and an optional rewrite target, and the ``+infix`` suffix stacks the same
dialect onto any other language.

Run:  python examples/infix_language.py
"""

from repro import Runtime

rt = Runtime()

print("== arithmetic reads like arithmetic ==")
print(
    rt.run_source(
        """#lang racket/infix
(displayln {1 + 2 * 3})
(displayln {{1 + 2} * 3})
(displayln {10 - 3 - 2})          ; left-associative
(displayln {3 * 3 = 9 and 1 < 2})
"""
    )
)

print("== define-op: new operators with precedence and associativity ==")
print(
    rt.run_source(
        """#lang racket/infix
(define-op ^ 8 right expt)
(displayln {2 ^ 3 ^ 2})           ; right-assoc: 2^(3^2) = 512

;; the target may be *any* binding at the declaration site — macros too
(define-syntax cons-snoc (syntax-rules () [(_ a b) (cons b a)]))
(define-op <: 3 left cons-snoc)
(displayln {'tail <: 'head})
"""
    )
)

print("== mixfix: := definitions and ? : conditionals ==")
print(
    rt.run_source(
        """#lang racket/infix
{x := 6 * 7}
(displayln x)
{(clamp v lo hi) := {v < lo ? lo : v > hi ? hi : v}}
(displayln (list (clamp -5 0 10) (clamp 5 0 10) (clamp 50 0 10)))
"""
    )
)

print("== quoted braces are data; the dialect stacks on other languages ==")
print(
    rt.run_source(
        """#lang racket/infix
(displayln '{1 + 2})
"""
    )
)
print(
    rt.run_source(
        """#lang typed+infix
(: fahrenheit (-> Integer Integer))
(define (fahrenheit c) {c * 9 quotient 5 + 32})
(displayln (fahrenheit 100))
"""
    )
)
