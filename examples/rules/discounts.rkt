#lang racket
(define-syntax define-rule
  (syntax-rules ()
    [(_ (name arg ...) body) (define (name arg ...) body)]))
(define-rule (discount total) (- total (/ (* total 10) 100)))
(define-rule (bulk? n) (>= n 12))
(provide discount bulk?)
