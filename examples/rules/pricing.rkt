#lang racket
(require "discounts.rkt")
(define base-price 100)
(define (final-price n)
  (if (bulk? n)
      (discount (* n base-price))
      (* n base-price)))
(provide base-price final-price)
