#lang racket
(displayln mystery-quantity)
