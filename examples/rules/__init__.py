# The modules in this package are #lang files (see *.rkt); they become
# importable once repro.importer.install() has run.
