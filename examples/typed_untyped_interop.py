"""Safe typed/untyped interop — the paper's §5 and §6, end to end.

Demonstrates:
1. types persisting across separately compiled typed modules (§5);
2. untyped clients getting automatic contract protection on typed
   exports, while typed clients skip the contracts (§6.2);
3. `require/typed`: importing untyped code into typed code under a
   declared type, with blame when the untyped library lies (fig. 4).

Run:  python examples/typed_untyped_interop.py
"""

from repro import ContractViolation, Runtime, TypeCheckError
from repro.runtime.stats import STATS

rt = Runtime()

# A typed "server" module --------------------------------------------------------

rt.register_module(
    "server",
    """#lang simple-type
(define (add-5 [x : Integer]) : Integer (+ x 5))
(provide add-5)
""",
)

# 1. typed -> typed: the type travels with the compiled module ---------------------

rt.register_module(
    "typed-client",
    """#lang simple-type
(require server)
(displayln (add-5 7))
""",
)
STATS.reset()
print("typed client output:", rt.run("typed-client").strip())
print("contract checks paid by typed client:", STATS.contract_checks)

# ... and misuse is a *static* error:
rt.register_module(
    "bad-typed-client",
    "#lang simple-type\n(require server)\n(add-5 1.5)",
)
try:
    rt.compile("bad-typed-client")
except TypeCheckError as error:
    print("typed misuse rejected statically:", error)

# 2. untyped -> typed: contracts guard the boundary --------------------------------

rt.register_module(
    "untyped-client",
    """#lang racket
(require server)
(displayln (add-5 12))
""",
)
STATS.reset()
print("\nuntyped client output:", rt.run("untyped-client").strip())
print("contract checks paid by untyped client:", STATS.contract_checks)

rt.register_module(
    "bad-untyped-client",
    '#lang racket\n(require server)\n(add-5 "bad")',
)
try:
    rt.run("bad-untyped-client")
except ContractViolation as error:
    print("untyped misuse trapped dynamically:", error)

# 3. require/typed: typed code importing an untyped library (fig. 4) ----------------

rt.register_module(
    "digest",  # our stand-in for the paper's file/md5
    """#lang racket
(define (digest-hex s) (number->string (string-length s)))
(define (corrupt s) 'not-a-string)
(provide digest-hex corrupt)
""",
)

rt.register_module(
    "typed-user",
    """#lang simple-type
(require/typed digest [digest-hex (String -> String)])
(displayln (digest-hex "hello world"))
""",
)
print("\nrequire/typed import works:", rt.run("typed-user").strip())

rt.register_module(
    "typed-victim",
    """#lang simple-type
(require/typed digest [corrupt (String -> String)])
(displayln (corrupt "x"))
""",
)
try:
    rt.run("typed-victim")
except ContractViolation as error:
    print("the lying untyped library is blamed:", error)
