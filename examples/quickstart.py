"""Quickstart: running `#lang` modules on the repro platform.

The platform is a Racket-style extensible language: modules declare their
language on the first line, and every language — including the typed one —
is implemented as a library on top of the same core.

Run:  python examples/quickstart.py
"""

from repro import Runtime

rt = Runtime()

# --- an untyped racket module ------------------------------------------------

print("== #lang racket ==")
print(
    rt.run_source(
        """#lang racket
(define (greet name) (string-append "Hello, " name "!"))
(displayln (greet "world"))

;; macros, higher-order functions, the usual Scheme toolkit:
(define-syntax swap!
  (syntax-rules () [(_ a b) (let ([tmp a]) (set! a b) (set! b tmp))]))
(define x 1)
(define y 2)
(swap! x y)
(printf "after swap: x=~a y=~a~n" x y)

(displayln (for/list ([i (in-range 5)]) (* i i)))
(displayln (match (list 1 2 3) [(list a b c) (+ a b c)]))
"""
    )
)

# --- the same platform, different language: typed ------------------------------

print("== #lang typed ==")
print(
    rt.run_source(
        """#lang typed
(: fib (Integer -> Integer))
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(displayln (fib 25))

(define (hypotenuse [a : Float] [b : Float]) : Float
  (sqrt (+ (* a a) (* b b))))
(displayln (hypotenuse 3.0 4.0))
"""
    )
)

# --- type errors are compile-time errors ----------------------------------------

print("== a type error ==")
from repro import TypeCheckError

try:
    rt.run_source("#lang typed\n(define x : Integer 3.7)")
except TypeCheckError as error:
    print(f"rejected at compile time: {error}")

# --- the count language from the paper (§2.3) ------------------------------------

print("\n== #lang count ==")
print(
    rt.run_source(
        """#lang count
(printf "*~a" (+ 1 2))
(printf "*~a" (- 4 3))
"""
    )
)
