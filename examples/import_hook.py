"""Importing ``#lang`` modules from Python — the ``sys.meta_path`` hook.

``repro.importer.install()`` (or the one-liner ``import repro.activate``)
makes every ``#lang`` file importable as an ordinary Python module:
``provide``s become module attributes, compile errors become ImportError
chains carrying the platform's stable diagnostic codes, and a warm-cache
import loads the marshalled ``.zo`` artifact without expanding a single
macro.

The imported package lives in ``examples/rules/`` — a normal Python
package whose modules happen to be written in ``#lang racket``.

Run:  python examples/import_hook.py
"""

import importlib
import os
import shutil
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro import Runtime
from repro.importer import ReproImportError, install, uninstall

cache_dir = tempfile.mkdtemp(prefix="repro-zo-")

# -- 1. cold import: compiled through the full pipeline --------------------------

rt_cold = Runtime(cache_dir=cache_dir)
install(rt_cold)

pricing = importlib.import_module("rules.pricing")
print("== provides are module attributes ==")
print("language:", pricing.__language__)
print("provides:", ", ".join(pricing.__provides__))
print("base-price:", pricing.base_price)           # dashes become underscores
print("final-price(3):", pricing.final_price(3))   # below the bulk threshold
print("final-price(12):", pricing.final_price(12))  # 10% off via the macro

# `require` and `import` agree on module identity: the discounts module the
# pricing module required is the one Python sees
discounts = importlib.import_module("rules.discounts")
print("bulk?(20):", getattr(discounts, "bulk?")(20))
cold_expansions = rt_cold.stats.expansion_steps
print("cold import expanded macros:", cold_expansions > 0)

# -- 2. compile errors surface as ImportError with stable codes ------------------

print("== compile errors become ImportError ==")
try:
    importlib.import_module("rules.broken")
except ReproImportError as err:
    print("code:", err.code)
    print("cause:", type(err.__cause__).__name__)

# -- 3. warm import: the .zo artifact replays with zero expansion ----------------

uninstall()
rt_cold.close()
for name in [m for m in sys.modules if m.startswith("rules.")]:
    del sys.modules[name]

rt_warm = Runtime(cache_dir=cache_dir)  # a fresh runtime, same cache dir
install(rt_warm)
pricing = importlib.import_module("rules.pricing")
print("== warm import from the artifact cache ==")
print("final-price(12):", pricing.final_price(12))
print("expansions on warm import:", rt_warm.stats.expansion_steps)
print("codegens on warm import:", rt_warm.stats.pyc_codegens)
print("cache hits:", rt_warm.stats.cache_hits >= 1)

uninstall()
rt_warm.close()
shutil.rmtree(cache_dir, ignore_errors=True)
