"""A lazy language as a library (§1's "a lazy variant of Racket").

The ``lazy`` language overrides only the implicit ``#%app`` hook (plus the
strict positions): same reader, same expander, same runtime — a different
*evaluation strategy*, delivered as a library.

Run:  python examples/lazy_language.py
"""

from repro import Runtime

rt = Runtime()

print("== unused arguments are never evaluated ==")
print(
    rt.run_source(
        """#lang lazy
(define (choose which a b) (if which a b))
(displayln (choose #t 'safe (error "the road not taken")))
"""
    )
)

print("== infinite data structures ==")
print(
    rt.run_source(
        """#lang lazy
(define (integers-from n) (cons n (integers-from (+ n 1))))
(define naturals (integers-from 0))

(define (take lst n)
  (if (= n 0) '() (cons (car lst) (take (cdr lst) (- n 1)))))
(define (sum lst) (if (null? lst) 0 (+ (car lst) (sum (cdr lst)))))

(displayln (sum (take naturals 101)))  ; 0 + 1 + ... + 100

;; the fibonacci stream, defined by self-reference
(define (fibs-from a b) (cons a (fibs-from b (+ a b))))
(define (nth lst n) (if (= n 0) (car lst) (nth (cdr lst) (- n 1))))
(displayln (nth (fibs-from 0 1) 30))
"""
    )
)

print("== call-by-need: shared thunks evaluate once ==")
print(
    rt.run_source(
        """#lang lazy
(define (twice x) (+ x x))
(displayln (twice (begin (display "[evaluating] ") 21)))
"""
    )
)

print("== the same module text is strict or lazy by #lang alone ==")
body = """
(define (first-of a b) a)
(displayln (first-of 'ok (error "boom")))
"""
from repro import RuntimeReproError

try:
    rt.run_source("#lang racket" + body)
except RuntimeReproError:
    print("#lang racket: error reached (strict evaluation)")
print("#lang lazy:  ", rt.run_source("#lang lazy" + body).strip())
