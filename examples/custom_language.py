"""Building your own language as a library — the paper's core thesis.

This example defines, at user level with no platform changes, a new
language ``traced``: every top-level expression prints the source and the
value it produced. The recipe is the one §2.3 describes — a language is a
library providing (a) a base environment of bindings, and (b) a
``#%module-begin`` that receives the entire module body.

Run:  python examples/custom_language.py
"""

from repro import Runtime
from repro.langs.base import expand_with, fn_macro
from repro.modules.registry import Language
from repro.syn.syntax import Syntax, syntax_to_datum, write_datum

rt = Runtime()
racket = rt.registry.language("racket")

# -- 1. a new language, inheriting racket's bindings -----------------------------

traced = Language("traced")
traced.inherit(racket, exclude=("#%module-begin",))


# -- 2. whole-module control via #%module-begin ----------------------------------


@fn_macro(traced, "#%module-begin")
def traced_module_begin(stx: Syntax, lang: Language) -> Syntax:
    """Wrap each top-level expression with tracing output."""
    wrapped = []
    for form in stx.e[1:]:
        source_text = write_datum(syntax_to_datum(form))
        head = form.e[0].e.name if (isinstance(form.e, tuple) and form.e and
                                    form.e[0].is_identifier()) else ""
        if head in ("define", "define-values", "define-syntax", "require", "provide"):
            wrapped.append(form)  # definitions pass through untouched
        else:
            wrapped.append(
                expand_with(
                    lang,
                    '(begin (printf "~a  =>  " (quote text))'
                    " (displayln form))",
                    text=Syntax(source_text),
                    form=form,
                )
            )
    return expand_with(lang, "(#%plain-module-begin form ...)", form=wrapped)


rt.registry.register_language(traced)

# -- 3. write modules in it --------------------------------------------------------

print(
    rt.run_source(
        """#lang traced
(define (square x) (* x x))
(square 7)
(+ (square 3) (square 4))
(map square (list 1 2 3))
"""
    )
)

# -- 4. language choice is per module: the same registry still runs racket ----------

print(
    rt.run_source(
        """#lang racket
(displayln "ordinary racket module, same platform")
"""
    )
)
