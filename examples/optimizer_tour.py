"""A tour of the type-driven optimizer (§7).

Shows the same float-intensive program running untyped, typed without the
optimizer, and typed with it — with wall-clock times and the runtime's
dispatch counters, which make the optimizer's effect visible directly.

Run:  python examples/optimizer_tour.py
"""

import time

from repro import Runtime
from repro.langs.typed import OPTIMIZER_CONFIG
from repro.runtime.stats import STATS

KERNEL = """
({define} (step {x}){ret}
  (+ (* x 1.000001) (/ 0.5 (+ 1.0 (* x x)))))
({define} (iterate {n} {acc}){retf}
  (if (= n 0) acc (iterate (- n 1) (step acc))))
(displayln (< 0.0 (iterate 60000 1.0)))
"""

UNTYPED = "#lang racket" + KERNEL.format(
    define="define", x="x", n="n", acc="acc", ret="", retf=""
)

# A deliberate near-miss for the optimization coach: `b : Number` keeps the
# checker from proving (* a b) all-Float, so no unsafe-fl* fires — exactly
# what `repro trace` reports, with the annotation that would unlock it.
NEAR_MISS = """
(define (blend [a : Float] [b : Number]) : Number
  (* a b))
(displayln (blend 0.5 2))
"""

TYPED = "#lang typed" + KERNEL.format(
    define="define",
    x="[x : Float]",
    n="[n : Integer]",
    acc="[acc : Float]",
    ret=" : Float",
    retf=" : Float",
) + NEAR_MISS


def run(rt: Runtime, name: str, source: str) -> None:
    path = f"<{name}>"
    rt.register_module(path, source)
    rt.compile(path)
    ns = rt.make_namespace()
    STATS.reset()
    start = time.perf_counter()
    rt.instantiate(path, ns)
    elapsed = time.perf_counter() - start
    stats = STATS.snapshot()
    print(
        f"{name:<16} {elapsed * 1000:8.1f} ms   "
        f"generic dispatches: {stats['generic_dispatches']:>8}   "
        f"unsafe ops: {stats['unsafe_ops']:>8}"
    )


rt = Runtime()

print("one float-intensive loop, three ways:\n")
run(rt, "untyped", UNTYPED)

OPTIMIZER_CONFIG["optimize"] = False
run(rt, "typed, no opt", TYPED)

OPTIMIZER_CONFIG["optimize"] = True
run(rt, "typed + opt", TYPED.replace("typed\n", "typed\n;; recompiled\n"))

print(
    """
The typed+optimized version rewrote every (+ x y), (* x y), (/ x y), (= n 0)
on proven Float/Integer operands into unsafe-fl* / unsafe-fx* primitives —
no numeric-tower dispatch remains (fig. 5 / §7.2). One rewrite deliberately
does NOT fire: in `blend`, (* a b) has b typed Number, so the float rule
can't prove it sound. Run

    python -m repro trace examples/optimizer_tour.py --format summary

to see the optimization coach report it as a near-miss, keyed by source
location, alongside every rewrite that fired."""
)
