"""Datalog as a library — a completely different semantics on the same
platform (the paper's §1 cites Datalog among the languages built on
Racket's extension mechanisms).

Run:  python examples/logic_queries.py
"""

from repro import Runtime

rt = Runtime()

print("== a family-tree knowledge base ==")
print(
    rt.run_source(
        """#lang datalog
(! (parent abraham isaac))
(! (parent isaac jacob))
(! (parent jacob joseph))
(! (parent jacob benjamin))

(:- (ancestor X Y) (parent X Y))
(:- (ancestor X Z) (parent X Y) (ancestor Y Z))
(:- (sibling X Y) (parent P X) (parent P Y))

(? (ancestor abraham Who))
"""
    )
)

print("== graph reachability ==")
print(
    rt.run_source(
        """#lang datalog
(! (edge a b))
(! (edge b c))
(! (edge c a))
(! (edge c d))
(:- (reaches X Y) (edge X Y))
(:- (reaches X Z) (edge X Y) (reaches Y Z))
(? (reaches a Where))
"""
    )
)

print("== and the same platform still runs everything else ==")
print(
    rt.run_source(
        "#lang racket\n(displayln (map (lambda (x) (* x x)) (list 1 2 3)))"
    )
)
