"""Per-Runtime evaluation budgets and cooperative cancellation.

Design (mirrors :mod:`repro.observe.recorder`): the evaluator's hot paths
pay for governance only when a guard is active. :func:`current_guard`
returns ``None`` for ungoverned Runtimes — the trampoline in
:mod:`repro.core.interp` checks that once per application and stays on its
unguarded fast loop. Under a guard, the trampoline charges one *step* per
closure invocation and calls :meth:`Budget.checkpoint` only every
``check_interval`` steps, so the expensive checks (monotonic clock read,
cancellation flag) are amortized; the step-limit comparison itself is exact
because ``next_check`` never exceeds the step limit.

The hooks are deliberately *data* (plain attributes on one object), not a
callback protocol: a future bytecode backend can inline
``guard.steps_used += 1; if guard.steps_used >= guard.next_check: ...``
directly into emitted code instead of inheriting interpreter-only checks.

Exhaustion raises :class:`~repro.errors.BudgetExhausted` (stable ``G``
codes, see :mod:`repro.diagnostics.codes`) carrying the steps consumed and
a best-effort location (the name of the procedure being applied); host
cancellation raises :class:`~repro.errors.EvaluationCancelled`. Both are
:class:`~repro.errors.RuntimeReproError` subclasses, so every existing
recovery path (REPL, ``diagnostics=True``, the CLI's renderer, PR 1's
compilation transaction) already handles them.
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.errors import BudgetExhausted, EvaluationCancelled

#: steps between slow checkpoints (clock read + cancellation flag); chosen
#: so a deadline is noticed within ~a millisecond of object-language work
DEFAULT_CHECK_INTERVAL = 1024


class CancelToken:
    """A cooperative cancellation flag a host hands to a Runtime.

    ``cancel()`` may be called from any thread; the governed evaluator
    notices at its next checkpoint and raises
    :class:`~repro.errors.EvaluationCancelled`. Reusable: ``reset()``
    re-arms the token for the next evaluation.
    """

    __slots__ = ("cancelled", "reason")

    def __init__(self) -> None:
        self.cancelled = False
        self.reason: Optional[str] = None

    def cancel(self, reason: Optional[str] = None) -> None:
        self.reason = reason
        self.cancelled = True

    def reset(self) -> None:
        self.cancelled = False
        self.reason = None

    def __repr__(self) -> str:
        state = f"cancelled: {self.reason}" if self.cancelled else "armed"
        return f"#<cancel-token {state}>"


class Budget:
    """Evaluation limits for one Runtime (all dimensions optional).

    - ``steps`` — closure applications allowed per Runtime (evaluation fuel,
      generalizing PR 1's expansion fuel); ``G001`` on exhaustion.
    - ``seconds`` — wall-clock deadline per top-level operation, measured on
      the monotonic clock and checked every ``check_interval`` steps;
      ``G002``.
    - ``max_depth`` — non-tail application nesting cap (tail calls are
      trampolined and never deepen); ``G003``.
    - ``allocations`` — constructor allocations (pairs, vectors, strings,
      boxes, hashes, structs) counted at compiled call sites; ``G004``.
    - ``cancel`` — a :class:`CancelToken`; checked at every checkpoint,
      raising ``G005``. One is created if not supplied.

    A Budget with no limits still counts steps and supports cancellation —
    what the REPL uses so ``,stats`` can report work done.
    """

    __slots__ = (
        "steps", "seconds", "max_depth", "allocations", "check_interval",
        "cancel", "steps_used", "allocs_used", "depth", "next_check",
        "deadline", "_armed",
    )

    def __init__(
        self,
        *,
        steps: Optional[int] = None,
        seconds: Optional[float] = None,
        max_depth: Optional[int] = None,
        allocations: Optional[int] = None,
        check_interval: int = DEFAULT_CHECK_INTERVAL,
        cancel: Optional[CancelToken] = None,
    ) -> None:
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.steps = steps
        self.seconds = seconds
        self.max_depth = max_depth
        self.allocations = allocations
        self.check_interval = check_interval
        self.cancel = cancel if cancel is not None else CancelToken()
        self.steps_used = 0
        self.allocs_used = 0
        self.depth = 0
        self.deadline: Optional[float] = None
        self._armed = 0
        self.next_check = self._compute_next_check()

    # -- configuration -------------------------------------------------------

    def configure(self, **limits: Any) -> None:
        """Adjust limits in place (used by the REPL's ``,budget``)."""
        for name in ("steps", "seconds", "max_depth", "allocations",
                     "check_interval"):
            if name in limits:
                setattr(self, name, limits.pop(name))
        if limits:
            raise TypeError(f"unknown budget limit(s): {sorted(limits)}")
        self.next_check = self._compute_next_check()

    def reset(self) -> None:
        """Zero the consumed counters (limits are kept)."""
        self.steps_used = 0
        self.allocs_used = 0
        self.depth = 0
        self.next_check = self._compute_next_check()

    def _compute_next_check(self) -> int:
        nxt = self.steps_used + self.check_interval
        if self.steps is not None and nxt > self.steps:
            return self.steps
        return nxt

    # -- arming (one deadline per outermost governed operation) --------------

    def arm(self) -> None:
        self._armed += 1
        if self._armed == 1 and self.seconds is not None:
            self.deadline = time.monotonic() + self.seconds

    def disarm(self) -> None:
        self._armed -= 1
        if self._armed == 0:
            self.deadline = None

    # -- slow path -----------------------------------------------------------

    def checkpoint(self, where: Optional[str] = None) -> None:
        """Amortized slow check: step limit, deadline, cancellation.

        Called by the governed trampoline when ``steps_used`` reaches
        ``next_check``, and directly at coarse sites (between module-level
        forms) to bound the latency of deadline/cancel detection.
        """
        if self.steps is not None and self.steps_used > self.steps:
            self._exhaust(
                "steps", "G001",
                f"evaluation exceeded its budget of {self.steps} steps",
                where,
            )
        if self.cancel.cancelled:
            reason = self.cancel.reason
            detail = f": {reason}" if reason else ""
            self._emit("cancelled", where)
            raise EvaluationCancelled(
                f"evaluation cancelled by the host{detail}"
                f"{self._where_note(where)} "
                f"[G005; {self.steps_used} steps consumed]",
                steps_consumed=self.steps_used,
            )
        if self.deadline is not None and time.monotonic() > self.deadline:
            self._exhaust(
                "deadline", "G002",
                f"evaluation exceeded its wall-clock budget of "
                f"{self.seconds}s",
                where,
            )
        self.next_check = self._compute_next_check()

    def charge_depth(self, where: Optional[str] = None) -> None:
        """Called by the governed trampoline on non-tail application entry."""
        self.depth += 1
        if self.max_depth is not None and self.depth > self.max_depth:
            self._exhaust(
                "depth", "G003",
                f"evaluation exceeded its recursion-depth budget of "
                f"{self.max_depth}",
                where,
            )

    def charge_alloc(self, n: int = 1) -> None:
        """Called at compiled constructor call sites (see core.compile)."""
        self.allocs_used += n
        if self.allocations is not None and self.allocs_used > self.allocations:
            self._exhaust(
                "allocations", "G004",
                f"evaluation exceeded its allocation budget of "
                f"{self.allocations}",
                None,
            )

    @property
    def track_allocations(self) -> bool:
        return self.allocations is not None

    # -- diagnostics ---------------------------------------------------------

    @staticmethod
    def _where_note(where: Optional[str]) -> str:
        return f" while applying {where}" if where else ""

    def _emit(self, what: str, where: Optional[str]) -> None:
        from repro.observe.recorder import current_recorder

        rec = current_recorder()
        if rec.enabled:
            attrs: dict[str, Any] = {
                "steps_used": self.steps_used,
                "allocs_used": self.allocs_used,
                "depth": self.depth,
            }
            if where:
                attrs["where"] = where
            rec.instant("guard", what, attrs=attrs)

    def _exhaust(
        self, kind: str, code: str, message: str, where: Optional[str]
    ) -> None:
        self._emit(f"exhausted:{kind}", where)
        raise BudgetExhausted(
            f"{message}{self._where_note(where)} "
            f"[{code}; {self.steps_used} steps consumed]",
            kind=kind,
            steps_consumed=self.steps_used,
            code=code,
        )

    def __repr__(self) -> str:
        limits = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in ("steps", "seconds", "max_depth", "allocations")
            if getattr(self, name) is not None
        )
        return (
            f"#<budget {limits or 'unlimited'}; "
            f"used steps={self.steps_used} allocs={self.allocs_used}>"
        )


# -- the current guard (context-scoped, like stats and the recorder) ----------

_ACTIVE: contextvars.ContextVar[Optional[Budget]] = contextvars.ContextVar(
    "repro_active_guard", default=None
)

#: bound C method — the cheapest "is governance on?" probe for hot paths
current_guard = _ACTIVE.get


@contextmanager
def use_guard(guard: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Activate ``guard`` for the dynamic extent of a Runtime operation.

    The outermost activation arms the wall-clock deadline; nested
    activations (a governed operation triggering another) keep the outer
    deadline, so one ``seconds`` limit covers the whole request.
    """
    if guard is None:
        yield None
        return
    guard.arm()
    token = _ACTIVE.set(guard)
    try:
        yield guard
    finally:
        _ACTIVE.reset(token)
        guard.disarm()


def resolve_budget(budget: Any) -> Optional[Budget]:
    """Map a ``Runtime(budget=...)`` argument to a Budget (or None).

    - ``None`` / ``False`` — ungoverned (the zero-overhead default);
    - ``True`` — a Budget with no limits (step counting + cancellation);
    - an ``int`` — a step budget of that many closure applications;
    - a ``dict`` — keyword arguments for :class:`Budget`;
    - a :class:`Budget` — used as given (shareable between Runtimes to
      govern them under one joint allowance).
    """
    if budget is None or budget is False:
        return None
    if budget is True:
        return Budget()
    if isinstance(budget, bool):  # pragma: no cover - unreachable
        return None
    if isinstance(budget, int):
        return Budget(steps=budget)
    if isinstance(budget, dict):
        return Budget(**budget)
    if isinstance(budget, Budget):
        return budget
    raise TypeError(
        f"budget must be None, True, an int, a dict, or a Budget: {budget!r}"
    )
