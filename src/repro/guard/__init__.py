"""Resource governance for evaluation (``repro.guard``).

The paper's platform runs user code at *both* phases — macros at compile
time, programs at run time. PR 1 bounded the compile-time half with
expansion fuel; this subsystem generalizes that to run time: a per-Runtime
:class:`Budget` (evaluation step fuel, wall-clock deadline, recursion-depth
cap, optional allocation counter) plus a cooperative :class:`CancelToken`,
threaded through the evaluator with guarded no-op call sites the same way
:mod:`repro.observe` is threaded through the compilation pipeline.
"""

from repro.guard.budget import (
    Budget,
    CancelToken,
    current_guard,
    resolve_budget,
    use_guard,
)

__all__ = [
    "Budget",
    "CancelToken",
    "current_guard",
    "resolve_budget",
    "use_guard",
]
