"""Output ports and output capture.

The object language's ``display``/``printf`` write to the *current output
port*, a dynamically scoped stack so tests and the benchmark harness can
capture program output.

The stack is context-local (a :class:`~contextvars.ContextVar`, like the
binding table's recorder and transaction stacks): concurrent
``Runtime.run`` calls on different threads — e.g. two ``repro serve``
requests — each capture their own program's output. A shared list here
let one request's ``displayln`` land in whichever capture was pushed
last, across tenants.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from contextvars import ContextVar
from io import StringIO
from typing import Iterator


class OutputPort:
    def __init__(self, name: str = "port") -> None:
        self.name = name

    def write(self, text: str) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class StdoutPort(OutputPort):
    def __init__(self) -> None:
        super().__init__("stdout")

    def write(self, text: str) -> None:
        sys.stdout.write(text)


class StringPort(OutputPort):
    def __init__(self) -> None:
        super().__init__("string")
        self.buffer = StringIO()

    def write(self, text: str) -> None:
        self.buffer.write(text)

    def contents(self) -> str:
        return self.buffer.getvalue()


_STDOUT = StdoutPort()

# immutable tuple per context: pushes build a new tuple, so a concurrent
# reader in another context never observes a half-mutated stack
_PORT_STACK: ContextVar[tuple[OutputPort, ...]] = ContextVar(
    "repro-output-ports", default=()
)


def current_output_port() -> OutputPort:
    stack = _PORT_STACK.get()
    return stack[-1] if stack else _STDOUT


@contextmanager
def capture_output() -> Iterator[StringPort]:
    """Redirect object-language output into a string port (context-local)."""
    port = StringPort()
    token = _PORT_STACK.set(_PORT_STACK.get() + (port,))
    try:
        yield port
    finally:
        _PORT_STACK.reset(token)
