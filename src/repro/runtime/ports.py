"""Output ports and output capture.

The object language's ``display``/``printf`` write to the *current output
port*, a dynamically scoped stack so tests and the benchmark harness can
capture program output.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from io import StringIO
from typing import Iterator


class OutputPort:
    def __init__(self, name: str = "port") -> None:
        self.name = name

    def write(self, text: str) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class StdoutPort(OutputPort):
    def __init__(self) -> None:
        super().__init__("stdout")

    def write(self, text: str) -> None:
        sys.stdout.write(text)


class StringPort(OutputPort):
    def __init__(self) -> None:
        super().__init__("string")
        self.buffer = StringIO()

    def write(self, text: str) -> None:
        self.buffer.write(text)

    def contents(self) -> str:
        return self.buffer.getvalue()


_PORT_STACK: list[OutputPort] = [StdoutPort()]


def current_output_port() -> OutputPort:
    return _PORT_STACK[-1]


@contextmanager
def capture_output() -> Iterator[StringPort]:
    """Redirect object-language output into a string port."""
    port = StringPort()
    _PORT_STACK.append(port)
    try:
        yield port
    finally:
        _PORT_STACK.pop()
