"""Printers for object-language values: ``write`` (re-readable) and ``display``."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any

from repro.runtime import values as v

_CHAR_NAMES = {
    " ": "space",
    "\n": "newline",
    "\t": "tab",
    "\r": "return",
    "\0": "nul",
}

_STRING_ESCAPES = {
    "\\": "\\\\",
    '"': '\\"',
    "\n": "\\n",
    "\t": "\\t",
    "\r": "\\r",
}


def write_float(x: float) -> str:
    if math.isnan(x):
        return "+nan.0"
    if math.isinf(x):
        return "+inf.0" if x > 0 else "-inf.0"
    if x == int(x) and abs(x) < 1e16:
        return f"{x:.1f}"
    return repr(x)


def write_complex(x: complex) -> str:
    re = write_float(x.real)
    im = write_float(x.imag)
    if not (im.startswith("+") or im.startswith("-")):
        im = "+" + im
    return f"{re}{im}i"


def _write_seq(items: list[str]) -> str:
    return " ".join(items)


# characters that end an atom in the lexer (plus the bar/backslash the
# |symbol| syntax itself uses)
_SYMBOL_BREAKERS = set("()[]\";'`,| \t\n\r\\#")


def write_symbol(name: str) -> str:
    """Render a symbol so it reads back as the same symbol.

    Most names print bare; a name the reader would misparse — one that
    lexes as a number/boolean, contains a delimiter, or starts like a hash
    syntax — prints in ``|...|`` bars (with ``\\|``/``\\\\`` escapes), like
    Racket's ``write``.
    """
    body = name[2:] if name.startswith("#%") else name
    if name and name != "." and not (_SYMBOL_BREAKERS & set(body)):
        from repro.reader.reader import classify_atom
        from repro.syn.srcloc import SrcLoc

        try:
            reread = classify_atom(name, SrcLoc("<write>", 1, 0))
        except Exception:
            reread = None
        if isinstance(reread, v.Symbol):
            return name
    escaped = name.replace("\\", "\\\\").replace("|", "\\|")
    return f"|{escaped}|"


def write_value(x: Any, display: bool = False) -> str:
    """Render a value; ``display`` mode omits string quotes and char syntax."""
    if x is True:
        return "#t"
    if x is False:
        return "#f"
    if x is None:
        return "#<none>"
    if isinstance(x, int):
        return str(x)
    if isinstance(x, float):
        return write_float(x)
    if isinstance(x, Fraction):
        return f"{x.numerator}/{x.denominator}"
    if isinstance(x, complex):
        return write_complex(x)
    if isinstance(x, str):
        if display:
            return x
        out = ['"']
        for ch in x:
            out.append(_STRING_ESCAPES.get(ch, ch))
        out.append('"')
        return "".join(out)
    if isinstance(x, v.Symbol):
        return x.name if display else write_symbol(x.name)
    if isinstance(x, v.Keyword):
        return f"#:{x.name}"
    if isinstance(x, v.Char):
        if display:
            return x.value
        name = _CHAR_NAMES.get(x.value)
        return f"#\\{name}" if name else f"#\\{x.value}"
    if x is v.NULL:
        return "()"
    if isinstance(x, v.Pair):
        parts: list[str] = []
        node: Any = x
        seen = 0
        while isinstance(node, v.Pair):
            parts.append(write_value(node.car, display))
            node = node.cdr
            seen += 1
            if seen > 1_000_000:  # pragma: no cover - cyclic-list guard
                parts.append("...")
                node = v.NULL
                break
        if node is v.NULL:
            return f"({_write_seq(parts)})"
        return f"({_write_seq(parts)} . {write_value(node, display)})"
    if isinstance(x, v.MVector):
        return f"#({_write_seq([write_value(i, display) for i in x.items])})"
    if isinstance(x, v.Box):
        return f"#&{write_value(x.value, display)}"
    if x is v.VOID:
        return "#<void>"
    if x is v.EOF:
        return "#<eof>"
    if isinstance(x, v.Values):
        return "\n".join(write_value(i, display) for i in x.items)
    if isinstance(x, v.Procedure):
        return f"#<procedure:{getattr(x, 'name', 'anonymous')}>"
    if isinstance(x, v.HashTable):
        inner = " ".join(
            f"({write_value(k, display)} . {write_value(x.get(k), display)})" for k in x.keys()
        )
        return f"#hash({inner})"
    from repro.runtime.structs import StructInstance

    if isinstance(x, StructInstance):
        if x.descriptor.transparent:
            inner = " ".join(write_value(f, display) for f in x.fields)
            return f"({x.descriptor.name}{' ' if inner else ''}{inner})"
        return f"#<{x.descriptor.name}>"
    # Syntax objects and other host values print opaquely.
    from repro.syn.syntax import Syntax

    if isinstance(x, Syntax):
        from repro.syn.syntax import syntax_to_datum, write_datum

        return f"#<syntax {write_datum(syntax_to_datum(x))}>"
    return f"#<{type(x).__name__}>"


def display_value(x: Any) -> str:
    return write_value(x, display=True)
