"""The kernel primitive library.

Builds the table of runtime primitives installed in the ``#%kernel`` module.
Safe accessors perform tag checks (counted in ``STATS.tag_checks``); the
``unsafe-*`` family skips them (§7.1: "Racket exposes unsafe type-specialized
primitives ... they also serve as signals to the code generator").
"""

from __future__ import annotations

import math
import random as _py_random
import time
from fractions import Fraction
from typing import Any, Callable, Optional

from repro.errors import RuntimeReproError, WrongTypeError
from repro.runtime import numerics as num
from repro.runtime import values as v
from repro.runtime.equality import eq, equal, eqv
from repro.runtime.ports import current_output_port
from repro.runtime.printing import display_value, write_value
from repro.runtime.stats import STATS

PRIMITIVES: dict[str, v.Primitive] = {}


def define_prim(
    name: str, arity_min: int = 0, arity_max: Optional[int] = None
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    def register(fn: Callable[..., Any]) -> Callable[..., Any]:
        PRIMITIVES[name] = v.Primitive(name, fn, arity_min, arity_max)
        return fn

    return register


def add_prim(name: str, fn: Callable[..., Any], arity_min: int = 0,
             arity_max: Optional[int] = None) -> None:
    PRIMITIVES[name] = v.Primitive(name, fn, arity_min, arity_max)


def _bool(x: Any) -> bool:
    return x is not False


# --- numeric operations -------------------------------------------------------


def _fold(op: Callable[[Any, Any], Any], init: Any, args: tuple[Any, ...]) -> Any:
    acc = init
    for arg in args:
        acc = op(acc, arg)
    return acc


@define_prim("+", 0)
def prim_add(*args: Any) -> Any:
    if len(args) == 2:
        return num.generic_add(args[0], args[1])
    if not args:
        return 0
    return _fold(num.generic_add, args[0], args[1:])


@define_prim("-", 1)
def prim_sub(*args: Any) -> Any:
    if len(args) == 2:
        return num.generic_sub(args[0], args[1])
    if len(args) == 1:
        return num.generic_neg(args[0])
    return _fold(num.generic_sub, args[0], args[1:])


@define_prim("*", 0)
def prim_mul(*args: Any) -> Any:
    if len(args) == 2:
        return num.generic_mul(args[0], args[1])
    if not args:
        return 1
    return _fold(num.generic_mul, args[0], args[1:])


@define_prim("/", 1)
def prim_div(*args: Any) -> Any:
    if len(args) == 2:
        return num.generic_div(args[0], args[1])
    if len(args) == 1:
        return num.generic_div(1, args[0])
    return _fold(num.generic_div, args[0], args[1:])


def _chain(op: Callable[[Any, Any], bool]) -> Callable[..., bool]:
    def compare(*args: Any) -> bool:
        for a, b in zip(args, args[1:]):
            if not op(a, b):
                return False
        return True

    return compare


add_prim("<", _chain(num.generic_lt), 2)
add_prim("<=", _chain(num.generic_le), 2)
add_prim(">", _chain(num.generic_gt), 2)
add_prim(">=", _chain(num.generic_ge), 2)
add_prim("=", _chain(num.generic_num_eq), 2)

add_prim("quotient", num.generic_quotient, 2, 2)
add_prim("remainder", num.generic_remainder, 2, 2)
add_prim("modulo", num.generic_modulo, 2, 2)
add_prim("abs", num.generic_abs, 1, 1)
add_prim("sqrt", num.generic_sqrt, 1, 1)
add_prim("expt", num.generic_expt, 2, 2)
add_prim("exp", num.generic_exp, 1, 1)
add_prim("log", num.generic_log, 1, 1)
add_prim("sin", num.generic_sin, 1, 1)
add_prim("cos", num.generic_cos, 1, 1)
add_prim("tan", num.generic_tan, 1, 1)
add_prim("asin", num.generic_asin, 1, 1)
add_prim("acos", num.generic_acos, 1, 1)
add_prim("atan", num.generic_atan, 1, 2)
add_prim("floor", num.generic_floor, 1, 1)
add_prim("ceiling", num.generic_ceiling, 1, 1)
add_prim("truncate", num.generic_truncate, 1, 1)
add_prim("round", num.generic_round, 1, 1)
add_prim("magnitude", num.generic_magnitude, 1, 1)
add_prim("real-part", num.generic_real_part, 1, 1)
add_prim("imag-part", num.generic_imag_part, 1, 1)
add_prim("make-rectangular", num.generic_make_rectangular, 2, 2)
add_prim("exact->inexact", num.generic_exact_to_inexact, 1, 1)
add_prim("inexact->exact", num.generic_inexact_to_exact, 1, 1)
add_prim("exact", num.generic_inexact_to_exact, 1, 1)
add_prim("gcd", num.generic_gcd, 2, 2)
add_prim("numerator", num.generic_numerator, 1, 1)
add_prim("denominator", num.generic_denominator, 1, 1)


@define_prim("min", 1)
def prim_min(*args: Any) -> Any:
    return _fold(num.generic_min, args[0], args[1:])


@define_prim("max", 1)
def prim_max(*args: Any) -> Any:
    return _fold(num.generic_max, args[0], args[1:])


add_prim("add1", lambda x: num.generic_add(x, 1), 1, 1)
add_prim("sub1", lambda x: num.generic_sub(x, 1), 1, 1)
add_prim("zero?", lambda x: num.generic_num_eq(x, 0), 1, 1)
add_prim("positive?", lambda x: num.generic_gt(x, 0), 1, 1)
add_prim("negative?", lambda x: num.generic_lt(x, 0), 1, 1)


@define_prim("even?", 1, 1)
def prim_even(x: Any) -> bool:
    STATS.generic_dispatches += 1
    if not num.is_exact_integer(x):
        raise WrongTypeError("even?", "integer?", x)
    return x % 2 == 0


@define_prim("odd?", 1, 1)
def prim_odd(x: Any) -> bool:
    STATS.generic_dispatches += 1
    if not num.is_exact_integer(x):
        raise WrongTypeError("odd?", "integer?", x)
    return x % 2 == 1


# numeric predicates
add_prim("number?", num.is_number, 1, 1)
add_prim("real?", num.is_real, 1, 1)
add_prim("rational?", lambda x: num.is_real(x) and (not isinstance(x, float) or math.isfinite(x)), 1, 1)
add_prim("integer?", lambda x: num.is_exact_integer(x) or (isinstance(x, float) and x.is_integer()), 1, 1)
add_prim("exact-integer?", num.is_exact_integer, 1, 1)
add_prim("exact-nonnegative-integer?", lambda x: num.is_exact_integer(x) and x >= 0, 1, 1)
add_prim("exact-rational?", num.is_exact_rational, 1, 1)
add_prim("flonum?", num.is_flonum, 1, 1)
add_prim("complex?", num.is_number, 1, 1)
add_prim("float-complex?", num.is_float_complex, 1, 1)
add_prim("exact?", lambda x: num.is_exact_rational(x), 1, 1)
add_prim("inexact?", lambda x: isinstance(x, (float, complex)), 1, 1)
add_prim("nan?", lambda x: isinstance(x, float) and math.isnan(x), 1, 1)
add_prim("infinite?", lambda x: isinstance(x, float) and math.isinf(x), 1, 1)


@define_prim("number->string", 1, 1)
def prim_number_to_string(x: Any) -> str:
    return num.generic_number_to_string(x)


@define_prim("string->number", 1, 1)
def prim_string_to_number(s: Any) -> Any:
    if not isinstance(s, str):
        raise WrongTypeError("string->number", "string?", s)
    from repro.reader.reader import classify_atom
    from repro.syn.srcloc import NO_SRCLOC

    try:
        result = classify_atom(s, NO_SRCLOC)
    except Exception:
        return False
    if num.is_number(result):
        return result
    return False


# --- unsafe primitives ---------------------------------------------------------

_UNSAFE = {
    "unsafe-fl+": (num.unsafe_fl_add, 2, 2),
    "unsafe-fl-": (num.unsafe_fl_sub, 2, 2),
    "unsafe-fl*": (num.unsafe_fl_mul, 2, 2),
    "unsafe-fl/": (num.unsafe_fl_div, 2, 2),
    "unsafe-fl<": (num.unsafe_fl_lt, 2, 2),
    "unsafe-fl<=": (num.unsafe_fl_le, 2, 2),
    "unsafe-fl>": (num.unsafe_fl_gt, 2, 2),
    "unsafe-fl>=": (num.unsafe_fl_ge, 2, 2),
    "unsafe-fl=": (num.unsafe_fl_eq, 2, 2),
    "unsafe-flabs": (num.unsafe_fl_abs, 1, 1),
    "unsafe-flmin": (num.unsafe_fl_min, 2, 2),
    "unsafe-flmax": (num.unsafe_fl_max, 2, 2),
    "unsafe-flneg": (num.unsafe_fl_neg, 1, 1),
    "unsafe-flsqrt": (num.unsafe_fl_sqrt, 1, 1),
    "unsafe-flsin": (num.unsafe_fl_sin, 1, 1),
    "unsafe-flcos": (num.unsafe_fl_cos, 1, 1),
    "unsafe-flfloor": (num.unsafe_fl_floor, 1, 1),
    "unsafe-fx+": (num.unsafe_fx_add, 2, 2),
    "unsafe-fx-": (num.unsafe_fx_sub, 2, 2),
    "unsafe-fx*": (num.unsafe_fx_mul, 2, 2),
    "unsafe-fx<": (num.unsafe_fx_lt, 2, 2),
    "unsafe-fx<=": (num.unsafe_fx_le, 2, 2),
    "unsafe-fx>": (num.unsafe_fx_gt, 2, 2),
    "unsafe-fx>=": (num.unsafe_fx_ge, 2, 2),
    "unsafe-fx=": (num.unsafe_fx_eq, 2, 2),
    "unsafe-fxquotient": (num.unsafe_fx_quotient, 2, 2),
    "unsafe-fxremainder": (num.unsafe_fx_remainder, 2, 2),
    "unsafe-fc+": (num.unsafe_fc_add, 2, 2),
    "unsafe-fc-": (num.unsafe_fc_sub, 2, 2),
    "unsafe-fc*": (num.unsafe_fc_mul, 2, 2),
    "unsafe-fc/": (num.unsafe_fc_div, 2, 2),
    "unsafe-fcmagnitude": (num.unsafe_fc_magnitude, 1, 1),
    "unsafe-fcreal-part": (num.unsafe_fc_real, 1, 1),
    "unsafe-fcimag-part": (num.unsafe_fc_imag, 1, 1),
}
for _name, (_fn, _lo, _hi) in _UNSAFE.items():
    add_prim(_name, _fn, _lo, _hi)


def _unsafe_car(p: v.Pair) -> Any:
    STATS.unsafe_ops += 1
    return p.car


def _unsafe_cdr(p: v.Pair) -> Any:
    STATS.unsafe_ops += 1
    return p.cdr


def _unsafe_vector_ref(vec: v.MVector, i: int) -> Any:
    STATS.unsafe_ops += 1
    return vec.items[i]


def _unsafe_vector_set(vec: v.MVector, i: int, value: Any) -> Any:
    STATS.unsafe_ops += 1
    vec.items[i] = value
    return v.VOID


def _unsafe_vector_length(vec: v.MVector) -> int:
    STATS.unsafe_ops += 1
    return len(vec.items)


add_prim("unsafe-car", _unsafe_car, 1, 1)
add_prim("unsafe-cdr", _unsafe_cdr, 1, 1)
add_prim("unsafe-vector-ref", _unsafe_vector_ref, 2, 2)
add_prim("unsafe-vector-set!", _unsafe_vector_set, 3, 3)
add_prim("unsafe-vector-length", _unsafe_vector_length, 1, 1)


# --- booleans and equality -----------------------------------------------------

add_prim("not", lambda x: x is False, 1, 1)
add_prim("boolean?", lambda x: isinstance(x, bool), 1, 1)
add_prim("eq?", eq, 2, 2)
add_prim("eqv?", eqv, 2, 2)
add_prim("equal?", equal, 2, 2)


# --- pairs and lists -----------------------------------------------------------

add_prim("cons", v.Pair, 2, 2)


@define_prim("car", 1, 1)
def prim_car(p: Any) -> Any:
    STATS.tag_checks += 1
    if type(p) is not v.Pair:
        raise WrongTypeError("car", "pair?", p)
    return p.car


@define_prim("cdr", 1, 1)
def prim_cdr(p: Any) -> Any:
    STATS.tag_checks += 1
    if type(p) is not v.Pair:
        raise WrongTypeError("cdr", "pair?", p)
    return p.cdr


@define_prim("set-car!", 2, 2)
def prim_set_car(p: Any, value: Any) -> Any:
    STATS.tag_checks += 1
    if type(p) is not v.Pair:
        raise WrongTypeError("set-car!", "pair?", p)
    p.car = value
    return v.VOID


@define_prim("set-cdr!", 2, 2)
def prim_set_cdr(p: Any, value: Any) -> Any:
    STATS.tag_checks += 1
    if type(p) is not v.Pair:
        raise WrongTypeError("set-cdr!", "pair?", p)
    p.cdr = value
    return v.VOID


def _cxr(path: str) -> Callable[[Any], Any]:
    ops = [prim_car if c == "a" else prim_cdr for c in reversed(path)]

    def access(p: Any) -> Any:
        for op in ops:
            p = op(p)
        return p

    return access


for _path in ("aa", "ad", "da", "dd", "aaa", "aad", "ada", "add", "daa", "dad", "dda", "ddd"):
    add_prim(f"c{_path}r", _cxr(_path), 1, 1)

add_prim("pair?", lambda x: type(x) is v.Pair, 1, 1)
add_prim("null?", lambda x: x is v.NULL, 1, 1)
add_prim("list?", v.is_list, 1, 1)
add_prim("list", lambda *args: v.from_list(args), 0)


@define_prim("list*", 1)
def prim_list_star(*args: Any) -> Any:
    return v.from_list(args[:-1], args[-1])


@define_prim("length", 1, 1)
def prim_length(lst: Any) -> int:
    try:
        return v.list_length(lst)
    except ValueError:
        raise WrongTypeError("length", "list?", lst) from None


@define_prim("append", 0)
def prim_append(*lists: Any) -> Any:
    if not lists:
        return v.NULL
    result = lists[-1]
    for lst in reversed(lists[:-1]):
        try:
            items = v.to_list(lst)
        except ValueError:
            raise WrongTypeError("append", "list?", lst) from None
        result = v.from_list(items, result)
    return result


@define_prim("reverse", 1, 1)
def prim_reverse(lst: Any) -> Any:
    result: Any = v.NULL
    node = lst
    while type(node) is v.Pair:
        result = v.Pair(node.car, result)
        node = node.cdr
    if node is not v.NULL:
        raise WrongTypeError("reverse", "list?", lst)
    return result


@define_prim("list-ref", 2, 2)
def prim_list_ref(lst: Any, i: Any) -> Any:
    node = lst
    k = i
    while k > 0 and type(node) is v.Pair:
        node = node.cdr
        k -= 1
    if type(node) is not v.Pair:
        raise RuntimeReproError(f"list-ref: index {i} too large for list")
    return node.car


@define_prim("list-tail", 2, 2)
def prim_list_tail(lst: Any, i: Any) -> Any:
    node = lst
    for _ in range(i):
        if type(node) is not v.Pair:
            raise RuntimeReproError(f"list-tail: index {i} too large")
        node = node.cdr
    return node


def _member_by(pred: Callable[[Any, Any], bool], who: str) -> Callable[[Any, Any], Any]:
    def member(x: Any, lst: Any) -> Any:
        node = lst
        while type(node) is v.Pair:
            if pred(x, node.car):
                return node
            node = node.cdr
        return False

    return member


add_prim("member", _member_by(equal, "member"), 2, 2)
add_prim("memq", _member_by(eq, "memq"), 2, 2)
add_prim("memv", _member_by(eqv, "memv"), 2, 2)


def _assoc_by(pred: Callable[[Any, Any], bool]) -> Callable[[Any, Any], Any]:
    def assoc(x: Any, lst: Any) -> Any:
        node = lst
        while type(node) is v.Pair:
            entry = node.car
            if type(entry) is v.Pair and pred(x, entry.car):
                return entry
            node = node.cdr
        return False

    return assoc


add_prim("assoc", _assoc_by(equal), 2, 2)
add_prim("assq", _assoc_by(eq), 2, 2)
add_prim("assv", _assoc_by(eqv), 2, 2)


# first..tenth / rest / last
add_prim("first", prim_car, 1, 1)
add_prim("rest", prim_cdr, 1, 1)
for _i, _name in enumerate(
    ("second", "third", "fourth", "fifth", "sixth", "seventh", "eighth", "ninth", "tenth"),
    start=1,
):
    def _nth(i: int) -> Callable[[Any], Any]:
        def access(lst: Any) -> Any:
            return prim_list_ref(lst, i)

        return access

    add_prim(_name, _nth(_i), 1, 1)


@define_prim("last", 1, 1)
def prim_last(lst: Any) -> Any:
    if type(lst) is not v.Pair:
        raise WrongTypeError("last", "non-empty list", lst)
    node = lst
    while type(node.cdr) is v.Pair:
        node = node.cdr
    return node.car


# higher-order list ops (need apply_procedure)


def _apply(fn: Any, args: list[Any]) -> Any:
    from repro.core.interp import apply_procedure

    return apply_procedure(fn, args)


@define_prim("map", 2)
def prim_map(fn: Any, *lists: Any) -> Any:
    pylists = [v.to_list(lst) for lst in lists]
    n = min(len(lst) for lst in pylists)
    return v.from_list([_apply(fn, [lst[i] for lst in pylists]) for i in range(n)])


@define_prim("for-each", 2)
def prim_for_each(fn: Any, *lists: Any) -> Any:
    pylists = [v.to_list(lst) for lst in lists]
    n = min(len(lst) for lst in pylists)
    for i in range(n):
        _apply(fn, [lst[i] for lst in pylists])
    return v.VOID


@define_prim("filter", 2, 2)
def prim_filter(pred: Any, lst: Any) -> Any:
    return v.from_list([x for x in v.to_list(lst) if _apply(pred, [x]) is not False])


@define_prim("foldl", 3)
def prim_foldl(fn: Any, init: Any, *lists: Any) -> Any:
    pylists = [v.to_list(lst) for lst in lists]
    acc = init
    n = min(len(lst) for lst in pylists)
    for i in range(n):
        acc = _apply(fn, [lst[i] for lst in pylists] + [acc])
    return acc


@define_prim("foldr", 3)
def prim_foldr(fn: Any, init: Any, *lists: Any) -> Any:
    pylists = [v.to_list(lst) for lst in lists]
    acc = init
    n = min(len(lst) for lst in pylists)
    for i in reversed(range(n)):
        acc = _apply(fn, [lst[i] for lst in pylists] + [acc])
    return acc


@define_prim("andmap", 2)
def prim_andmap(fn: Any, *lists: Any) -> Any:
    pylists = [v.to_list(lst) for lst in lists]
    n = min(len(lst) for lst in pylists)
    result: Any = True
    for i in range(n):
        result = _apply(fn, [lst[i] for lst in pylists])
        if result is False:
            return False
    return result


@define_prim("ormap", 2)
def prim_ormap(fn: Any, *lists: Any) -> Any:
    pylists = [v.to_list(lst) for lst in lists]
    n = min(len(lst) for lst in pylists)
    for i in range(n):
        result = _apply(fn, [lst[i] for lst in pylists])
        if result is not False:
            return result
    return False


@define_prim("sort", 2, 2)
def prim_sort(lst: Any, less_than: Any) -> Any:
    import functools

    items = v.to_list(lst)
    key = functools.cmp_to_key(
        lambda a, b: -1 if _apply(less_than, [a, b]) is not False else (
            1 if _apply(less_than, [b, a]) is not False else 0
        )
    )
    return v.from_list(sorted(items, key=key))


@define_prim("build-list", 2, 2)
def prim_build_list(n: Any, fn: Any) -> Any:
    return v.from_list([_apply(fn, [i]) for i in range(n)])


@define_prim("range", 1, 3)
def prim_range(a: Any, b: Any = None, step: Any = 1) -> Any:
    if b is None:
        a, b = 0, a
    out = []
    x = a
    if step > 0:
        while x < b:
            out.append(x)
            x += step
    else:
        while x > b:
            out.append(x)
            x += step
    return v.from_list(out)


# --- symbols, keywords, chars ---------------------------------------------------

add_prim("symbol?", lambda x: isinstance(x, v.Symbol), 1, 1)
add_prim("keyword?", lambda x: isinstance(x, v.Keyword), 1, 1)
add_prim("symbol->string", lambda s: s.name, 1, 1)
add_prim("string->symbol", lambda s: v.Symbol(s), 1, 1)
add_prim("gensym", lambda base=None: v.gensym(base.name if isinstance(base, v.Symbol) else (base or "g")), 0, 1)
add_prim("char?", lambda x: isinstance(x, v.Char), 1, 1)
add_prim("char->integer", lambda c: ord(c.value), 1, 1)
add_prim("integer->char", lambda i: v.Char(chr(i)), 1, 1)
add_prim("char=?", lambda a, b: a.value == b.value, 2, 2)
add_prim("char<?", lambda a, b: a.value < b.value, 2, 2)
add_prim("char-alphabetic?", lambda c: c.value.isalpha(), 1, 1)
add_prim("char-numeric?", lambda c: c.value.isdigit(), 1, 1)
add_prim("char-whitespace?", lambda c: c.value.isspace(), 1, 1)
add_prim("char-upcase", lambda c: v.Char(c.value.upper()), 1, 1)
add_prim("char-downcase", lambda c: v.Char(c.value.lower()), 1, 1)


# --- strings ---------------------------------------------------------------------

add_prim("string?", lambda x: isinstance(x, str), 1, 1)
add_prim("string-length", len, 1, 1)


@define_prim("string-append", 0)
def prim_string_append(*args: Any) -> str:
    for a in args:
        if not isinstance(a, str):
            raise WrongTypeError("string-append", "string?", a)
    return "".join(args)


@define_prim("substring", 2, 3)
def prim_substring(s: Any, start: Any, end: Any = None) -> str:
    return s[start:end] if end is not None else s[start:]


@define_prim("string-ref", 2, 2)
def prim_string_ref(s: Any, i: Any) -> v.Char:
    if not isinstance(s, str):
        raise WrongTypeError("string-ref", "string?", s)
    if not (0 <= i < len(s)):
        raise RuntimeReproError(f"string-ref: index {i} out of range")
    return v.Char(s[i])


add_prim("string=?", lambda a, b: a == b, 2, 2)
add_prim("string<?", lambda a, b: a < b, 2, 2)
add_prim("string>?", lambda a, b: a > b, 2, 2)
add_prim("string-upcase", str.upper, 1, 1)
add_prim("string-downcase", str.lower, 1, 1)
add_prim("string->list", lambda s: v.from_list([v.Char(c) for c in s]), 1, 1)
add_prim("list->string", lambda lst: "".join(c.value for c in v.to_list(lst)), 1, 1)
add_prim("string-contains?", lambda s, sub: sub in s, 2, 2)
add_prim("string-join", lambda lst, sep=" ": sep.join(v.to_list(lst)), 1, 2)
add_prim("string-split", lambda s, sep=None: v.from_list(s.split(sep)), 1, 2)
add_prim("string", lambda *chars: "".join(c.value for c in chars), 0)
add_prim("make-string", lambda n, c=None: (c.value if c else " ") * n, 1, 2)
add_prim("string->bytes", lambda s: s, 1, 1)  # bytes are strings in this runtime
add_prim("bytes?", lambda x: isinstance(x, str), 1, 1)


# --- vectors ---------------------------------------------------------------------

add_prim("vector?", lambda x: type(x) is v.MVector, 1, 1)
add_prim("vector", lambda *args: v.MVector(args), 0)


@define_prim("make-vector", 1, 2)
def prim_make_vector(n: Any, fill: Any = 0) -> v.MVector:
    if not num.is_exact_integer(n) or n < 0:
        raise WrongTypeError("make-vector", "exact-nonnegative-integer?", n)
    return v.MVector([fill] * n)


@define_prim("vector-ref", 2, 2)
def prim_vector_ref(vec: Any, i: Any) -> Any:
    STATS.tag_checks += 1
    if type(vec) is not v.MVector:
        raise WrongTypeError("vector-ref", "vector?", vec)
    if not (isinstance(i, int) and 0 <= i < len(vec.items)):
        raise RuntimeReproError(f"vector-ref: index {i} out of range [0, {len(vec.items)})")
    return vec.items[i]


@define_prim("vector-set!", 3, 3)
def prim_vector_set(vec: Any, i: Any, value: Any) -> Any:
    STATS.tag_checks += 1
    if type(vec) is not v.MVector:
        raise WrongTypeError("vector-set!", "vector?", vec)
    if not (isinstance(i, int) and 0 <= i < len(vec.items)):
        raise RuntimeReproError(f"vector-set!: index {i} out of range [0, {len(vec.items)})")
    vec.items[i] = value
    return v.VOID


@define_prim("vector-length", 1, 1)
def prim_vector_length(vec: Any) -> int:
    STATS.tag_checks += 1
    if type(vec) is not v.MVector:
        raise WrongTypeError("vector-length", "vector?", vec)
    return len(vec.items)


add_prim("vector->list", lambda vec: v.from_list(vec.items), 1, 1)
add_prim("list->vector", lambda lst: v.MVector(v.to_list(lst)), 1, 1)


@define_prim("vector-fill!", 2, 2)
def prim_vector_fill(vec: Any, value: Any) -> Any:
    for i in range(len(vec.items)):
        vec.items[i] = value
    return v.VOID


add_prim("vector-copy", lambda vec: v.MVector(list(vec.items)), 1, 1)
add_prim("vector-map", lambda fn, vec: v.MVector([_apply(fn, [x]) for x in vec.items]), 2, 2)
add_prim("build-vector", lambda n, fn: v.MVector([_apply(fn, [i]) for i in range(n)]), 2, 2)


# --- boxes and hash tables --------------------------------------------------------

add_prim("box", v.Box, 1, 1)
add_prim("box?", lambda x: isinstance(x, v.Box), 1, 1)


@define_prim("unbox", 1, 1)
def prim_unbox(b: Any) -> Any:
    if not isinstance(b, v.Box):
        raise WrongTypeError("unbox", "box?", b)
    return b.value


@define_prim("set-box!", 2, 2)
def prim_set_box(b: Any, value: Any) -> Any:
    if not isinstance(b, v.Box):
        raise WrongTypeError("set-box!", "box?", b)
    b.value = value
    return v.VOID


add_prim("make-hash", lambda: v.HashTable(), 0, 0)
add_prim("hash?", lambda x: isinstance(x, v.HashTable), 1, 1)


@define_prim("hash-set!", 3, 3)
def prim_hash_set(h: Any, key: Any, value: Any) -> Any:
    h.set(key, value)
    return v.VOID


_NO_DEFAULT = object()


@define_prim("hash-ref", 2, 3)
def prim_hash_ref(h: Any, key: Any, default: Any = _NO_DEFAULT) -> Any:
    if h.has(key):
        return h.get(key)
    if default is _NO_DEFAULT:
        raise RuntimeReproError(f"hash-ref: no value found for key: {write_value(key)}")
    if isinstance(default, v.Procedure):
        return _apply(default, [])
    return default


add_prim("hash-has-key?", lambda h, k: h.has(k), 2, 2)
add_prim("hash-remove!", lambda h, k: (h.remove(k), v.VOID)[1], 2, 2)
add_prim("hash-count", lambda h: h.count(), 1, 1)
add_prim("hash-keys", lambda h: v.from_list(h.keys()), 1, 1)


# --- control -----------------------------------------------------------------------


@define_prim("apply", 2)
def prim_apply(fn: Any, *rest: Any) -> Any:
    args = list(rest[:-1]) + v.to_list(rest[-1])
    return _apply(fn, args)


@define_prim("values", 0)
def prim_values(*args: Any) -> Any:
    if len(args) == 1:
        return args[0]
    return v.Values(args)


@define_prim("call-with-values", 2, 2)
def prim_call_with_values(producer: Any, consumer: Any) -> Any:
    result = _apply(producer, [])
    if isinstance(result, v.Values):
        return _apply(consumer, list(result.items))
    return _apply(consumer, [result])


@define_prim("error", 1)
def prim_error(message: Any, *args: Any) -> Any:
    if isinstance(message, v.Symbol):
        text = message.name
        if args and isinstance(args[0], str):
            text += ": " + args[0]
            args = args[1:]
    elif isinstance(message, str):
        text = message
    else:
        text = write_value(message)
    if args:
        text += " " + " ".join(write_value(a) for a in args)
    raise RuntimeReproError(text)


add_prim("void", lambda *args: v.VOID, 0)
add_prim("void?", lambda x: x is v.VOID, 1, 1)
add_prim("procedure?", lambda x: isinstance(x, v.Procedure), 1, 1)
add_prim("eof-object?", lambda x: x is v.EOF, 1, 1)
add_prim("eof-object", lambda: v.EOF, 0, 0)
add_prim("identity", lambda x: x, 1, 1)


# --- output ------------------------------------------------------------------------


@define_prim("display", 1, 2)
def prim_display(x: Any, port: Any = None) -> Any:
    current_output_port().write(display_value(x))
    return v.VOID


@define_prim("displayln", 1, 2)
def prim_displayln(x: Any, port: Any = None) -> Any:
    current_output_port().write(display_value(x) + "\n")
    return v.VOID


@define_prim("write", 1, 2)
def prim_write(x: Any, port: Any = None) -> Any:
    current_output_port().write(write_value(x))
    return v.VOID


@define_prim("newline", 0, 1)
def prim_newline(port: Any = None) -> Any:
    current_output_port().write("\n")
    return v.VOID


def format_string(fmt: str, args: tuple[Any, ...]) -> str:
    out: list[str] = []
    i = 0
    arg_i = 0
    while i < len(fmt):
        ch = fmt[i]
        if ch == "~" and i + 1 < len(fmt):
            directive = fmt[i + 1]
            i += 2
            if directive == "a":
                out.append(display_value(args[arg_i]))
                arg_i += 1
            elif directive in ("s", "v"):
                out.append(write_value(args[arg_i]))
                arg_i += 1
            elif directive == "%" or directive == "n":
                out.append("\n")
            elif directive == "~":
                out.append("~")
            else:
                raise RuntimeReproError(f"format: unknown directive ~{directive}")
        else:
            out.append(ch)
            i += 1
    if arg_i != len(args):
        raise RuntimeReproError(
            f"format: expected {arg_i} arguments, got {len(args)}"
        )
    return "".join(out)


@define_prim("format", 1)
def prim_format(fmt: Any, *args: Any) -> str:
    if not isinstance(fmt, str):
        raise WrongTypeError("format", "string?", fmt)
    return format_string(fmt, args)


@define_prim("printf", 1)
def prim_printf(fmt: Any, *args: Any) -> Any:
    current_output_port().write(format_string(fmt, args))
    return v.VOID


# --- time and randomness --------------------------------------------------------

add_prim("current-seconds", lambda: int(time.time()), 0, 0)
add_prim("current-inexact-milliseconds", lambda: time.time() * 1000.0, 0, 0)

_RNG = _py_random.Random(20110604)  # deterministic: the paper's publication date


@define_prim("random", 0, 1)
def prim_random(n: Any = None) -> Any:
    if n is None:
        return _RNG.random()
    if not num.is_exact_integer(n) or n <= 0:
        raise WrongTypeError("random", "positive integer", n)
    return _RNG.randrange(n)


@define_prim("random-seed", 1, 1)
def prim_random_seed(seed: Any) -> Any:
    _RNG.seed(seed)
    return v.VOID


add_prim("sleep", lambda s=0: (time.sleep(min(float(s), 0.1)), v.VOID)[1], 0, 1)


# --- syntax-object primitives (used by phase-1 / compile-time code) ---------------

from repro.syn.binding import bound_identifier_eq, free_identifier_eq  # noqa: E402
from repro.syn.syntax import (  # noqa: E402
    ImproperList,
    Syntax,
    datum_to_syntax,
    syntax_to_datum,
    syntax_to_list,
)


add_prim("syntax?", lambda x: isinstance(x, Syntax), 1, 1)
add_prim("identifier?", lambda x: isinstance(x, Syntax) and x.is_identifier(), 1, 1)


@define_prim("syntax-e", 1, 1)
def prim_syntax_e(stx: Any) -> Any:
    if not isinstance(stx, Syntax):
        raise WrongTypeError("syntax-e", "syntax?", stx)
    e = stx.e
    if isinstance(e, tuple):
        return v.from_list(e)
    if isinstance(e, ImproperList):
        return v.from_list(e.items, e.tail)
    return e


@define_prim("syntax->list", 1, 1)
def prim_syntax_to_list(stx: Any) -> Any:
    if not isinstance(stx, Syntax):
        raise WrongTypeError("syntax->list", "syntax?", stx)
    items = syntax_to_list(stx)
    if items is None:
        return False
    return v.from_list(items)


@define_prim("syntax->datum", 1, 1)
def prim_syntax_to_datum(stx: Any) -> Any:
    from repro.syn.syntax import datum_to_value

    return datum_to_value(syntax_to_datum(stx))


@define_prim("datum->syntax", 2, 2)
def prim_datum_to_syntax(ctx: Any, datum: Any) -> Any:
    if ctx is not False and not isinstance(ctx, Syntax):
        raise WrongTypeError("datum->syntax", "syntax? or #f", ctx)

    def value_to_datum(x: Any) -> Any:
        if isinstance(x, Syntax):
            return x
        if type(x) is v.Pair:
            items = []
            node = x
            while type(node) is v.Pair:
                items.append(value_to_datum(node.car))
                node = node.cdr
            if node is v.NULL:
                return tuple(items)
            context = ctx if ctx is not False else None
            return ImproperList(
                tuple(datum_to_syntax(context, i) for i in items),
                datum_to_syntax(context, value_to_datum(node)),
            )
        if x is v.NULL:
            return ()
        return x

    return datum_to_syntax(ctx if ctx is not False else None, value_to_datum(datum))


add_prim("free-identifier=?", free_identifier_eq, 2, 2)
add_prim("bound-identifier=?", bound_identifier_eq, 2, 2)


@define_prim("syntax-property-put", 3, 3)
def prim_syntax_property_put(stx: Any, key: Any, value: Any) -> Any:
    if not isinstance(stx, Syntax):
        raise WrongTypeError("syntax-property-put", "syntax?", stx)
    key_name = key.name if isinstance(key, v.Symbol) else key
    return stx.property_put(key_name, value)


@define_prim("syntax-property-get", 2, 3)
def prim_syntax_property_get(stx: Any, key: Any, default: Any = False) -> Any:
    if not isinstance(stx, Syntax):
        raise WrongTypeError("syntax-property-get", "syntax?", stx)
    key_name = key.name if isinstance(key, v.Symbol) else key
    return stx.property_get(key_name, default)


@define_prim("raise-syntax-error", 2, 3)
def prim_raise_syntax_error(who: Any, message: Any, stx: Any = None) -> Any:
    from repro.errors import SyntaxExpansionError

    who_text = who.name if isinstance(who, v.Symbol) else (who if who is not False else "syntax")
    raise SyntaxExpansionError(f"{who_text}: {message}", stx)


# --- sequences (used by the `for` forms) -------------------------------------


@define_prim("in-range", 1, 3)
def prim_in_range(a: Any, b: Any = None, step: Any = 1) -> Any:
    return prim_range(a, b, step)


@define_prim("sequence->list", 1, 1)
def prim_sequence_to_list(seq: Any) -> Any:
    if seq is v.NULL or type(seq) is v.Pair:
        return seq
    if type(seq) is v.MVector:
        return v.from_list(seq.items)
    if isinstance(seq, str):
        return v.from_list([v.Char(c) for c in seq])
    raise WrongTypeError("sequence->list", "sequence", seq)


# typed-language support primitives (add-type!, typed-context?, contract, ...)
import repro.runtime.typed_prims  # noqa: E402,F401  (registers via side effect)

# promise support for the lazy language (make-promise, force, lazy-apply)
import repro.runtime.promises  # noqa: E402,F401  (registers via side effect)

# struct support (make-struct-type, struct?, struct-ref)
import repro.runtime.structs  # noqa: E402,F401  (registers via side effect)

# quasisyntax template primitives (qs-coerce, qs-splice, syntax-rebuild)
import repro.expander.quasisyntax  # noqa: E402,F401  (registers via side effect)


# --- error handling (with-handlers support) ----------------------------------


@define_prim("exn-message", 1, 1)
def prim_exn_message(e: Any) -> str:
    if not isinstance(e, RuntimeReproError):
        raise WrongTypeError("exn-message", "exn?", e)
    return e.message


add_prim("exn?", lambda x: isinstance(x, RuntimeReproError), 1, 1)


@define_prim("raise", 1, 1)
def prim_raise(value: Any) -> Any:
    if isinstance(value, RuntimeReproError):
        raise value
    raise RuntimeReproError(display_value(value))


@define_prim("call-with-error-handlers", 3, 3)
def prim_call_with_error_handlers(preds: Any, handlers: Any, thunk: Any) -> Any:
    from repro.core.interp import apply_procedure

    try:
        return apply_procedure(thunk, [])
    except RuntimeReproError as error:
        pred_list = v.to_list(preds)
        handler_list = v.to_list(handlers)
        for pred, handler in zip(pred_list, handler_list):
            if apply_procedure(pred, [error]) is not False:
                return apply_procedure(handler, [error])
        raise


# --- allocation marking (resource governance) ---------------------------------

#: constructors whose call sites the resource governor (repro.guard) charges
#: against an allocation budget; struct constructors are marked where they
#: are built (repro.runtime.structs)
ALLOCATING_PRIMITIVES = frozenset({
    "cons", "list", "list*", "append", "reverse", "map", "build-list",
    "vector", "make-vector", "list->vector", "vector->list", "vector-copy",
    "vector-map", "string-append", "make-string", "string-copy",
    "list->string", "string->list", "substring", "box", "make-hash",
})

for _name in ALLOCATING_PRIMITIVES:
    _prim = PRIMITIVES.get(_name)
    if _prim is not None:
        _prim.allocates = True
del _name, _prim
