"""Runtime support for structs.

The ``struct`` form is a macro (see ``repro.langs.racket.structs``): it
expands to one ``make-struct-type`` call returning the constructor,
predicate, accessors, and (when ``#:mutable``) mutators as multiple values —
all ordinary runtime procedures.
"""

from __future__ import annotations

from typing import Any

from repro.errors import WrongTypeError
from repro.runtime.stats import STATS
from repro.runtime.values import Primitive, Symbol, Values


class StructTypeDescriptor:
    __slots__ = ("name", "field_count", "transparent")

    def __init__(self, name: str, field_count: int, transparent: bool) -> None:
        self.name = name
        self.field_count = field_count
        self.transparent = transparent

    def __repr__(self) -> str:
        return f"#<struct-type:{self.name}>"


class StructInstance:
    __slots__ = ("descriptor", "fields")

    def __init__(self, descriptor: StructTypeDescriptor, fields: list[Any]) -> None:
        self.descriptor = descriptor
        self.fields = fields

    def __repr__(self) -> str:
        from repro.runtime.printing import write_value

        return write_value(self)


def _register() -> None:
    from repro.runtime.primitives import add_prim

    def make_struct_type(
        name: Any, field_count: Any, mutable: Any = False, transparent: Any = False
    ) -> Values:
        text = name.name if isinstance(name, Symbol) else str(name)
        descriptor = StructTypeDescriptor(text, field_count, transparent is not False)

        def construct(*args: Any) -> StructInstance:
            return StructInstance(descriptor, list(args))

        def predicate(x: Any) -> bool:
            STATS.tag_checks += 1
            return isinstance(x, StructInstance) and x.descriptor is descriptor

        out: list[Any] = [
            Primitive(text, construct, field_count, field_count, allocates=True),
            Primitive(f"{text}?", predicate, 1, 1),
        ]
        for index in range(field_count):
            def accessor(x: Any, _i: int = index) -> Any:
                STATS.tag_checks += 1
                if not (isinstance(x, StructInstance) and x.descriptor is descriptor):
                    raise WrongTypeError(f"{text}-ref", f"{text}?", x)
                return x.fields[_i]

            out.append(Primitive(f"{text}-field{index}", accessor, 1, 1))
        if mutable is not False:
            for index in range(field_count):
                def mutator(x: Any, value: Any, _i: int = index) -> Any:
                    from repro.runtime.values import VOID

                    STATS.tag_checks += 1
                    if not (
                        isinstance(x, StructInstance) and x.descriptor is descriptor
                    ):
                        raise WrongTypeError(f"set-{text}!", f"{text}?", x)
                    x.fields[_i] = value
                    return VOID

                out.append(Primitive(f"set-{text}-field{index}!", mutator, 2, 2))
        return Values(tuple(out))

    def struct_ref(x: Any, index: Any) -> Any:
        if not isinstance(x, StructInstance):
            raise WrongTypeError("struct-ref", "struct instance", x)
        if not (0 <= index < len(x.fields)):
            raise WrongTypeError("struct-ref", "valid field index", index)
        return x.fields[index]

    add_prim("make-struct-type", make_struct_type, 2, 4)
    add_prim("struct?", lambda x: isinstance(x, StructInstance), 1, 1)
    add_prim("struct-ref", struct_ref, 2, 2)


_register()
