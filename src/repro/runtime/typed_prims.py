"""Kernel primitives backing the typed languages' compile-time machinery.

These are the object-language-visible pieces of §5 and §6:

- ``add-type!`` / ``lookup-type`` — the identifier-keyed type environment of
  the *current compilation's* fresh store. The compiled form of a typed
  module contains ``(begin-for-syntax (add-type! (quote-syntax n) 'ty))``
  declarations; replaying them at visit time populates each client
  compilation's environment (§5).
- ``typed-context?`` — reads the §6.2 flag from the current compilation's
  store. Because every compilation starts with a fresh store, "untyped
  modules have no way to access it" — only a typed ``#%module-begin`` sets
  it, so export indirections expanded during untyped compilations always see
  ``#f`` and choose the contracted variant.
- ``type->contract`` and ``contract`` — §6.1's runtime contract generation.

All of these are ordinary primitives; they are registered into the kernel at
import time (this module is imported by ``repro.runtime.primitives``).
"""

from __future__ import annotations

from typing import Any

from repro.errors import WrongTypeError
from repro.runtime.values import Symbol


def _register() -> None:
    from repro.runtime.primitives import add_prim
    from repro.syn.syntax import Syntax

    def prim_add_type(ident: Any, serialized: Any) -> Any:
        from repro.expander.env import current_context
        from repro.langs.typed_common import env as tenv
        from repro.langs.typed_common.types import parse_type_datum
        from repro.runtime.values import VOID
        from repro.syn.binding import TABLE

        if not (isinstance(ident, Syntax) and ident.is_identifier()):
            raise WrongTypeError("add-type!", "identifier syntax", ident)
        binding = TABLE.resolve_or_raise(ident, 0)
        tenv.add_type(binding, parse_type_datum(serialized), current_context())
        return VOID

    def prim_lookup_type(ident: Any) -> Any:
        from repro.expander.env import current_context
        from repro.langs.typed_common import env as tenv
        from repro.langs.typed_common.types import serialize_to_value
        from repro.syn.binding import TABLE

        if not (isinstance(ident, Syntax) and ident.is_identifier()):
            raise WrongTypeError("lookup-type", "identifier syntax", ident)
        binding = TABLE.resolve(ident, 0)
        if binding is None:
            return False
        t = tenv.lookup_type(binding, current_context())
        if t is None:
            return False
        return serialize_to_value(t)

    def prim_typed_context(*_args: Any) -> bool:
        from repro.expander.env import current_context
        from repro.langs.typed_common import env as tenv

        return tenv.typed_context_flag(current_context())[0]

    def prim_type_to_contract(serialized: Any) -> Any:
        from repro.langs.typed_common.contracts_gen import type_to_contract
        from repro.langs.typed_common.types import parse_type_datum

        return type_to_contract(parse_type_datum(serialized))

    def prim_contract(
        c: Any, value: Any, positive: Any, negative: Any, loc: Any = None
    ) -> Any:
        from repro.contracts.contract import Contract, propagate_srcloc

        if not isinstance(c, Contract):
            raise WrongTypeError("contract", "contract?", c)

        def party(x: Any) -> str:
            return x.name if isinstance(x, Symbol) else str(x)

        # optional 5th argument: a quoted (source line column) list naming
        # the boundary, stamped onto the contract so violations carry a srcloc
        srcloc = _parse_srcloc_datum(loc)
        if srcloc is not None:
            propagate_srcloc(c, srcloc)
        return c.attach(value, party(positive), party(negative))

    def _parse_srcloc_datum(loc: Any) -> Any:
        from repro.runtime.values import Pair, to_list
        from repro.syn.srcloc import SrcLoc

        if not isinstance(loc, Pair):
            return None
        try:
            source, line, column = to_list(loc)
        except (ValueError, TypeError):
            return None
        if not (isinstance(source, str) and isinstance(line, int) and isinstance(column, int)):
            return None
        return SrcLoc(source, line, column)

    def prim_declare_named_type(name: Any, serialized: Any) -> Any:
        from repro.expander.env import current_context
        from repro.langs.typed_common.types import NAMED_TYPES_STORE, parse_type_datum
        from repro.runtime.values import VOID

        if not isinstance(name, Symbol):
            raise WrongTypeError("declare-named-type!", "symbol?", name)
        ctx = current_context()
        ctx.store(NAMED_TYPES_STORE, dict)[name.name] = parse_type_datum(serialized)
        return VOID

    add_prim("declare-named-type!", prim_declare_named_type, 2, 2)
    add_prim("add-type!", prim_add_type, 2, 2)
    add_prim("lookup-type", prim_lookup_type, 1, 1)
    add_prim("typed-context?", prim_typed_context, 0, 0)
    add_prim("type->contract", prim_type_to_contract, 1, 1)
    add_prim("contract", prim_contract, 4, 5)


_register()
