"""Runtime values, the numeric tower, primitives, and instrumentation."""

from repro.runtime.stats import STATS, Stats
from repro.runtime.values import (
    EOF, NULL, VOID, Box, Char, Closure, ContractedProcedure, HashTable,
    Keyword, MVector, Pair, Primitive, Procedure, Symbol, Values,
    from_list, gensym, is_list, list_length, to_list,
)

__all__ = [
    "STATS", "Stats", "EOF", "NULL", "VOID", "Box", "Char", "Closure",
    "ContractedProcedure", "HashTable", "Keyword", "MVector", "Pair",
    "Primitive", "Procedure", "Symbol", "Values", "from_list", "gensym",
    "is_list", "list_length", "to_list",
]
