"""The numeric tower: generic dispatching operations and unsafe specialized ones.

Representation:

- exact integers       -> Python ``int`` (``bool`` is *not* a number)
- exact rationals      -> ``fractions.Fraction`` (never with denominator 1;
                          those normalize back to ``int``)
- flonums              -> Python ``float``
- float-complexes      -> Python ``complex``

Generic operations (``generic_add`` etc.) dispatch on operand types, applying
the usual contagion rules (exactness is lost when a flonum is involved;
anything touching a complex becomes complex). Every generic call bumps
``STATS.generic_dispatches`` — this is the cost the paper's optimizer removes
by rewriting to the ``unsafe_fl*``/``unsafe_fx*`` operations below, which
perform no dispatch and no tag checks (undefined behaviour on wrong types,
exactly like Racket's ``unsafe-fl+``).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any

from repro.errors import WrongTypeError
from repro.runtime.stats import STATS

Real = (int, Fraction, float)
Number = (int, Fraction, float, complex)


def is_number(x: Any) -> bool:
    return isinstance(x, Number) and not isinstance(x, bool)


def is_real(x: Any) -> bool:
    return isinstance(x, Real) and not isinstance(x, bool)


def is_exact_integer(x: Any) -> bool:
    return isinstance(x, int) and not isinstance(x, bool)


def is_exact_rational(x: Any) -> bool:
    return (isinstance(x, int) and not isinstance(x, bool)) or isinstance(x, Fraction)


def is_flonum(x: Any) -> bool:
    return isinstance(x, float)


def is_float_complex(x: Any) -> bool:
    return isinstance(x, complex) and not isinstance(x, (float, int))


def normalize(x: Any) -> Any:
    """Collapse ``Fraction`` with denominator 1 to ``int``."""
    if isinstance(x, Fraction) and x.denominator == 1:
        return x.numerator
    return x


def _check_number(who: str, x: Any) -> None:
    if not is_number(x):
        raise WrongTypeError(who, "number?", x)


def _check_real(who: str, x: Any) -> None:
    if not is_real(x):
        raise WrongTypeError(who, "real?", x)


# --- generic arithmetic ------------------------------------------------------


def generic_add(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("+", a)
    _check_number("+", b)
    return normalize(a + b)


def generic_sub(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("-", a)
    _check_number("-", b)
    return normalize(a - b)


def generic_mul(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("*", a)
    _check_number("*", b)
    return normalize(a * b)


def generic_div(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("/", a)
    _check_number("/", b)
    if isinstance(a, int) and isinstance(b, int):
        if b == 0:
            raise WrongTypeError("/", "non-zero number", b)
        if a % b == 0:
            return a // b
        return Fraction(a, b)
    if isinstance(a, (int, Fraction)) and isinstance(b, (int, Fraction)):
        if b == 0:
            raise WrongTypeError("/", "non-zero number", b)
        return normalize(Fraction(a) / Fraction(b))
    if isinstance(b, complex) and not isinstance(b, float):
        return a / b
    if float(abs(b)) == 0.0 and not isinstance(a, complex):
        # flonum division by zero yields infinities, like Racket
        if isinstance(a, complex):
            return a / b  # pragma: no cover - complex/0.0 raises below
        af = float(a)
        if af == 0.0:
            return math.nan
        return math.copysign(math.inf, af) * math.copysign(1.0, float(b))
    return a / b


def generic_neg(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("-", a)
    return -a


def generic_quotient(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    if not is_exact_integer(a):
        raise WrongTypeError("quotient", "integer?", a)
    if not is_exact_integer(b) or b == 0:
        raise WrongTypeError("quotient", "non-zero integer", b)
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    return q


def generic_remainder(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    if not is_exact_integer(a):
        raise WrongTypeError("remainder", "integer?", a)
    if not is_exact_integer(b) or b == 0:
        raise WrongTypeError("remainder", "non-zero integer", b)
    return a - generic_quotient(a, b) * b


def generic_modulo(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    if not is_exact_integer(a):
        raise WrongTypeError("modulo", "integer?", a)
    if not is_exact_integer(b) or b == 0:
        raise WrongTypeError("modulo", "non-zero integer", b)
    return a % b


def _cmp_args(who: str, a: Any, b: Any) -> None:
    STATS.generic_dispatches += 1
    _check_real(who, a)
    _check_real(who, b)


def generic_lt(a: Any, b: Any) -> bool:
    _cmp_args("<", a, b)
    return a < b


def generic_le(a: Any, b: Any) -> bool:
    _cmp_args("<=", a, b)
    return a <= b


def generic_gt(a: Any, b: Any) -> bool:
    _cmp_args(">", a, b)
    return a > b


def generic_ge(a: Any, b: Any) -> bool:
    _cmp_args(">=", a, b)
    return a >= b


def generic_num_eq(a: Any, b: Any) -> bool:
    STATS.generic_dispatches += 1
    _check_number("=", a)
    _check_number("=", b)
    return a == b


def generic_abs(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_real("abs", a)
    return normalize(abs(a))


def generic_min(a: Any, b: Any) -> Any:
    _cmp_args("min", a, b)
    result = a if a <= b else b
    if isinstance(a, float) or isinstance(b, float):
        return float(result)
    return result


def generic_max(a: Any, b: Any) -> Any:
    _cmp_args("max", a, b)
    result = a if a >= b else b
    if isinstance(a, float) or isinstance(b, float):
        return float(result)
    return result


def generic_sqrt(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("sqrt", a)
    if isinstance(a, complex) and not isinstance(a, float):
        import cmath

        return cmath.sqrt(a)
    if isinstance(a, (int, Fraction)):
        if a >= 0:
            if isinstance(a, int):
                root = math.isqrt(a)
                if root * root == a:
                    return root
            else:
                num_root = math.isqrt(a.numerator)
                den_root = math.isqrt(a.denominator)
                if num_root * num_root == a.numerator and den_root * den_root == a.denominator:
                    return normalize(Fraction(num_root, den_root))
            return math.sqrt(a)
        # negative exact -> exact-ish complex, matching Racket's (sqrt -4) = 2i
        pos = generic_sqrt(-a)
        return complex(0.0, float(pos))
    if a < 0:
        return complex(0.0, math.sqrt(-a))
    return math.sqrt(a)


def generic_expt(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("expt", a)
    _check_number("expt", b)
    if is_exact_rational(a) and is_exact_integer(b):
        if b >= 0:
            return normalize(Fraction(a) ** b if isinstance(a, Fraction) else a**b)
        if a == 0:
            raise WrongTypeError("expt", "non-zero base for negative exponent", a)
        return normalize(Fraction(a) ** b)
    return a**b


def generic_exp(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("exp", a)
    if isinstance(a, complex) and not isinstance(a, float):
        import cmath

        return cmath.exp(a)
    return math.exp(a)


def generic_log(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("log", a)
    if isinstance(a, complex) and not isinstance(a, float):
        import cmath

        return cmath.log(a)
    if a < 0:
        import cmath

        return cmath.log(complex(a))
    if a == 0:
        if isinstance(a, float):
            return -math.inf
        raise WrongTypeError("log", "non-zero number", a)
    return math.log(a)


def _real_trig(name: str, fn: Any) -> Any:
    def op(a: Any) -> Any:
        STATS.generic_dispatches += 1
        _check_real(name, a)
        return fn(a)

    op.__name__ = f"generic_{name}"
    return op


generic_sin = _real_trig("sin", math.sin)
generic_cos = _real_trig("cos", math.cos)
generic_tan = _real_trig("tan", math.tan)
generic_asin = _real_trig("asin", math.asin)
generic_acos = _real_trig("acos", math.acos)


def generic_atan(a: Any, b: Any = None) -> Any:
    STATS.generic_dispatches += 1
    _check_real("atan", a)
    if b is None:
        return math.atan(a)
    _check_real("atan", b)
    return math.atan2(a, b)


def generic_floor(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_real("floor", a)
    if isinstance(a, float):
        return float(math.floor(a))
    return math.floor(a)


def generic_ceiling(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_real("ceiling", a)
    if isinstance(a, float):
        return float(math.ceil(a))
    return math.ceil(a)


def generic_truncate(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_real("truncate", a)
    if isinstance(a, float):
        return float(math.trunc(a))
    return math.trunc(a)


def generic_round(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_real("round", a)
    if isinstance(a, float):
        return float(round(a))
    return round(a)  # banker's rounding, same as Racket


def generic_magnitude(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("magnitude", a)
    if isinstance(a, complex) and not isinstance(a, float):
        return abs(a)
    return normalize(abs(a))


def generic_real_part(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("real-part", a)
    if isinstance(a, complex) and not isinstance(a, float):
        return a.real
    return a


def generic_imag_part(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("imag-part", a)
    if isinstance(a, complex) and not isinstance(a, float):
        return a.imag
    return 0 if not isinstance(a, float) else 0.0


def generic_make_rectangular(re: Any, im: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_real("make-rectangular", re)
    _check_real("make-rectangular", im)
    if im == 0 and not isinstance(im, float):
        return re
    return complex(float(re), float(im))


def generic_exact_to_inexact(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_number("exact->inexact", a)
    if isinstance(a, complex) and not isinstance(a, float):
        return a
    return float(a)


def generic_inexact_to_exact(a: Any) -> Any:
    STATS.generic_dispatches += 1
    _check_real("inexact->exact", a)
    if isinstance(a, float):
        return normalize(Fraction(a))
    return a


def generic_number_to_string(a: Any) -> str:
    _check_number("number->string", a)
    from repro.runtime.printing import write_value

    return write_value(a)


def generic_gcd(a: Any, b: Any) -> Any:
    STATS.generic_dispatches += 1
    if not is_exact_integer(a):
        raise WrongTypeError("gcd", "integer?", a)
    if not is_exact_integer(b):
        raise WrongTypeError("gcd", "integer?", b)
    return math.gcd(a, b)


def generic_numerator(a: Any) -> Any:
    STATS.generic_dispatches += 1
    if isinstance(a, Fraction):
        return a.numerator
    if is_exact_integer(a):
        return a
    raise WrongTypeError("numerator", "exact rational", a)


def generic_denominator(a: Any) -> Any:
    STATS.generic_dispatches += 1
    if isinstance(a, Fraction):
        return a.denominator
    if is_exact_integer(a):
        return 1
    raise WrongTypeError("denominator", "exact rational", a)


# --- unsafe specialized operations ------------------------------------------
#
# These mirror Racket's unsafe-fl / unsafe-fx / unsafe vector ops: no tag
# checks, no dispatch. Behaviour is undefined (a raw Python exception at best)
# when applied to the wrong types — the typed optimizer only emits them when
# the typechecker has proved the operand types.


def unsafe_fl_add(a: float, b: float) -> float:
    STATS.unsafe_ops += 1
    return a + b


def unsafe_fl_sub(a: float, b: float) -> float:
    STATS.unsafe_ops += 1
    return a - b


def unsafe_fl_mul(a: float, b: float) -> float:
    STATS.unsafe_ops += 1
    return a * b


def unsafe_fl_div(a: float, b: float) -> float:
    STATS.unsafe_ops += 1
    if b == 0.0:
        if a == 0.0:
            return math.nan
        return math.copysign(math.inf, a) * math.copysign(1.0, b)
    return a / b


def unsafe_fl_lt(a: float, b: float) -> bool:
    STATS.unsafe_ops += 1
    return a < b


def unsafe_fl_le(a: float, b: float) -> bool:
    STATS.unsafe_ops += 1
    return a <= b


def unsafe_fl_gt(a: float, b: float) -> bool:
    STATS.unsafe_ops += 1
    return a > b


def unsafe_fl_ge(a: float, b: float) -> bool:
    STATS.unsafe_ops += 1
    return a >= b


def unsafe_fl_eq(a: float, b: float) -> bool:
    STATS.unsafe_ops += 1
    return a == b


def unsafe_fl_abs(a: float) -> float:
    STATS.unsafe_ops += 1
    return abs(a)


def unsafe_fl_min(a: float, b: float) -> float:
    STATS.unsafe_ops += 1
    return a if a <= b else b


def unsafe_fl_max(a: float, b: float) -> float:
    STATS.unsafe_ops += 1
    return a if a >= b else b


def unsafe_fl_neg(a: float) -> float:
    STATS.unsafe_ops += 1
    return -a


def unsafe_fl_sqrt(a: float) -> float:
    STATS.unsafe_ops += 1
    return math.sqrt(a)


def unsafe_fl_sin(a: float) -> float:
    STATS.unsafe_ops += 1
    return math.sin(a)


def unsafe_fl_cos(a: float) -> float:
    STATS.unsafe_ops += 1
    return math.cos(a)


def unsafe_fl_floor(a: float) -> float:
    STATS.unsafe_ops += 1
    return float(math.floor(a))


def unsafe_fx_add(a: int, b: int) -> int:
    STATS.unsafe_ops += 1
    return a + b


def unsafe_fx_sub(a: int, b: int) -> int:
    STATS.unsafe_ops += 1
    return a - b


def unsafe_fx_mul(a: int, b: int) -> int:
    STATS.unsafe_ops += 1
    return a * b


def unsafe_fx_lt(a: int, b: int) -> bool:
    STATS.unsafe_ops += 1
    return a < b


def unsafe_fx_le(a: int, b: int) -> bool:
    STATS.unsafe_ops += 1
    return a <= b


def unsafe_fx_gt(a: int, b: int) -> bool:
    STATS.unsafe_ops += 1
    return a > b


def unsafe_fx_ge(a: int, b: int) -> bool:
    STATS.unsafe_ops += 1
    return a >= b


def unsafe_fx_eq(a: int, b: int) -> bool:
    STATS.unsafe_ops += 1
    return a == b


def unsafe_fx_quotient(a: int, b: int) -> int:
    STATS.unsafe_ops += 1
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def unsafe_fx_remainder(a: int, b: int) -> int:
    STATS.unsafe_ops += 1
    return a - unsafe_fx_quotient(a, b) * b


def unsafe_fc_add(a: complex, b: complex) -> complex:
    STATS.unsafe_ops += 1
    return a + b


def unsafe_fc_sub(a: complex, b: complex) -> complex:
    STATS.unsafe_ops += 1
    return a - b


def unsafe_fc_mul(a: complex, b: complex) -> complex:
    STATS.unsafe_ops += 1
    return a * b


def unsafe_fc_div(a: complex, b: complex) -> complex:
    STATS.unsafe_ops += 1
    return a / b


def unsafe_fc_magnitude(a: complex) -> float:
    STATS.unsafe_ops += 1
    return abs(a)


def unsafe_fc_real(a: complex) -> float:
    STATS.unsafe_ops += 1
    return a.real


def unsafe_fc_imag(a: complex) -> float:
    STATS.unsafe_ops += 1
    return a.imag
