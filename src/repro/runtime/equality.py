"""``eq?``, ``eqv?``, and ``equal?`` for object-language values."""

from __future__ import annotations

from fractions import Fraction
from typing import Any

from repro.runtime import values as v


def eq(a: Any, b: Any) -> bool:
    """Pointer identity, with the small-value exceptions Racket guarantees."""
    if a is b:
        return True
    # Python may or may not intern small ints/strings; make the object-language
    # behaviour deterministic: eq? on equal fixnums, chars and keywords is #t.
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, v.Char) and isinstance(b, v.Char):
        return a.value == b.value
    return False


def eqv(a: Any, b: Any) -> bool:
    """``eq?`` plus numeric equality on same-exactness numbers."""
    if eq(a, b):
        return True
    if isinstance(a, bool) or isinstance(b, bool):
        return False
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (a != a and b != b)  # +nan.0 is eqv? to itself
    if isinstance(a, Fraction) and isinstance(b, Fraction):
        return a == b
    if isinstance(a, complex) and isinstance(b, complex):
        return a == b
    if isinstance(a, str) and isinstance(b, str):
        return a is b
    return False


def equal(a: Any, b: Any) -> bool:
    """Structural equality on pairs, vectors, strings, and boxes."""
    if eqv(a, b):
        return True
    if isinstance(a, str) and isinstance(b, str):
        return a == b
    if isinstance(a, v.Pair) and isinstance(b, v.Pair):
        while isinstance(a, v.Pair) and isinstance(b, v.Pair):
            if not equal(a.car, b.car):
                return False
            a = a.cdr
            b = b.cdr
        return equal(a, b)
    if isinstance(a, v.MVector) and isinstance(b, v.MVector):
        if len(a.items) != len(b.items):
            return False
        return all(equal(x, y) for x, y in zip(a.items, b.items))
    if isinstance(a, v.Box) and isinstance(b, v.Box):
        return equal(a.value, b.value)
    from repro.runtime.structs import StructInstance

    if (
        isinstance(a, StructInstance)
        and isinstance(b, StructInstance)
        and a.descriptor is b.descriptor
        and a.descriptor.transparent
    ):
        return all(equal(x, y) for x, y in zip(a.fields, b.fields))
    return False
