"""Instrumentation counters for the runtime.

The paper's optimizer (§7) communicates with the backend by emitting unsafe
type-specialized primitives that skip the run-time dispatch of generic
operations. To make the optimizer's effect observable *deterministically*
(independent of wall-clock noise), the runtime counts:

- ``generic_dispatches`` — calls to generic numeric operations that had to
  inspect their operands' runtime types;
- ``tag_checks`` — runtime type tests performed by safe primitives such as
  ``car`` or ``vector-ref``;
- ``unsafe_ops`` — calls to unsafe type-specialized primitives;
- ``contract_checks`` — dynamic contract checks at typed/untyped boundaries;
- ``expansion_steps`` — macro transformer applications performed by the
  expander (compile-time work, tracked so benchmark runs can watch the
  expander's cost and regressions in macro-heavy programs).

Benchmarks report these alongside wall-clock time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Stats:
    generic_dispatches: int = 0
    tag_checks: int = 0
    unsafe_ops: int = 0
    contract_checks: int = 0
    expansion_steps: int = 0

    def reset(self) -> None:
        self.generic_dispatches = 0
        self.tag_checks = 0
        self.unsafe_ops = 0
        self.contract_checks = 0
        self.expansion_steps = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "generic_dispatches": self.generic_dispatches,
            "tag_checks": self.tag_checks,
            "unsafe_ops": self.unsafe_ops,
            "contract_checks": self.contract_checks,
            "expansion_steps": self.expansion_steps,
        }


#: Global counter instance shared by the whole runtime.
STATS = Stats()
