"""Instrumentation counters for the runtime.

The paper's optimizer (§7) communicates with the backend by emitting unsafe
type-specialized primitives that skip the run-time dispatch of generic
operations. To make the optimizer's effect observable *deterministically*
(independent of wall-clock noise), the runtime counts:

- ``generic_dispatches`` — calls to generic numeric operations that had to
  inspect their operands' runtime types;
- ``tag_checks`` — runtime type tests performed by safe primitives such as
  ``car`` or ``vector-ref``;
- ``unsafe_ops`` — calls to unsafe type-specialized primitives;
- ``contract_checks`` — dynamic contract checks at typed/untyped boundaries;
- ``expansion_steps`` — macro transformer applications performed by the
  expander (compile-time work, tracked so benchmark runs can watch the
  expander's cost and regressions in macro-heavy programs);
- ``cache_hits`` / ``cache_misses`` / ``cache_stores`` /
  ``cache_invalidations`` — compiled-artifact cache traffic (see
  :mod:`repro.modules.cache`).

``expansion_by_macro`` attributes the ``expansion_steps`` total to the
macro that performed each step (name -> count); :meth:`Stats.top_macros`
ranks it, and ``repro trace --format summary`` / the REPL's ``,stats``
render it.

One ``rt.stats.snapshot()`` covers everything — expansion, dispatch, and
cache traffic; ``rt.cache_stats()`` remains as a backward-compatible alias
that filters the snapshot down to the ``cache_*`` counters.

Benchmarks report these alongside wall-clock time.

Counters are **per-Runtime**: each :class:`~repro.Runtime` owns a
:class:`Stats` instance (``rt.stats``) that its compile/instantiate
operations activate, so concurrent or sequential Runtimes never bleed
counts into each other. The module-level :data:`STATS` name is kept for
existing callers: it is a transparent alias that reads and writes the
*current* Stats — the one activated by the Runtime operation in progress,
falling back to the stats of the most recently created Runtime (so test
code that runs a module and then inspects ``STATS`` keeps seeing that
run's counters).

Thread-safety contract (audited for the concurrency layer, ISSUE 9):

- **Inside a Runtime operation** the alias resolves through a
  ``contextvars.ContextVar`` set by :func:`use_stats`. Context variables
  are per-thread (and per-task), so N threads driving N Runtimes each
  charge their own counters — this is the path every pipeline call site
  (expander, cache, backends) uses, and it is race-free by construction.
- **The ambient fallback is last-writer-wins** across threads: both
  Runtime construction and :func:`use_stats` overwrite the one-element
  ``_AMBIENT`` cell. It exists only so *sequential* scripts can read
  ``STATS`` after an operation returns; concurrent code must read
  ``rt.stats`` (each Runtime's own instance) instead. The cell is a
  single-slot list, so the overwrite itself is atomic under the GIL —
  torn reads are impossible, you just may see a sibling thread's Runtime.
- Individual counter bumps (``stats.cache_hits += 1``) are not atomic in
  general, but every mutation happens on the *operation's own* Stats
  object resolved via the contextvar, so two threads never increment the
  same instance unless the caller deliberately shares one Runtime across
  threads — which the Runtime API does not support (see DESIGN §11).
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from dataclasses import dataclass, field, fields
from typing import Iterator, Optional, Union


@dataclass
class Stats:
    generic_dispatches: int = 0
    tag_checks: int = 0
    unsafe_ops: int = 0
    contract_checks: int = 0
    expansion_steps: int = 0
    #: evaluation steps (closure applications) charged by a governed run —
    #: the run-time mirror of ``expansion_steps`` (see repro.guard); stays 0
    #: for ungoverned Runtimes, which skip step accounting entirely
    eval_steps: int = 0
    #: constructor allocations charged by a governed run with an
    #: allocation budget
    eval_allocations: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    cache_invalidations: int = 0
    #: pyc-backend code generations (core AST -> CPython code object); a
    #: warm-cache run that loads a marshalled unit performs zero of these
    pyc_codegens: int = 0
    #: pyc-backend unit links (cells/prims resolved, code exec'd)
    pyc_links: int = 0
    #: expansion_steps attributed per macro name
    expansion_by_macro: dict[str, int] = field(default_factory=dict)

    def reset(self) -> None:
        for f in fields(Stats):
            if f.name == "expansion_by_macro":
                self.expansion_by_macro.clear()
            else:
                setattr(self, f.name, 0)

    def snapshot(self) -> dict[str, Union[int, dict[str, int]]]:
        snap: dict[str, Union[int, dict[str, int]]] = {
            f.name: getattr(self, f.name)
            for f in fields(Stats)
            if f.name != "expansion_by_macro"
        }
        snap["expansion_by_macro"] = dict(self.expansion_by_macro)
        return snap

    def count_expansion_step(self, macro_name: str) -> None:
        self.expansion_steps += 1
        by_macro = self.expansion_by_macro
        by_macro[macro_name] = by_macro.get(macro_name, 0) + 1

    def top_macros(self, n: int = 10) -> list[tuple[str, int]]:
        """The ``n`` macros with the most expansion steps, descending."""
        ranked = sorted(
            self.expansion_by_macro.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return ranked[:n]


#: the process-default instance, active when no Runtime has ever been built
_DEFAULT = Stats()

#: stats activated for the duration of a Runtime operation (context-scoped,
#: so threads/tasks running different Runtimes stay isolated)
_ACTIVE: contextvars.ContextVar[Optional[Stats]] = contextvars.ContextVar(
    "repro_active_stats", default=None
)

#: fallback read by the STATS alias outside any operation: the stats of the
#: most recently created (or activated) Runtime — a one-element cell so the
#: alias keeps pointing at "the run you just did" for sequential callers
_AMBIENT: list[Stats] = [_DEFAULT]


def current_stats() -> Stats:
    """The Stats instance the STATS alias currently resolves to."""
    active = _ACTIVE.get()
    return active if active is not None else _AMBIENT[0]


def set_ambient_stats(stats: Stats) -> None:
    """Make ``stats`` the fallback target of the STATS alias (called when a
    Runtime is created, so module-level reads track the newest Runtime)."""
    _AMBIENT[0] = stats


@contextmanager
def use_stats(stats: Stats) -> Iterator[Stats]:
    """Activate ``stats`` for the dynamic extent of a Runtime operation."""
    _AMBIENT[0] = stats
    token = _ACTIVE.set(stats)
    try:
        yield stats
    finally:
        _ACTIVE.reset(token)


class _StatsAlias:
    """Backwards-compatible module-level facade over the current Stats.

    Supports exactly the old surface — attribute reads, ``+=`` updates,
    ``reset()`` and ``snapshot()`` — but delegates to :func:`current_stats`
    so every Runtime keeps its own counters.
    """

    __slots__ = ()

    def reset(self) -> None:
        current_stats().reset()

    def snapshot(self) -> dict[str, Union[int, dict[str, int]]]:
        return current_stats().snapshot()

    def count_expansion_step(self, macro_name: str) -> None:
        current_stats().count_expansion_step(macro_name)

    def top_macros(self, n: int = 10) -> list[tuple[str, int]]:
        return current_stats().top_macros(n)

    def __repr__(self) -> str:
        return f"#<stats-alias {current_stats()!r}>"


def _delegate(name: str) -> property:
    def _get(self: _StatsAlias) -> int:
        return getattr(current_stats(), name)

    def _set(self: _StatsAlias, value: int) -> None:
        setattr(current_stats(), name, value)

    return property(_get, _set)


for _f in fields(Stats):
    setattr(_StatsAlias, _f.name, _delegate(_f.name))
del _f


#: Module-level alias shared by the whole runtime; delegates per-Runtime.
STATS = _StatsAlias()
