"""Promises (delayed computations) — kernel support for the lazy language."""

from __future__ import annotations

from typing import Any


class Promise:
    """A memoized delayed computation."""

    __slots__ = ("thunk", "value", "forced")

    def __init__(self, thunk: Any) -> None:
        self.thunk = thunk
        self.value = None
        self.forced = False

    def __repr__(self) -> str:
        return f"#<promise{'!' if self.forced else ''}>"


def force(value: Any) -> Any:
    from repro.core.interp import apply_procedure

    while isinstance(value, Promise):
        if not value.forced:
            value.value = force(apply_procedure(value.thunk, []))
            value.forced = True
            value.thunk = None
        value = value.value
    return value


def _register() -> None:
    from repro.core.interp import apply_procedure
    from repro.runtime.primitives import add_prim
    from repro.runtime.values import Primitive

    # constructors stay lazy (so infinite structures work, as in Lazy Racket)
    _LAZY_CONSTRUCTORS = frozenset({"cons", "list", "vector", "box"})

    def prim_lazy_apply(fn: Any, *args: Any) -> Any:
        fn = force(fn)
        if isinstance(fn, Primitive) and fn.name not in _LAZY_CONSTRUCTORS:
            # other primitives are strict (as in Barzilay & Clements's
            # Lazy Racket)
            return apply_procedure(fn, [force(a) for a in args])
        return apply_procedure(fn, list(args))

    add_prim("make-promise", Promise, 1, 1)
    add_prim("force", force, 1, 1)
    add_prim("lazy-apply", prim_lazy_apply, 1)
    add_prim("promise?", lambda x: isinstance(x, Promise), 1, 1)


_register()
