"""Runtime value representations for the object language.

The object language is a Scheme-family language, so the value universe is:
pairs and the empty list, symbols, keywords, booleans, the full numeric tower
(exact integers and rationals, flonums, float-complexes), characters, strings,
vectors, boxes, hash tables, procedures, multiple values, void, and ports.

Python values are reused where safe (``int``, ``float``, ``complex``, ``str``,
``bool``, ``fractions.Fraction``); everything else gets a small dedicated
class. ``bool`` must always be tested *before* ``int`` because it subclasses
``int`` in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Iterable, Iterator, Optional


class Symbol:
    """An interned symbol. Two symbols with the same name are identical."""

    __slots__ = ("name",)
    _table: dict[str, "Symbol"] = {}

    def __new__(cls, name: str) -> "Symbol":
        sym = cls._table.get(name)
        if sym is None:
            sym = object.__new__(cls)
            sym.name = name
            cls._table[name] = sym
        return sym

    def __repr__(self) -> str:
        return self.name

    def __hash__(self) -> int:
        return hash(self.name)

    def __reduce__(self):
        # unpickle through __new__ so deserialized symbols re-intern —
        # pattern matching and `free-identifier=?` compare symbols by identity
        return (Symbol, (self.name,))

    # identity equality is inherited and correct because of interning


_GENSYM_COUNTER = [0]


def gensym(base: str = "g") -> Symbol:
    """Return a symbol guaranteed distinct from all interned symbols so far."""
    _GENSYM_COUNTER[0] += 1
    return Symbol(f"{base}~{_GENSYM_COUNTER[0]}")


class Keyword:
    """A ``#:name`` keyword. Interned like symbols."""

    __slots__ = ("name",)
    _table: dict[str, "Keyword"] = {}

    def __new__(cls, name: str) -> "Keyword":
        kw = cls._table.get(name)
        if kw is None:
            kw = object.__new__(cls)
            kw.name = name
            cls._table[name] = kw
        return kw

    def __repr__(self) -> str:
        return f"#:{self.name}"

    def __hash__(self) -> int:
        return hash(("kw", self.name))

    def __reduce__(self):
        return (Keyword, (self.name,))


@dataclass(frozen=True, slots=True)
class Char:
    """A character value, e.g. ``#\\a``."""

    value: str

    def __post_init__(self) -> None:
        if len(self.value) != 1:
            raise ValueError(f"Char must hold one character, got {self.value!r}")


class _Null:
    """The empty list. A singleton."""

    __slots__ = ()
    _instance: Optional["_Null"] = None

    def __new__(cls) -> "_Null":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"

    def __iter__(self) -> Iterator[Any]:
        return iter(())

    def __len__(self) -> int:
        return 0


NULL = _Null()


class Pair:
    """A mutable cons cell."""

    __slots__ = ("car", "cdr")

    def __init__(self, car: Any, cdr: Any) -> None:
        self.car = car
        self.cdr = cdr

    def __iter__(self) -> Iterator[Any]:
        """Iterate the elements of a proper list; raises on improper tails."""
        node: Any = self
        while isinstance(node, Pair):
            yield node.car
            node = node.cdr
        if node is not NULL:
            raise ValueError("improper list")

    def __repr__(self) -> str:
        from repro.runtime.printing import write_value

        return write_value(self)


class _Void:
    """The result of side-effecting operations. A singleton."""

    __slots__ = ()
    _instance: Optional["_Void"] = None

    def __new__(cls) -> "_Void":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<void>"


VOID = _Void()


class _Eof:
    """The end-of-file object."""

    __slots__ = ()
    _instance: Optional["_Eof"] = None

    def __new__(cls) -> "_Eof":
        if cls._instance is None:
            cls._instance = object.__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<eof>"


EOF = _Eof()


class MVector:
    """A mutable vector."""

    __slots__ = ("items",)

    def __init__(self, items: Iterable[Any]) -> None:
        self.items = list(items)

    def __len__(self) -> int:
        return len(self.items)

    def __repr__(self) -> str:
        from repro.runtime.printing import write_value

        return write_value(self)


class Box:
    """A single mutable cell (``box``/``unbox``/``set-box!``)."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return f"#&{self.value!r}"


class HashTable:
    """A mutable hash table keyed by ``equal?``-style hashing.

    Keys are normalized through :func:`hash_key` so that structurally equal
    object-language values collide, matching Racket's ``equal?``-based hashes.
    """

    __slots__ = ("data",)

    def __init__(self) -> None:
        self.data: dict[Any, tuple[Any, Any]] = {}

    def set(self, key: Any, value: Any) -> None:
        self.data[hash_key(key)] = (key, value)

    def get(self, key: Any, default: Any = None) -> Any:
        entry = self.data.get(hash_key(key))
        if entry is None:
            return default
        return entry[1]

    def has(self, key: Any) -> bool:
        return hash_key(key) in self.data

    def remove(self, key: Any) -> None:
        self.data.pop(hash_key(key), None)

    def count(self) -> int:
        return len(self.data)

    def keys(self) -> list[Any]:
        return [orig for (orig, _val) in self.data.values()]

    def __repr__(self) -> str:
        return f"#<hash:{len(self.data)}>"


def hash_key(value: Any) -> Any:
    """Convert a value to a hashable key respecting ``equal?`` semantics."""
    if isinstance(value, Pair):
        node: Any = value
        parts: list[Any] = []
        while isinstance(node, Pair):
            parts.append(hash_key(node.car))
            node = node.cdr
        return ("pair", tuple(parts), hash_key(node))
    if isinstance(value, MVector):
        return ("vector", tuple(hash_key(x) for x in value.items))
    if value is NULL:
        return ("null",)
    if isinstance(value, Box):
        return ("box", hash_key(value.value))
    return value


class Values:
    """Multiple return values, produced by ``(values a b ...)``."""

    __slots__ = ("items",)

    def __init__(self, items: tuple[Any, ...]) -> None:
        self.items = items

    def __repr__(self) -> str:
        return f"#<values:{len(self.items)}>"


class Procedure:
    """Base class for applicable values."""

    __slots__ = ()
    name: str = "procedure"


class Primitive(Procedure):
    """A procedure implemented in Python.

    ``allocates`` marks constructors (pairs, vectors, strings, boxes,
    hashes, struct instances) so the resource governor (:mod:`repro.guard`)
    can charge an allocation budget at their call sites.
    """

    __slots__ = ("name", "fn", "arity_min", "arity_max", "allocates")

    def __init__(
        self,
        name: str,
        fn: Callable[..., Any],
        arity_min: int = 0,
        arity_max: Optional[int] = None,
        *,
        allocates: bool = False,
    ) -> None:
        self.name = name
        self.fn = fn
        self.arity_min = arity_min
        self.arity_max = arity_max
        self.allocates = allocates

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


class Closure(Procedure):
    """A procedure created by ``#%plain-lambda``.

    ``body`` is a compiled code thunk; ``frame_size``/``rest`` describe the
    argument frame layout (see :mod:`repro.core.compile`).
    """

    __slots__ = ("name", "params", "rest", "body", "env")

    def __init__(
        self,
        name: str,
        params: int,
        rest: bool,
        body: Callable[[list[Any]], Any],
        env: Any,
    ) -> None:
        self.name = name
        self.params = params
        self.rest = rest
        self.body = body
        self.env = env

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


class PyClosure(Procedure):
    """A procedure compiled to a real Python function by the ``pyc`` backend.

    ``fn`` takes exactly ``params`` positional arguments (plus, when
    ``rest`` is true, one final argument holding the already-packed rest
    list); the trampoline in :mod:`repro.core.interp` checks arity and
    packs rest arguments, exactly as it does for interp :class:`Closure`
    frames, so the two procedure kinds interoperate freely (either may
    tail-call or pass the other around).
    """

    __slots__ = ("name", "params", "rest", "fn")

    def __init__(
        self, name: str, params: int, rest: bool, fn: Callable[..., Any]
    ) -> None:
        self.name = name
        self.params = params
        self.rest = rest
        self.fn = fn

    def __repr__(self) -> str:
        return f"#<procedure:{self.name}>"


class ContractedProcedure(Procedure):
    """A procedure wrapped in a higher-order contract (see repro.contracts)."""

    __slots__ = ("name", "inner", "contract", "positive", "negative")

    def __init__(self, inner: Procedure, contract: Any, positive: str, negative: str) -> None:
        self.name = getattr(inner, "name", "contracted")
        self.inner = inner
        self.contract = contract
        self.positive = positive
        self.negative = negative

    def __repr__(self) -> str:
        return f"#<procedure:{self.name} (contracted)>"


# --- list helpers -----------------------------------------------------------


def from_list(items: Iterable[Any], tail: Any = NULL) -> Any:
    """Build an object-language list from a Python iterable."""
    result = tail
    for item in reversed(list(items)):
        result = Pair(item, result)
    return result


def to_list(value: Any) -> list[Any]:
    """Convert a proper object-language list to a Python list."""
    out: list[Any] = []
    node = value
    while isinstance(node, Pair):
        out.append(node.car)
        node = node.cdr
    if node is not NULL:
        raise ValueError("to_list: improper list")
    return out


def is_list(value: Any) -> bool:
    """Is ``value`` a proper list?"""
    node = value
    while isinstance(node, Pair):
        node = node.cdr
    return node is NULL


def list_length(value: Any) -> int:
    n = 0
    node = value
    while isinstance(node, Pair):
        n += 1
        node = node.cdr
    if node is not NULL:
        raise ValueError("length: improper list")
    return n
