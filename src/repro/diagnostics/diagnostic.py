"""The Diagnostic value: one structured report of one problem."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.diagnostics.source import SOURCES

if TYPE_CHECKING:
    from repro.syn.srcloc import SrcLoc


@dataclass(frozen=True, slots=True)
class ExpansionFrame:
    """One macro invocation in a macro-expansion backtrace."""

    macro: str
    srcloc: Optional["SrcLoc"] = None

    def __str__(self) -> str:
        if self.srcloc is not None:
            return f"in macro `{self.macro}` at {self.srcloc}"
        return f"in macro `{self.macro}`"


@dataclass(slots=True)
class Diagnostic:
    """Severity, stable code, message, location, excerpt, notes, backtrace."""

    severity: str  # "error" | "warning" | "note"
    code: str
    message: str
    srcloc: Optional["SrcLoc"] = None
    notes: tuple[str, ...] = ()
    backtrace: tuple[ExpansionFrame, ...] = ()
    #: the exception this diagnostic was recovered from, when any; kept so a
    #: single-error compilation can re-raise the original (backwards
    #: compatible) exception instead of an aggregate.
    exception: Optional[BaseException] = field(default=None, repr=False)

    @classmethod
    def from_error(cls, err: BaseException) -> "Diagnostic":
        """Build a Diagnostic from any platform exception."""
        code = getattr(err, "code", None) or "X001"
        message = getattr(err, "message", None) or str(err)
        srcloc = getattr(err, "srcloc", None)
        backtrace = tuple(getattr(err, "expansion_backtrace", ()) or ())
        return cls(
            severity="error",
            code=code,
            message=message,
            srcloc=srcloc,
            backtrace=backtrace,
            exception=err,
        )

    # -- rendering ---------------------------------------------------------

    def excerpt(self) -> Optional[str]:
        """The offending source line with a caret underneath, or None."""
        loc = self.srcloc
        if loc is None:
            return None
        line = SOURCES.line(loc.source, loc.line)
        if line is None:
            return None
        col = min(max(loc.column, 0), len(line))
        width = max(1, min(loc.span or 1, len(line) - col)) if len(line) > col else 1
        caret = " " * col + "^" + "~" * (width - 1)
        return f"  | {line}\n  | {caret}"

    def render(self) -> str:
        """The full human-readable report for this diagnostic."""
        where = f"{self.srcloc}: " if self.srcloc is not None else ""
        out = [f"{where}{self.severity}[{self.code}]: {self.message}"]
        shown = self.excerpt()
        if shown is not None:
            out.append(shown)
        for note in self.notes:
            out.append(f"  note: {note}")
        if self.backtrace:
            out.append("  macro expansion backtrace:")
            for frame in self.backtrace:
                out.append(f"    {frame}")
        return "\n".join(out)

    def __str__(self) -> str:
        return self.render()
