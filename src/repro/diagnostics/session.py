"""The per-compilation diagnostic collector.

One :class:`DiagnosticSession` lives on each :class:`ExpandContext`. Layers
of the pipeline (reader, expander, typecheckers) wrap per-form work in
:meth:`DiagnosticSession.recover`, which records a :class:`Diagnostic` for
any *recoverable* platform error and suppresses it so the layer can continue
with the next form. At the end of compilation :meth:`raise_if_errors`
raises — the original exception when exactly one problem was found (keeping
single-error behavior, and exception types, unchanged), or one aggregate
:class:`repro.errors.CompilationFailed` carrying every diagnostic.

Errors that poison everything downstream are *fatal* and never recovered:
a missing or cyclic dependency (:class:`ModuleError`) and an exhausted
expansion budget (:class:`ExpansionLimitError`) — recovering those would
bury one real problem under a pile of cascading ones.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.diagnostics.diagnostic import Diagnostic
from repro.errors import (
    CompilationFailed,
    ExpansionLimitError,
    ModuleError,
    ReproError,
)

#: Error classes never swallowed by recovery.
FATAL_ERRORS = (CompilationFailed, ExpansionLimitError, ModuleError)


class DiagnosticSession:
    """Collects diagnostics for one module compilation."""

    def __init__(self, module_path: str) -> None:
        self.module_path = module_path
        self.diagnostics: list[Diagnostic] = []

    # -- recording ---------------------------------------------------------

    def emit(self, diagnostic: Diagnostic) -> None:
        self.diagnostics.append(diagnostic)

    def add_exception(self, err: BaseException) -> Diagnostic:
        """Record an exception as a diagnostic.

        Idempotent per exception object, and per (code, message, location):
        a multi-pass pipeline may trip over the same defect once per pass
        (e.g. a bad type annotation read in both typechecker passes), which
        is one problem, not two.
        """
        diagnostic = Diagnostic.from_error(err)
        for existing in self.diagnostics:
            if existing.exception is err:
                return existing
            if (
                existing.code == diagnostic.code
                and existing.message == diagnostic.message
                and str(existing.srcloc) == str(diagnostic.srcloc)
            ):
                return existing
        self.diagnostics.append(diagnostic)
        return diagnostic

    # -- queries -----------------------------------------------------------

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity == "error"]

    @property
    def has_errors(self) -> bool:
        return any(d.severity == "error" for d in self.diagnostics)

    # -- recovery ----------------------------------------------------------

    @contextmanager
    def recover(self) -> Iterator["DiagnosticSession"]:
        """Record and suppress a recoverable platform error.

        Fatal errors (see :data:`FATAL_ERRORS`) pass through untouched, as
        does anything that is not a :class:`ReproError` (an internal bug
        should crash loudly, not be reported as a user error).
        """
        try:
            yield self
        except FATAL_ERRORS:
            raise
        except ReproError as err:
            self.add_exception(err)

    def raise_if_errors(self) -> None:
        """Raise at a compilation barrier if any errors were collected.

        One error re-raises the original exception; several raise a single
        :class:`CompilationFailed` aggregating all of them.
        """
        errors = self.errors
        if not errors:
            return
        if len(errors) == 1 and errors[0].exception is not None:
            raise errors[0].exception
        raise CompilationFailed(list(self.diagnostics), self.module_path)


@dataclass(slots=True)
class CompileResult:
    """What ``Runtime.compile(path, diagnostics=True)`` returns."""

    module: Optional[Any]
    diagnostics: list[Diagnostic]

    @property
    def ok(self) -> bool:
        return self.module is not None

    def render(self) -> str:
        return "\n".join(d.render() for d in self.diagnostics)
