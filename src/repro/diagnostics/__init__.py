"""Structured diagnostics for the compilation pipeline.

The toolchain reports errors the way the paper demands production language
implementations do (§4): "in terms of the programmer's notation", with the
offending source text. This package supplies the machinery:

- :class:`Diagnostic` — one reported problem: severity, a stable error code
  (see :mod:`repro.diagnostics.codes`), message, source location, a rendered
  source excerpt with a caret, optional notes, and the macro-expansion
  backtrace that produced the offending form;
- :class:`DiagnosticSession` — the per-compilation collector that lets the
  reader, expander, and typecheckers *recover* after an error and keep
  looking for more, so one compile reports every problem it can find;
- :class:`SourceMap` — a bounded registry of source text used to render
  excerpts;
- :class:`CompileResult` — the value of ``Runtime.compile(path,
  diagnostics=True)``: the compiled module (or None) plus all diagnostics.
"""

from repro.diagnostics.codes import CODES, describe_code
from repro.diagnostics.diagnostic import Diagnostic, ExpansionFrame
from repro.diagnostics.session import CompileResult, DiagnosticSession
from repro.diagnostics.source import SOURCES, SourceMap

__all__ = [
    "CODES",
    "CompileResult",
    "Diagnostic",
    "DiagnosticSession",
    "ExpansionFrame",
    "SOURCES",
    "SourceMap",
    "describe_code",
]
