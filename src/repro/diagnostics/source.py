"""A bounded registry of source text, used to render excerpts.

The reader registers every text it reads, keyed by source name; diagnostic
rendering looks lines up here. The registry is bounded (oldest entries are
evicted) because long-lived processes — the REPL registers a fresh
``<repl-N>`` pseudo-file per input — must not grow without limit.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class SourceMap:
    """source name -> full text, with LRU-style bounded retention."""

    def __init__(self, capacity: int = 512) -> None:
        self.capacity = capacity
        self._texts: OrderedDict[str, str] = OrderedDict()

    def register(self, source: str, text: str) -> None:
        if source in self._texts:
            self._texts.move_to_end(source)
        self._texts[source] = text
        while len(self._texts) > self.capacity:
            self._texts.popitem(last=False)

    def get(self, source: str) -> Optional[str]:
        return self._texts.get(source)

    def line(self, source: str, lineno: int) -> Optional[str]:
        """The 1-based ``lineno``-th line of ``source``, or None."""
        text = self._texts.get(source)
        if text is None or lineno < 1:
            return None
        lines = text.splitlines()
        if lineno > len(lines):
            return None
        return lines[lineno - 1]


#: The global source registry shared by every Reader.
SOURCES = SourceMap()
