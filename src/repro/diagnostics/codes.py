"""The stable error-code namespace.

Codes never change meaning once assigned, so tools (editors, CI annotators,
test suites) can match on them instead of on message text. The namespaces:

- ``R00x`` — reader / lexer errors
- ``E00x`` — expander errors
- ``T00x`` — typechecker errors
- ``M00x`` — module system errors
- ``C00x`` — contract violations
- ``C10x`` — compiled-artifact cache warnings
- ``D00x`` — dialect errors (whole-module rewrites below the macro layer)
- ``G00x`` — resource-governance errors (budgets, cancellation)
- ``X00x`` — runtime errors and aggregates
"""

from __future__ import annotations

CODES: dict[str, str] = {
    # reader
    "R001": "syntax error while reading",
    "R002": "unterminated list or vector",
    "R003": "unterminated string",
    "R004": "unterminated |symbol|",
    "R005": "missing #lang line",
    # expander
    "E001": "bad syntax during expansion",
    "E002": "unbound identifier",
    "E003": "ambiguous binding",
    "E004": "macro expansion budget exhausted",
    "E005": "fully-expanded term does not match the core grammar",
    # typechecker
    "T001": "type error",
    # module system
    "M001": "module error",
    "M002": "module not found",
    "M003": "module dependency cycle",
    # contracts
    "C001": "contract violation",
    # compiled-artifact cache (warnings: the pipeline degrades to recompile)
    "C101": "corrupt compiled artifact (recompiled from source)",
    "C102": "stale compiled artifact (recompiled from source)",
    "C103": "compiled artifact could not be stored",
    "C104": "corrupt compiled artifact quarantined (recompiled from source)",
    "C105": "cache directory unavailable (caching disabled)",
    "C106": "timed out waiting for a concurrent artifact writer (compiled locally)",
    # dialects (whole-module rewrites applied before #%module-begin)
    "D001": "unknown dialect",
    "D002": "dialect rewrite failed",
    "D003": "malformed operator declaration",
    "D004": "malformed infix expression",
    # resource governance (repro.guard)
    "G001": "evaluation step budget exhausted",
    "G002": "evaluation wall-clock deadline exceeded",
    "G003": "evaluation recursion-depth budget exhausted",
    "G004": "evaluation allocation budget exhausted",
    "G005": "evaluation cancelled by the host",
    # runtime / aggregate
    "X001": "runtime error",
    "X002": "wrong runtime type",
    "X003": "arity error",
    "X100": "compilation failed (aggregate)",
}


def describe_code(code: str) -> str:
    """A one-line description of a stable error code."""
    return CODES.get(code, "unknown error code")
