"""First-class ``import`` of ``#lang`` modules: the ``sys.meta_path`` hook.

The paper's thesis is that languages are libraries of the host; this module
makes the host's own module system agree. After :func:`install` (or
``import repro.activate``), ``import myapp.rules`` resolves
``myapp/rules.rkt`` — any file whose suffix is registered with the hook —
through the ordinary pipeline: the registry canonicalizes the path, the
compiled-artifact cache supplies a ``.zo`` on warm starts (zero macro
expansions, zero codegen), and the selected backend instantiates the module
body into a namespace shared by every imported ``#lang`` module, so a
``require`` between two ``.rkt`` files and a Python ``import`` of both see
one module instance.

Design points:

- **The hook never shadows Python.** The finder is *appended* to
  ``sys.meta_path``, after the interpreter's own ``PathFinder``; a ``.py``
  module with the same name always wins.
- **Provides become module attributes.** Exported values land in the
  Python module's namespace verbatim (Scheme names like ``make-adder``
  are reachable via ``getattr``) plus an underscore alias
  (``mod.make_adder``); a PEP 562 ``__getattr__`` resolves late or
  renamed exports and explains macro-only exports.
- **Procedures are Python callables.** Exported procedures are wrapped in
  :class:`ImportedProcedure`: calling one routes through the platform's
  trampoline under the owning Runtime's stats, tracer, and budget.
- **Failures are ImportErrors.** ``Diagnostic``-carrying platform errors
  chain into :class:`ReproImportError` (an ``ImportError`` subclass) with
  the stable R/E/T/M/C/G code, srcloc, and diagnostics preserved — both
  on the exception object and via ``__cause__``.
- **Budgets bound hostile modules.** ``install(budget=...)`` resolves a
  *fresh* :class:`~repro.guard.Budget` per import, so a config module with
  an infinite top-level loop dies with a ``G``-coded ImportError instead
  of hanging the importing service.
- **Concurrency is safe.** Python's import machinery serializes per
  module; the context additionally holds one runtime lock around
  registry/namespace mutation (two *different* modules importing on two
  threads share one Runtime), and cross-process cache writes serialize on
  the cache's per-artifact fcntl locks.
"""

from __future__ import annotations

import importlib.abc
import importlib.machinery
import importlib.util
import os
import sys
import threading
from typing import Any, Iterable, Optional

from repro.errors import CompilationFailed, ReproError
from repro.guard.budget import resolve_budget, use_guard
from repro.modules.registry import canonical_path

#: file suffixes the finder recognizes as ``#lang`` modules, by default
DEFAULT_SUFFIXES = (".rkt",)

_DASH_TRANS = str.maketrans({"-": "_", "?": "_p", "!": "_bang", "*": "_star",
                             ">": "_gt", "<": "_lt", "=": "_eq", "/": "_", "%": "_"})


def python_name(name: str) -> str:
    """A Python-identifier-friendly alias for a Scheme export name."""
    return name.translate(_DASH_TRANS)


class ReproImportError(ImportError):
    """An ImportError carrying the platform diagnostic that caused it.

    ``code`` is the stable diagnostic code (``R004``, ``E002``, ``T001``,
    ``M002``, ``G001``, ...; ``X100`` for a multi-error compilation),
    ``srcloc`` the offending source location when one is known, and
    ``diagnostics`` every :class:`~repro.diagnostics.Diagnostic` the
    pipeline collected. The original exception is ``__cause__``.
    """

    def __init__(
        self,
        message: str,
        *,
        name: Optional[str] = None,
        path: Optional[str] = None,
        code: Optional[str] = None,
        srcloc: Any = None,
        diagnostics: Optional[list] = None,
    ) -> None:
        super().__init__(message, name=name, path=path)
        self.code = code
        self.srcloc = srcloc
        self.diagnostics = diagnostics if diagnostics is not None else []


class ImportedProcedure:
    """A Python-callable adapter around an exported object-language procedure.

    Calls run through the platform trampoline under the importing
    Runtime's stats/tracer/budget, so embedded calls stay governed and
    observable. Python ``list``/``tuple`` arguments convert to object
    lists; everything else passes through (ints, floats, strings, and
    booleans are shared representations).
    """

    __slots__ = ("proc", "_context", "__name__")

    def __init__(self, proc: Any, context: "ImportContext") -> None:
        self.proc = proc
        self._context = context
        self.__name__ = python_name(getattr(proc, "name", "procedure"))

    def __call__(self, *args: Any) -> Any:
        return self._context.call(self.proc, args)

    def __repr__(self) -> str:
        return f"#<imported-procedure {getattr(self.proc, 'name', '?')}>"


def _to_repro(value: Any) -> Any:
    from repro.runtime.values import from_list

    if isinstance(value, (list, tuple)):
        return from_list([_to_repro(item) for item in value])
    return value


class ImportContext:
    """The shared state behind one installed hook: a Runtime, a namespace,
    the suffix list, and the per-import budget specification."""

    def __init__(
        self,
        runtime: Any = None,
        *,
        suffixes: Iterable[str] = DEFAULT_SUFFIXES,
        budget: Any = None,
        cache: Any = None,
        cache_dir: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.suffixes = tuple(suffixes)
        #: budget *specification* (anything ``resolve_budget`` accepts);
        #: resolved to a fresh Budget per import so one import's
        #: consumption never starves the next
        self.budget = budget
        self._runtime = runtime
        self._runtime_opts = {
            "cache": True if cache is None else cache,
            "cache_dir": cache_dir,
            "backend": backend,
        }
        self._ns: Any = None
        #: serializes registry + namespace mutation across importing
        #: threads (Python's import system already locks per module name;
        #: this covers two *different* modules importing concurrently)
        self._lock = threading.RLock()

    @property
    def runtime(self) -> Any:
        """The Runtime imports compile and run under (created lazily).

        The default enables the artifact cache — imports are the
        production-deployment path, and warm imports must load marshalled
        ``.zo`` code instead of re-expanding.
        """
        with self._lock:
            if self._runtime is None:
                from repro.tools.runner import Runtime

                self._runtime = Runtime(**self._runtime_opts)
            return self._runtime

    @property
    def namespace(self) -> Any:
        """One namespace shared by every imported module, so ``require``
        graphs and Python imports agree on module instances."""
        with self._lock:
            if self._ns is None:
                self._ns = self.runtime.make_namespace()
            return self._ns

    # -- execution ----------------------------------------------------------

    def call(self, proc: Any, args: Iterable[Any]) -> Any:
        """Apply an exported procedure under the Runtime's observation.

        A procedure *result* (a curried/constructor return) is wrapped
        again, so higher-order exports stay callable from Python.
        """
        from repro.core.interp import apply_procedure

        rt = self.runtime
        with rt._observed():
            result = apply_procedure(proc, [_to_repro(a) for a in args])
        return self._wrap(result)

    def exec_module(self, module: Any, filename: str) -> None:
        """Compile, instantiate, and bind ``filename`` into ``module``."""
        fullname = module.__name__
        rt = self.runtime
        budget = resolve_budget(self.budget)
        rec = rt.tracer
        if rec is None:
            from repro.observe.recorder import current_recorder

            rec = current_recorder()
        with self._lock:
            before = rt.stats.cache_hits
            try:
                with rec.span(
                    "import", fullname, attrs={"file": filename}
                ), use_guard(budget):
                    path = rt.register_file(filename)
                    compiled = rt.registry.get_compiled(path)
                    rt.instantiate(path, self.namespace)
            except FileNotFoundError as err:
                raise ModuleNotFoundError(
                    f"import {fullname}: {filename} disappeared during import",
                    name=fullname,
                ) from err
            except (CompilationFailed, ReproError) as err:
                if rec.enabled:
                    rec.instant(
                        "import", "error",
                        attrs={"module": fullname,
                               "code": getattr(err, "code", None)},
                    )
                raise _as_import_error(fullname, filename, err) from err
            if rec.enabled:
                rec.instant(
                    "import",
                    "warm" if rt.stats.cache_hits > before else "cold",
                    attrs={"module": fullname, "language": compiled.language},
                )
        self._bind(module, compiled, path, filename)

    # -- binding provides ---------------------------------------------------

    def _bind(self, module: Any, compiled: Any, path: str, filename: str) -> None:
        ns = self.namespace
        bound: dict[str, Any] = {}
        for name, export in compiled.exports.items():
            if export.transformer is not None:
                continue  # a Python-implemented macro: compile-time only
            if not ns.has(export.binding):
                continue  # macro or late export: resolved by __getattr__
            value = ns.lookup(export.binding)
            bound[name] = self._wrap(value)
        module.__dict__.update(bound)
        for name, value in bound.items():
            alias = python_name(name)
            if alias != name and alias not in compiled.exports:
                module.__dict__.setdefault(alias, value)
        module.__dict__["__language__"] = compiled.language
        module.__dict__["__provides__"] = sorted(compiled.exports)
        module.__dict__["__repro__"] = self
        module.__dict__["__getattr__"] = self._late_getattr(
            module, compiled, path
        )

    def _wrap(self, value: Any) -> Any:
        from repro.runtime.values import Procedure

        if isinstance(value, Procedure):
            return ImportedProcedure(value, self)
        return value

    def _late_getattr(self, module: Any, compiled: Any, path: str) -> Any:
        """A PEP 562 module ``__getattr__``: late and renamed exports."""

        def __getattr__(name: str) -> Any:
            export = compiled.exports.get(name)
            if export is None:
                # mod.make_adder for a provide named make-adder
                for provided, candidate in compiled.exports.items():
                    if python_name(provided) == name:
                        export = candidate
                        break
            if export is not None and export.transformer is None:
                ns = self.namespace
                if ns.has(export.binding):
                    value = self._wrap(ns.lookup(export.binding))
                    module.__dict__[name] = value
                    return value
                raise AttributeError(
                    f"module {module.__name__!r} provides "
                    f"{export.name!r} as a macro (or a not-yet-defined "
                    f"value); it has no run-time value to import"
                )
            raise AttributeError(
                f"module {module.__name__!r} ({path}) has no attribute "
                f"{name!r}; provides: {', '.join(sorted(compiled.exports))}"
            )

        return __getattr__


def _as_import_error(
    fullname: str, filename: str, err: BaseException
) -> ReproImportError:
    """Translate a platform error into an ImportError preserving the
    stable diagnostic code(s) and source location."""
    if isinstance(err, CompilationFailed):
        diagnostics = list(err.diagnostics)
        codes = sorted(
            {d.code for d in diagnostics if d.severity == "error"}
        ) or [err.code]
        srcloc = next(
            (d.srcloc for d in diagnostics if d.srcloc is not None), None
        )
        n = sum(1 for d in diagnostics if d.severity == "error")
        message = (
            f"cannot import {fullname} ({filename}): compilation failed "
            f"with {n} error(s) [{', '.join(codes)}]\n{err}"
        )
        code = codes[0]
    else:
        from repro.diagnostics.diagnostic import Diagnostic

        diagnostics = [Diagnostic.from_error(err)]
        code = getattr(err, "code", None) or "X001"
        srcloc = getattr(err, "srcloc", None)
        message = f"cannot import {fullname} ({filename}): [{code}] {err}"
    return ReproImportError(
        message,
        name=fullname,
        path=filename,
        code=code,
        srcloc=srcloc,
        diagnostics=diagnostics,
    )


class ReproLoader(importlib.abc.Loader):
    """Loads one ``#lang`` file as a Python module via an ImportContext."""

    def __init__(self, fullname: str, path: str, context: ImportContext) -> None:
        self._fullname = fullname
        self.path = path
        self.context = context

    def create_module(self, spec: Any) -> None:
        return None  # default module creation semantics

    def get_filename(self, fullname: str) -> str:
        return self.path

    def exec_module(self, module: Any) -> None:
        self.context.exec_module(module, self.path)

    def __repr__(self) -> str:
        return f"#<repro-loader {self.path}>"


class ReproFinder(importlib.abc.MetaPathFinder):
    """Resolves dotted module names to ``#lang`` files on the search path.

    Top-level names search ``sys.path``; submodules search their parent
    package's ``__path__`` (the standard protocol), so ``#lang`` files
    inside ordinary Python packages import with no extra configuration.
    """

    def __init__(self, context: ImportContext) -> None:
        self.context = context

    def find_spec(
        self, fullname: str, path: Any = None, target: Any = None
    ) -> Optional[importlib.machinery.ModuleSpec]:
        tail = fullname.rpartition(".")[2]
        entries = sys.path if path is None else path
        for entry in entries:
            if not isinstance(entry, str):
                continue
            base = entry or os.getcwd()
            for suffix in self.context.suffixes:
                candidate = os.path.join(base, tail + suffix)
                if os.path.isfile(candidate):
                    candidate = canonical_path(candidate)
                    loader = ReproLoader(fullname, candidate, self.context)
                    return importlib.util.spec_from_file_location(
                        fullname, candidate, loader=loader
                    )
        return None

    def invalidate_caches(self) -> None:
        pass


#: the currently installed finder (one per process), or None
_INSTALLED: list[Optional[ReproFinder]] = [None]


def install(
    runtime: Any = None,
    *,
    suffixes: Iterable[str] = DEFAULT_SUFFIXES,
    budget: Any = None,
    cache: Any = None,
    cache_dir: Optional[str] = None,
    backend: Optional[str] = None,
) -> ReproFinder:
    """Install the ``#lang`` import hook; returns the finder.

    - ``runtime`` — the :class:`~repro.Runtime` imports run under; by
      default one is created lazily with the artifact cache *enabled*
      (``cache``/``cache_dir``/``backend`` configure it, mirroring the
      Runtime constructor; they are ignored when ``runtime`` is given).
    - ``suffixes`` — file suffixes recognized as ``#lang`` modules.
    - ``budget`` — per-import resource budget specification (anything
      ``Runtime(budget=...)`` accepts); resolved fresh per import.

    Installing again replaces the previous hook (its runtime and namespace
    are discarded). The finder is appended to ``sys.meta_path`` after the
    standard finders, so genuine Python modules always take precedence.
    """
    uninstall()
    context = ImportContext(
        runtime,
        suffixes=suffixes,
        budget=budget,
        cache=cache,
        cache_dir=cache_dir,
        backend=backend,
    )
    finder = ReproFinder(context)
    sys.meta_path.append(finder)
    _INSTALLED[0] = finder
    return finder


def uninstall() -> bool:
    """Remove the installed hook (if any); returns whether one was removed.

    Modules already imported stay in ``sys.modules``; this only stops new
    ``#lang`` files from being found.
    """
    finder = _INSTALLED[0]
    _INSTALLED[0] = None
    if finder is None:
        return False
    from contextlib import suppress

    with suppress(ValueError):
        sys.meta_path.remove(finder)
    return True


def installed() -> Optional[ReproFinder]:
    """The active finder, or None."""
    return _INSTALLED[0]
