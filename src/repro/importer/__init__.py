"""``repro.importer`` — import ``#lang`` modules with Python's ``import``.

Quickstart::

    import repro.activate            # installs the hook with defaults
    import myapp.rules               # resolves myapp/rules.rkt
    myapp.rules.price_of("widget")   # provides are module attributes

or, configured explicitly::

    from repro.importer import install
    install(budget={"steps": 1_000_000}, cache_dir="/var/cache/repro")

See :mod:`repro.importer.hook` for the full design.
"""

from repro.importer.hook import (
    DEFAULT_SUFFIXES,
    ImportContext,
    ImportedProcedure,
    ReproFinder,
    ReproImportError,
    ReproLoader,
    install,
    installed,
    python_name,
    uninstall,
)

__all__ = [
    "DEFAULT_SUFFIXES",
    "ImportContext",
    "ImportedProcedure",
    "ReproFinder",
    "ReproImportError",
    "ReproLoader",
    "install",
    "installed",
    "python_name",
    "uninstall",
]
