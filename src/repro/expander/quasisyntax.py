"""``quasisyntax`` (#`) and ``unsyntax`` (#,) — the paper's syntax-template
notation for procedural macros (used throughout its figures).

``#`(define ann-name #,rhs)`` builds a syntax object from the template,
evaluating ``#,``-escapes at transformer run time and splicing the resulting
syntax in; everything else keeps its lexical context exactly like
``quote-syntax``. Implemented as one kernel macro plus three runtime
primitives — no new core forms.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SyntaxExpansionError, WrongTypeError
from repro.runtime.values import Symbol
from repro.syn.syntax import ImproperList, Syntax, datum_to_syntax


class _Splice:
    """Marker produced by unsyntax-splicing escapes."""

    __slots__ = ("items",)

    def __init__(self, items: list[Syntax]) -> None:
        self.items = items


def _register_prims() -> None:
    from repro.runtime.primitives import add_prim
    from repro.runtime.values import NULL, Pair, to_list

    def qs_coerce(ctx: Any, value: Any) -> Syntax:
        """Coerce an escape's value to syntax, using the template's context."""
        if isinstance(value, Syntax):
            return value
        if isinstance(value, _Splice):  # pragma: no cover - defensive
            raise WrongTypeError("unsyntax", "a single syntax object", value)
        from repro.runtime.primitives import PRIMITIVES

        return PRIMITIVES["datum->syntax"].fn(ctx, value)

    def qs_splice(value: Any) -> _Splice:
        if isinstance(value, Syntax):
            items = value.e
            if not isinstance(items, tuple):
                raise WrongTypeError("unsyntax-splicing", "a syntax list", value)
            return _Splice(list(items))
        if value is NULL or isinstance(value, Pair):
            out = []
            for item in to_list(value):
                if not isinstance(item, Syntax):
                    item = qs_coerce(False, item)
                out.append(item)
            return _Splice(out)
        raise WrongTypeError("unsyntax-splicing", "a list of syntax", value)

    def syntax_rebuild(original: Any, elements: Any, tail: Any = False) -> Syntax:
        """Rebuild a compound syntax node with new children, keeping the
        original's scopes, source location, and properties."""
        if not isinstance(original, Syntax):
            raise WrongTypeError("syntax-rebuild", "syntax?", original)
        out: list[Syntax] = []
        for element in to_list(elements):
            if isinstance(element, _Splice):
                out.extend(element.items)
            elif isinstance(element, Syntax):
                out.append(element)
            else:
                out.append(qs_coerce(original, element))
        if tail is not False and tail is not None:
            tail_stx = tail if isinstance(tail, Syntax) else qs_coerce(original, tail)
            e: Any = ImproperList(tuple(out), tail_stx)
        else:
            e = tuple(out)
        return Syntax(e, original.scopes, original.srcloc, original.props)

    add_prim("qs-coerce", qs_coerce, 2, 2)
    add_prim("qs-splice", qs_splice, 1, 1)
    add_prim("syntax-rebuild", syntax_rebuild, 2, 3)


_register_prims()

_UNSYNTAX = "unsyntax"
_UNSYNTAX_SPLICING = "unsyntax-splicing"
_QUASISYNTAX = "quasisyntax"


def _escape_of(stx: Syntax, name: str) -> Optional[Syntax]:
    if (
        isinstance(stx.e, tuple)
        and len(stx.e) == 2
        and stx.e[0].is_identifier()
        and stx.e[0].e.name == name
    ):
        return stx.e[1]
    return None


def expand_quasisyntax(stx: Syntax) -> Syntax:
    """The transformer for ``(quasisyntax template)``."""
    if not (isinstance(stx.e, tuple) and len(stx.e) == 2):
        raise SyntaxExpansionError("quasisyntax: bad syntax", stx)
    return _build(stx.e[1], 1)


def _core_id(name: str) -> Syntax:
    # deferred import: this module is loaded while the primitive table is
    # still being built, before the kernel scope exists
    from repro.expander.kernel_scope import core_id

    return core_id(name)


def _app(*parts: Syntax) -> Syntax:
    return Syntax((_core_id("#%plain-app"), *parts))


def _quote_syntax(t: Syntax) -> Syntax:
    return Syntax((_core_id("quote-syntax"), t))


def _build(t: Syntax, depth: int) -> Syntax:
    """Code that evaluates (at phase 1) to the template's syntax object."""
    escape = _escape_of(t, _UNSYNTAX)
    if escape is not None:
        if depth == 1:
            return _app(_core_id("qs-coerce"), _quote_syntax(t), escape)
        return _rebuild_node(t, depth - 1)
    if _escape_of(t, _QUASISYNTAX) is not None:
        return _rebuild_node(t, depth + 1)
    if isinstance(t.e, (tuple, ImproperList)):
        return _rebuild_node(t, depth)
    return _quote_syntax(t)


def _rebuild_node(t: Syntax, depth: int) -> Syntax:
    if isinstance(t.e, tuple):
        items, tail = list(t.e), None
    else:
        assert isinstance(t.e, ImproperList)
        items, tail = list(t.e.items), t.e.tail
    element_exprs: list[Syntax] = []
    for item in items:
        splice = _escape_of(item, _UNSYNTAX_SPLICING)
        if splice is not None and depth == 1:
            element_exprs.append(_app(_core_id("qs-splice"), splice))
        else:
            element_exprs.append(_build(item, depth))
    elements_list = _app(_core_id("list"), *element_exprs)
    if tail is not None:
        return _app(
            _core_id("syntax-rebuild"),
            _quote_syntax(t),
            elements_list,
            _build(tail, depth),
        )
    return _app(_core_id("syntax-rebuild"), _quote_syntax(t), elements_list)
