"""``syntax-rules`` transformers for object-language macros.

Patterns and templates are compiled from the syntax objects of the
``syntax-rules`` form itself, so template identifiers keep the scopes of the
defining module — the introduction-scope flip in the expander then provides
hygiene exactly as for procedural macros.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SyntaxExpansionError
from repro.expander import pattern as pat
from repro.runtime.values import Symbol
from repro.syn.syntax import ImproperList, Syntax

_ELLIPSIS = Symbol("...")
_WILDCARD = Symbol("_")


def _parse_pattern_stx(stx: Syntax, literals: frozenset[str]) -> pat.PatternNode:
    e = stx.e
    if isinstance(e, Symbol):
        if e is _WILDCARD:
            return pat.PWild()
        if e.name in literals:
            return pat.PLiteral(e)
        return pat.PVar(e.name, "expr")
    if isinstance(e, tuple):
        return _parse_list(list(e), None, literals)
    if isinstance(e, ImproperList):
        return _parse_list(list(e.items), e.tail, literals)
    return pat.PDatum(e)


def _parse_list(items: list[Syntax], tail, literals: frozenset[str]) -> pat.PList:
    ellipsis_at = [i for i, s in enumerate(items) if s.e is _ELLIPSIS]
    if len(ellipsis_at) > 1:
        raise SyntaxExpansionError("syntax-rules: at most one `...` per level")
    tail_pat = _parse_pattern_stx(tail, literals) if tail is not None else None
    if not ellipsis_at:
        return pat.PList(
            tuple(_parse_pattern_stx(s, literals) for s in items), None, (), tail_pat
        )
    pos = ellipsis_at[0]
    if pos == 0:
        raise SyntaxExpansionError("syntax-rules: `...` must follow a sub-pattern")
    return pat.PList(
        tuple(_parse_pattern_stx(s, literals) for s in items[: pos - 1]),
        _parse_pattern_stx(items[pos - 1], literals),
        tuple(_parse_pattern_stx(s, literals) for s in items[pos + 1 :]),
        tail_pat,
    )


class SyntaxRulesTransformer:
    """A compiled ``syntax-rules`` macro: try each rule in order.

    A class (rather than a closure) so compiled-module artifacts can
    serialize object-language macros — the rules are plain data (compiled
    patterns plus template syntax objects).
    """

    __slots__ = ("rules",)

    def __init__(self, rules: list[tuple[pat.Pattern, Syntax]]) -> None:
        self.rules = rules

    def __call__(self, stx: Syntax) -> Syntax:
        for compiled, template in self.rules:
            m = compiled.match(stx)
            if m is not None:
                return pat._fill(template, None, m)
        raise SyntaxExpansionError("no matching syntax-rules pattern", stx)

    def __reduce__(self):
        return (SyntaxRulesTransformer, (self.rules,))


def make_syntax_rules_transformer(form: Syntax) -> Callable[[Syntax], Syntax]:
    """Compile ``(syntax-rules (lit ...) [pattern template] ...)``."""
    items = form.e
    if not (isinstance(items, tuple) and len(items) >= 2 and isinstance(items[1].e, tuple)):
        raise SyntaxExpansionError("syntax-rules: bad syntax", form)
    literal_ids = items[1].e
    literals = frozenset(
        lit.e.name for lit in literal_ids if lit.is_identifier()
    )
    rules: list[tuple[pat.Pattern, Syntax]] = []
    for rule in items[2:]:
        if not (isinstance(rule.e, tuple) and len(rule.e) == 2):
            raise SyntaxExpansionError("syntax-rules: bad rule", rule)
        pattern_stx, template = rule.e
        if isinstance(pattern_stx.e, tuple) and pattern_stx.e:
            p_items, p_tail = list(pattern_stx.e), None
        elif isinstance(pattern_stx.e, ImproperList) and pattern_stx.e.items:
            p_items, p_tail = list(pattern_stx.e.items), pattern_stx.e.tail
        else:
            raise SyntaxExpansionError(
                "syntax-rules: pattern must be a parenthesized form", pattern_stx
            )
        # the pattern's head position matches the macro name: wildcard it
        node = _parse_list([Syntax(_WILDCARD)] + p_items[1:], p_tail, literals)
        variables: dict[str, int] = {}
        pat._pattern_vars(node, 0, variables)
        compiled = pat.Pattern("<syntax-rules>", node, variables)
        rules.append((compiled, template))

    return SyntaxRulesTransformer(rules)
