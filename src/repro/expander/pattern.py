"""A ``syntax-parse``-style pattern matcher and template engine (§2.1).

Language libraries destructure syntax with patterns written as ordinary
s-expressions and rebuild syntax with templates, mirroring the paper's use of
``syntax-parse`` and ``#'``/``#``` templates:

    pat = compile_pattern("(define: name:id : ty rhs:expr)", literals=(":",))
    m = pat.match(stx)          # -> dict | None
    m["name"], m["ty"], m["rhs"]

Pattern grammar:

- ``name:class``   — pattern variable constrained by a syntax class
                     (``id``, ``expr``, ``number``, ``integer``, ``str``,
                     ``boolean``, ``keyword``); ``expr`` matches anything.
- ``name``         — unconstrained pattern variable (unless listed in
                     ``literals``).
- ``_``            — wildcard, binds nothing.
- literal symbols  — symbols passed via ``literals=`` match that symbol
                     datum-wise (scope-insensitive, like syntax-parse's
                     ``~datum``).
- other atoms      — match by datum equality.
- ``(p ... q r)``  — a proper list; ``...`` makes the preceding sub-pattern
                     match zero or more times (variables under it bind lists;
                     nesting raises the ellipsis depth).
- ``(p . rest)``   — dotted tail; ``rest`` binds the remaining syntax.

Templates use the same notation in reverse: ``fill_template`` substitutes
pattern variables, splicing list-valued variables followed by ``...``.
Symbols not bound stay as identifiers built with the supplied lexical
context (``ctx``), which is how a language library's introduced names pick
up that library's scope.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Generic, Iterable, Optional, Sequence, TypeVar, Union

from repro.errors import SyntaxExpansionError
from repro.reader.reader import read_string_one
from repro.runtime.values import Char, Keyword, Symbol
from repro.syn.syntax import ImproperList, Syntax, VectorDatum, syntax_to_datum

_ELLIPSIS = Symbol("...")
_WILDCARD = Symbol("_")

_K = TypeVar("_K")
_V = TypeVar("_V")


class _LRUCache(Generic[_K, _V]):
    """A small bounded mapping: least-recently-used entries are evicted.

    The pattern/template caches are process-global (compiled patterns are
    pure data, safely shared across Runtimes), so without a bound every
    distinct pattern string ever compiled would stay resident forever.
    """

    __slots__ = ("maxsize", "_data")

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[_K, _V] = OrderedDict()

    def get(self, key: _K) -> Optional[_V]:
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key: _K, value: _V) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: _K) -> bool:
        return key in self._data

    def clear(self) -> None:
        self._data.clear()


# --- syntax classes ---------------------------------------------------------


def _is_id(stx: Syntax) -> bool:
    return isinstance(stx.e, Symbol)


def _is_number(stx: Syntax) -> bool:
    return isinstance(stx.e, (int, float, Fraction, complex)) and not isinstance(stx.e, bool)


def _is_integer(stx: Syntax) -> bool:
    return isinstance(stx.e, int) and not isinstance(stx.e, bool)


def _is_str(stx: Syntax) -> bool:
    return isinstance(stx.e, str)


def _is_boolean(stx: Syntax) -> bool:
    return isinstance(stx.e, bool)


def _is_keyword(stx: Syntax) -> bool:
    return isinstance(stx.e, Keyword)


def _is_char(stx: Syntax) -> bool:
    return isinstance(stx.e, Char)


SYNTAX_CLASSES: dict[str, Callable[[Syntax], bool]] = {
    "id": _is_id,
    "expr": lambda stx: True,
    "number": _is_number,
    "integer": _is_integer,
    "str": _is_str,
    "boolean": _is_boolean,
    "keyword": _is_keyword,
    "char": _is_char,
}


# --- pattern AST ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PVar:
    name: str
    cls: str  # key into SYNTAX_CLASSES


@dataclass(frozen=True, slots=True)
class PWild:
    pass


@dataclass(frozen=True, slots=True)
class PLiteral:
    name: Symbol


@dataclass(frozen=True, slots=True)
class PDatum:
    value: Any


@dataclass(frozen=True, slots=True)
class PList:
    before: tuple["PatternNode", ...]
    repeated: Optional["PatternNode"]  # sub-pattern under `...`, or None
    after: tuple["PatternNode", ...]
    tail: Optional["PatternNode"]  # dotted tail pattern, or None


PatternNode = Union[PVar, PWild, PLiteral, PDatum, PList]


def _parse_pattern(stx: Syntax, literals: frozenset[str]) -> PatternNode:
    e = stx.e
    if isinstance(e, Symbol):
        if e is _WILDCARD:
            return PWild()
        if e.name in literals:
            return PLiteral(e)
        if ":" in e.name and not e.name.startswith(":") and not e.name.endswith(":"):
            base, _, cls = e.name.rpartition(":")
            if cls in SYNTAX_CLASSES:
                return PVar(base, cls)
        return PVar(e.name, "expr")
    if isinstance(e, tuple):
        return _parse_list_pattern(list(e), None, literals)
    if isinstance(e, ImproperList):
        return _parse_list_pattern(list(e.items), e.tail, literals)
    return PDatum(e)


def _parse_list_pattern(
    items: list[Syntax], tail: Optional[Syntax], literals: frozenset[str]
) -> PList:
    ellipsis_positions = [i for i, s in enumerate(items) if s.e is _ELLIPSIS]
    if len(ellipsis_positions) > 1:
        raise ValueError("pattern: at most one `...` per list level")
    tail_pat = _parse_pattern(tail, literals) if tail is not None else None
    if not ellipsis_positions:
        return PList(
            tuple(_parse_pattern(s, literals) for s in items), None, (), tail_pat
        )
    pos = ellipsis_positions[0]
    if pos == 0:
        raise ValueError("pattern: `...` must follow a sub-pattern")
    before = tuple(_parse_pattern(s, literals) for s in items[: pos - 1])
    repeated = _parse_pattern(items[pos - 1], literals)
    after = tuple(_parse_pattern(s, literals) for s in items[pos + 1 :])
    return PList(before, repeated, after, tail_pat)


def _pattern_vars(node: PatternNode, depth: int, out: dict[str, int]) -> None:
    if isinstance(node, PVar):
        out[node.name] = depth
    elif isinstance(node, PList):
        for sub in node.before:
            _pattern_vars(sub, depth, out)
        if node.repeated is not None:
            _pattern_vars(node.repeated, depth + 1, out)
        for sub in node.after:
            _pattern_vars(sub, depth, out)
        if node.tail is not None:
            _pattern_vars(node.tail, depth, out)


class Pattern:
    """A compiled pattern."""

    def __init__(self, source: str, node: PatternNode, variables: dict[str, int]) -> None:
        self.source = source
        self.node = node
        self.variables = variables  # name -> ellipsis depth

    def match(self, stx: Syntax) -> Optional[dict[str, Any]]:
        bindings: dict[str, Any] = {}
        if _match(self.node, stx, bindings):
            return bindings
        return None

    def match_or_raise(self, stx: Syntax, who: str = "syntax") -> dict[str, Any]:
        m = self.match(stx)
        if m is None:
            raise SyntaxExpansionError(f"{who}: bad syntax (expected {self.source})", stx)
        return m

    def __repr__(self) -> str:
        return f"#<pattern {self.source}>"


_PATTERN_CACHE: _LRUCache[tuple[str, frozenset[str]], Pattern] = _LRUCache(1024)


def compile_pattern(source: str, literals: Iterable[str] = ()) -> Pattern:
    lit_set = frozenset(literals)
    key = (source, lit_set)
    cached = _PATTERN_CACHE.get(key)
    if cached is not None:
        return cached
    stx = read_string_one(source, "<pattern>")
    node = _parse_pattern(stx, lit_set)
    variables: dict[str, int] = {}
    _pattern_vars(node, 0, variables)
    pat = Pattern(source, node, variables)
    _PATTERN_CACHE.put(key, pat)
    return pat


def _match(node: PatternNode, stx: Syntax, bindings: dict[str, Any]) -> bool:
    if isinstance(node, PWild):
        return True
    if isinstance(node, PVar):
        if not SYNTAX_CLASSES[node.cls](stx):
            return False
        bindings[node.name] = stx
        return True
    if isinstance(node, PLiteral):
        return stx.e is node.name
    if isinstance(node, PDatum):
        e = stx.e
        if isinstance(node.value, bool) or isinstance(e, bool):
            return e is node.value
        if isinstance(node.value, Keyword):
            return e is node.value
        return type(e) is type(node.value) and e == node.value
    if isinstance(node, PList):
        return _match_list(node, stx, bindings)
    raise AssertionError(node)  # pragma: no cover


def _match_list(node: PList, stx: Syntax, bindings: dict[str, Any]) -> bool:
    e = stx.e
    if isinstance(e, tuple):
        items: list[Syntax] = list(e)
        actual_tail: Optional[Syntax] = None
    elif isinstance(e, ImproperList):
        items = list(e.items)
        actual_tail = e.tail
    else:
        return False

    min_len = len(node.before) + len(node.after)
    if node.tail is None:
        if actual_tail is not None:
            return False
        if node.repeated is None and len(items) != min_len:
            return False
    if len(items) < min_len:
        return False

    idx = 0
    for sub in node.before:
        if not _match(sub, items[idx], bindings):
            return False
        idx += 1

    if node.repeated is not None:
        n_repeat = len(items) - min_len
        if node.tail is None and actual_tail is not None:
            return False
        rep_vars: dict[str, int] = {}
        _pattern_vars(node.repeated, 0, rep_vars)
        collected: dict[str, list[Any]] = {name: [] for name in rep_vars}
        for _ in range(n_repeat):
            sub_bindings: dict[str, Any] = {}
            if not _match(node.repeated, items[idx], sub_bindings):
                return False
            for name in rep_vars:
                collected[name].append(sub_bindings.get(name))
            idx += 1
        bindings.update(collected)
    elif node.tail is not None:
        # dotted pattern: remaining items + actual tail go to the tail pattern
        rest_items = items[idx:]
        if actual_tail is None:
            rest = Syntax(tuple(rest_items), stx.scopes, stx.srcloc)
        elif rest_items:
            rest = Syntax(ImproperList(tuple(rest_items), actual_tail), stx.scopes, stx.srcloc)
        else:
            rest = actual_tail
        return _match(node.tail, rest, bindings)

    for sub in node.after:
        if not _match(sub, items[idx], bindings):
            return False
        idx += 1

    if node.tail is not None:
        if actual_tail is None:
            return False
        return _match(node.tail, actual_tail, bindings)
    return True


# --- syntax-parse convenience ------------------------------------------------


def syntax_parse(
    stx: Syntax,
    clauses: Sequence[tuple[Pattern, Callable[[dict[str, Any]], Any]]],
    who: str = "syntax",
) -> Any:
    """Try each (pattern, handler) clause in order, like ``syntax-parse``."""
    for pattern, handler in clauses:
        m = pattern.match(stx)
        if m is not None:
            return handler(m)
    raise SyntaxExpansionError(f"{who}: bad syntax", stx)


# --- templates ---------------------------------------------------------------


class Template:
    """A compiled template; ``fill`` substitutes pattern variables.

    Unbound symbols become identifiers carrying ``ctx``'s scopes (typically a
    language library's anchor context), so names a macro *introduces* resolve
    in the macro's own language — the heart of hygienic reuse.
    """

    def __init__(self, source: str, stx: Syntax) -> None:
        self.source = source
        self.stx = stx
        self.symbol_names = _collect_symbol_names(stx)

    def fill(self, ctx: Optional[Syntax], **bindings: Any) -> Syntax:
        for name in bindings:
            if name not in self.symbol_names:
                raise ValueError(
                    f"template {self.source!r} has no variable {name!r} "
                    "(note: template variable names must be valid Python "
                    "identifiers)"
                )
        return _fill(self.stx, ctx, bindings)

    def __repr__(self) -> str:
        return f"#<template {self.source}>"


def _collect_symbol_names(stx: Syntax) -> frozenset[str]:
    names: set[str] = set()

    def walk(s: Syntax) -> None:
        e = s.e
        if isinstance(e, Symbol):
            names.add(e.name)
        elif isinstance(e, tuple):
            for c in e:
                walk(c)
        elif isinstance(e, ImproperList):
            for c in e.items:
                walk(c)
            walk(e.tail)
        elif isinstance(e, VectorDatum):
            for c in e.items:
                walk(c)

    walk(stx)
    return frozenset(names)


_TEMPLATE_CACHE: _LRUCache[str, Template] = _LRUCache(1024)


def compile_template(source: str) -> Template:
    # Keying by source text alone is sound *because compiled templates are
    # context-free*: `read_string_one` produces syntax with empty scope sets
    # and a synthetic srcloc, and every module- or language-specific part
    # (lexical context, pattern-variable values) is supplied at `fill` time.
    # Two languages sharing a template string therefore share the compiled
    # Template but can never observe each other's scopes through it — see
    # test_pattern.py::TestCacheBounds for the regression test.
    cached = _TEMPLATE_CACHE.get(source)
    if cached is not None:
        return cached
    tpl = Template(source, read_string_one(source, "<template>"))
    _TEMPLATE_CACHE.put(source, tpl)
    return tpl


def _to_syntax(value: Any, ctx: Optional[Syntax], where: Syntax) -> Syntax:
    if isinstance(value, Syntax):
        return value
    from repro.syn.syntax import datum_to_syntax

    return datum_to_syntax(ctx, value, where.srcloc)


def _fill(stx: Syntax, ctx: Optional[Syntax], bindings: dict[str, Any]) -> Syntax:
    e = stx.e
    if isinstance(e, Symbol):
        if e.name in bindings:
            return _to_syntax(bindings[e.name], ctx, stx)
        if ctx is not None:
            return Syntax(e, ctx.scopes, stx.srcloc, stx.props)
        return stx
    if isinstance(e, tuple):
        return Syntax(
            tuple(_fill_items(e, ctx, bindings)), stx.scopes if ctx is None else ctx.scopes,
            stx.srcloc, stx.props,
        )
    if isinstance(e, ImproperList):
        return Syntax(
            ImproperList(
                tuple(_fill_items(e.items, ctx, bindings)),
                _fill(e.tail, ctx, bindings),
            ),
            stx.scopes if ctx is None else ctx.scopes,
            stx.srcloc,
            stx.props,
        )
    return stx


def _fill_items(
    items: tuple[Syntax, ...], ctx: Optional[Syntax], bindings: dict[str, Any]
) -> list[Syntax]:
    out: list[Syntax] = []
    i = 0
    while i < len(items):
        item = items[i]
        follows_ellipsis = i + 1 < len(items) and items[i + 1].e is _ELLIPSIS
        if follows_ellipsis:
            values = _spliced_values(item, ctx, bindings)
            for value in values:
                out.append(_to_syntax(value, ctx, item))
            i += 2
        else:
            out.append(_fill(item, ctx, bindings))
            i += 1
    return out


def _spliced_values(
    item: Syntax, ctx: Optional[Syntax], bindings: dict[str, Any]
) -> list[Any]:
    """Values for ``item ...`` — item must mention >=1 list-valued variable."""
    if isinstance(item.e, Symbol) and item.e.name in bindings:
        seq = bindings[item.e.name]
        if not isinstance(seq, (list, tuple)):
            raise ValueError(
                f"template: variable {item.e.name} used with `...` is not a sequence"
            )
        return list(seq)
    # A compound sub-template under `...`: find its sequence variables and map.
    names = _template_vars(item, bindings)
    seq_names = [n for n in names if isinstance(bindings[n], (list, tuple))]
    if not seq_names:
        raise ValueError(
            f"template: `...` after {write_short(item)} but no sequence variable inside"
        )
    length = len(bindings[seq_names[0]])
    for n in seq_names[1:]:
        if len(bindings[n]) != length:
            raise ValueError("template: mismatched sequence lengths under `...`")
    out = []
    for k in range(length):
        sub_bindings = dict(bindings)
        for n in seq_names:
            sub_bindings[n] = bindings[n][k]
        out.append(_fill(item, ctx, sub_bindings))
    return out


def _template_vars(stx: Syntax, bindings: dict[str, Any]) -> list[str]:
    found: list[str] = []

    def walk(s: Syntax) -> None:
        e = s.e
        if isinstance(e, Symbol):
            if e.name in bindings and e.name not in found:
                found.append(e.name)
        elif isinstance(e, tuple):
            for c in e:
                walk(c)
        elif isinstance(e, ImproperList):
            for c in e.items:
                walk(c)
            walk(e.tail)

    walk(stx)
    return found


def write_short(stx: Syntax) -> str:
    from repro.syn.syntax import write_datum

    text = write_datum(syntax_to_datum(stx))
    return text if len(text) < 60 else text[:57] + "..."
