"""Names and bindings for the core syntactic forms (fig. 1).

The explicitly specified core language "consists of approximately 20
primitive syntactic forms" — ours are listed below. Every language library
reduces programs to these via the expander before analysis or execution.
"""

from __future__ import annotations

from repro.syn.binding import CoreFormBinding

CORE_FORM_NAMES = (
    "quote",
    "quote-syntax",
    "if",
    "begin",
    "begin0",
    "#%plain-lambda",
    "let-values",
    "letrec-values",
    "set!",
    "#%plain-app",
    "define-values",
    "define-syntaxes",
    "begin-for-syntax",
    "#%provide",
    "#%require",
    "#%plain-module-begin",
    "#%expression",
)

#: name -> the unique CoreFormBinding for that form
CORE_FORMS: dict[str, CoreFormBinding] = {
    name: CoreFormBinding(name) for name in CORE_FORM_NAMES
}
