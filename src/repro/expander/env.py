"""Compile-time environments and the per-compilation context.

An :class:`ExpandContext` is created for each module compilation. It holds:

- ``meanings`` — what each binding means at compile time (variable or macro
  transformer);
- ``phase1_ns`` — the module's **fresh compile-time store** (§2.3: "each
  module is compiled with a fresh store");
- ``stores`` — named compile-time state for language libraries (type
  environments, the ``typed-context?`` flag of §6.2, ...). Because the whole
  context is fresh per compilation, "mutations to state created during one
  compilation do not affect the results of other compilations";
- bookkeeping for requires, provides, and replayable phase-1 declarations
  (the §5 mechanism for separate compilation).

``current_context()`` exposes the active context to phase-1 primitives such
as a typed language's ``add-type!``.
"""

from __future__ import annotations

import contextvars
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import SyntaxExpansionError
from repro.syn.binding import Binding
from repro.syn.scopes import Scope

if TYPE_CHECKING:
    from repro.core.namespace import Namespace
    from repro.modules.registry import ModuleRegistry
    from repro.syn.syntax import Syntax


class Meaning:
    __slots__ = ()


class VariableMeaning(Meaning):
    __slots__ = ()

    def __repr__(self) -> str:
        return "#<meaning:variable>"


VARIABLE = VariableMeaning()


class TransformerMeaning(Meaning):
    """A macro: ``value`` is a Python callable or an object-language closure."""

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __repr__(self) -> str:
        return "#<meaning:transformer>"


@dataclass(slots=True)
class ProvideSpec:
    external: str
    internal_id: "Syntax"
    phase: int = 0


class ExpandContext:
    def __init__(
        self,
        module_path: str,
        registry: "ModuleRegistry",
    ) -> None:
        from repro.core.namespace import Namespace
        from repro.diagnostics.session import DiagnosticSession

        self.module_path = module_path
        self.registry = registry
        #: per-compilation diagnostic collector (multi-error recovery)
        self.diagnostics = DiagnosticSession(module_path)
        #: binding keys of definitions that failed to expand; downstream
        #: layers (the typecheckers) treat references to them as the bottom
        #: type instead of piling up cascading errors
        self.poisoned: set[Any] = set()
        self.meanings: dict[Any, Meaning] = {}
        self.module_scope: Scope = Scope("module")
        # the owning registry reclaims bindings in this scope at teardown
        registry.owned_scopes.add(self.module_scope)
        self.phase1_ns: "Namespace" = registry.make_phase1_namespace(module_path)
        #: compile-time stores for language libraries, keyed by library name
        self.stores: dict[str, Any] = {}
        #: modules required at phase 0, in order
        self.requires: list[str] = []
        #: provide specs accumulated from #%provide forms
        self.provides: list[ProvideSpec] = []
        #: replayable phase-1 declarations (see modules.registry.SyntaxDecl)
        self.syntax_decls: list[Any] = []
        #: modules already visited during this compilation
        self.visited: set[str] = set()
        #: use-site scopes introduced per active definition context
        self.use_site_scopes: list[set[Scope]] = []
        #: definitions seen so far (module level), for duplicate detection
        self.defined_names: dict[str, "Syntax"] = {}

    # -- meanings ---------------------------------------------------------

    def meaning_of(self, binding: Binding) -> Meaning:
        return self.meanings.get(binding.key(), VARIABLE)

    def set_meaning(self, binding: Binding, meaning: Meaning) -> None:
        self.meanings[binding.key()] = meaning

    # -- language-library stores -------------------------------------------

    def store(self, key: str, make: Callable[[], Any]) -> Any:
        """Get (or create) a named compile-time store for a language library."""
        if key not in self.stores:
            self.stores[key] = make()
        return self.stores[key]


#: stack of active expansion contexts (innermost last), *context-local* so
#: concurrent compilations on different threads each see only their own
#: stack — a process-global list here let thread B's pop_context remove
#: thread A's innermost context mid-expansion
_CONTEXT_STACK: "contextvars.ContextVar[Optional[list[ExpandContext]]]" = (
    contextvars.ContextVar("repro_expand_contexts", default=None)
)


def _context_stack() -> list[ExpandContext]:
    stack = _CONTEXT_STACK.get()
    if stack is None:
        stack = []
        _CONTEXT_STACK.set(stack)
    return stack


def push_context(ctx: ExpandContext) -> None:
    _context_stack().append(ctx)


def pop_context() -> None:
    _context_stack().pop()


def peek_context() -> Optional[ExpandContext]:
    """The innermost active expansion context, or None outside a compile."""
    stack = _CONTEXT_STACK.get()
    return stack[-1] if stack else None


def current_context() -> ExpandContext:
    stack = _CONTEXT_STACK.get()
    if not stack:
        raise SyntaxExpansionError(
            "no expansion context active (compile-time primitive used at runtime?)"
        )
    return stack[-1]
