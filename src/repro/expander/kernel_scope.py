"""The core scope: a scope in which every core form and kernel primitive is
bound. ``core_id`` builds identifiers that always resolve to the kernel —
the anchor Python-implemented language libraries use for introduced names.
"""

from __future__ import annotations

from repro.expander.core_forms import CORE_FORMS
from repro.modules.registry import KERNEL_PATH
from repro.runtime.primitives import PRIMITIVES
from repro.runtime.values import Symbol
from repro.syn.binding import ModuleBinding, TABLE
from repro.syn.scopes import Scope
from repro.syn.srcloc import NO_SRCLOC, SrcLoc
from repro.syn.syntax import Syntax

CORE_SCOPE = Scope("core")
_CORE_SCOPES = frozenset({CORE_SCOPE})

#: special kernel binding recognized by define-syntaxes
SYNTAX_RULES_BINDING = ModuleBinding(KERNEL_PATH, Symbol("syntax-rules"))


def _install() -> None:
    for name, binding in CORE_FORMS.items():
        sym = Symbol(name)
        TABLE.add(sym, _CORE_SCOPES, binding, phase=0)
        TABLE.add(sym, _CORE_SCOPES, binding, phase=1)
    for name in PRIMITIVES:
        sym = Symbol(name)
        binding = ModuleBinding(KERNEL_PATH, sym)
        TABLE.add(sym, _CORE_SCOPES, binding, phase=0)
        TABLE.add(sym, _CORE_SCOPES, binding, phase=1)
    for phase in (0, 1):
        TABLE.add(Symbol("syntax-rules"), _CORE_SCOPES, SYNTAX_RULES_BINDING, phase=phase)


_install()


def core_id(name: str, srcloc: SrcLoc = NO_SRCLOC) -> Syntax:
    """An identifier resolving to the kernel binding for ``name``."""
    return Syntax(Symbol(name), _CORE_SCOPES, srcloc)


#: a syntax object whose scopes are the core scope — usable as the ``ctx``
#: argument of datum->syntax / Template.fill for kernel-level templates
CORE_CTX = Syntax(Symbol("#%core-ctx"), _CORE_SCOPES)
