"""The hygienic macro expander.

Recursively traverses syntax; when it reaches the use of a macro it runs the
transformer and continues with the result (§2.1). Hygiene comes from scope
sets: each transformer application flips a fresh *introduction scope* around
the call, and definition contexts add *use-site scopes* so that macros that
both bind and reference their inputs behave correctly.

The expander also implements:

- implicit ``#%app`` / ``#%datum`` hooks, so languages can reinterpret
  application and literals (the lazy-language demo relies on ``#%app``);
- ``local-expand`` (§2.2) — forcing any expression down to core forms,
  optionally stopping at given identifiers;
- the two-pass module-body expansion behind ``#%plain-module-begin``
  (definitions collected first, right-hand sides and expressions second — the
  §4.4 strategy for mutual recursion);
- ``define-syntaxes`` / ``begin-for-syntax`` evaluation in the compilation's
  fresh phase-1 store, recording replayable declarations for separate
  compilation (§5).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.diagnostics.diagnostic import ExpansionFrame
from repro.diagnostics.session import FATAL_ERRORS
from repro.errors import (
    CompilationFailed,
    ExpansionLimitError,
    ReproError,
    SyntaxExpansionError,
    UnboundIdentifierError,
)
from repro.expander.env import (
    ExpandContext,
    ProvideSpec,
    TransformerMeaning,
    VARIABLE,
)
from repro.expander.kernel_scope import SYNTAX_RULES_BINDING, core_id
from repro.observe.recorder import current_recorder
from repro.runtime.stats import current_stats
from repro.runtime.values import Symbol
from repro.syn.binding import (
    Binding,
    CoreFormBinding,
    LocalBinding,
    ModuleBinding,
    TABLE,
    bound_identifier_eq,
)
from repro.syn.scopes import Scope
from repro.syn.syntax import ImproperList, Syntax

_EXPANDER_STACK: list["Expander"] = []


def current_expander() -> "Expander":
    if not _EXPANDER_STACK:
        raise SyntaxExpansionError("local-expand: not currently expanding")
    return _EXPANDER_STACK[-1]


_QUOTE = Symbol("quote")
_MB_EXPANDED_PROP = "module-begin-expanded"
_PHASE1_DONE_PROP = "phase1-processed"

#: default per-compilation budget of transformer applications
DEFAULT_FUEL = 10_000

#: cap on recorded backtrace frames (deep non-tail macro nests)
_MAX_BACKTRACE = 24


class _Retry:
    """Marker: a transformer fired; re-dispatch on its output (iteratively,
    so head-recursive macros consume fuel, not Python stack)."""

    __slots__ = ("stx", "stop")

    def __init__(self, stx: Syntax, stop: Optional[frozenset]) -> None:
        self.stx = stx
        self.stop = stop


class Expander:
    def __init__(self, ctx: ExpandContext) -> None:
        self.ctx = ctx
        #: introduction scopes of transformer applications in progress
        self._intro_stack: list[Scope] = []
        #: macro invocations in progress, for expansion backtraces
        self._macro_frames: list[ExpansionFrame] = []
        self.fuel_budget = getattr(ctx.registry, "expansion_fuel", None) or DEFAULT_FUEL
        self.fuel = self.fuel_budget
        #: the observability event bus active for this compilation (the
        #: no-op recorder when tracing is off — call sites check .enabled)
        self._rec = current_recorder()

    # ------------------------------------------------------------------
    # transformer application
    # ------------------------------------------------------------------

    @staticmethod
    def _macro_name_of(stx: Syntax) -> str:
        e = stx.e
        if isinstance(e, Symbol):
            return e.name
        if isinstance(e, tuple) and e and e[0].is_identifier():
            return e[0].e.name
        if isinstance(e, ImproperList) and e.items and e.items[0].is_identifier():
            return e.items[0].e.name
        return "<macro>"

    def backtrace(self) -> tuple[ExpansionFrame, ...]:
        """The macro invocations currently in flight (outermost first)."""
        frames = self._macro_frames
        if len(frames) > _MAX_BACKTRACE:
            half = _MAX_BACKTRACE // 2
            elided = len(frames) - 2 * half
            return (
                *frames[:half],
                ExpansionFrame(f"... ({elided} frames elided)"),
                *frames[-half:],
            )
        return tuple(frames)

    def _use_fuel(self, stx: Syntax, macro_name: str) -> None:
        current_stats().count_expansion_step(macro_name)
        self.fuel -= 1
        if self.fuel < 0:
            err = ExpansionLimitError(
                f"macro expansion exceeded its budget of {self.fuel_budget} "
                f"steps (runaway recursive macro?)",
                stx,
            )
            err.expansion_backtrace = self.backtrace()
            raise err

    def apply_transformer(
        self, transformer: Any, stx: Syntax, phase: int, in_def_ctx: bool
    ) -> Syntax:
        intro = Scope("macro")
        inp = stx.flip_scope(intro)
        if in_def_ctx and self.ctx.use_site_scopes:
            use_site = Scope("use-site")
            self.ctx.use_site_scopes[-1].add(use_site)
            inp = inp.add_scope(use_site)
        macro_name = self._macro_name_of(stx)
        self._intro_stack.append(intro)
        self._macro_frames.append(ExpansionFrame(macro_name, stx.srcloc))
        depth = len(self._macro_frames)
        try:
            # burn fuel with the frame already pushed, so an exhausted
            # budget names the macro that tripped it in its backtrace
            self._use_fuel(stx, macro_name)
            out = self.call_transformer(transformer, inp)
        except RecursionError:
            err = ExpansionLimitError(
                "macro expansion nested too deeply for the interpreter "
                "(runaway recursive macro?)",
                stx,
            )
            err.expansion_backtrace = self.backtrace()
            raise err from None
        except ReproError as err:
            # aggregates carry a backtrace per diagnostic already
            if not err.expansion_backtrace and not isinstance(err, CompilationFailed):
                err.expansion_backtrace = self.backtrace()
            raise
        finally:
            self._intro_stack.pop()
            self._macro_frames.pop()
        if not isinstance(out, Syntax):
            raise SyntaxExpansionError(
                f"macro transformer returned a non-syntax value: {out!r}", stx
            )
        result = out.flip_scope(intro)
        if self._rec.enabled:
            self._rec.macro_step(
                macro_name,
                stx.srcloc,
                depth,
                stx_in=stx,
                stx_out=result,
                intro_scope=repr(intro),
            )
        return result

    def call_transformer(self, transformer: Any, stx: Syntax) -> Any:
        _EXPANDER_STACK.append(self)
        try:
            if callable(transformer):
                return transformer(stx)
            from repro.core.interp import apply_procedure

            return apply_procedure(transformer, [stx])
        finally:
            _EXPANDER_STACK.pop()

    # ------------------------------------------------------------------
    # resolution helpers
    # ------------------------------------------------------------------

    def _transformer_of(self, binding: Optional[Binding]) -> Optional[Any]:
        if binding is None or isinstance(binding, CoreFormBinding):
            return None
        meaning = self.ctx.meaning_of(binding)
        if isinstance(meaning, TransformerMeaning):
            return meaning.value
        return None

    def _implicit_hook(self, name: str, stx: Syntax, phase: int) -> Optional[Any]:
        hook = Syntax(Symbol(name), stx.scopes, stx.srcloc)
        try:
            binding = TABLE.resolve(hook, phase)
        except SyntaxExpansionError:
            return None
        return self._transformer_of(binding)

    # ------------------------------------------------------------------
    # expression expansion
    # ------------------------------------------------------------------

    def expand_expr(
        self, stx: Syntax, phase: int = 0, stop: Optional[frozenset] = None
    ) -> Syntax:
        # Iterative head-expansion driver: each transformer application
        # returns a _Retry and loops here, so a macro that expands to
        # another macro use in head position consumes *fuel*, not Python
        # stack — a runaway macro hits ExpansionLimitError, never
        # RecursionError.
        while True:
            e = stx.e
            if isinstance(e, Symbol):
                out = self._expand_identifier(stx, phase, stop)
            elif isinstance(e, tuple):
                if not e:
                    raise SyntaxExpansionError("missing procedure expression", stx)
                out = self._expand_compound(stx, phase, stop)
            elif isinstance(e, ImproperList):
                raise SyntaxExpansionError("bad syntax (improper list)", stx)
            else:
                out = self._expand_datum(stx, phase)
            if isinstance(out, _Retry):
                stx, stop = out.stx, out.stop
                continue
            return out

    def _expand_identifier(
        self, stx: Syntax, phase: int, stop: Optional[frozenset]
    ) -> Any:
        binding = TABLE.resolve(stx, phase)
        if binding is None:
            raise UnboundIdentifierError(
                f"unbound identifier: {stx.e} (phase {phase})", stx
            )
        if isinstance(binding, CoreFormBinding):
            raise SyntaxExpansionError(
                f"{binding.name}: core form may not be used as an expression", stx
            )
        if stop is not None and binding.key() in stop:
            return stx
        transformer = self._transformer_of(binding)
        if transformer is not None:
            return _Retry(self.apply_transformer(transformer, stx, phase, False), stop)
        return stx

    def _expand_compound(
        self, stx: Syntax, phase: int, stop: Optional[frozenset]
    ) -> Any:
        head = stx.e[0]
        if head.is_identifier():
            binding = TABLE.resolve(head, phase)
            if binding is not None:
                if stop is not None and binding.key() in stop:
                    return stx
                if isinstance(binding, CoreFormBinding):
                    return self._expand_core_form(binding.name, stx, phase, stop)
                transformer = self._transformer_of(binding)
                if transformer is not None:
                    return _Retry(
                        self.apply_transformer(transformer, stx, phase, False), stop
                    )
        return self._expand_app(stx, phase, stop)

    def _expand_app(self, stx: Syntax, phase: int, stop: Optional[frozenset]) -> Any:
        hook = self._implicit_hook("#%app", stx, phase)
        if hook is not None:
            hook_id = Syntax(Symbol("#%app"), stx.scopes, stx.srcloc)
            wrapped = Syntax((hook_id, *stx.e), stx.scopes, stx.srcloc, stx.props)
            return _Retry(self.apply_transformer(hook, wrapped, phase, False), stop)
        if stop:
            return stx
        expanded = tuple(self.expand_expr(x, phase, stop) for x in stx.e)
        return Syntax(
            (core_id("#%plain-app", stx.srcloc), *expanded),
            stx.scopes,
            stx.srcloc,
            stx.props,
        )

    def _expand_datum(self, stx: Syntax, phase: int) -> Any:
        hook = self._implicit_hook("#%datum", stx, phase)
        if hook is not None:
            hook_id = Syntax(Symbol("#%datum"), stx.scopes, stx.srcloc)
            wrapped = Syntax(
                ImproperList((hook_id,), stx), stx.scopes, stx.srcloc
            )
            return _Retry(self.apply_transformer(hook, wrapped, phase, False), None)
        return Syntax(
            (core_id("quote", stx.srcloc), stx), stx.scopes, stx.srcloc, stx.props
        )

    # ------------------------------------------------------------------
    # core forms
    # ------------------------------------------------------------------

    def _expand_core_form(
        self, name: str, stx: Syntax, phase: int, stop: Optional[frozenset]
    ) -> Syntax:
        if stop and name not in ("#%plain-app",):
            # with a non-empty stop list, core forms end partial expansion
            return stx
        if name in ("quote", "quote-syntax"):
            if len(stx.e) != 2:
                raise SyntaxExpansionError(f"{name}: bad syntax", stx)
            return stx
        if name == "if":
            if len(stx.e) != 4:
                raise SyntaxExpansionError("if: bad syntax", stx)
            return self._rebuild(
                stx, (stx.e[0], *(self.expand_expr(x, phase, stop) for x in stx.e[1:]))
            )
        if name in ("begin", "begin0", "#%expression"):
            if len(stx.e) < 2:
                raise SyntaxExpansionError(f"{name}: bad syntax (empty body)", stx)
            return self._rebuild(
                stx, (stx.e[0], *(self.expand_expr(x, phase, stop) for x in stx.e[1:]))
            )
        if name == "set!":
            return self._expand_set(stx, phase, stop)
        if name == "#%plain-lambda":
            return self._expand_lambda(stx, phase)
        if name in ("let-values", "letrec-values"):
            return self._expand_let_values(stx, phase, recursive=name == "letrec-values")
        if name == "#%plain-app":
            if len(stx.e) < 2:
                raise SyntaxExpansionError("#%plain-app: missing procedure", stx)
            return self._rebuild(
                stx, (stx.e[0], *(self.expand_expr(x, phase, stop) for x in stx.e[1:]))
            )
        if name == "#%plain-module-begin":
            return self.expand_module_begin(stx, phase)
        if name in ("define-values", "define-syntaxes", "begin-for-syntax"):
            raise SyntaxExpansionError(
                f"{name}: not allowed in an expression position", stx
            )
        if name in ("#%provide", "#%require"):
            raise SyntaxExpansionError(
                f"{name}: only allowed at module level", stx
            )
        raise SyntaxExpansionError(f"unknown core form: {name}", stx)  # pragma: no cover

    @staticmethod
    def _rebuild(stx: Syntax, items: tuple[Syntax, ...]) -> Syntax:
        return Syntax(items, stx.scopes, stx.srcloc, stx.props)

    def _expand_set(self, stx: Syntax, phase: int, stop: Optional[frozenset]) -> Syntax:
        if len(stx.e) != 3 or not stx.e[1].is_identifier():
            raise SyntaxExpansionError("set!: bad syntax", stx)
        target = stx.e[1]
        binding = TABLE.resolve(target, phase)
        if binding is None:
            raise UnboundIdentifierError(f"set!: unbound identifier: {target.e}", stx)
        if self._transformer_of(binding) is not None:
            raise SyntaxExpansionError("set!: cannot mutate a macro binding", stx)
        return self._rebuild(
            stx, (stx.e[0], target, self.expand_expr(stx.e[2], phase, stop))
        )

    def _formal_ids(self, formals: Syntax) -> list[Syntax]:
        e = formals.e
        if isinstance(e, Symbol):
            return [formals]
        if isinstance(e, tuple):
            ids = list(e)
        elif isinstance(e, ImproperList):
            ids = list(e.items) + [e.tail]
        else:
            raise SyntaxExpansionError("lambda: bad formals", formals)
        for ident in ids:
            if not ident.is_identifier():
                raise SyntaxExpansionError("lambda: formal is not an identifier", ident)
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                if bound_identifier_eq(a, b):
                    raise SyntaxExpansionError(
                        f"lambda: duplicate formal: {a.e}", formals
                    )
        return ids

    def _expand_lambda(self, stx: Syntax, phase: int) -> Syntax:
        if len(stx.e) < 3:
            raise SyntaxExpansionError("#%plain-lambda: bad syntax", stx)
        sc = Scope("local")
        formals = stx.e[1].add_scope(sc)
        body = [b.add_scope(sc) for b in stx.e[2:]]
        for ident in self._formal_ids(formals):
            TABLE.bind_identifier(ident, LocalBinding(ident.e), phase)
        new_body = self.expand_body(body, phase, stx)
        return self._rebuild(stx, (stx.e[0], formals, *new_body))

    def _expand_let_values(self, stx: Syntax, phase: int, recursive: bool) -> Syntax:
        if len(stx.e) < 3 or not isinstance(stx.e[1].e, tuple):
            raise SyntaxExpansionError("let-values: bad syntax", stx)
        sc = Scope("local")
        clauses = []
        raw_clauses = stx.e[1].e
        parsed = []
        for clause in raw_clauses:
            if not (isinstance(clause.e, tuple) and len(clause.e) == 2):
                raise SyntaxExpansionError("let-values: bad binding clause", clause)
            ids_stx, rhs = clause.e
            if not isinstance(ids_stx.e, tuple):
                raise SyntaxExpansionError("let-values: bad identifier list", clause)
            parsed.append((clause, ids_stx, rhs))
        all_ids: list[Syntax] = []
        for _clause, ids_stx, _rhs in parsed:
            for ident in ids_stx.e:
                if not ident.is_identifier():
                    raise SyntaxExpansionError("let-values: not an identifier", ident)
        for clause, ids_stx, rhs in parsed:
            new_ids = ids_stx.add_scope(sc)
            for ident in new_ids.e:
                for prev in all_ids:
                    if bound_identifier_eq(prev, ident):
                        raise SyntaxExpansionError(
                            f"let-values: duplicate identifier: {ident.e}", stx
                        )
                all_ids.append(ident)
                TABLE.bind_identifier(ident, LocalBinding(ident.e), phase)
            if recursive:
                rhs = rhs.add_scope(sc)
                clauses.append((clause, new_ids, rhs))
            else:
                clauses.append((clause, new_ids, self.expand_expr(rhs, phase)))
        if recursive:
            clauses = [
                (clause, ids, self.expand_expr(rhs, phase))
                for (clause, ids, rhs) in clauses
            ]
        body = [b.add_scope(sc) for b in stx.e[2:]]
        new_body = self.expand_body(body, phase, stx)
        new_clauses = tuple(
            Syntax((ids, rhs), clause.scopes, clause.srcloc)
            for (clause, ids, rhs) in clauses
        )
        return self._rebuild(
            stx,
            (
                stx.e[0],
                Syntax(new_clauses, stx.e[1].scopes, stx.e[1].srcloc),
                *new_body,
            ),
        )

    # ------------------------------------------------------------------
    # internal-definition contexts (lambda / let bodies)
    # ------------------------------------------------------------------

    def partial_expand(self, stx: Syntax, phase: int, def_ctx: bool) -> Syntax:
        """Expand macro uses at the head until a core form (or non-macro)."""
        while True:
            e = stx.e
            if isinstance(e, Symbol):
                binding = TABLE.resolve(stx, phase)
                transformer = self._transformer_of(binding)
                if transformer is None:
                    return stx
                stx = self.apply_transformer(transformer, stx, phase, def_ctx)
                continue
            if not (isinstance(e, tuple) and e):
                return stx
            head = e[0]
            if not head.is_identifier():
                return stx
            binding = TABLE.resolve(head, phase)
            if binding is None or isinstance(binding, CoreFormBinding):
                return stx
            transformer = self._transformer_of(binding)
            if transformer is None:
                return stx
            stx = self.apply_transformer(transformer, stx, phase, def_ctx)

    def _core_head(self, stx: Syntax, phase: int) -> Optional[str]:
        if not (isinstance(stx.e, tuple) and stx.e):
            return None
        head = stx.e[0]
        if not head.is_identifier():
            return None
        binding = TABLE.resolve(head, phase)
        if isinstance(binding, CoreFormBinding):
            return binding.name
        return None

    def _strip_use_site(self, ident: Syntax) -> Syntax:
        """Remove this definition context's use-site scopes from a binder."""
        if not self.ctx.use_site_scopes:
            return ident
        current = self.ctx.use_site_scopes[-1]
        if not current:
            return ident
        scopes = ident.scopes - frozenset(current)
        if scopes == ident.scopes:
            return ident
        return Syntax(ident.e, scopes, ident.srcloc, ident.props)

    def expand_body(self, forms: Sequence[Syntax], phase: int, where: Syntax) -> list[Syntax]:
        """Expand a body that may contain internal definitions.

        If definitions are found the body is rewritten into a single
        ``letrec-values`` expression, preserving evaluation order.
        """
        self.ctx.use_site_scopes.append(set())
        try:
            defines: list[tuple[Syntax, Syntax]] = []  # (ids-stx, rhs)
            exprs_after: list[Syntax] = []
            saw_define = False
            items: list[tuple[str, Any]] = []
            pending = list(forms)
            while pending:
                form = self.partial_expand(pending.pop(0), phase, True)
                head = self._core_head(form, phase)
                if head == "begin":
                    pending = list(form.e[1:]) + pending
                    continue
                if head == "define-values":
                    if len(form.e) != 3 or not isinstance(form.e[1].e, tuple):
                        raise SyntaxExpansionError("define-values: bad syntax", form)
                    ids = tuple(self._strip_use_site(i) for i in form.e[1].e)
                    for ident in ids:
                        if not ident.is_identifier():
                            raise SyntaxExpansionError(
                                "define-values: not an identifier", ident
                            )
                        TABLE.bind_identifier(ident, LocalBinding(ident.e), phase)
                    saw_define = True
                    items.append(("def", (ids, form.e[2], form)))
                    continue
                if head == "define-syntaxes":
                    self._handle_define_syntaxes(form, phase, record=False)
                    continue
                items.append(("expr", form))
            if not saw_define:
                out = [self.expand_expr(f, phase) for f in (f for (_k, f) in items)]
                if not out:
                    raise SyntaxExpansionError("body: no expression in body", where)
                return out
            # rewrite to letrec-values, keeping order: expressions that occur
            # before the final run of expressions become dummy clauses.
            tail_exprs: list[Syntax] = []
            while items and items[-1][0] == "expr":
                tail_exprs.insert(0, items.pop()[1])
            if not tail_exprs:
                raise SyntaxExpansionError("body: no expression after definitions", where)
            clause_stxs: list[Syntax] = []
            for kind, payload in items:
                if kind == "def":
                    ids, rhs, orig = payload
                    clause_stxs.append(
                        Syntax(
                            (Syntax(tuple(ids), orig.e[1].scopes, orig.srcloc), rhs),
                            orig.scopes,
                            orig.srcloc,
                        )
                    )
                else:
                    expr = payload
                    begin_form = Syntax(
                        (
                            core_id("begin", expr.srcloc),
                            expr,
                            Syntax(
                                (core_id("#%plain-app", expr.srcloc), core_id("values", expr.srcloc)),
                                expr.scopes,
                                expr.srcloc,
                            ),
                        ),
                        expr.scopes,
                        expr.srcloc,
                    )
                    clause_stxs.append(
                        Syntax(
                            (Syntax((), expr.scopes, expr.srcloc), begin_form),
                            expr.scopes,
                            expr.srcloc,
                        )
                    )
            letrec = Syntax(
                (
                    core_id("letrec-values", where.srcloc),
                    Syntax(tuple(clause_stxs), where.scopes, where.srcloc),
                    *tail_exprs,
                ),
                where.scopes,
                where.srcloc,
            )
            return [self.expand_expr(letrec, phase)]
        finally:
            self.ctx.use_site_scopes.pop()

    # ------------------------------------------------------------------
    # module-body expansion (two passes)
    # ------------------------------------------------------------------

    def expand_module_begin(self, stx: Syntax, phase: int = 0) -> Syntax:
        if stx.property_get(_MB_EXPANDED_PROP):
            return stx
        if not (isinstance(stx.e, tuple) and stx.e):
            raise SyntaxExpansionError("#%plain-module-begin: bad syntax", stx)
        ctx = self.ctx
        session = ctx.diagnostics
        ctx.use_site_scopes.append(set())
        try:
            # pass 1: partial-expand each module-level form. A recoverable
            # error drops the offending form, records a diagnostic, and
            # continues with the next form, so one compile reports every
            # problem (fatal errors — missing modules, exhausted fuel —
            # still abort immediately).
            processed: list[tuple[str, Any]] = []
            pending = list(stx.e[1:])
            while pending:
                raw = pending.pop(0)
                try:
                    form = self.partial_expand(raw, phase, True)
                    head = self._core_head(form, phase)
                    if head == "begin":
                        pending = list(form.e[1:]) + pending
                        continue
                    if head == "define-values":
                        processed.append(self._module_define_values(form, phase))
                        continue
                    if head == "define-syntaxes":
                        expanded = self._handle_define_syntaxes(form, phase, record=True)
                        processed.append(("done", expanded))
                        continue
                    if head == "begin-for-syntax":
                        expanded = self._handle_begin_for_syntax(form, phase)
                        processed.append(("done", expanded))
                        continue
                    if head == "#%require":
                        self._handle_require(form, phase)
                        processed.append(("done", form))
                        continue
                    if head == "#%provide":
                        self._handle_provide(form, phase)
                        processed.append(("done", form))
                        continue
                    processed.append(("expr", form))
                except FATAL_ERRORS:
                    raise
                except ReproError as err:
                    session.add_exception(err)
                    self._bind_failed_definition(raw, phase)
            # pass 2: expand right-hand sides and expressions
            out: list[Syntax] = []
            for kind, payload in processed:
                try:
                    if kind == "done":
                        out.append(payload)
                    elif kind == "expr":
                        out.append(self.expand_expr(payload, phase))
                    else:  # deferred define-values rhs
                        form, ids_stx = payload
                        rhs = self.expand_expr(form.e[2], phase)
                        out.append(self._rebuild(form, (form.e[0], ids_stx, rhs)))
                except FATAL_ERRORS:
                    raise
                except ReproError as err:
                    session.add_exception(err)
            result = Syntax(
                (stx.e[0], *out), stx.scopes, stx.srcloc, stx.props
            )
            return result.property_put(_MB_EXPANDED_PROP, True)
        finally:
            ctx.use_site_scopes.pop()

    def _bind_failed_definition(self, raw: Syntax, phase: int) -> None:
        """Best-effort binding of the names a failed definition form would
        have introduced, so later references resolve instead of producing a
        cascading "unbound identifier" for every use of the broken
        definition. The bindings are marked *poisoned* on the context; the
        typecheckers treat references to them as the bottom type."""
        ctx = self.ctx
        e = raw.e
        if not (isinstance(e, tuple) and len(e) >= 2 and e[0].is_identifier()):
            return
        if not e[0].e.name.startswith("define"):
            return
        target = e[1]
        idents: list[Syntax] = []
        if e[0].e.name in ("define-values", "define-syntaxes"):
            if isinstance(target.e, tuple):
                idents = [i for i in target.e if i.is_identifier()]
        elif target.is_identifier():
            idents = [target]  # (define x ...)
        elif isinstance(target.e, tuple) and target.e and target.e[0].is_identifier():
            idents = [target.e[0]]  # (define (f ...) ...)
        elif (
            isinstance(target.e, ImproperList)
            and target.e.items
            and target.e.items[0].is_identifier()
        ):
            idents = [target.e.items[0]]  # (define (f . rest) ...)
        for ident in idents:
            ident = self._strip_use_site(ident)
            if ident.e.name in ctx.defined_names:
                continue
            binding = ModuleBinding(ctx.module_path, ident.e, phase)
            ctx.defined_names[ident.e.name] = ident
            TABLE.bind_identifier(ident, binding, phase)
            ctx.poisoned.add(binding.key())

    def _module_define_values(self, form: Syntax, phase: int) -> tuple[str, Any]:
        if len(form.e) != 3 or not isinstance(form.e[1].e, tuple):
            raise SyntaxExpansionError("define-values: bad syntax", form)
        ctx = self.ctx
        if form.property_get(_PHASE1_DONE_PROP):
            # re-traversal of an already-expanded definition (e.g. after a
            # typed #%module-begin returned rewritten core forms)
            return ("defer", (form, form.e[1]))
        new_ids = []
        for ident in form.e[1].e:
            if not ident.is_identifier():
                raise SyntaxExpansionError("define-values: not an identifier", ident)
            ident = self._strip_use_site(ident)
            binding = ModuleBinding(ctx.module_path, ident.e, phase)
            name = ident.e.name
            if name in ctx.defined_names:
                raise SyntaxExpansionError(
                    f"define-values: duplicate definition of {name}", form
                )
            ctx.defined_names[name] = ident
            TABLE.bind_identifier(ident, binding, phase)
            new_ids.append(ident)
        ids_stx = Syntax(tuple(new_ids), form.e[1].scopes, form.e[1].srcloc)
        marked = form.property_put(_PHASE1_DONE_PROP, True)
        return ("defer", (marked, ids_stx))

    # -- define-syntaxes / begin-for-syntax --------------------------------

    def _handle_define_syntaxes(
        self, form: Syntax, phase: int, record: bool
    ) -> Syntax:
        from repro.modules.registry import DefineSyntaxesDecl

        if form.property_get(_PHASE1_DONE_PROP):
            return form
        if len(form.e) != 3 or not isinstance(form.e[1].e, tuple):
            raise SyntaxExpansionError("define-syntaxes: bad syntax", form)
        ctx = self.ctx
        ids = [self._strip_use_site(i) for i in form.e[1].e]
        bindings: list[Binding] = []
        for ident in ids:
            if not ident.is_identifier():
                raise SyntaxExpansionError("define-syntaxes: not an identifier", ident)
            if record:  # module level
                binding: Binding = ModuleBinding(ctx.module_path, ident.e, phase)
            else:
                binding = LocalBinding(ident.e)
            TABLE.bind_identifier(ident, binding, phase)
            bindings.append(binding)
        rhs = form.e[2]
        values, core, py_value = self._eval_transformer_rhs(rhs, phase, len(bindings))
        for binding, value in zip(bindings, values):
            ctx.set_meaning(binding, TransformerMeaning(value))
        if record:
            ctx.syntax_decls.append(
                DefineSyntaxesDecl(list(bindings), core, py_value)
            )
        ids_stx = Syntax(tuple(ids), form.e[1].scopes, form.e[1].srcloc)
        rebuilt = self._rebuild(form, (form.e[0], ids_stx, rhs))
        return rebuilt.property_put(_PHASE1_DONE_PROP, True)

    def _eval_transformer_rhs(
        self, rhs: Syntax, phase: int, count: int
    ) -> tuple[list[Any], Any, Any]:
        """Evaluate a transformer right-hand side at phase+1.

        Returns (values, core-ast-or-None, prebuilt-python-value-or-None).
        """
        # syntax-rules is recognized specially and compiled to a Python
        # transformer over our pattern/template engine.
        head_binding = None
        if isinstance(rhs.e, tuple) and rhs.e and rhs.e[0].is_identifier():
            head_binding = TABLE.resolve(rhs.e[0], phase + 1)
        if head_binding is not None and head_binding == SYNTAX_RULES_BINDING:
            from repro.expander.syntax_rules import make_syntax_rules_transformer

            transformer = make_syntax_rules_transformer(rhs)
            if count != 1:
                raise SyntaxExpansionError(
                    "define-syntaxes: syntax-rules provides exactly one value", rhs
                )
            return [transformer], None, transformer
        from repro.core.compile import Compiler
        from repro.core.parse import parse_expr
        from repro.runtime.values import Values

        expanded = self.expand_expr(rhs, phase + 1)
        core = parse_expr(expanded, phase + 1)
        result = Compiler(self.ctx.phase1_ns).compile_expr(core, None, False)(None)
        values = list(result.items) if isinstance(result, Values) else [result]
        if len(values) != count:
            raise SyntaxExpansionError(
                f"define-syntaxes: expected {count} values, got {len(values)}", rhs
            )
        return values, core, None

    def _handle_begin_for_syntax(self, form: Syntax, phase: int) -> Syntax:
        from repro.core.compile import Compiler
        from repro.core.parse import parse_expr
        from repro.expander.kernel_scope import core_id as cid
        from repro.modules.registry import ForSyntaxDecl

        if form.property_get(_PHASE1_DONE_PROP):
            return form
        bodies = form.e[1:]
        if not bodies:
            return form
        begin_stx = Syntax(
            (cid("begin", form.srcloc), *bodies), form.scopes, form.srcloc
        )
        expanded = self.expand_expr(begin_stx, phase + 1)
        core = parse_expr(expanded, phase + 1)
        Compiler(self.ctx.phase1_ns).compile_expr(core, None, False)(None)
        self.ctx.syntax_decls.append(ForSyntaxDecl(core))
        rebuilt = self._rebuild(form, (form.e[0], expanded))
        return rebuilt.property_put(_PHASE1_DONE_PROP, True)

    # -- require / provide ---------------------------------------------------

    def visit_module(self, compiled: Any) -> None:
        """Replay a compiled module's phase-1 declarations into this
        compilation's store (transitively through its requires)."""
        ctx = self.ctx
        if compiled.path in ctx.visited:
            return
        ctx.visited.add(compiled.path)
        for req in compiled.requires:
            self.visit_module(ctx.registry.get_compiled(req, requirer=compiled.path))
        for decl in compiled.syntax_decls:
            decl.replay(ctx)

    def _handle_require(self, form: Syntax, phase: int) -> None:
        for spec in form.e[1:]:
            self._require_spec(spec, phase)

    def _module_name_of(self, spec: Syntax) -> str:
        if isinstance(spec.e, Symbol):
            return spec.e.name
        if isinstance(spec.e, str):
            return spec.e
        raise SyntaxExpansionError("require: bad module path", spec)

    def _require_spec(self, spec: Syntax, phase: int) -> None:
        ctx = self.ctx
        renames: Optional[list[tuple[str, Syntax]]] = None
        if isinstance(spec.e, tuple) and spec.e and spec.e[0].is_identifier() and (
            spec.e[0].e.name in ("only-in", "rename-in", "only")
        ):
            if len(spec.e) < 2:
                raise SyntaxExpansionError("require: bad only-in spec", spec)
            mod_spec = spec.e[1]
            renames = []
            for clause in spec.e[2:]:
                if clause.is_identifier():
                    renames.append((clause.e.name, clause))
                elif isinstance(clause.e, tuple) and len(clause.e) == 2:
                    orig, new = clause.e
                    if not (orig.is_identifier() and new.is_identifier()):
                        raise SyntaxExpansionError("require: bad rename clause", clause)
                    renames.append((orig.e.name, new))
                else:
                    raise SyntaxExpansionError("require: bad clause", clause)
        else:
            mod_spec = spec
        name = self._module_name_of(mod_spec)
        path = ctx.registry.resolve_module_path(
            name, relative_to=ctx.module_path, srcloc=mod_spec.srcloc
        )
        compiled = ctx.registry.get_compiled(
            path, requirer=ctx.module_path, srcloc=mod_spec.srcloc
        )
        self.visit_module(compiled)
        if path not in ctx.requires:
            ctx.requires.append(path)
        if renames is None:
            scopes = self._strip_use_site(mod_spec).scopes
            for export_name, export in compiled.exports.items():
                TABLE.add(Symbol(export_name), scopes, export.binding, phase)
                if export.transformer is not None:
                    ctx.set_meaning(export.binding, TransformerMeaning(export.transformer))
        else:
            for orig_name, local_id in renames:
                export = compiled.exports.get(orig_name)
                if export is None:
                    raise SyntaxExpansionError(
                        f"require: {orig_name} is not provided by {path}", spec
                    )
                local_id = self._strip_use_site(local_id)
                TABLE.add(local_id.e, local_id.scopes, export.binding, phase)
                if export.transformer is not None:
                    ctx.set_meaning(export.binding, TransformerMeaning(export.transformer))

    def _handle_provide(self, form: Syntax, phase: int) -> None:
        for spec in form.e[1:]:
            if (
                isinstance(spec.e, tuple)
                and len(spec.e) == 1
                and spec.e[0].is_identifier()
                and spec.e[0].e.name == "all-defined"
            ):
                # expanded by the module compiler once all definitions are known
                self.ctx.provides.append(ProvideSpec("*all-defined*", spec, phase))
            elif spec.is_identifier():
                self.ctx.provides.append(ProvideSpec(spec.e.name, spec, phase))
            elif (
                isinstance(spec.e, tuple)
                and len(spec.e) == 3
                and spec.e[0].is_identifier()
                and spec.e[0].e.name == "rename"
            ):
                internal, external = spec.e[1], spec.e[2]
                if not (internal.is_identifier() and external.is_identifier()):
                    raise SyntaxExpansionError("provide: bad rename spec", spec)
                self.ctx.provides.append(
                    ProvideSpec(external.e.name, internal, phase)
                )
            else:
                raise SyntaxExpansionError("provide: bad spec", spec)

    # ------------------------------------------------------------------
    # local-expand (§2.2)
    # ------------------------------------------------------------------

    def local_expand(
        self,
        stx: Syntax,
        context: str = "expression",
        stop_ids: Sequence[Syntax] = (),
        phase: int = 0,
    ) -> Syntax:
        # Like Racket's local-expand, flip the current macro-introduction
        # scope around the nested expansion, so that the syntax being
        # re-expanded (and any bindings it creates) is in the *use site's*
        # lexical context, not the calling transformer's. This is what makes
        # local-expand "compose with other macros" (§8.1).
        intro = self._intro_stack[-1] if self._intro_stack else None
        if intro is not None:
            stx = stx.flip_scope(intro)
        if context == "module-begin":
            result = self.expand_module_begin(stx, phase)
        else:
            stop: Optional[frozenset] = None
            if stop_ids:
                keys = []
                for ident in stop_ids:
                    binding = TABLE.resolve(ident, phase)
                    if binding is not None:
                        keys.append(binding.key())
                stop = frozenset(keys)
            result = self.expand_expr(stx, phase, stop)
        if intro is not None:
            result = result.flip_scope(intro)
        return result


# --- the local-expand primitive, callable from object-language macros --------


def _install_local_expand_primitive() -> None:
    from repro.runtime.primitives import add_prim
    from repro.runtime.values import to_list

    def local_expand_prim(stx: Any, context: Any = None, stop_list: Any = None) -> Any:
        expander = current_expander()
        ctx_name = context.name if isinstance(context, Symbol) else "expression"
        stops: list[Syntax] = []
        if stop_list is not None and stop_list is not False:
            stops = to_list(stop_list)
        return expander.local_expand(stx, ctx_name, stops)

    add_prim("local-expand", local_expand_prim, 1, 3)


_install_local_expand_primitive()
