"""Parsing of ``#lang`` lines (§2.3: "Every module specifies ... the language
it is written in" as the first line of the module)."""

from __future__ import annotations

import re
from typing import Any, Optional

from repro.errors import ReaderError
from repro.reader.reader import read_string_all
from repro.syn.srcloc import SrcLoc
from repro.syn.syntax import Syntax

# after the name: optional horizontal whitespace, an optional `;` line
# comment, and an optional CR (files with CRLF line endings split on "\n"
# leave the "\r" behind) — none of which are part of the language name
_LANG_RE = re.compile(r"^#lang[ \t]+([A-Za-z0-9/_+.-]+)[ \t]*(?:;[^\r\n]*)?\r?$")


def split_lang_line(text: str, source: str = "<string>") -> tuple[Optional[str], str]:
    """Split off a leading ``#lang`` line. Returns (language name or None, body).

    Leading whitespace and comment lines before ``#lang`` are permitted.
    A UTF-8 byte-order mark (some editors write one; ``open(...,
    encoding="utf-8")`` surfaces it as ``\\ufeff``) is not part of the
    program and is stripped before looking for ``#lang``.
    """
    if text.startswith("\ufeff"):
        text = text[1:]
    offset = 0
    lines = text.split("\n")
    for i, line in enumerate(lines):
        stripped = line.strip()
        if stripped == "" or stripped.startswith(";"):
            offset += len(line) + 1
            continue
        m = _LANG_RE.match(line.lstrip())
        if m:
            rest = "\n" * (i + 1) + "\n".join(lines[i + 1 :])
            return m.group(1), rest
        return None, text
    return None, text


def read_module_source(
    text: str, source: str = "<string>", session: Any = None
) -> tuple[str, list[Syntax]]:
    """Read a ``#lang`` module file: returns (language name, body forms).

    With a diagnostic ``session``, reader errors in the body are collected
    there (reading continues at the next top-level form) instead of aborting
    at the first one.
    """
    lang, body = split_lang_line(text, source)
    if lang is None:
        raise ReaderError(
            "module must start with a #lang line",
            SrcLoc(source, 1, 0),
            code="R005",
        )
    return lang, read_string_all(body, source, session=session)
