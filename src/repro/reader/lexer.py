"""Tokenizer for the object language's lexical syntax."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.errors import ReaderError
from repro.syn.srcloc import SrcLoc

# Token kinds
LPAREN = "lparen"
RPAREN = "rparen"
VEC_OPEN = "vec-open"
QUOTE = "quote"
QUASIQUOTE = "quasiquote"
UNQUOTE = "unquote"
UNQUOTE_SPLICING = "unquote-splicing"
SYNTAX_QUOTE = "quote-syntax"
QUASISYNTAX = "quasisyntax"
UNSYNTAX = "unsyntax"
UNSYNTAX_SPLICING = "unsyntax-splicing"
DATUM_COMMENT = "datum-comment"
ATOM = "atom"  # symbol/number/boolean — classified by the reader
SYMBOL = "symbol"  # |bar-quoted| symbol: always a symbol, never reclassified
STRING = "string"
CHAR = "char"
KEYWORD = "keyword"
DOT = "dot"
EOF_TOK = "eof"

_DELIMITERS = set("()[]{}\";'`,| \t\n\r")


@dataclass(frozen=True, slots=True)
class Token:
    kind: str
    text: str
    srcloc: SrcLoc
    paren: str = ""  # "(" or "[" for paren tokens


class Lexer:
    def __init__(self, text: str, source: str = "<string>") -> None:
        self.text = text
        self.source = source
        self.pos = 0
        self.line = 1
        self.col = 0

    def _loc(self, span: int = 1) -> SrcLoc:
        return SrcLoc(self.source, self.line, self.col, self.pos, span)

    def _error(self, message: str) -> ReaderError:
        return ReaderError(message, self._loc())

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.text[i] if i < len(self.text) else ""

    def _advance(self, n: int = 1) -> str:
        out = self.text[self.pos : self.pos + n]
        for ch in out:
            if ch == "\n":
                self.line += 1
                self.col = 0
            else:
                self.col += 1
        self.pos += n
        return out

    def _skip_atmosphere(self) -> None:
        while self.pos < len(self.text):
            ch = self._peek()
            if ch in " \t\n\r\f":
                self._advance()
            elif ch == ";":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif ch == "#" and self._peek(1) == "|":
                self._skip_block_comment()
            else:
                return

    def _skip_block_comment(self) -> None:
        start = self._loc()
        self._advance(2)
        depth = 1
        while depth > 0:
            if self.pos >= len(self.text):
                raise ReaderError("unterminated block comment", start)
            if self._peek() == "#" and self._peek(1) == "|":
                self._advance(2)
                depth += 1
            elif self._peek() == "|" and self._peek(1) == "#":
                self._advance(2)
                depth -= 1
            else:
                self._advance()

    def tokens(self) -> Iterator[Token]:
        while True:
            tok = self.next_token()
            yield tok
            if tok.kind == EOF_TOK:
                return

    def next_token(self) -> Token:
        self._skip_atmosphere()
        if self.pos >= len(self.text):
            return Token(EOF_TOK, "", self._loc(0))
        loc = self._loc()
        ch = self._peek()
        if ch in "([{":
            self._advance()
            return Token(LPAREN, ch, loc, paren=ch)
        if ch in ")]}":
            self._advance()
            return Token(RPAREN, ch, loc, paren=ch)
        if ch == "'":
            self._advance()
            return Token(QUOTE, "'", loc)
        if ch == "`":
            self._advance()
            return Token(QUASIQUOTE, "`", loc)
        if ch == ",":
            self._advance()
            if self._peek() == "@":
                self._advance()
                return Token(UNQUOTE_SPLICING, ",@", loc)
            return Token(UNQUOTE, ",", loc)
        if ch == '"':
            return self._string(loc)
        if ch == "|":
            return self._bar_symbol(loc)
        if ch == "#":
            return self._hash(loc)
        return self._atom(loc)

    def _bar_symbol(self, loc: SrcLoc) -> Token:
        """``|...|``: a symbol whose name may contain any character.

        Inside the bars ``\\|`` and ``\\\\`` escape a literal bar/backslash;
        everything else (including whitespace and parens) is taken verbatim.
        """
        self._advance()  # opening bar
        out: list[str] = []
        while True:
            ch = self._peek()
            if not ch:
                raise ReaderError("unterminated |symbol|", loc, code="R004")
            if ch == "\\":
                self._advance()
                escaped = self._peek()
                if not escaped:
                    raise ReaderError("unterminated |symbol|", loc, code="R004")
                out.append(self._advance())
                continue
            if ch == "|":
                self._advance()
                return Token(SYMBOL, "".join(out), loc)
            out.append(self._advance())

    def _string(self, loc: SrcLoc) -> Token:
        self._advance()  # opening quote
        out: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise ReaderError("unterminated string", loc, code="R003")
            ch = self._advance()
            if ch == '"':
                break
            if ch == "\\":
                esc = self._advance()
                if esc == "n":
                    out.append("\n")
                elif esc == "t":
                    out.append("\t")
                elif esc == "r":
                    out.append("\r")
                elif esc == "0":
                    out.append("\0")
                elif esc == "\\":
                    out.append("\\")
                elif esc == '"':
                    out.append('"')
                elif esc == "x":
                    hex_digits = []
                    while self._peek() not in (";", ""):
                        hex_digits.append(self._advance())
                    if self._peek() == ";":
                        self._advance()
                    out.append(chr(int("".join(hex_digits), 16)))
                else:
                    raise ReaderError(f"unknown string escape: \\{esc}", loc)
            else:
                out.append(ch)
        return Token(STRING, "".join(out), loc)

    _CHAR_NAMES = {
        "space": " ",
        "newline": "\n",
        "tab": "\t",
        "return": "\r",
        "nul": "\0",
        "null": "\0",
        "linefeed": "\n",
    }

    def _hash(self, loc: SrcLoc) -> Token:
        nxt = self._peek(1)
        if nxt == "(":
            self._advance(2)
            return Token(VEC_OPEN, "#(", loc)
        if nxt == ";":
            self._advance(2)
            return Token(DATUM_COMMENT, "#;", loc)
        if nxt == "'":
            self._advance(2)
            return Token(SYNTAX_QUOTE, "#'", loc)
        if nxt == "`":
            self._advance(2)
            return Token(QUASISYNTAX, "#`", loc)
        if nxt == ",":
            self._advance(2)
            if self._peek() == "@":
                self._advance()
                return Token(UNSYNTAX_SPLICING, "#,@", loc)
            return Token(UNSYNTAX, "#,", loc)
        if nxt == "\\":
            self._advance(2)
            # a named char or a single char
            name = []
            while self._peek() and self._peek() not in _DELIMITERS:
                name.append(self._advance())
            if not name:
                if not self._peek():
                    raise ReaderError("bad character literal", loc)
                name.append(self._advance())
            text = "".join(name)
            if len(text) == 1:
                return Token(CHAR, text, loc)
            if text in self._CHAR_NAMES:
                return Token(CHAR, self._CHAR_NAMES[text], loc)
            if text.startswith("u") or text.startswith("x"):
                try:
                    return Token(CHAR, chr(int(text[1:], 16)), loc)
                except ValueError:
                    pass
            raise ReaderError(f"unknown character literal: #\\{text}", loc)
        if nxt == ":":
            self._advance(2)
            name = []
            while self._peek() and self._peek() not in _DELIMITERS:
                name.append(self._advance())
            return Token(KEYWORD, "".join(name), loc)
        # #t / #f / #true / #false / #% symbols
        return self._atom(loc)

    def _atom(self, loc: SrcLoc) -> Token:
        out = []
        if self._peek() == "#":
            out.append(self._advance())  # allow leading '#' (for #t, #%app, ...)
        while self._peek() and self._peek() not in _DELIMITERS:
            out.append(self._advance())
        text = "".join(out)
        if not text:
            raise ReaderError(f"unexpected character: {self._peek()!r}", loc)
        if text == ".":
            return Token(DOT, ".", loc)
        return Token(ATOM, text, loc)
