"""The datum reader: tokens -> syntax objects with source locations."""

from __future__ import annotations

import re
from fractions import Fraction
from typing import Any, Optional

from repro.errors import ReaderError
from repro.reader import lexer as lx
from repro.runtime.values import Char, Keyword, Symbol
from repro.syn.srcloc import SrcLoc
from repro.syn.syntax import ImproperList, Syntax, VectorDatum

_INT_RE = re.compile(r"^[+-]?\d+$")
_RAT_RE = re.compile(r"^[+-]?\d+/\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)(e[+-]?\d+)?$", re.IGNORECASE)
_FLOAT_NEEDS_POINT_RE = re.compile(
    r"^[+-]?((\d+\.\d*|\.\d+)(e[+-]?\d+)?|\d+e[+-]?\d+)$", re.IGNORECASE
)
_COMPLEX_RE = re.compile(
    r"^(?P<re>[+-]?(\d+\.?\d*|\.\d+)(e[+-]?\d+)?)?"
    r"(?P<im>[+-](\d+\.?\d*|\.\d+)?(e[+-]?\d+)?)i$",
    re.IGNORECASE,
)

_SPECIAL_FLOATS = {
    "+inf.0": float("inf"),
    "-inf.0": float("-inf"),
    "+nan.0": float("nan"),
    "-nan.0": float("nan"),
}

_QUOTE_SYMBOLS = {
    lx.QUOTE: "quote",
    lx.QUASIQUOTE: "quasiquote",
    lx.UNQUOTE: "unquote",
    lx.UNQUOTE_SPLICING: "unquote-splicing",
    lx.SYNTAX_QUOTE: "quote-syntax",
    lx.QUASISYNTAX: "quasisyntax",
    lx.UNSYNTAX: "unsyntax",
    lx.UNSYNTAX_SPLICING: "unsyntax-splicing",
}


def classify_atom(text: str, loc: SrcLoc) -> Any:
    """Turn raw atom text into a number, boolean, or symbol."""
    if text in ("#t", "#true"):
        return True
    if text in ("#f", "#false"):
        return False
    if text in _SPECIAL_FLOATS:
        return _SPECIAL_FLOATS[text]
    if _INT_RE.match(text):
        return int(text)
    if _RAT_RE.match(text):
        num, den = text.split("/")
        if int(den) == 0:
            raise ReaderError(f"division by zero in literal: {text}", loc)
        value = Fraction(int(num), int(den))
        return value.numerator if value.denominator == 1 else value
    if _FLOAT_NEEDS_POINT_RE.match(text):
        return float(text)
    m = _COMPLEX_RE.match(text)
    if m:
        re_part = float(m.group("re")) if m.group("re") else 0.0
        im_text = m.group("im")
        if im_text in ("+", "-"):
            im_text += "1"
        return complex(re_part, float(im_text))
    if text.startswith("#") and not text.startswith("#%"):
        raise ReaderError(f"bad syntax: {text}", loc)
    return Symbol(text)


class Reader:
    def __init__(
        self, text: str, source: str = "<string>", session: Any = None
    ) -> None:
        from repro.diagnostics.source import SOURCES

        SOURCES.register(source, text)
        self._lexer = lx.Lexer(text, source)
        self._pending: Optional[lx.Token] = None
        self.source = source
        #: optional DiagnosticSession; when set, `read` recovers from reader
        #: errors (recording them) and resynchronizes at the next plausible
        #: top-level form instead of raising on the first problem.
        self.session = session

    def _next(self) -> lx.Token:
        if self._pending is not None:
            tok, self._pending = self._pending, None
            return tok
        return self._lexer.next_token()

    def _push_back(self, tok: lx.Token) -> None:
        assert self._pending is None
        self._pending = tok

    def read(self) -> Optional[Syntax]:
        """Read one datum; None at end of input.

        With a diagnostic session attached, a malformed datum is recorded
        and skipped: the reader resynchronizes at the next top-level form
        and keeps reading, so one pass reports every lexical problem.
        """
        while True:
            try:
                tok = self._next()
                if tok.kind == lx.EOF_TOK:
                    return None
                if tok.kind == lx.DATUM_COMMENT:
                    commented = self.read()
                    if commented is None:
                        raise ReaderError("expected datum after #;", tok.srcloc)
                    continue
                return self._read_after(tok)
            except ReaderError as err:
                if self.session is None:
                    raise
                self.session.add_exception(err)
                self._resync()

    def _resync(self) -> None:
        """Skip to a plausible top-level recovery point after an error:
        end of input, or an opening paren in column 0 (a new top-level
        form), which is pushed back for the next `read`."""
        self._pending = None
        while True:
            before = self._lexer.pos
            try:
                tok = self._lexer.next_token()
            except ReaderError:
                if self._lexer.pos == before:  # guarantee progress
                    self._lexer._advance()
                continue  # the bad region may contain further lex errors
            if tok.kind == lx.EOF_TOK:
                return
            if tok.kind == lx.LPAREN and tok.srcloc.column == 0:
                self._push_back(tok)
                return

    def _read_after(self, tok: lx.Token) -> Syntax:
        kind = tok.kind
        if kind == lx.LPAREN:
            return self._read_list(tok)
        if kind == lx.VEC_OPEN:
            return self._read_vector(tok)
        if kind == lx.RPAREN:
            raise ReaderError(f"unexpected `{tok.text}`", tok.srcloc)
        if kind == lx.DOT:
            raise ReaderError("unexpected `.`", tok.srcloc)
        if kind == lx.STRING:
            return Syntax(tok.text, srcloc=tok.srcloc)
        if kind == lx.CHAR:
            return Syntax(Char(tok.text), srcloc=tok.srcloc)
        if kind == lx.KEYWORD:
            return Syntax(Keyword(tok.text), srcloc=tok.srcloc)
        if kind in _QUOTE_SYMBOLS:
            inner = self.read()
            if inner is None:
                raise ReaderError(f"expected datum after {tok.text}", tok.srcloc)
            head = Syntax(Symbol(_QUOTE_SYMBOLS[kind]), srcloc=tok.srcloc)
            return Syntax((head, inner), srcloc=tok.srcloc.merge(inner.srcloc))
        if kind == lx.SYMBOL:
            return Syntax(Symbol(tok.text), srcloc=tok.srcloc)
        if kind == lx.ATOM:
            return Syntax(classify_atom(tok.text, tok.srcloc), srcloc=tok.srcloc)
        raise ReaderError(f"unexpected token: {tok.text}", tok.srcloc)  # pragma: no cover

    _MATCHING = {"(": ")", "[": "]", "{": "}"}

    def _read_list(self, open_tok: lx.Token) -> Syntax:
        items: list[Syntax] = []
        tail: Optional[Syntax] = None
        closer = self._MATCHING[open_tok.paren]
        while True:
            tok = self._next()
            if tok.kind == lx.EOF_TOK:
                raise ReaderError(
                    "unexpected end of input in list", open_tok.srcloc, code="R002"
                )
            if tok.kind == lx.RPAREN:
                if tok.paren != closer:
                    raise ReaderError(
                        f"mismatched parens: `{open_tok.paren}` closed by `{tok.paren}`",
                        tok.srcloc,
                    )
                break
            if tok.kind == lx.DATUM_COMMENT:
                if self.read() is None:
                    raise ReaderError("expected datum after #;", tok.srcloc)
                continue
            if tok.kind == lx.DOT:
                if not items:
                    raise ReaderError("`.` at start of list", tok.srcloc)
                tail = self.read()
                if tail is None:
                    raise ReaderError("expected datum after `.`", tok.srcloc)
                close = self._next()
                if close.kind != lx.RPAREN or close.paren != closer:
                    raise ReaderError("expected one datum after `.`", tok.srcloc)
                break
            items.append(self._read_after(tok))
        loc = open_tok.srcloc
        if items:
            loc = loc.merge(items[-1].srcloc)
        if tail is not None:
            if isinstance(tail.e, tuple):
                # (a . (b c)) reads as (a b c)
                stx = Syntax(tuple(items) + tail.e, srcloc=loc.merge(tail.srcloc))
            else:
                stx = Syntax(
                    ImproperList(tuple(items), tail), srcloc=loc.merge(tail.srcloc)
                )
        else:
            stx = Syntax(tuple(items), srcloc=loc)
        if open_tok.paren == "{":
            # Racket-style: braces read as plain lists, but the shape is
            # remembered as a syntax property so dialects (e.g. infix) can
            # give brace expressions their own meaning
            stx = stx.property_put("paren-shape", "{")
        return stx

    def _read_vector(self, open_tok: lx.Token) -> Syntax:
        items: list[Syntax] = []
        while True:
            tok = self._next()
            if tok.kind == lx.EOF_TOK:
                raise ReaderError(
                    "unexpected end of input in vector", open_tok.srcloc, code="R002"
                )
            if tok.kind == lx.RPAREN:
                break
            if tok.kind == lx.DATUM_COMMENT:
                if self.read() is None:
                    raise ReaderError("expected datum after #;", tok.srcloc)
                continue
            if tok.kind == lx.DOT:
                raise ReaderError("`.` not allowed in vector", tok.srcloc)
            items.append(self._read_after(tok))
        return Syntax(VectorDatum(tuple(items)), srcloc=open_tok.srcloc)


def read_string_all(
    text: str, source: str = "<string>", session: Any = None
) -> list[Syntax]:
    """Read every datum in ``text``.

    With a diagnostic ``session``, reader errors are collected there and
    reading continues at the next top-level form.
    """
    reader = Reader(text, source, session=session)
    out: list[Syntax] = []
    while True:
        stx = reader.read()
        if stx is None:
            return out
        out.append(stx)


def read_string_one(text: str, source: str = "<string>") -> Syntax:
    """Read exactly one datum."""
    forms = read_string_all(text, source)
    if len(forms) != 1:
        raise ReaderError(f"expected exactly one datum, found {len(forms)}")
    return forms[0]
