"""The reader: source text -> syntax objects."""

from repro.reader.lang_line import read_module_source, split_lang_line
from repro.reader.reader import Reader, read_string_all, read_string_one

__all__ = [
    "Reader", "read_string_all", "read_string_one",
    "read_module_source", "split_lang_line",
]
