"""The public entry point: a Runtime that compiles and runs ``#lang`` modules.

    from repro import Runtime

    rt = Runtime()
    rt.register_module("m", '#lang racket\\n(displayln (+ 1 2))')
    output = rt.run("m")          # -> "3\\n"
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.core.namespace import Namespace
from repro.diagnostics import CompileResult, Diagnostic
from repro.errors import CompilationFailed, ReproError
from repro.modules.instantiate import instantiate_module
from repro.modules.registry import ModuleRegistry
from repro.runtime.ports import capture_output

_ANON = itertools.count()


class Runtime:
    """A registry of languages and modules plus a runtime namespace factory.

    ``expansion_fuel`` bounds the number of macro-expansion steps spent per
    compilation (default: ``repro.expander.expander.DEFAULT_FUEL``); runaway
    macros fail with :class:`~repro.errors.ExpansionLimitError` instead of
    exhausting the Python stack.
    """

    def __init__(self, *, expansion_fuel: Optional[int] = None) -> None:
        self.registry = ModuleRegistry()
        if expansion_fuel is not None:
            self.registry.expansion_fuel = expansion_fuel
        self._install_languages()

    def _install_languages(self) -> None:
        from repro.langs.count import make_count_language
        from repro.langs.datalog import make_datalog_language
        from repro.langs.lazy import make_lazy_language
        from repro.langs.racket import make_racket_language
        from repro.langs.simple_type import make_simple_type_language
        from repro.langs.typed import make_typed_language

        make_racket_language(self.registry)
        make_count_language(self.registry)
        make_simple_type_language(self.registry)
        make_typed_language(self.registry)
        make_lazy_language(self.registry)
        make_datalog_language(self.registry)

    # -- module registration -------------------------------------------------

    def register_module(self, path: str, source: str) -> str:
        """Register a module from ``#lang`` source text under ``path``."""
        self.registry.register_module_source(path, source)
        return path

    def register_file(self, filename: str) -> str:
        return self.registry.register_file(filename)

    # -- compilation / execution ----------------------------------------------

    def compile(self, path: str, *, diagnostics: bool = False) -> Any:
        """Compile a module (and its dependencies); returns the CompiledModule.

        With ``diagnostics=True``, never raises for compilation problems:
        returns a :class:`~repro.diagnostics.CompileResult` whose
        ``diagnostics`` list holds every error the pipeline collected
        (``result.ok`` distinguishes success), and whose ``module`` is the
        CompiledModule on success.
        """
        if not diagnostics:
            return self.registry.get_compiled(path)
        try:
            module = self.registry.get_compiled(path)
        except CompilationFailed as err:
            return CompileResult(None, list(err.diagnostics))
        except ReproError as err:
            return CompileResult(None, [Diagnostic.from_error(err)])
        return CompileResult(module, [])

    def make_namespace(self) -> Namespace:
        return self.registry.make_runtime_namespace()

    def instantiate(self, path: str, ns: Optional[Namespace] = None) -> Namespace:
        """Compile and run a module; returns the namespace it ran in."""
        if ns is None:
            ns = self.make_namespace()
        instantiate_module(self.registry, path, ns)
        return ns

    def run(self, path: str, ns: Optional[Namespace] = None) -> str:
        """Compile and run a module, capturing and returning its output."""
        with capture_output() as port:
            self.instantiate(path, ns)
        return port.contents()

    def run_source(self, source: str, path: Optional[str] = None) -> str:
        """Register and run anonymous ``#lang`` source text."""
        if path is None:
            path = f"<program-{next(_ANON)}>"
        self.register_module(path, source)
        return self.run(path)

    def run_file(self, filename: str) -> str:
        return self.run(self.register_file(filename))


def main(argv: Optional[list[str]] = None) -> int:
    """CLI: ``python -m repro program.rkt`` runs a ``#lang`` module file."""
    import sys

    args = argv if argv is not None else sys.argv[1:]
    if not args:
        print("usage: python -m repro <file.rkt>", file=sys.stderr)
        return 2
    rt = Runtime()
    try:
        path = rt.register_file(args[0])
        rt.instantiate(path)
    except ReproError as err:
        # a platform error (parse, expansion, type, module, runtime): render
        # the diagnostic report, not a Python traceback
        print(err, file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: cannot read {args[0]}: {err.strerror or err}", file=sys.stderr)
        return 1
    return 0
