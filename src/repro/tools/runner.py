"""The public entry point: a Runtime that compiles and runs ``#lang`` modules.

    from repro import Runtime

    rt = Runtime()
    rt.register_module("m", '#lang racket\\n(displayln (+ 1 2))')
    output = rt.run("m")          # -> "3\\n"
"""

from __future__ import annotations

import itertools
import os
import weakref
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.core.namespace import Namespace
from repro.diagnostics import CompileResult, Diagnostic
from repro.errors import CompilationFailed, ReproError
from repro.guard.budget import Budget, CancelToken, resolve_budget, use_guard
from repro.modules.cache import ENV_CACHE_DIR, ModuleCache, default_cache_dir
from repro.modules.instantiate import instantiate_module
from repro.modules.registry import ModuleRegistry
from repro.observe.recorder import (
    Recorder,
    Tracer,
    install_global_tracer,
    resolve_trace,
    uninstall_global_tracer,
    use_recorder,
)
from repro.runtime.ports import capture_output
from repro.runtime.stats import Stats, set_ambient_stats, use_stats

_ANON = itertools.count()

#: environment variable supplying the default Runtime backend ("interp" or
#: "pyc"); the explicit ``Runtime(backend=...)`` argument wins over it
ENV_BACKEND = "REPRO_BACKEND"


class Runtime:
    """A registry of languages and modules plus a runtime namespace factory.

    ``expansion_fuel`` bounds the number of macro-expansion steps spent per
    compilation (default: ``repro.expander.expander.DEFAULT_FUEL``); runaway
    macros fail with :class:`~repro.errors.ExpansionLimitError` instead of
    exhausting the Python stack.

    ``cache`` / ``cache_dir`` control the persistent compiled-artifact cache
    (:mod:`repro.modules.cache`). By default the library Runtime compiles
    from source every time (hermetic for tests); pass ``cache=True`` to use
    the default directory (``.repro-cache/``, or ``$REPRO_CACHE_DIR``),
    ``cache_dir="..."`` to use a specific one, or ``cache=False`` to force
    it off even when the environment variable is set. The ``repro`` CLI
    enables the cache by default, mirroring Racket's ``compiled/``.

    ``budget`` attaches a resource governor (:mod:`repro.guard`): ``None``
    (default) runs ungoverned at zero overhead; ``True`` attaches a
    :class:`~repro.guard.Budget` with no limits (step counting plus
    cancellation); an ``int`` is a step budget; a ``dict`` passes keyword
    arguments through (``steps``, ``seconds``, ``max_depth``,
    ``allocations``); a :class:`~repro.guard.Budget` instance is used as
    given (shareable across Runtimes for one joint allowance). Exhaustion
    raises :class:`~repro.errors.BudgetExhausted` with a stable ``G`` code;
    ``rt.cancel()`` (or the token at ``rt.cancel_token``, from any thread)
    aborts the in-flight evaluation cooperatively with
    :class:`~repro.errors.EvaluationCancelled`.

    ``trace`` selects the observability recorder (:mod:`repro.observe`):
    ``None`` (default) adopts the process-global tracer if one is installed,
    otherwise no tracing; ``True`` attaches a fresh :class:`Tracer` (phase
    spans, macro steps, optimization-coach events); ``"full"`` additionally
    renders each macro step's input/output syntax (the stepper's expensive
    mode); ``False`` forces tracing off; a :class:`Recorder` instance is
    used as given. The attached recorder is ``rt.tracer``.

    ``backend`` selects how module bodies execute (see
    :mod:`repro.core.backend`): ``"interp"`` (default) walks closure-compiled
    trees; ``"pyc"`` lowers the core AST to real CPython code objects
    (marshalled into the ``.zo`` artifact, so warm starts skip codegen).
    Defaults to ``$REPRO_BACKEND`` when set. Both backends share the
    expander, guard budgets, contracts, and observe bus, and produce
    identical values, output, and diagnostics.

    Each Runtime owns its instrumentation counters (``rt.stats``) and its
    slice of the global binding table; ``close()`` (or garbage collection,
    or use as a context manager) reclaims the table entries so repeated
    fresh Runtimes do not grow process memory.
    """

    def __init__(
        self,
        *,
        expansion_fuel: Optional[int] = None,
        cache: Optional[bool] = None,
        cache_dir: Optional[str] = None,
        trace: Any = None,
        budget: Any = None,
        backend: Optional[str] = None,
    ) -> None:
        from repro.core.backend import validate_backend

        self.registry = ModuleRegistry()
        if backend is None:
            backend = os.environ.get(ENV_BACKEND) or "interp"
        self.registry.backend = validate_backend(backend)
        if expansion_fuel is not None:
            self.registry.expansion_fuel = expansion_fuel
        self.stats = Stats()
        self.budget: Optional[Budget] = resolve_budget(budget)
        # module-level STATS reads now track this (newest) Runtime
        set_ambient_stats(self.stats)
        self.tracer: Optional[Recorder] = resolve_trace(trace)
        self.cache: Optional[ModuleCache] = None
        if cache is not False:
            resolved = cache_dir or (
                os.environ.get(ENV_CACHE_DIR) if cache is None else None
            )
            if resolved is None and cache is True:
                resolved = default_cache_dir()
            if resolved is not None:
                self.cache = ModuleCache(resolved)
        self.registry.cache = self.cache
        self._install_languages()
        # reclaim this Runtime's binding-table entries even if the user
        # never calls close(); the finalizer must not reference `self`
        self._finalizer = weakref.finalize(
            self, Runtime._reclaim, self.registry
        )

    @staticmethod
    def _reclaim(registry: ModuleRegistry) -> int:
        return registry.release_bindings()

    def close(self) -> int:
        """Release this Runtime's global binding-table entries.

        Returns the number of entries reclaimed. Idempotent; the Runtime
        must not be used afterwards.
        """
        if self._finalizer.alive:
            self._finalizer.detach()
            return Runtime._reclaim(self.registry)
        return 0

    def __enter__(self) -> "Runtime":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def _install_languages(self) -> None:
        from repro.langs.count import make_count_language
        from repro.langs.datalog import make_datalog_language
        from repro.langs.infix import make_infix_language
        from repro.langs.lazy import make_lazy_language
        from repro.langs.match_ext import make_match_ext_language
        from repro.langs.racket import make_racket_language
        from repro.langs.simple_type import make_simple_type_language
        from repro.langs.typed import make_typed_language

        make_racket_language(self.registry)
        make_count_language(self.registry)
        make_simple_type_language(self.registry)
        make_typed_language(self.registry)
        make_lazy_language(self.registry)
        make_datalog_language(self.registry)
        make_match_ext_language(self.registry)
        make_infix_language(self.registry)

    @contextmanager
    def _observed(self) -> Iterator[None]:
        """Activate this Runtime's stats, recorder, and budget for one
        operation; governed work is mirrored into ``stats.eval_steps`` /
        ``stats.eval_allocations`` even when the run is killed."""
        with use_stats(self.stats):
            if self.tracer is not None:
                with use_recorder(self.tracer):
                    with self._governed():
                        yield
            else:
                with self._governed():
                    yield

    @contextmanager
    def _governed(self) -> Iterator[None]:
        budget = self.budget
        if budget is None:
            yield
            return
        steps_before = budget.steps_used
        allocs_before = budget.allocs_used
        try:
            with use_guard(budget):
                yield
        finally:
            self.stats.eval_steps += budget.steps_used - steps_before
            self.stats.eval_allocations += budget.allocs_used - allocs_before

    # -- cancellation ---------------------------------------------------------

    @property
    def cancel_token(self) -> Optional[CancelToken]:
        """The cooperative cancellation token (None when ungoverned)."""
        return self.budget.cancel if self.budget is not None else None

    def cancel(self, reason: Optional[str] = None) -> None:
        """Abort the in-flight evaluation (callable from any thread).

        The governed evaluator notices at its next checkpoint and raises
        :class:`~repro.errors.EvaluationCancelled`. Requires a budget —
        pass ``budget=True`` for a no-limit, cancellable Runtime.
        """
        if self.budget is None:
            raise ValueError(
                "Runtime has no budget; pass budget=True (or limits) to "
                "make evaluations cancellable"
            )
        self.budget.cancel.cancel(reason)

    # -- module registration -------------------------------------------------

    def register_module(self, path: str, source: str) -> str:
        """Register a module from ``#lang`` source text under ``path``."""
        with self._observed():
            self.registry.register_module_source(path, source)
        return path

    def register_file(self, filename: str) -> str:
        with self._observed():
            return self.registry.register_file(filename)

    # -- compilation / execution ----------------------------------------------

    def compile(self, path: str, *, diagnostics: bool = False) -> Any:
        """Compile a module (and its dependencies); returns the CompiledModule.

        With ``diagnostics=True``, never raises for compilation problems:
        returns a :class:`~repro.diagnostics.CompileResult` whose
        ``diagnostics`` list holds every error the pipeline collected
        (``result.ok`` distinguishes success), and whose ``module`` is the
        CompiledModule on success.
        """
        with self._observed():
            if not diagnostics:
                return self.registry.get_compiled(path)
            try:
                module = self.registry.get_compiled(path)
            except CompilationFailed as err:
                return CompileResult(None, list(err.diagnostics))
            except ReproError as err:
                return CompileResult(None, [Diagnostic.from_error(err)])
            return CompileResult(module, [])

    def compile_graph(
        self,
        paths: list[str],
        *,
        jobs: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> Any:
        """Compile a module graph in parallel (see
        :func:`repro.modules.graph.compile_graph`): independent modules fan
        out across a worker pool (``jobs=None`` → ``os.cpu_count()``), the
        artifact cache is the coordination point, and on return every
        module is compiled in *this* Runtime exactly as if it had compiled
        the graph serially. ``jobs > 1`` requires the cache."""
        with self._observed():
            return self.registry.compile_graph(paths, jobs=jobs, mode=mode)

    def make_namespace(self) -> Namespace:
        return self.registry.make_runtime_namespace()

    def instantiate(self, path: str, ns: Optional[Namespace] = None) -> Namespace:
        """Compile and run a module; returns the namespace it ran in."""
        with self._observed():
            if ns is None:
                ns = self.make_namespace()
            instantiate_module(self.registry, path, ns)
            return ns

    def run(self, path: str, ns: Optional[Namespace] = None) -> str:
        """Compile and run a module, capturing and returning its output."""
        with capture_output() as port:
            self.instantiate(path, ns)
        return port.contents()

    def run_source(self, source: str, path: Optional[str] = None) -> str:
        """Register and run anonymous ``#lang`` source text."""
        if path is None:
            path = f"<program-{next(_ANON)}>"
        self.register_module(path, source)
        return self.run(path)

    def run_file(self, filename: str) -> str:
        return self.run(self.register_file(filename))

    @property
    def backend(self) -> str:
        """The active execution backend (``"interp"`` or ``"pyc"``)."""
        return self.registry.backend

    # -- cache helpers --------------------------------------------------------

    def cache_stats(self) -> dict[str, int]:
        """Hit/miss/store/invalidation counters for this Runtime's cache."""
        snap = self.stats.snapshot()
        return {k: v for k, v in snap.items() if k.startswith("cache_")}


_USAGE = """\
usage: python -m repro [options] <file.rkt>
       python -m repro run [options] <file.rkt>
       python -m repro trace <file.rkt|script.py> [--format chrome|summary|jsonl] [--out FILE]
       python -m repro import-smoke [options] <module.name> [--dir DIR]
       python -m repro serve [--host H] [--port P] [--backend B] [--cache-dir D]
       python -m repro cache stats
       python -m repro cache clear
       python -m repro cache doctor
       python -m repro langs [--json]

langs lists every registered language (with the dialect stack its #lang
line implies) and every registered dialect (with the version folded into
artifact-cache keys); --json emits the machine-readable form
(schema repro-langs/1).

serve runs the long-lived compile-and-eval service (repro.serve): JSON over
HTTP, per-tenant Runtime pools sharing one artifact cache, and per-request
budgets (--steps/--time-limit/--max-depth set the default; each request can
override). POST /run and /compile, GET /healthz and /stats.

import-smoke installs the #lang import hook (repro.importer), imports the
named Python module (resolving registered #lang files such as .rkt), and
reports its provides plus cache/expansion counters — "expansions=0" on a
warm cache proves the import skipped macro expansion entirely. --dir DIR
prepends DIR to sys.path (default: the working directory).

options:
  --backend NAME       execution backend: interp (closure trees, default)
                       or pyc (CPython code objects); also $REPRO_BACKEND
  --cache              use the compiled-artifact cache (default)
  --no-cache           compile from source, ignore the cache
  --cache-dir DIR      cache directory (default .repro-cache/ or $REPRO_CACHE_DIR)
  --log-optimizations  report fired + near-miss type specializations on
                       stderr after the run (implies --no-cache)
  --steps N            evaluation step budget (G001 diagnostic on exhaustion)
  --time-limit SECS    wall-clock evaluation budget (G002 on exhaustion)
  --max-depth N        non-tail recursion depth budget (G003 on exhaustion)

trace writes the trace to stdout (or --out FILE) and the program's own
output to stderr. Tracing a .py driver script installs a process-global
tracer observed by every Runtime the script creates; a .rkt file is run
directly, with the artifact cache off so the whole pipeline is visible.
"""


def _cache_command(args: list[str], cache_dir: Optional[str]) -> int:
    import sys

    cache = ModuleCache(cache_dir)
    sub = args[0] if args else "stats"
    if sub == "clear":
        report = cache.clear()
        parts = [f"{report['artifacts']} artifact(s)"]
        if report["quarantined"]:
            parts.append(f"{report['quarantined']} quarantined file(s)")
        if report["tmp"]:
            parts.append(f"{report['tmp']} torn-write temp file(s)")
        if report["locks"]:
            parts.append(f"{report['locks']} stale lock(s)")
        print(f"removed {', '.join(parts)} from {cache.dir}")
        for problem in report["errors"]:
            print(f"  error: {problem}", file=sys.stderr)
        return 1 if report["errors"] else 0
    if sub == "stats":
        entries = cache.entries()
        total = sum(size for _name, size in entries)
        print(f"cache directory: {cache.dir}")
        print(f"artifacts: {len(entries)} ({total} bytes)")
        for name, size in entries:
            print(f"  {name}  {size} bytes")
        return 0
    if sub == "doctor":
        report = cache.doctor()
        print(f"cache directory: {report['dir']}")
        print(f"artifacts scanned: {report['scanned']} ({report['ok']} ok)")
        for name, magic in report.get("old_version", []):
            print(
                f"  old format {name}: intact artifact from cache version "
                f"{magic!r} (ignored by loads; safe to clear)"
            )
        for name, why, dest in report["quarantined"]:
            print(f"  quarantined {name}: {why} -> {dest}")
        for name in report["tmp_removed"]:
            print(f"  removed torn-write debris {name}")
        for name, pid in report.get("tmp_live", []):
            print(
                f"  in-flight write {name}: writer pid {pid} is alive "
                f"(left alone; doctor is safe to run mid-compile)"
            )
        for name in report["locks_removed"]:
            print(f"  removed stale lock {name}")
        for name, pid in report.get("locks_held", []):
            holder = f"pid {pid}" if pid and pid > 0 else "unknown pid"
            print(f"  lock {name}: held by live {holder} (left alone)")
        for problem in report["errors"]:
            print(f"  error: {problem}")
        if not (
            report.get("old_version")
            or report["quarantined"]
            or report["tmp_removed"]
            or report.get("tmp_live")
            or report["locks_removed"]
            or report.get("locks_held")
            or report["errors"]
        ):
            print("no problems found")
        return 1 if report["errors"] else 0
    print(f"error: unknown cache command: {sub}", file=sys.stderr)
    return 2


def _import_smoke_command(
    args: list[str],
    *,
    use_cache: Optional[bool],
    cache_dir: Optional[str],
    backend: Optional[str],
    budget_limits: dict[str, Any],
) -> int:
    """``repro import-smoke app.rules`` — import a ``#lang`` module through
    the meta-path hook and report provides + counters. Exit 0 on success,
    1 on ImportError (the diagnostic chain is printed)."""
    import importlib
    import sys

    from repro.importer import ReproImportError, install, uninstall

    search_dir: Optional[str] = None
    names: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--dir":
            if i + 1 >= len(args):
                print("error: --dir requires a directory", file=sys.stderr)
                return 2
            i += 1
            search_dir = args[i]
        elif arg.startswith("--dir="):
            search_dir = arg[len("--dir="):]
        else:
            names.append(arg)
        i += 1
    if len(names) != 1:
        print(_USAGE, file=sys.stderr)
        return 2
    sys.path.insert(0, search_dir if search_dir is not None else os.getcwd())
    try:
        rt = Runtime(
            cache=use_cache,
            cache_dir=cache_dir,
            backend=backend,
            budget=budget_limits or None,
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    install(rt)
    try:
        module = importlib.import_module(names[0])
    except ReproImportError as err:
        print(f"error: {err}", file=sys.stderr)
        rt.close()
        return 1
    except ImportError as err:
        print(f"error: cannot import {names[0]}: {err}", file=sys.stderr)
        rt.close()
        return 1
    finally:
        uninstall()
        for diag in rt.cache.diagnostics if rt.cache is not None else ():
            print(diag, file=sys.stderr)
    language = getattr(module, "__language__", None)
    if language is None:
        print(
            f"error: {names[0]} resolved to a plain Python module "
            f"({getattr(module, '__file__', '?')}), not a #lang file",
            file=sys.stderr,
        )
        return 1
    snap = rt.stats
    print(f"imported {names[0]} from {module.__file__} (#lang {language})")
    print(f"provides: {', '.join(module.__provides__) or '(none)'}")
    print(
        f"[import] expansions={snap.expansion_steps} "
        f"codegens={snap.pyc_codegens} cache hits={snap.cache_hits} "
        f"misses={snap.cache_misses} stores={snap.cache_stores}"
    )
    rt.close()
    return 0


def _langs_command(args: list[str]) -> int:
    """``repro langs`` — list registered languages and dialects."""
    import json
    import sys

    as_json = False
    for arg in args:
        if arg == "--json":
            as_json = True
        else:
            print(f"error: unknown langs option: {arg}", file=sys.stderr)
            return 2
    rt = Runtime(cache=False)
    try:
        registry = rt.registry
        # keyed by the registered spec (what a #lang line may say), so
        # aliases list once each instead of repeating the Language's name
        languages = [
            {
                "name": spec,
                "dialects": list(lang.dialect_names),
                "exports": len(lang.exports),
            }
            for spec, lang in sorted(registry.languages.items())
        ]
        dialects = [
            {"name": d.name, "version": d.version}
            for _, d in sorted(registry.dialects.items())
        ]
    finally:
        rt.close()
    if as_json:
        print(json.dumps(
            {
                "schema": "repro-langs/1",
                "languages": languages,
                "dialects": dialects,
            },
            indent=2,
            sort_keys=True,
        ))
        return 0
    print("languages:")
    for entry in languages:
        stack = f" (dialects: {', '.join(entry['dialects'])})" if entry["dialects"] else ""
        print(f"  {entry['name']}  {entry['exports']} exports{stack}")
    print("dialects:")
    if not dialects:
        print("  (none)")
    for entry in dialects:
        print(f"  {entry['name']}  version {entry['version']}")
    return 0


def _trace_command(args: list[str]) -> int:
    """``repro trace file`` — run under a full tracer, emit the trace.

    The trace goes to stdout (or ``--out FILE``); the traced program's own
    output is redirected to stderr so a chrome/jsonl export stays parseable.
    A ``.py`` file is treated as a driver script and run under a
    process-global tracer; anything else is run as a ``#lang`` module file
    with the artifact cache disabled (a cache hit would skip expansion and
    leave nothing to trace).
    """
    import sys
    from contextlib import redirect_stdout

    from repro.observe.profiler import export as export_trace

    fmt = "chrome"
    out: Optional[str] = None
    files: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--format":
            if i + 1 >= len(args):
                print("error: --format requires a value", file=sys.stderr)
                return 2
            i += 1
            fmt = args[i]
        elif arg.startswith("--format="):
            fmt = arg[len("--format="):]
        elif arg == "--out":
            if i + 1 >= len(args):
                print("error: --out requires a file", file=sys.stderr)
                return 2
            i += 1
            out = args[i]
        elif arg.startswith("--out="):
            out = arg[len("--out="):]
        else:
            files.append(arg)
        i += 1
    if fmt not in ("chrome", "summary", "jsonl"):
        print(f"error: unknown trace format: {fmt} (chrome|summary|jsonl)",
              file=sys.stderr)
        return 2
    if len(files) != 1:
        print(_USAGE, file=sys.stderr)
        return 2
    file = files[0]

    tracer = Tracer(capture_syntax=True)
    if file.endswith(".py"):
        import runpy

        install_global_tracer(tracer)
        try:
            with redirect_stdout(sys.stderr):
                runpy.run_path(file, run_name="__main__")
        except SystemExit as exc:
            code = exc.code if isinstance(exc.code, int) else 0 if exc.code is None else 1
            if code != 0:
                print(f"error: {file} exited with status {code}", file=sys.stderr)
                return code
        except OSError as err:
            print(f"error: cannot run {file}: {err.strerror or err}", file=sys.stderr)
            return 1
        finally:
            uninstall_global_tracer()
    else:
        rt = Runtime(trace=tracer, cache=False)
        try:
            path = rt.register_file(file)
            output = rt.run(path)
        except ReproError as err:
            print(err, file=sys.stderr)
            return 1
        except OSError as err:
            print(f"error: cannot read {file}: {err.strerror or err}", file=sys.stderr)
            return 1
        finally:
            rt.close()
        if output:
            sys.stderr.write(output)

    text = export_trace(tracer, fmt)
    if out is not None:
        with open(out, "w", encoding="utf-8") as f:
            f.write(text)
            if not text.endswith("\n"):
                f.write("\n")
        print(f"wrote {fmt} trace ({len(tracer.events)} events) to {out}",
              file=sys.stderr)
    else:
        print(text)
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    """CLI: ``python -m repro program.rkt`` runs a ``#lang`` module file."""
    import sys

    args = list(argv if argv is not None else sys.argv[1:])
    use_cache: Optional[bool] = True  # the CLI mirrors Racket's compiled/
    cache_dir: Optional[str] = None
    backend: Optional[str] = None
    log_optimizations = False
    budget_limits: dict[str, Any] = {}

    def _budget_value(name: str, raw: str, convert: Any) -> bool:
        try:
            value = convert(raw)
        except ValueError:
            print(f"error: {name} requires a number, got {raw!r}", file=sys.stderr)
            return False
        if value <= 0:
            print(f"error: {name} must be positive", file=sys.stderr)
            return False
        budget_limits[
            {"--steps": "steps", "--time-limit": "seconds",
             "--max-depth": "max_depth"}[name]
        ] = value
        return True

    _BUDGET_FLAGS = {"--steps": int, "--time-limit": float, "--max-depth": int}
    rest: list[str] = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--cache":
            use_cache = True
        elif arg == "--no-cache":
            use_cache = False
        elif arg == "--cache-dir":
            if i + 1 >= len(args):
                print("error: --cache-dir requires a directory", file=sys.stderr)
                return 2
            i += 1
            cache_dir = args[i]
        elif arg.startswith("--cache-dir="):
            cache_dir = arg[len("--cache-dir="):]
        elif arg == "--backend":
            if i + 1 >= len(args):
                print("error: --backend requires a name", file=sys.stderr)
                return 2
            i += 1
            backend = args[i]
        elif arg.startswith("--backend="):
            backend = arg[len("--backend="):]
        elif arg == "--log-optimizations":
            log_optimizations = True
        elif arg in _BUDGET_FLAGS:
            if i + 1 >= len(args):
                print(f"error: {arg} requires a value", file=sys.stderr)
                return 2
            i += 1
            if not _budget_value(arg, args[i], _BUDGET_FLAGS[arg]):
                return 2
        elif any(arg.startswith(f"{flag}=") for flag in _BUDGET_FLAGS):
            flag, _, raw = arg.partition("=")
            if not _budget_value(flag, raw, _BUDGET_FLAGS[flag]):
                return 2
        else:
            rest.append(arg)
        i += 1

    if rest and rest[0] == "serve":
        from repro.serve import serve_command

        serve_args = rest[1:]
        if backend is not None:
            serve_args = [f"--backend={backend}"] + serve_args
        if cache_dir is not None:
            serve_args = [f"--cache-dir={cache_dir}"] + serve_args
        for key, flag in (("steps", "--steps"), ("seconds", "--time-limit"),
                          ("max_depth", "--max-depth")):
            if key in budget_limits:
                serve_args = [f"{flag}={budget_limits[key]}"] + serve_args
        return serve_command(serve_args)
    if rest and rest[0] == "cache":
        return _cache_command(rest[1:], cache_dir)
    if rest and rest[0] == "langs":
        return _langs_command(rest[1:])
    if rest and rest[0] == "trace":
        return _trace_command(rest[1:])
    if rest and rest[0] == "import-smoke":
        return _import_smoke_command(
            rest[1:],
            use_cache=use_cache,
            cache_dir=cache_dir,
            backend=backend,
            budget_limits=budget_limits,
        )
    if rest and rest[0] == "run":
        rest = rest[1:]

    if not rest:
        print(_USAGE, file=sys.stderr)
        return 2
    tracer: Optional[Tracer] = None
    if log_optimizations:
        # a cache hit would skip the optimizer — nothing for the coach to see
        tracer = Tracer()
        use_cache = False
    try:
        rt = Runtime(
            cache=use_cache,
            cache_dir=cache_dir,
            trace=tracer,
            budget=budget_limits or None,
            backend=backend,
        )
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    try:
        path = rt.register_file(rest[0])
        rt.instantiate(path)
    except ReproError as err:
        # a platform error (parse, expansion, type, module, runtime): render
        # the diagnostic report, not a Python traceback
        print(err, file=sys.stderr)
        return 1
    except OSError as err:
        print(f"error: cannot read {rest[0]}: {err.strerror or err}", file=sys.stderr)
        return 1
    finally:
        if rt.cache is not None:
            for diag in rt.cache.diagnostics:
                print(diag, file=sys.stderr)
        rt.close()
    if tracer is not None:
        from repro.observe.coach import coach_report

        print(coach_report(tracer), file=sys.stderr)
    snap = rt.stats
    if rt.cache is not None and (snap.cache_hits or snap.cache_misses):
        print(
            f"[cache] hits={snap.cache_hits} misses={snap.cache_misses} "
            f"stores={snap.cache_stores} invalidations={snap.cache_invalidations}",
            file=sys.stderr,
        )
    return 0
