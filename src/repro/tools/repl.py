"""A simple REPL for the platform.

Each entered form is appended to an accumulating module body which is
recompiled and re-run (in a fresh namespace) after every input — simple,
and exactly right for a module-oriented language where compilation is the
interesting phase. Definitions persist; expression results print.

    $ python -m repro --repl [language]
    repro> (define (square x) (* x x))
    repro> (square 12)
    144
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.errors import ReproError
from repro.reader.reader import Reader
from repro.tools.runner import Runtime


class Repl:
    def __init__(self, language: str = "racket") -> None:
        self.runtime = Runtime()
        self.language = language
        self.forms: list[str] = []
        self._counter = 0
        self._last_output = ""

    def eval_input(self, text: str) -> str:
        """Process one input; returns the *new* output it produced."""
        text = text.strip()
        if not text:
            return ""
        # validate it reads as one or more complete forms
        reader = Reader(text, "<repl>")
        parsed = []
        while True:
            form = reader.read()
            if form is None:
                break
            parsed.append(form)
        if not parsed:
            return ""
        candidate = self.forms + [self._wrap(text, parsed)]
        source = f"#lang {self.language}\n" + "\n".join(candidate)
        self._counter += 1
        path = f"<repl-{self._counter}>"
        self.runtime.register_module(path, source)
        output = self.runtime.run(path)
        new_output = output[len(self._last_output):] if output.startswith(
            self._last_output
        ) else output
        self.forms = candidate
        self._last_output = output
        return new_output

    def _wrap(self, text: str, parsed: list) -> str:
        """Expressions get their value displayed; definitions run silently."""
        from repro.runtime.values import Symbol
        from repro.syn.syntax import Syntax

        def is_definition(stx: Syntax) -> bool:
            if not (isinstance(stx.e, tuple) and stx.e and stx.e[0].is_identifier()):
                return False
            return stx.e[0].e.name in (
                "define", "define:", "define-values", "define-syntax",
                "define-syntaxes", "define-struct", "struct", "require",
                "provide", ":",
            )

        if len(parsed) == 1 and not is_definition(parsed[0]):
            return f"(%repl-show {text})"
        return text

    def run(self, stdin=None, stdout=None) -> int:
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        stdout.write(f"repro REPL (#lang {self.language}); ctrl-D to exit\n")
        # %repl-show displays non-void values, like Racket's REPL
        if self.language in ("typed", "typed/racket", "simple-type"):
            self.forms.append(
                "(define (%repl-show [v : Any]) : Void"
                " (if (void? v) (void) (displayln v)))"
            )
        else:
            self.forms.append(
                "(define (%repl-show v) (if (void? v) (void) (displayln v)))"
            )
        while True:
            stdout.write("repro> ")
            stdout.flush()
            line = stdin.readline()
            if not line:
                stdout.write("\n")
                return 0
            try:
                stdout.write(self.eval_input(line))
            except ReproError as error:
                # reader / expansion / type / contract / runtime errors (and
                # aggregated CompilationFailed reports, whose message carries
                # every rendered diagnostic) all land here; the accumulated
                # module body is unchanged, so the session continues
                stdout.write(f"error: {error}\n")
            except RecursionError:
                stdout.write("error: recursion limit exceeded\n")
            except KeyboardInterrupt:  # pragma: no cover
                stdout.write("\n")
            except Exception as error:  # never let one input kill the REPL
                stdout.write(f"error: internal: {type(error).__name__}: {error}\n")


def main(argv: Optional[list[str]] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    language = args[0] if args else "racket"
    return Repl(language).run()
