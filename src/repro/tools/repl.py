"""A simple REPL for the platform.

Each entered form is appended to an accumulating module body which is
recompiled and re-run (in a fresh namespace) after every input — simple,
and exactly right for a module-oriented language where compilation is the
interesting phase. Definitions persist; expression results print.

    $ python -m repro --repl [language]
    repro> (define (square x) (* x x))
    repro> (square 12)
    144

Meta-commands (",help" lists them) expose the observability subsystem:
``,trace`` shows the macro steps and optimization-coach events of the last
input, ``,stats`` the runtime's counters.
"""

from __future__ import annotations

import sys
from typing import Optional

from repro.errors import ReproError
from repro.guard import Budget
from repro.reader.reader import Reader
from repro.tools.runner import Runtime

_META_HELP = """\
meta-commands:
  ,help            show this help
  ,stats           show this session's runtime counters and phase timings
  ,stats reset     zero the counters
  ,trace           show macro steps + coach report for the last input
  ,budget          show the session's evaluation budget and usage
  ,budget NAME N   set a limit (steps | seconds | depth | allocations)
  ,budget NAME off clear a limit
  ,backend         show the active execution backend
  ,backend NAME    switch backend (interp | pyc); next input runs under it
  ,import NAME     import a #lang file as a Python module via the import
                   hook (repro.importer) and list its provides
"""

#: observe phases attributed to each backend's final pipeline stage; the
#: shared phases (read/expand/typecheck/...) belong to both
_BACKEND_PHASES = {
    "interp": ("closure-compile",),
    "pyc": ("pyc-codegen", "pyc-link"),
}

_BUDGET_NAMES = {
    "steps": "steps",
    "seconds": "seconds",
    "depth": "max_depth",
    "allocations": "allocations",
}


class Repl:
    def __init__(self, language: str = "racket",
                 backend: Optional[str] = None) -> None:
        # trace="full": the stepper renders each macro step's syntax, which
        # is what ,trace shows. cache=False: every input recompiles the
        # accumulated module, so expansion (the thing being traced) must
        # actually run. budget: a no-limit Budget, so ,stats reports the
        # evaluation steps each input consumed and ,budget can set limits
        # (a runaway input then dies with a G-code instead of hanging).
        self.runtime = Runtime(trace="full", cache=False, budget=Budget(),
                               backend=backend)
        self.language = language
        self.forms: list[str] = []
        self._counter = 0
        self._last_output = ""
        #: event-bus index where the last evaluation started
        self._mark = 0
        #: module path + first source line of the last entered form (the
        #: accumulated module re-expands *old* forms too; ,trace filters
        #: the log down to the new one by line)
        self._last_path: Optional[str] = None
        self._last_start_line = 0

    def eval_input(self, text: str) -> str:
        """Process one input; returns the *new* output it produced."""
        text = text.strip()
        if not text:
            return ""
        if text.startswith(","):
            return self._meta_command(text)
        # validate it reads as one or more complete forms
        reader = Reader(text, "<repl>")
        parsed = []
        while True:
            form = reader.read()
            if form is None:
                break
            parsed.append(form)
        if not parsed:
            return ""
        candidate = self.forms + [self._wrap(text, parsed)]
        source = f"#lang {self.language}\n" + "\n".join(candidate)
        # the budget is a fresh allowance per input (the session total stays
        # in stats.eval_steps); without this, one exhausted input would
        # poison every later one
        self.runtime.budget.reset()
        self._counter += 1
        path = f"<repl-{self._counter}>"
        tracer = self.runtime.tracer
        self._mark = len(tracer.events)
        self._last_path = path
        # line 1 is "#lang ..."; each earlier form occupies its own line(s)
        self._last_start_line = 2 + sum(f.count("\n") + 1 for f in self.forms)
        self.runtime.register_module(path, source)
        output = self.runtime.run(path)
        new_output = output[len(self._last_output):] if output.startswith(
            self._last_output
        ) else output
        self.forms = candidate
        self._last_output = output
        return new_output

    # -- meta-commands -------------------------------------------------------

    def _meta_command(self, text: str) -> str:
        parts = text.split()
        cmd, args = parts[0], parts[1:]
        if cmd == ",help":
            return _META_HELP
        if cmd == ",stats":
            if args[:1] == ["reset"]:
                self.runtime.stats.reset()
                return "stats reset\n"
            snap = self.runtime.stats.snapshot()
            lines = [
                f"  {name:<22} {value}"
                for name, value in snap.items()
                if name != "expansion_by_macro"
            ]
            top = self.runtime.stats.top_macros(5)
            if top:
                lines.append("  expansion steps by macro:")
                lines.extend(f"    {name:<20} {count}" for name, count in top)
            lines.extend(self._phase_lines())
            return "\n".join(lines) + "\n"
        if cmd == ",trace":
            return self._trace_report()
        if cmd == ",budget":
            return self._budget_command(args)
        if cmd == ",backend":
            return self._backend_command(args)
        if cmd == ",import":
            return self._import_command(args)
        return f"unknown meta-command {cmd} (try ,help)\n"

    def _import_command(self, args: list[str]) -> str:
        """Demo the meta-path hook from the REPL: ``,import app.rules``
        imports a ``#lang`` file (searched on sys.path + the working
        directory) as a Python module and lists its provides."""
        import importlib
        import os
        import sys

        from repro.importer import ReproImportError, install, installed

        if len(args) != 1:
            return "usage: ,import MODULE.NAME (resolves MODULE/NAME.rkt)\n"
        if installed() is None:
            # the REPL session shares one hook; its runtime matches the
            # session's backend, and caching stays on (imports are the
            # deployment path, unlike the REPL's always-recompile loop)
            install(backend=self.runtime.registry.backend)
        cwd = os.getcwd()
        if cwd not in sys.path:
            sys.path.insert(0, cwd)
        name = args[0]
        try:
            sys.modules.pop(name, None)  # re-import on request
            module = importlib.import_module(name)
        except ReproImportError as err:
            return f"import error: {err}\n"
        except ImportError as err:
            return f"import error: {err}\n"
        language = getattr(module, "__language__", None)
        if language is None:
            return (
                f"{name} is a plain Python module "
                f"({getattr(module, '__file__', '?')}), not a #lang file\n"
            )
        provides = ", ".join(module.__provides__) or "(none)"
        return (
            f"imported {name} from {module.__file__} (#lang {language})\n"
            f"provides: {provides}\n"
        )

    def _phase_lines(self) -> list[str]:
        """Session time by observe phase, the active backend's codegen
        phases flagged (interp: closure-compile; pyc: pyc-codegen and
        pyc-link)."""
        from repro.observe.profiler import phase_totals

        totals = phase_totals(self.runtime.tracer)
        if not totals:
            return []
        active = self.runtime.registry.backend
        own = set(_BACKEND_PHASES.get(active, ()))
        lines = [f"  time by phase (backend: {active}):"]
        for phase, seconds in sorted(
            totals.items(), key=lambda kv: -kv[1]
        ):
            marker = "  *" if phase in own else "   "
            lines.append(f"  {marker} {phase:<18} {seconds * 1000:9.1f} ms")
        if own & set(totals):
            lines.append(f"    (* = {active} backend's own phases)")
        return lines

    def _backend_command(self, args: list[str]) -> str:
        from repro.core.backend import BACKENDS

        registry = self.runtime.registry
        if not args:
            return f"backend: {registry.backend}\n"
        if len(args) != 1 or args[0] not in BACKENDS:
            return f"usage: ,backend NAME (NAME: {' | '.join(BACKENDS)})\n"
        if args[0] == registry.backend:
            return f"backend: {registry.backend} (unchanged)\n"
        registry.backend = args[0]
        # nothing else to flush: every input re-instantiates the
        # accumulated module in a fresh Namespace, and the compiled module
        # carries both representations (the pyc unit is generated on
        # demand and cached alongside the core AST)
        return (
            f"backend: {registry.backend} "
            f"(next input runs in a fresh namespace under it)\n"
        )

    def _budget_command(self, args: list[str]) -> str:
        budget = self.runtime.budget
        if not args:
            lines = []
            for label, attr in _BUDGET_NAMES.items():
                limit = getattr(budget, attr)
                lines.append(
                    f"  {label:<12} {'unlimited' if limit is None else limit}"
                )
            lines.append(
                f"  used: {budget.steps_used} steps, "
                f"{budget.allocs_used} allocations"
            )
            return "\n".join(lines) + "\n"
        if len(args) != 2 or args[0] not in _BUDGET_NAMES:
            return (
                "usage: ,budget NAME N  or  ,budget NAME off "
                "(NAME: steps | seconds | depth | allocations)\n"
            )
        name, raw = args
        attr = _BUDGET_NAMES[name]
        if raw == "off":
            budget.configure(**{attr: None})
            return f"{name}: unlimited\n"
        try:
            value = float(raw) if name == "seconds" else int(raw)
        except ValueError:
            return f"error: {raw!r} is not a number\n"
        if value <= 0:
            return "error: budget limits must be positive\n"
        budget.configure(**{attr: value})
        return f"{name}: {value}\n"

    def _trace_report(self) -> str:
        from repro.observe.coach import coach_report
        from repro.observe.stepper import render_steps

        tracer = self.runtime.tracer
        if self._last_path is None:
            return "nothing evaluated yet\n"
        recent = tracer.events[self._mark:]

        def from_last_input(event) -> bool:
            loc = event.srcloc
            return (
                loc is not None
                and loc.source == self._last_path
                and loc.line >= self._last_start_line
            )

        steps = [e for e in recent if e.category == "macro" and from_last_input(e)]
        if not steps:  # e.g. a form whose expansion carries no use-site locs
            steps = [e for e in recent if e.category == "macro"]
        lines = []
        if steps:
            lines.append(f"macro steps for the last input ({len(steps)}):")
            lines.append(render_steps(steps, limit=50))
        else:
            lines.append("no macro steps recorded for the last input")

        # coach_report reads only .events; give it the last input's slice
        from types import SimpleNamespace

        lines.append(coach_report(SimpleNamespace(events=recent)))
        return "\n".join(lines) + "\n"

    def _wrap(self, text: str, parsed: list) -> str:
        """Expressions get their value displayed; definitions run silently."""
        from repro.runtime.values import Symbol
        from repro.syn.syntax import Syntax

        def is_definition(stx: Syntax) -> bool:
            if not (isinstance(stx.e, tuple) and stx.e and stx.e[0].is_identifier()):
                return False
            return stx.e[0].e.name in (
                "define", "define:", "define-values", "define-syntax",
                "define-syntaxes", "define-struct", "struct", "require",
                "provide", ":",
            )

        if len(parsed) == 1 and not is_definition(parsed[0]):
            return f"(%repl-show {text})"
        return text

    def run(self, stdin=None, stdout=None) -> int:
        stdin = stdin if stdin is not None else sys.stdin
        stdout = stdout if stdout is not None else sys.stdout
        stdout.write(
            f"repro REPL (#lang {self.language}); ctrl-D to exit, "
            f",help for meta-commands\n"
        )
        # %repl-show displays non-void values, like Racket's REPL
        if self.language in ("typed", "typed/racket", "simple-type"):
            self.forms.append(
                "(define (%repl-show [v : Any]) : Void"
                " (if (void? v) (void) (displayln v)))"
            )
        else:
            self.forms.append(
                "(define (%repl-show v) (if (void? v) (void) (displayln v)))"
            )
        while True:
            stdout.write("repro> ")
            stdout.flush()
            try:
                line = stdin.readline()
            except KeyboardInterrupt:
                # ctrl-C at the prompt: just a fresh prompt, not an exit
                stdout.write("\n")
                continue
            if not line:
                stdout.write("\n")
                return 0
            try:
                stdout.write(self.eval_input(line))
            except ReproError as error:
                # reader / expansion / type / contract / runtime / budget
                # errors (and aggregated CompilationFailed reports, whose
                # message carries every rendered diagnostic) all land here;
                # the accumulated module body is unchanged, so the session
                # continues
                stdout.write(f"error: {error}\n")
            except RecursionError:
                stdout.write("error: recursion limit exceeded\n")
            except KeyboardInterrupt:
                # ctrl-C mid-evaluation: the input is committed to the
                # accumulated body only after a successful run, and a
                # killed compilation rolled back transactionally, so the
                # session continues with state intact
                stdout.write("\n; interrupted (session state intact)\n")
            except Exception as error:  # never let one input kill the REPL
                stdout.write(f"error: internal: {type(error).__name__}: {error}\n")


def main(argv: Optional[list[str]] = None) -> int:
    args = argv if argv is not None else sys.argv[1:]
    backend = None
    if "--backend" in args:
        i = args.index("--backend")
        if i + 1 >= len(args):
            sys.stderr.write("error: --backend needs a value\n")
            return 2
        backend = args[i + 1]
        args = args[:i] + args[i + 2:]
    language = args[0] if args else "racket"
    return Repl(language, backend=backend).run()
