"""The ``repro serve`` HTTP server.

A long-lived compile-and-eval service over the library Runtime: a
stdlib :class:`ThreadingHTTPServer` (one thread per request) in front of
per-tenant Runtime pools (:mod:`repro.serve.pool`), the shared artifact
cache, per-request resource budgets, and per-request spans on the observe
event bus.

Protocol (all bodies JSON):

``POST /run``
    ``{"source": "#lang ...", "tenant": "t1", "budget": {"steps": N,
    "seconds": S, "max_depth": D}}`` — register the source as an anonymous
    module, compile and run it, return its output. The module is evicted
    after the request; its *dependencies'* artifacts stay warm in the
    shared cache. Response: ``{"ok": true, "output": ..., "stats": {...},
    "elapsed_ms": ...}``, or ``{"ok": false, "error": {"code": "G001",
    "message": ...}}`` — a budget kill is a well-formed response, not a
    dropped connection. Opt in with ``"trace": true`` to get the request's
    observe spans back in a ``"trace"`` envelope (schema ``repro-trace/1``);
    without it the reply is byte-for-byte what it always was.

``POST /compile``
    Either ``{"source": ...}`` (anonymous module, reports diagnostics
    without running) or ``{"paths": [...], "jobs": N, "mode": ...}`` — a
    parallel module-graph compilation (:mod:`repro.modules.graph`) whose
    artifacts land in the shared cache for every later request.

``GET /healthz``
    Liveness: ``{"ok": true, "uptime_s": ..., "requests": ...}``.

``GET /stats``
    Service counters: requests per endpoint, budget kills by G-code,
    cache-degradation warnings observed, pool occupancy.

Error semantics: platform errors (parse, expansion, type, module, budget,
contract) come back as ``ok: false`` with the error's stable code — HTTP
status stays 200 because the *service* worked; 400/404/405 are reserved
for malformed requests. Cache degradation (e.g. an injected fault or a
corrupt artifact) never fails a request: the pipeline recompiles from
source and the response carries the C-coded warnings in
``"diagnostics"``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Optional

from repro.errors import ReproError
from repro.guard.budget import resolve_budget
from repro.observe.events import TRACE_SCHEMA
from repro.observe.recorder import Tracer, current_recorder, use_recorder
from repro.serve.pool import RuntimePool

_REQ_IDS = itertools.count(1)

#: budget keys a request may set; anything else in "budget" is rejected
_BUDGET_KEYS = frozenset({"steps", "seconds", "max_depth", "allocations"})

_NUMERIC_STATS = (
    "expansion_steps", "eval_steps", "cache_hits", "cache_misses",
    "cache_stores", "cache_invalidations", "pyc_codegens",
)


class _BadRequest(Exception):
    """A malformed request (HTTP 400)."""


class ReproServer:
    """The service: construct, :meth:`start`, speak JSON, :meth:`stop`.

    ``port=0`` binds an ephemeral port (read it back from ``.address``
    after start) — the mode the tests and the benchmark use.
    ``default_budget`` is a budget dict applied to requests that don't
    send their own (None = ungoverned by default).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        cache_dir: Optional[str] = None,
        backend: Optional[str] = None,
        trace: Any = None,
        default_budget: Optional[dict[str, Any]] = None,
        max_idle: int = 4,
    ) -> None:
        self.pool = RuntimePool(
            cache_dir=cache_dir, backend=backend, trace=trace, max_idle=max_idle
        )
        self.default_budget = dict(default_budget) if default_budget else None
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._started = 0.0
        self._stats_lock = threading.Lock()
        self.requests: dict[str, int] = {}
        self.budget_kills: dict[str, int] = {}
        self.errors = 0
        self.warnings = 0

    # -- lifecycle ----------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            return (self._host, self._port)
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> tuple[str, int]:
        """Bind and serve on a daemon thread; returns ``(host, port)``."""
        if self._httpd is not None:
            return self.address
        server = self

        class Handler(_Handler):
            repro_server = server

        self._httpd = ThreadingHTTPServer((self._host, self._port), Handler)
        self._httpd.daemon_threads = True
        self._started = time.monotonic()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()
        return self.address

    def stop(self) -> None:
        """Shut down the listener and close every pooled Runtime."""
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.pool.close()

    def __enter__(self) -> "ReproServer":
        self.start()
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- accounting ---------------------------------------------------------

    def _count(self, endpoint: str) -> None:
        with self._stats_lock:
            self.requests[endpoint] = self.requests.get(endpoint, 0) + 1

    def _count_kill(self, code: str) -> None:
        with self._stats_lock:
            self.budget_kills[code] = self.budget_kills.get(code, 0) + 1

    # -- request handlers ---------------------------------------------------

    def handle(self, method: str, path: str, body: Optional[dict]) -> tuple[int, dict]:
        """Route one request; returns ``(http_status, json_payload)``.

        Usable directly (no HTTP) — the benchmark's in-process mode and
        the tests go through here.
        """
        if method == "GET" and path == "/healthz":
            self._count("healthz")
            return 200, {
                "ok": True,
                "uptime_s": round(time.monotonic() - self._started, 3),
                "requests": sum(self.requests.values()),
            }
        if method == "GET" and path == "/stats":
            self._count("stats")
            return 200, self._stats_payload()
        if method == "POST" and path == "/run":
            self._count("run")
            return self._compile_or_run(body, run=True)
        if method == "POST" and path == "/compile":
            self._count("compile")
            if body is not None and "paths" in body:
                return self._compile_graph(body)
            return self._compile_or_run(body, run=False)
        if path in ("/run", "/compile", "/healthz", "/stats"):
            return 405, {"ok": False, "error": {"code": "S405", "message": f"method {method} not allowed for {path}"}}
        return 404, {"ok": False, "error": {"code": "S404", "message": f"no such endpoint: {path}"}}

    def _stats_payload(self) -> dict:
        with self._stats_lock:
            payload = {
                "ok": True,
                "requests": dict(self.requests),
                "budget_kills": dict(self.budget_kills),
                "errors": self.errors,
                "warnings": self.warnings,
            }
        payload["pools"] = self.pool.sizes()
        payload["runtimes"] = {
            "created": self.pool.created, "reused": self.pool.reused,
        }
        return payload

    def _budget_of(self, body: dict) -> Any:
        spec = body.get("budget", None)
        if spec is None:
            spec = self.default_budget
        if spec is None:
            return None
        if not isinstance(spec, dict):
            raise _BadRequest("budget must be an object")
        unknown = set(spec) - _BUDGET_KEYS
        if unknown:
            raise _BadRequest(
                f"unknown budget keys: {', '.join(sorted(unknown))}"
            )
        try:
            return resolve_budget(dict(spec))
        except (TypeError, ValueError) as err:
            raise _BadRequest(f"bad budget: {err}") from None

    def _compile_or_run(self, body: Optional[dict], *, run: bool) -> tuple[int, dict]:
        if not isinstance(body, dict):
            raise _BadRequest("request body must be a JSON object")
        source = body.get("source")
        file = body.get("path")
        if (source is None) == (file is None):
            raise _BadRequest('exactly one of "source" or "path" is required')
        if source is not None and not isinstance(source, str):
            raise _BadRequest('"source" must be a string')
        if file is not None and not isinstance(file, str):
            raise _BadRequest('"path" must be a string')
        tenant = body.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise _BadRequest('"tenant" must be a non-empty string')
        want_trace = body.get("trace", False)
        if not isinstance(want_trace, bool):
            raise _BadRequest('"trace" must be a boolean')
        budget = self._budget_of(body)

        req = next(_REQ_IDS)
        endpoint = "run" if run else "compile"
        rt = self.pool.checkout(tenant)
        module_path: Optional[str] = None
        t0 = time.perf_counter()
        # opt-in per-request tracing: a fresh Tracer scoped to this request
        # so the reply can carry exactly its own spans (otherwise the
        # server-wide tracer, or whatever recorder is already installed)
        req_tracer = Tracer() if want_trace else None
        if req_tracer is not None:
            rec: Any = req_tracer
        else:
            rec = rt.tracer if rt.tracer is not None else current_recorder()
        try:
            with use_recorder(rec), rec.span("serve", f"{endpoint} #{req} tenant={tenant}"):
                rt.budget = budget
                before = rt.stats.snapshot()
                diags_before = len(rt.cache.diagnostics) if rt.cache else 0
                try:
                    if source is not None:
                        # content-derived path: the module path is part of
                        # the artifact key, so naming anonymous modules
                        # after their source makes a repeated request a
                        # warm cache hit for every tenant
                        import hashlib

                        digest = hashlib.sha256(source.encode("utf-8"))
                        module_path = f"<serve:{digest.hexdigest()[:24]}>"
                        rt.register_module(module_path, source)
                    else:
                        module_path = rt.register_file(file)
                    if run:
                        output: Optional[str] = rt.run(module_path)
                    else:
                        output = None
                        rt.compile(module_path)
                except ReproError as err:
                    code = getattr(err, "code", None) or "X001"
                    if code.startswith("G"):
                        self._count_kill(code)
                    with self._stats_lock:
                        self.errors += 1
                    return 200, self._finish(
                        rt, tenant, module_path, source is not None, t0, before,
                        diags_before, tracer=req_tracer,
                        ok=False,
                        error={"code": code, "message": str(err)},
                    )
                except OSError as err:
                    with self._stats_lock:
                        self.errors += 1
                    return 200, self._finish(
                        rt, tenant, module_path, source is not None, t0, before,
                        diags_before, tracer=req_tracer,
                        ok=False,
                        error={"code": "S500", "message": f"cannot read {file}: {err.strerror or err}"},
                    )
                payload: dict[str, Any] = {}
                if run:
                    payload["output"] = output
                return 200, self._finish(
                    rt, tenant, module_path, source is not None, t0, before,
                    diags_before, tracer=req_tracer, ok=True, **payload,
                )
        finally:
            self.pool.checkin(tenant, rt)

    def _finish(
        self,
        rt: Any,
        tenant: str,
        module_path: Optional[str],
        anonymous: bool,
        t0: float,
        before: dict,
        diags_before: int,
        *,
        ok: bool,
        tracer: Optional[Tracer] = None,
        error: Optional[dict] = None,
        **extra: Any,
    ) -> dict:
        # per-request stats: the runtime's counters are cumulative across
        # the requests it has served, so report the delta
        after = rt.stats.snapshot()
        stats = {k: after[k] - before[k] for k in _NUMERIC_STATS}
        diagnostics: list[str] = []
        if rt.cache is not None:
            fresh = rt.cache.diagnostics[diags_before:]
            diagnostics = [str(d) for d in fresh]
            if fresh:
                with self._stats_lock:
                    self.warnings += len(fresh)
        if anonymous and module_path is not None:
            # the request's module must not accumulate in the pooled
            # runtime; its dependencies stay compiled (that's the warmth)
            rt.registry.evict_module(module_path)
            rt.registry.sources.pop(module_path, None)
            rt.registry._source_hashes.pop(module_path, None)
        result: dict[str, Any] = {
            "ok": ok,
            "tenant": tenant,
            "elapsed_ms": round((time.perf_counter() - t0) * 1000, 3),
            "stats": stats,
        }
        if error is not None:
            result["error"] = error
        if diagnostics:
            result["diagnostics"] = diagnostics
        if tracer is not None:
            # the enclosing "serve" span is still open here, so its closing
            # event is absent by construction; every inner span (read,
            # expand, compile, eval, dialect, ...) has already landed
            result["trace"] = {
                "schema": TRACE_SCHEMA,
                "events": [e.to_json() for e in tracer.events],
                "dropped": tracer.dropped,
            }
        result.update(extra)
        return result

    def _compile_graph(self, body: dict) -> tuple[int, dict]:
        paths = body.get("paths")
        if not isinstance(paths, list) or not all(isinstance(p, str) for p in paths):
            raise _BadRequest('"paths" must be a list of strings')
        jobs = body.get("jobs", 1)
        if not isinstance(jobs, int) or jobs < 1:
            raise _BadRequest('"jobs" must be a positive integer')
        mode = body.get("mode")
        if mode is not None and mode not in ("serial", "process", "thread"):
            raise _BadRequest('"mode" must be serial, process, or thread')
        tenant = body.get("tenant", "default")
        if not isinstance(tenant, str) or not tenant:
            raise _BadRequest('"tenant" must be a non-empty string')
        rt = self.pool.checkout(tenant)
        t0 = time.perf_counter()
        try:
            try:
                report = rt.compile_graph(paths, jobs=jobs, mode=mode)
            except (ReproError, ValueError) as err:
                with self._stats_lock:
                    self.errors += 1
                code = getattr(err, "code", None) or "X001"
                return 200, {
                    "ok": False, "tenant": tenant,
                    "elapsed_ms": round((time.perf_counter() - t0) * 1000, 3),
                    "error": {"code": code, "message": str(err)},
                }
            snap = report.snapshot()
            snap["ok"] = report.ok
            snap["tenant"] = tenant
            snap["elapsed_ms"] = round((time.perf_counter() - t0) * 1000, 3)
            if not report.ok:
                with self._stats_lock:
                    self.errors += 1
                snap["error"] = {
                    "code": "X100",
                    "message": "; ".join(
                        f"{p}: {msg}" for p, msg in sorted(report.errors.items())
                    ),
                }
            return 200, snap
        finally:
            self.pool.checkin(tenant, rt)


class _Handler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`ReproServer.handle`."""

    repro_server: ReproServer  # set by the subclass ReproServer.start builds
    protocol_version = "HTTP/1.1"

    # silence the default stderr access log (the service has /stats)
    def log_message(self, format: str, *args: Any) -> None:
        pass

    def _reply(self, status: int, payload: dict) -> None:
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _dispatch(self, method: str, body: Optional[dict]) -> None:
        try:
            status, payload = self.repro_server.handle(method, self.path, body)
        except _BadRequest as err:
            status, payload = 400, {
                "ok": False, "error": {"code": "S400", "message": str(err)}
            }
        except Exception as err:  # never leak a stack trace as a hung socket
            status, payload = 500, {
                "ok": False,
                "error": {"code": "S500", "message": f"{type(err).__name__}: {err}"},
            }
        self._reply(status, payload)

    def do_GET(self) -> None:
        self._dispatch("GET", None)

    def do_POST(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        try:
            body = json.loads(raw.decode("utf-8")) if raw else None
        except (ValueError, UnicodeDecodeError):
            self._reply(400, {
                "ok": False,
                "error": {"code": "S400", "message": "request body is not valid JSON"},
            })
            return
        self._dispatch("POST", body)


def serve_command(args: list[str]) -> int:
    """``repro serve [--host H] [--port P] [--backend B] [--cache-dir D]
    [--steps N] [--time-limit S] [--max-depth N]`` — run the service until
    interrupted. Budget flags set the *default* per-request budget; a
    request's own "budget" object overrides it."""
    import sys

    host, port = "127.0.0.1", 8737
    backend: Optional[str] = None
    cache_dir: Optional[str] = None
    budget: dict[str, Any] = {}
    flags = {
        "--host": ("host", str), "--port": ("port", int),
        "--backend": ("backend", str), "--cache-dir": ("cache_dir", str),
        "--steps": ("steps", int), "--time-limit": ("seconds", float),
        "--max-depth": ("max_depth", int),
    }
    i = 0
    while i < len(args):
        arg = args[i]
        name, raw = arg, None
        if "=" in arg:
            name, _, raw = arg.partition("=")
        if name not in flags:
            print(f"error: unknown serve option: {arg}", file=sys.stderr)
            return 2
        if raw is None:
            if i + 1 >= len(args):
                print(f"error: {name} requires a value", file=sys.stderr)
                return 2
            i += 1
            raw = args[i]
        key, convert = flags[name]
        try:
            value = convert(raw)
        except ValueError:
            print(f"error: {name} requires {convert.__name__}, got {raw!r}",
                  file=sys.stderr)
            return 2
        if key == "host":
            host = value
        elif key == "port":
            port = value
        elif key == "backend":
            backend = value
        elif key == "cache_dir":
            cache_dir = value
        else:
            budget[key] = value
        i += 1
    from repro.modules.cache import default_cache_dir

    server = ReproServer(
        host, port,
        cache_dir=cache_dir or default_cache_dir(),
        backend=backend,
        default_budget=budget or None,
    )
    try:
        bound_host, bound_port = server.start()
    except OSError as err:
        print(f"error: cannot bind {host}:{port}: {err.strerror or err}",
              file=sys.stderr)
        return 1
    print(f"repro serve listening on http://{bound_host}:{bound_port} "
          f"(backend={backend or 'interp'}, cache={server.pool.cache_dir})",
          file=sys.stderr)
    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0
