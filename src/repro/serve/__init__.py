"""``repro serve`` — compile-and-eval as a long-lived service.

The server (:class:`ReproServer`) accepts JSON requests over HTTP to
compile and run ``#lang`` modules, with per-tenant Runtime pools, a
resource budget (steps + wall-clock + depth) enforced per request, and
per-request observe spans on the event bus. See :mod:`repro.serve.server`
for the protocol.
"""

from repro.serve.pool import RuntimePool
from repro.serve.server import ReproServer, serve_command

__all__ = ["ReproServer", "RuntimePool", "serve_command"]
