"""Per-tenant Runtime pools for the serve layer.

Each tenant (a logical client namespace) gets its own pool of Runtimes.
Runtimes are *never* shared between concurrent requests — a request checks
one out, uses it exclusively, and checks it back in — because a Runtime's
stats, budget, and registry are single-operation state (DESIGN §11). What
tenants *do* share is the artifact cache directory: a module one tenant
compiled is a warm cache hit for every other tenant, which is the point of
running the service long-lived.

The pool bounds idle Runtimes per tenant (``max_idle``); a burst of
concurrent requests above the bound builds throwaway Runtimes that are
closed on check-in instead of pooled. Closing a Runtime releases its slice
of the global binding table, so bursts do not permanently grow the
process.
"""

from __future__ import annotations

import threading
from typing import Any, Optional

from repro.tools.runner import Runtime


class RuntimePool:
    """Checkout/checkin pools of Runtimes, one pool per tenant."""

    def __init__(
        self,
        *,
        cache_dir: Optional[str] = None,
        backend: Optional[str] = None,
        trace: Any = None,
        max_idle: int = 4,
    ) -> None:
        self.cache_dir = cache_dir
        self.backend = backend
        self.trace = trace
        self.max_idle = max_idle
        self._idle: dict[str, list[Runtime]] = {}
        self._lock = threading.Lock()
        #: Runtimes ever built (a service health metric)
        self.created = 0
        #: checkouts served from the pool (vs fresh builds)
        self.reused = 0

    def checkout(self, tenant: str) -> Runtime:
        """An exclusive Runtime for ``tenant`` — pooled if one is idle."""
        with self._lock:
            idle = self._idle.get(tenant)
            if idle:
                self.reused += 1
                return idle.pop()
            self.created += 1
        # built outside the lock: Runtime construction installs languages
        # and is by far the slowest path here
        return Runtime(
            cache_dir=self.cache_dir,
            cache=False if self.cache_dir is None else None,
            backend=self.backend,
            trace=self.trace,
        )

    def checkin(self, tenant: str, rt: Runtime) -> None:
        """Return a Runtime to its tenant's pool (or close it if full)."""
        rt.budget = None  # per-request budgets never outlive the request
        with self._lock:
            idle = self._idle.setdefault(tenant, [])
            if len(idle) < self.max_idle:
                idle.append(rt)
                return
        rt.close()

    def discard(self, rt: Runtime) -> None:
        """Close a Runtime without pooling it (used after a request that
        left it in a suspect state, e.g. a crash mid-compile)."""
        rt.close()

    def sizes(self) -> dict[str, int]:
        with self._lock:
            return {tenant: len(idle) for tenant, idle in self._idle.items()}

    def close(self) -> None:
        """Close every idle Runtime (server shutdown)."""
        with self._lock:
            pools = list(self._idle.values())
            self._idle = {}
        for idle in pools:
            for rt in idle:
                rt.close()
