"""``python -m repro program.rkt`` runs a ``#lang`` module file;
``python -m repro --repl [language]`` starts a REPL."""

import sys

if len(sys.argv) > 1 and sys.argv[1] == "--repl":
    from repro.tools.repl import main as repl_main

    sys.exit(repl_main(sys.argv[2:]))

from repro.tools.runner import main

sys.exit(main())
