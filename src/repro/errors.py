"""Exception hierarchy for the repro platform.

Every user-facing error carries an optional source location so that tools can
point at the offending syntax, mirroring Racket's error conventions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:
    from repro.syn.srcloc import SrcLoc


class ReproError(Exception):
    """Base class for all platform errors."""

    def __init__(self, message: str, srcloc: Optional["SrcLoc"] = None) -> None:
        self.message = message
        self.srcloc = srcloc
        super().__init__(self._format())

    def _format(self) -> str:
        if self.srcloc is not None:
            return f"{self.srcloc}: {self.message}"
        return self.message


class ReaderError(ReproError):
    """Lexical or parse error while reading source text."""


class SyntaxExpansionError(ReproError):
    """Error raised during macro expansion.

    Carries the syntax object at fault (when available) so error messages can
    show the offending form, like Racket's ``raise-syntax-error``.
    """

    def __init__(
        self,
        message: str,
        stx: Any = None,
        sub_stx: Any = None,
    ) -> None:
        self.stx = stx
        self.sub_stx = sub_stx
        srcloc = None
        detail = message
        culprit = sub_stx if sub_stx is not None else stx
        if culprit is not None:
            srcloc = getattr(culprit, "srcloc", None)
            try:
                from repro.syn.syntax import syntax_to_datum, write_datum

                detail = f"{message} in: {write_datum(syntax_to_datum(culprit))}"
            except Exception:  # pragma: no cover - defensive formatting
                detail = message
        super().__init__(detail, srcloc)


class UnboundIdentifierError(SyntaxExpansionError):
    """An identifier could not be resolved to any binding."""


class AmbiguousBindingError(SyntaxExpansionError):
    """An identifier's scope set matches multiple incomparable bindings."""


class ParseCoreError(ReproError):
    """A fully-expanded term did not conform to the core grammar."""


class TypeCheckError(ReproError):
    """Static type error signalled by a typed language's checker.

    Mirrors the paper's ``type-error`` (fig. 3): the message includes the
    offending term.
    """

    def __init__(self, message: str, stx: Any = None) -> None:
        self.stx = stx
        srcloc = getattr(stx, "srcloc", None) if stx is not None else None
        if stx is not None:
            try:
                from repro.syn.syntax import syntax_to_datum, write_datum

                message = f"typecheck: {message} in: {write_datum(syntax_to_datum(stx))}"
            except Exception:  # pragma: no cover
                message = f"typecheck: {message}"
        else:
            message = f"typecheck: {message}"
        super().__init__(message, srcloc)


class ContractViolation(ReproError):
    """A dynamic contract check failed; blame says who broke the agreement."""

    def __init__(self, message: str, blame: Optional[str] = None) -> None:
        self.blame = blame
        if blame is not None:
            message = f"contract violation: {message} (blaming: {blame})"
        else:
            message = f"contract violation: {message}"
        super().__init__(message)


class RuntimeReproError(ReproError):
    """Runtime error in evaluated object-language code."""


class WrongTypeError(RuntimeReproError):
    """A primitive received a value of the wrong runtime type (a failed tag check)."""

    def __init__(self, who: str, expected: str, got: Any) -> None:
        self.who = who
        self.expected = expected
        self.got = got
        from repro.runtime.printing import write_value

        super().__init__(f"{who}: expected {expected}, given: {write_value(got)}")


class ArityError(RuntimeReproError):
    """A procedure was applied to the wrong number of arguments."""


class ModuleError(ReproError):
    """Module resolution, cycle, or instantiation error."""
