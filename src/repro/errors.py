"""Exception hierarchy for the repro platform.

Every user-facing error carries an optional source location so that tools can
point at the offending syntax, mirroring Racket's error conventions. Each
class also carries a *stable error code* (see :mod:`repro.diagnostics.codes`)
so tools can match on codes instead of message text, and an optional
``expansion_backtrace`` — the chain of macro invocations that produced the
offending form, attached by the expander.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Sequence

if TYPE_CHECKING:
    from repro.diagnostics.diagnostic import Diagnostic, ExpansionFrame
    from repro.syn.srcloc import SrcLoc


class ReproError(Exception):
    """Base class for all platform errors."""

    #: stable error code used when none is given at raise time
    DEFAULT_CODE = "X001"

    def __init__(
        self,
        message: str,
        srcloc: Optional["SrcLoc"] = None,
        *,
        code: Optional[str] = None,
    ) -> None:
        self.message = message
        self.srcloc = srcloc
        self.code = code or type(self).DEFAULT_CODE
        #: macro invocations active when the error was raised (innermost
        #: last); filled in by the expander's transformer application.
        self.expansion_backtrace: tuple["ExpansionFrame", ...] = ()
        super().__init__(self._format())

    def _format(self) -> str:
        if self.srcloc is not None:
            return f"{self.srcloc}: {self.message}"
        return self.message

    def __str__(self) -> str:
        # computed lazily: the expander attaches the backtrace after raise
        base = self._format()
        if self.expansion_backtrace:
            frames = "\n".join(f"  {frame}" for frame in self.expansion_backtrace)
            return f"{base}\nmacro expansion backtrace:\n{frames}"
        return base


class ReaderError(ReproError):
    """Lexical or parse error while reading source text."""

    DEFAULT_CODE = "R001"


class SyntaxExpansionError(ReproError):
    """Error raised during macro expansion.

    Carries the syntax object at fault (when available) so error messages can
    show the offending form, like Racket's ``raise-syntax-error``.
    """

    DEFAULT_CODE = "E001"

    def __init__(
        self,
        message: str,
        stx: Any = None,
        sub_stx: Any = None,
        *,
        code: Optional[str] = None,
    ) -> None:
        self.stx = stx
        self.sub_stx = sub_stx
        srcloc = None
        detail = message
        culprit = sub_stx if sub_stx is not None else stx
        if culprit is not None:
            try:
                from repro.syn.syntax import best_srcloc

                srcloc = best_srcloc(culprit)
            except Exception:  # pragma: no cover - defensive
                srcloc = getattr(culprit, "srcloc", None)
            try:
                from repro.syn.syntax import syntax_to_datum, write_datum

                detail = f"{message} in: {write_datum(syntax_to_datum(culprit))}"
            except Exception:  # pragma: no cover - defensive formatting
                detail = message
        super().__init__(detail, srcloc, code=code)


class DialectError(SyntaxExpansionError):
    """Error raised by a dialect's whole-module rewrite.

    Dialects run on reader output, before any macro expansion, so the
    culprit syntax still carries its original source locations — the
    reported srcloc always points at pre-rewrite source.
    """

    DEFAULT_CODE = "D002"


class UnboundIdentifierError(SyntaxExpansionError):
    """An identifier could not be resolved to any binding."""

    DEFAULT_CODE = "E002"


class AmbiguousBindingError(SyntaxExpansionError):
    """An identifier's scope set matches multiple incomparable bindings."""

    DEFAULT_CODE = "E003"


class ExpansionLimitError(SyntaxExpansionError):
    """The expander's fuel budget ran out (a runaway recursive macro).

    Raised instead of ever letting a Python ``RecursionError`` escape; the
    ``expansion_backtrace`` shows the chain of macro invocations in flight.
    """

    DEFAULT_CODE = "E004"


class ParseCoreError(ReproError):
    """A fully-expanded term did not conform to the core grammar."""

    DEFAULT_CODE = "E005"


class TypeCheckError(ReproError):
    """Static type error signalled by a typed language's checker.

    Mirrors the paper's ``type-error`` (fig. 3): the message includes the
    offending term.
    """

    DEFAULT_CODE = "T001"

    def __init__(
        self, message: str, stx: Any = None, *, code: Optional[str] = None
    ) -> None:
        self.stx = stx
        srcloc = None
        if stx is not None:
            try:
                from repro.syn.syntax import best_srcloc

                srcloc = best_srcloc(stx)
            except Exception:  # pragma: no cover - defensive
                srcloc = getattr(stx, "srcloc", None)
            try:
                from repro.syn.syntax import syntax_to_datum, write_datum

                message = f"typecheck: {message} in: {write_datum(syntax_to_datum(stx))}"
            except Exception:  # pragma: no cover
                message = f"typecheck: {message}"
        else:
            message = f"typecheck: {message}"
        super().__init__(message, srcloc, code=code)


class ContractViolation(ReproError):
    """A dynamic contract check failed; blame says who broke the agreement.

    Like every other platform error it can carry a source location — for
    typed/untyped boundary contracts, the ``require/typed`` (or provide)
    form that erected the boundary.
    """

    DEFAULT_CODE = "C001"

    def __init__(
        self,
        message: str,
        blame: Optional[str] = None,
        srcloc: Optional["SrcLoc"] = None,
        *,
        code: Optional[str] = None,
    ) -> None:
        self.blame = blame
        if blame is not None:
            message = f"contract violation: {message} (blaming: {blame})"
        else:
            message = f"contract violation: {message}"
        super().__init__(message, srcloc, code=code)


class RuntimeReproError(ReproError):
    """Runtime error in evaluated object-language code."""

    DEFAULT_CODE = "X001"


class WrongTypeError(RuntimeReproError):
    """A primitive received a value of the wrong runtime type (a failed tag check)."""

    DEFAULT_CODE = "X002"

    def __init__(self, who: str, expected: str, got: Any) -> None:
        self.who = who
        self.expected = expected
        self.got = got
        from repro.runtime.printing import write_value

        super().__init__(f"{who}: expected {expected}, given: {write_value(got)}")


class ArityError(RuntimeReproError):
    """A procedure was applied to the wrong number of arguments."""

    DEFAULT_CODE = "X003"


class BudgetExhausted(RuntimeReproError):
    """A resource budget ran out during evaluation (see :mod:`repro.guard`).

    ``kind`` names the exhausted dimension (``"steps"``, ``"deadline"``,
    ``"depth"``, ``"allocations"``) and ``steps_consumed`` reports the
    evaluation steps charged up to the kill — the structured counterpart of
    PR 1's :class:`ExpansionLimitError` for the run-time phase.
    """

    DEFAULT_CODE = "G001"

    def __init__(
        self,
        message: str,
        srcloc: Optional["SrcLoc"] = None,
        *,
        kind: str = "steps",
        steps_consumed: int = 0,
        code: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.steps_consumed = steps_consumed
        super().__init__(message, srcloc, code=code)


class EvaluationCancelled(RuntimeReproError):
    """The host cancelled an in-flight evaluation via a CancelToken."""

    DEFAULT_CODE = "G005"

    def __init__(
        self,
        message: str,
        srcloc: Optional["SrcLoc"] = None,
        *,
        steps_consumed: int = 0,
        code: Optional[str] = None,
    ) -> None:
        self.steps_consumed = steps_consumed
        super().__init__(message, srcloc, code=code)


class ModuleError(ReproError):
    """Module resolution, cycle, or instantiation error."""

    DEFAULT_CODE = "M001"


class CompilationFailed(ReproError):
    """A compilation that found several independent problems.

    Carries every :class:`repro.diagnostics.Diagnostic` the pipeline
    collected for the module; ``str()`` renders them all, each with its
    source excerpt and stable code. Single-error compilations raise the
    original exception instead (see ``DiagnosticSession.raise_if_errors``).
    """

    DEFAULT_CODE = "X100"

    def __init__(
        self,
        diagnostics: Sequence["Diagnostic"],
        module_path: Optional[str] = None,
    ) -> None:
        self.diagnostics = list(diagnostics)
        self.module_path = module_path
        errors = [d for d in self.diagnostics if d.severity == "error"]
        where = f" in {module_path}" if module_path else ""
        header = f"compilation failed{where}: {len(errors)} error(s)"
        body = "\n".join(d.render() for d in self.diagnostics)
        super().__init__(f"{header}\n{body}" if body else header)
