"""The phase profiler: span timings, exportable three ways.

- :func:`chrome_trace` — a Chrome-trace / Perfetto JSON object
  (``chrome://tracing``, https://ui.perfetto.dev);
- :func:`to_jsonl` — one JSON record per event, lossless;
- :func:`summary` — a human table of *exclusive* per-phase time (a nested
  span's duration is charged to itself, not its parent), plus the stepper
  and coach headlines.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from repro.observe.events import SPAN, TRACE_SCHEMA, TraceEvent
from repro.observe.recorder import Tracer


def spans(tracer: Tracer) -> list[TraceEvent]:
    return [e for e in tracer.events if e.kind == SPAN]


def phase_totals(tracer: Tracer) -> dict[str, float]:
    """Exclusive seconds per category.

    Spans nest on one logical thread, so a span's *exclusive* time is its
    duration minus the durations of the spans it directly contains. Summing
    exclusive times per category gives a table whose total equals traced
    wall-clock, with no double counting of e.g. ``typecheck`` inside
    ``expand`` inside ``compile``.
    """
    events = sorted(spans(tracer), key=lambda e: (e.ts, -e.dur))
    totals: dict[str, float] = {}
    # (end_ts, category, exclusive) stack of open ancestors
    stack: list[list[Any]] = []
    for event in events:
        while stack and stack[-1][0] <= event.ts + 1e-12:
            end, cat, exclusive = stack.pop()
            totals[cat] = totals.get(cat, 0.0) + max(exclusive, 0.0)
        if stack:
            stack[-1][2] -= event.dur  # charge the child to itself
        stack.append([event.ts + event.dur, event.category, event.dur])
    while stack:
        end, cat, exclusive = stack.pop()
        totals[cat] = totals.get(cat, 0.0) + max(exclusive, 0.0)
    return totals


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """The whole trace as a Chrome-trace JSON object (see DESIGN.md §7)."""
    return {
        "traceEvents": [e.to_chrome() for e in tracer.events],
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro trace",
            "schema": TRACE_SCHEMA,
            "dropped_events": tracer.dropped,
        },
    }


def to_jsonl(tracer: Tracer) -> str:
    """One JSON record per event (lossless; streams into jq/pandas)."""
    return "\n".join(json.dumps(e.to_json()) for e in tracer.events)


_PHASE_ORDER = (
    "read", "compile", "expand", "parse", "typecheck", "optimize",
    "cache", "closure-compile", "pyc-codegen", "pyc-link", "run",
    "instantiate",
)


def summary(tracer: Tracer, *, top_macros: int = 10) -> str:
    """The human report: phase table, top macros, coach headlines."""
    from repro.observe.coach import coach_report
    from repro.observe.stepper import steps_by_macro

    totals = phase_totals(tracer)
    grand = sum(totals.values())
    lines = ["per-phase timings (exclusive):"]
    ordered = [c for c in _PHASE_ORDER if c in totals] + sorted(
        c for c in totals if c not in _PHASE_ORDER
    )
    for category in ordered:
        seconds = totals[category]
        share = (seconds / grand * 100.0) if grand else 0.0
        lines.append(f"  {category:<16} {seconds * 1000:>10.3f} ms {share:>6.1f}%")
    lines.append(f"  {'total traced':<16} {grand * 1000:>10.3f} ms")

    by_macro = steps_by_macro(tracer)
    if by_macro:
        total_steps = sum(by_macro.values())
        lines.append(f"\nexpansion steps by macro ({total_steps} total):")
        ranked = sorted(by_macro.items(), key=lambda kv: (-kv[1], kv[0]))
        for name, count in ranked[:top_macros]:
            lines.append(f"  {name:<24} {count:>8}")
        if len(ranked) > top_macros:
            lines.append(f"  ... ({len(ranked) - top_macros} more macros)")

    lines.append("")
    lines.append(coach_report(tracer))
    if tracer.dropped:
        lines.append(f"\n(warning: {tracer.dropped} events dropped at the "
                     f"{tracer.max_events}-event cap)")
    return "\n".join(lines)


def export(tracer: Tracer, fmt: str = "summary") -> str:
    """Render the trace in one of the CLI's formats."""
    if fmt == "chrome":
        return json.dumps(chrome_trace(tracer), indent=2)
    if fmt == "jsonl":
        return to_jsonl(tracer)
    if fmt == "summary":
        return summary(tracer)
    raise ValueError(f"unknown trace format: {fmt!r} (chrome|summary|jsonl)")


def validate_chrome_trace(data: Any) -> list[str]:
    """Check a parsed Chrome-trace export against the documented schema.

    Returns a list of problems (empty = valid). Used by CI and the tests,
    so the schema DESIGN.md documents is the schema we actually emit.
    """
    problems: list[str] = []
    if not isinstance(data, dict):
        return ["top level is not an object"]
    if data.get("otherData", {}).get("schema") != TRACE_SCHEMA:
        problems.append(f"otherData.schema != {TRACE_SCHEMA!r}")
    events = data.get("traceEvents")
    if not isinstance(events, list) or not events:
        return problems + ["traceEvents missing or empty"]
    for i, entry in enumerate(events):
        missing = {"name", "cat", "ph", "ts", "pid", "tid"} - set(entry)
        if missing:
            problems.append(f"event {i}: missing keys {sorted(missing)}")
            continue
        if entry["ph"] not in ("X", "i"):
            problems.append(f"event {i}: bad ph {entry['ph']!r}")
        if entry["ph"] == "X" and "dur" not in entry:
            problems.append(f"event {i}: span without dur")
        if not isinstance(entry["ts"], (int, float)):
            problems.append(f"event {i}: non-numeric ts")
    return problems
