"""Event model of the observability subsystem.

One event vocabulary serves all three clients (stepper, coach, profiler):

- **span** events (``kind == "X"``, Chrome-trace "complete" events) cover a
  duration of pipeline work — reading, expansion, typechecking, optimizing,
  closure compilation, cache traffic, instantiation;
- **instant** events (``kind == "I"``) mark a point: one macro-transformer
  application, one optimization that fired, one near-miss, one cache hit.

Every event carries a *category* (the pipeline phase it belongs to), a
*name*, a timestamp relative to the owning tracer's epoch, an optional
source location, and a free-form ``attrs`` dict. The documented categories
are the :data:`CATEGORIES` set; exporters preserve unknown categories, so
languages built on the platform can add their own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.syn.srcloc import SrcLoc

#: event kinds (Chrome trace phase letters)
SPAN = "X"
INSTANT = "I"

#: the pipeline categories emitted by the platform itself
CATEGORIES = frozenset(
    {
        "read",            # source text -> syntax objects
        "compile",         # whole-module compilation driver
        "dialect",         # one dialect's whole-module rewrite
        "expand",          # macro expansion to core forms
        "macro",           # one transformer application (stepper instants)
        "parse",           # core forms -> core AST
        "typecheck",       # a typed language's checker pass
        "optimize",        # a typed language's optimizer pass
        "coach",           # optimization fired / near-miss instants
        "cache",           # artifact cache load/store spans and hit/miss instants
        "closure-compile", # core AST -> Python closures
        "run",             # executing a module body form
        "instantiate",     # whole-module instantiation driver
    }
)

#: schema identifier written into every export (bump on breaking changes)
TRACE_SCHEMA = "repro-trace/1"


@dataclass(slots=True)
class TraceEvent:
    kind: str                       # SPAN or INSTANT
    category: str                   # one of CATEGORIES (extensible)
    name: str                       # macro name, module path, op name, ...
    ts: float                       # seconds since the tracer's epoch
    dur: float = 0.0                # seconds; spans only
    srcloc: Optional[SrcLoc] = None
    depth: int = 0                  # nesting depth (macro steps)
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_chrome(self) -> dict[str, Any]:
        """This event as one Chrome-trace / Perfetto ``traceEvents`` entry."""
        args = dict(self.attrs)
        if self.srcloc is not None:
            args["srcloc"] = str(self.srcloc)
        if self.depth:
            args["depth"] = self.depth
        entry: dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": "X" if self.kind == SPAN else "i",
            "ts": round(self.ts * 1e6, 3),  # microseconds
            "pid": 1,
            "tid": 1,
            "args": args,
        }
        if self.kind == SPAN:
            entry["dur"] = round(self.dur * 1e6, 3)
        else:
            entry["s"] = "t"  # instant scope: thread
        return entry

    def to_json(self) -> dict[str, Any]:
        """This event as one JSONL record (the raw, lossless export)."""
        record: dict[str, Any] = {
            "kind": self.kind,
            "cat": self.category,
            "name": self.name,
            "ts": round(self.ts, 9),
        }
        if self.kind == SPAN:
            record["dur"] = round(self.dur, 9)
        if self.srcloc is not None:
            record["srcloc"] = str(self.srcloc)
        if self.depth:
            record["depth"] = self.depth
        if self.attrs:
            record["attrs"] = self.attrs
        return record
