"""The recorder protocol and the event bus.

The pipeline is threaded with *guarded* call sites::

    rec = current_recorder()
    if rec.enabled:
        rec.instant("cache", "hit", attrs={"path": path})

:class:`Recorder` is simultaneously the protocol and the no-op default:
``enabled`` is False and every method does nothing, so the disabled path
costs one attribute read per call site. :class:`Tracer` is the real
recorder — an append-only event bus that the stepper, coach, and profiler
clients all read (see :mod:`repro.observe.stepper`,
:mod:`repro.observe.coach`, :mod:`repro.observe.profiler`).

Like :mod:`repro.runtime.stats`, the *current* recorder is context-scoped:
a :class:`~repro.Runtime` activates its tracer for the dynamic extent of
each operation, so concurrent Runtimes never interleave events. A process
*global* tracer can additionally be installed (``repro trace script.py``
uses this to observe every Runtime a driver script creates).
"""

from __future__ import annotations

import contextvars
import time
from contextlib import contextmanager
from typing import Any, Iterator, Optional

from repro.observe.events import INSTANT, SPAN, TraceEvent
from repro.syn.srcloc import SrcLoc

#: longest rendered syntax string kept per stepper event
_MAX_SYNTAX_CHARS = 2000


class Recorder:
    """No-op recorder: the protocol *and* the disabled default."""

    #: call sites check this before paying any recording cost
    enabled = False
    #: when True, macro steps also render input/output syntax (full stepper)
    capture_syntax = False

    def instant(
        self,
        category: str,
        name: str,
        srcloc: Optional[SrcLoc] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        pass

    @contextmanager
    def span(
        self,
        category: str,
        name: str,
        srcloc: Optional[SrcLoc] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> Iterator[None]:
        yield

    # -- stepper ------------------------------------------------------------

    def macro_step(
        self,
        name: str,
        srcloc: Optional[SrcLoc],
        depth: int,
        stx_in: Any = None,
        stx_out: Any = None,
        intro_scope: Optional[str] = None,
    ) -> None:
        pass

    # -- optimization coach -------------------------------------------------

    def opt_fired(
        self,
        rule: str,
        op: str,
        replacement: str,
        srcloc: Optional[SrcLoc],
        operand_types: Optional[list[str]] = None,
    ) -> None:
        pass

    def opt_near_miss(
        self,
        rule: str,
        op: str,
        reason: str,
        srcloc: Optional[SrcLoc],
        operand_types: Optional[list[str]] = None,
    ) -> None:
        pass


#: the shared no-op instance
NULL_RECORDER = Recorder()


class Tracer(Recorder):
    """The event bus: an append-only list of :class:`TraceEvent`.

    ``capture_syntax`` turns on the full macro stepper (input/output syntax
    rendered per transformer application — the expensive mode).
    ``max_events`` bounds memory on runaway workloads; once reached, further
    events are counted in :attr:`dropped` instead of stored.
    """

    enabled = True

    def __init__(
        self, *, capture_syntax: bool = False, max_events: int = 250_000
    ) -> None:
        self.capture_syntax = capture_syntax
        self.max_events = max_events
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._epoch = time.perf_counter()

    # -- primitives ---------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _emit(self, event: TraceEvent) -> None:
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return
        self.events.append(event)

    def instant(
        self,
        category: str,
        name: str,
        srcloc: Optional[SrcLoc] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> None:
        self._emit(
            TraceEvent(INSTANT, category, name, self._now(), srcloc=srcloc,
                       attrs=attrs or {})
        )

    @contextmanager
    def span(
        self,
        category: str,
        name: str,
        srcloc: Optional[SrcLoc] = None,
        attrs: Optional[dict[str, Any]] = None,
    ) -> Iterator[None]:
        start = self._now()
        try:
            yield
        finally:
            self._emit(
                TraceEvent(
                    SPAN, category, name, start,
                    dur=self._now() - start, srcloc=srcloc, attrs=attrs or {},
                )
            )

    # -- stepper ------------------------------------------------------------

    @staticmethod
    def _render_syntax(stx: Any) -> str:
        from repro.syn.syntax import syntax_to_datum, write_datum

        try:
            text = write_datum(syntax_to_datum(stx))
        except Exception:  # never let rendering break the compile
            text = f"#<unrenderable {type(stx).__name__}>"
        if len(text) > _MAX_SYNTAX_CHARS:
            text = text[:_MAX_SYNTAX_CHARS] + " ..."
        return text

    def macro_step(
        self,
        name: str,
        srcloc: Optional[SrcLoc],
        depth: int,
        stx_in: Any = None,
        stx_out: Any = None,
        intro_scope: Optional[str] = None,
    ) -> None:
        attrs: dict[str, Any] = {}
        if intro_scope is not None:
            attrs["intro_scope"] = intro_scope
        if self.capture_syntax:
            if stx_in is not None:
                attrs["in"] = self._render_syntax(stx_in)
            if stx_out is not None:
                attrs["out"] = self._render_syntax(stx_out)
        self._emit(
            TraceEvent(INSTANT, "macro", name, self._now(), srcloc=srcloc,
                       depth=depth, attrs=attrs)
        )

    # -- optimization coach -------------------------------------------------

    def opt_fired(
        self,
        rule: str,
        op: str,
        replacement: str,
        srcloc: Optional[SrcLoc],
        operand_types: Optional[list[str]] = None,
    ) -> None:
        attrs: dict[str, Any] = {"rule": rule, "op": op, "replacement": replacement}
        if operand_types:
            attrs["operand_types"] = operand_types
        self._emit(
            TraceEvent(INSTANT, "coach", "fired", self._now(), srcloc=srcloc,
                       attrs=attrs)
        )

    def opt_near_miss(
        self,
        rule: str,
        op: str,
        reason: str,
        srcloc: Optional[SrcLoc],
        operand_types: Optional[list[str]] = None,
    ) -> None:
        attrs: dict[str, Any] = {"rule": rule, "op": op, "reason": reason}
        if operand_types:
            attrs["operand_types"] = operand_types
        self._emit(
            TraceEvent(INSTANT, "coach", "near-miss", self._now(), srcloc=srcloc,
                       attrs=attrs)
        )


# -- the current recorder (context-scoped, with a process-global fallback) ----

_ACTIVE: contextvars.ContextVar[Optional[Recorder]] = contextvars.ContextVar(
    "repro_active_recorder", default=None
)

#: process-global tracer (``repro trace script.py``); one-element cell
_GLOBAL: list[Optional[Recorder]] = [None]


def current_recorder() -> Recorder:
    """The recorder instrumentation call sites should emit to."""
    active = _ACTIVE.get()
    if active is not None:
        return active
    g = _GLOBAL[0]
    return g if g is not None else NULL_RECORDER


@contextmanager
def use_recorder(recorder: Optional[Recorder]) -> Iterator[Recorder]:
    """Activate ``recorder`` (or the no-op) for a dynamic extent."""
    rec = recorder if recorder is not None else NULL_RECORDER
    token = _ACTIVE.set(rec)
    try:
        yield rec
    finally:
        _ACTIVE.reset(token)


def install_global_tracer(tracer: Recorder) -> None:
    """Make ``tracer`` the process-wide default recorder. Runtimes created
    afterwards with ``trace=None`` adopt it — how ``repro trace script.py``
    observes every Runtime a driver script builds."""
    _GLOBAL[0] = tracer


def uninstall_global_tracer() -> None:
    _GLOBAL[0] = None


def global_tracer() -> Optional[Recorder]:
    return _GLOBAL[0]


def resolve_trace(trace: Any) -> Optional[Recorder]:
    """Map a ``Runtime(trace=...)`` argument to a recorder (or None).

    - ``None`` — adopt the installed global tracer, if any;
    - ``False`` — tracing off, even under a global tracer;
    - ``True`` — a fresh :class:`Tracer` (spans + coach + macro names);
    - ``"full"`` / ``"stepper"`` — a fresh Tracer that also renders each
      macro step's input/output syntax;
    - a :class:`Recorder` instance — used as given (shareable).
    """
    if trace is None:
        return _GLOBAL[0]
    if trace is False:
        return None
    if trace is True:
        return Tracer()
    if isinstance(trace, str):
        if trace in ("full", "stepper"):
            return Tracer(capture_syntax=True)
        raise ValueError(f"unknown trace mode: {trace!r}")
    if isinstance(trace, Recorder):
        return trace
    raise TypeError(f"trace must be None, bool, 'full', or a Recorder: {trace!r}")
