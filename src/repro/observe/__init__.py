"""Observability: structured tracing threaded through the whole pipeline.

One event bus (:class:`Tracer`), three clients:

- the **macro stepper** (:mod:`repro.observe.stepper`) — every transformer
  application, with srcloc, nesting depth, introduced scope, and (in full
  mode) rendered input/output syntax;
- the **optimization coach** (:mod:`repro.observe.coach`) — every
  type-driven specialization that fired and every near-miss with the reason
  it failed, keyed by srcloc;
- the **phase profiler** (:mod:`repro.observe.profiler`) — span timings for
  read/expand/typecheck/optimize/closure-compile/cache/run, exportable as a
  Chrome-trace JSON, JSONL, or a human summary.

Enable per Runtime (``Runtime(trace=True)`` or ``trace="full"``), from the
CLI (``repro trace file.rkt``, ``repro run --log-optimizations file.rkt``),
or in the REPL (``,trace`` / ``,stats``). Disabled, every instrumentation
point is a single guarded attribute read (see DESIGN.md §7 for the measured
overhead budget).
"""

from repro.observe.events import CATEGORIES, INSTANT, SPAN, TRACE_SCHEMA, TraceEvent
from repro.observe.recorder import (
    NULL_RECORDER,
    Recorder,
    Tracer,
    current_recorder,
    global_tracer,
    install_global_tracer,
    resolve_trace,
    uninstall_global_tracer,
    use_recorder,
)
from repro.observe.coach import coach_report, fired, near_misses
from repro.observe.profiler import (
    chrome_trace,
    export,
    phase_totals,
    summary,
    to_jsonl,
    validate_chrome_trace,
)
from repro.observe.stepper import macro_steps, stepper_report, steps_by_macro

__all__ = [
    "CATEGORIES",
    "INSTANT",
    "SPAN",
    "TRACE_SCHEMA",
    "TraceEvent",
    "Recorder",
    "Tracer",
    "NULL_RECORDER",
    "current_recorder",
    "use_recorder",
    "install_global_tracer",
    "uninstall_global_tracer",
    "global_tracer",
    "resolve_trace",
    "macro_steps",
    "steps_by_macro",
    "stepper_report",
    "coach_report",
    "fired",
    "near_misses",
    "phase_totals",
    "chrome_trace",
    "to_jsonl",
    "summary",
    "export",
    "validate_chrome_trace",
]
