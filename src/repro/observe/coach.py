"""The optimization coach: what fired, what *almost* fired, and why not.

St-Amour's optimization-coaching insight, applied to our §7 optimizers: a
specialization that silently fails to fire is invisible exactly when the
user most needs to know. The typed optimizers log every rewrite they
perform **and** every near-miss — an operation that matched a rule's shape
but whose operand types did not prove the rule sound (e.g. "operand typed
``Number``, not ``Float`` — no ``unsafe-fl+``"), keyed by source location
so the user can go add the annotation that unlocks it.
"""

from __future__ import annotations

from repro.observe.events import TraceEvent
from repro.observe.recorder import Tracer


def coach_events(tracer: Tracer) -> list[TraceEvent]:
    return [e for e in tracer.events if e.category == "coach"]


def fired(tracer: Tracer) -> list[TraceEvent]:
    return [e for e in coach_events(tracer) if e.name == "fired"]


def near_misses(tracer: Tracer) -> list[TraceEvent]:
    return [e for e in coach_events(tracer) if e.name == "near-miss"]


def coach_report(tracer: Tracer) -> str:
    """The human view, grouped into fired rewrites then actionable misses."""
    hits = fired(tracer)
    misses = near_misses(tracer)
    if not hits and not misses:
        return "optimization coach: nothing to report (no typed module optimized?)"
    lines = [
        f"optimization coach: {len(hits)} specialization(s) fired, "
        f"{len(misses)} near-miss(es)"
    ]
    for event in hits:
        where = f"{event.srcloc}: " if event.srcloc is not None else ""
        lines.append(
            f"  fired      {where}{event.attrs['op']} -> "
            f"{event.attrs['replacement']}  [{event.attrs['rule']}]"
        )
    for event in misses:
        where = f"{event.srcloc}: " if event.srcloc is not None else ""
        lines.append(
            f"  near-miss  {where}{event.attrs['op']}: {event.attrs['reason']}"
        )
    return "\n".join(lines)
