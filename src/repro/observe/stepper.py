"""The macro stepper: a readable view of the expander's transformer log.

The analogue of Racket's macro stepper (the tool DrRacket grew *because*
languages are libraries): every transformer application the expander
performed is on the event bus as a ``macro`` instant — macro name, use-site
source location, nesting depth, the introduction scope it flipped, and (in
``capture_syntax`` mode) the rendered input and output syntax.
"""

from __future__ import annotations

from typing import Optional

from repro.observe.events import TraceEvent
from repro.observe.recorder import Tracer


def macro_steps(tracer: Tracer) -> list[TraceEvent]:
    """Every transformer application recorded, in order."""
    return [e for e in tracer.events if e.category == "macro"]


def steps_by_macro(tracer: Tracer) -> dict[str, int]:
    """Transformer applications counted per macro name."""
    counts: dict[str, int] = {}
    for event in macro_steps(tracer):
        counts[event.name] = counts.get(event.name, 0) + 1
    return counts


def render_steps(
    steps: list[TraceEvent], *, limit: Optional[int] = None, indent: str = ""
) -> str:
    """Render steps one per line (nesting shown by depth), with the
    input/output syntax on follow-up lines when it was captured."""
    lines: list[str] = []
    shown = steps if limit is None else steps[:limit]
    for i, event in enumerate(shown, 1):
        where = f"  at {event.srcloc}" if event.srcloc is not None else ""
        pad = "  " * max(event.depth - 1, 0)
        lines.append(f"{indent}{i:>4}. {pad}{event.name}{where}")
        if "in" in event.attrs:
            lines.append(f"{indent}      {pad}in:  {event.attrs['in']}")
        if "out" in event.attrs:
            lines.append(f"{indent}      {pad}out: {event.attrs['out']}")
    if limit is not None and len(steps) > limit:
        lines.append(f"{indent}      ... ({len(steps) - limit} more steps)")
    return "\n".join(lines)


def stepper_report(tracer: Tracer, *, limit: Optional[int] = 200) -> str:
    """The full stepper view: every step plus the per-macro totals."""
    steps = macro_steps(tracer)
    if not steps:
        return "no macro expansion steps recorded"
    lines = [f"macro expansion: {len(steps)} transformer application(s)"]
    lines.append(render_steps(steps, limit=limit))
    return "\n".join(lines)
