"""The core AST — fully-expanded programs (fig. 1 of the paper).

Everything the expander produces parses into these ~12 node types; every
language implemented as a library bottoms out here. The typed languages'
checkers and optimizers work on *syntax objects* of fully-expanded code (so
they can keep using identifier resolution and syntax properties); this AST is
the final step before execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union

from repro.syn.binding import Binding, LocalBinding, ModuleBinding
from repro.syn.syntax import Syntax


class CoreExpr:
    __slots__ = ()


@dataclass(frozen=True, slots=True)
class Quote(CoreExpr):
    value: Any  # already a runtime value


@dataclass(frozen=True, slots=True)
class QuoteSyntax(CoreExpr):
    stx: Syntax


@dataclass(frozen=True, slots=True)
class LocalRef(CoreExpr):
    binding: LocalBinding
    name: str  # for error messages


@dataclass(frozen=True, slots=True)
class ModuleRef(CoreExpr):
    binding: ModuleBinding


@dataclass(frozen=True, slots=True)
class If(CoreExpr):
    test: CoreExpr
    then: CoreExpr
    orelse: CoreExpr


@dataclass(frozen=True, slots=True)
class Begin(CoreExpr):
    exprs: tuple[CoreExpr, ...]  # non-empty


@dataclass(frozen=True, slots=True)
class Lambda(CoreExpr):
    name: str
    params: tuple[LocalBinding, ...]
    rest: Optional[LocalBinding]
    body: tuple[CoreExpr, ...]  # non-empty


@dataclass(frozen=True, slots=True)
class LetValues(CoreExpr):
    bindings: tuple[tuple[tuple[LocalBinding, ...], CoreExpr], ...]
    body: tuple[CoreExpr, ...]
    recursive: bool = False


@dataclass(frozen=True, slots=True)
class SetBang(CoreExpr):
    binding: Binding
    name: str
    expr: CoreExpr


@dataclass(frozen=True, slots=True)
class App(CoreExpr):
    fn: CoreExpr
    args: tuple[CoreExpr, ...]


# --- module-level forms -------------------------------------------------------


@dataclass(frozen=True, slots=True)
class DefineValues:
    bindings: tuple[ModuleBinding, ...]
    names: tuple[str, ...]
    expr: CoreExpr


ModuleForm = Union[DefineValues, CoreExpr]


@dataclass(slots=True)
class CoreModuleBody:
    """The executable (phase 0) part of a compiled module."""

    forms: list[ModuleForm] = field(default_factory=list)
