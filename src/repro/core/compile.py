"""Compile the core AST to Python closures.

Each :class:`~repro.core.ast.CoreExpr` compiles to a Python callable taking a
runtime environment (a linked chain of frames: ``(frame_list, parent)``).
Compilation happens at module instantiation, with the target namespace in
hand, so module-level references resolve to their cells once, not per access.

Applications whose operator is a module-level binding already holding a
:class:`Primitive` compile to direct Python calls — the equivalent of the
inlining Racket's compiler performs for kernel primitives. This is what makes
the generic/unsafe distinction measurable: a safe ``(+ x y)`` becomes one
``generic_add`` call, an optimized ``(unsafe-fl+ x y)`` one ``unsafe_fl_add``
call.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.core import ast
from repro.core.interp import UNDEFINED, TailCall, apply_procedure, tail_apply
from repro.core.namespace import Namespace
from repro.errors import RuntimeReproError
from repro.runtime.values import Closure, Primitive, Values
from repro.syn.binding import LocalBinding, ModuleBinding

Compiled = Callable[[Any], Any]

#: Global compiler configuration. ``inline_primitives`` enables the direct
#: Python-call fast path for kernel primitives (our analogue of a Scheme
#: compiler's primitive inlining). The benchmark harness turns it off to
#: simulate a less-optimizing comparison compiler (see DESIGN.md §3).
COMPILE_CONFIG: dict[str, bool] = {"inline_primitives": True}


class CEnv:
    """Compile-time environment: local binding uid -> (depth, index)."""

    __slots__ = ("mapping", "parent")

    def __init__(self, mapping: dict[int, int], parent: Optional["CEnv"]) -> None:
        self.mapping = mapping
        self.parent = parent

    def lookup(self, uid: int) -> Optional[tuple[int, int]]:
        depth = 0
        env: Optional[CEnv] = self
        while env is not None:
            idx = env.mapping.get(uid)
            if idx is not None:
                return depth, idx
            env = env.parent
            depth += 1
        return None


class Compiler:
    def __init__(self, ns: Namespace, analysis: Any = None) -> None:
        self.ns = ns
        # Compilation happens at instantiation time, under the owning
        # Runtime's guard (if any) — so governance checks are *compiled in*
        # only for governed Runtimes, the way a bytecode backend would
        # inline them, and ungoverned code carries no hooks at all.
        from repro.guard.budget import current_guard

        self.guard = current_guard()
        #: optional :class:`repro.core.lower.ModuleAnalysis` — when present,
        #: reads of bindings the lower pass proves initialized (parameters,
        #: non-recursive let ids) skip the UNDEFINED check
        self.analysis = analysis

    # -- expressions ------------------------------------------------------

    def compile_expr(self, node: ast.CoreExpr, cenv: Optional[CEnv], tail: bool) -> Compiled:
        t = type(node)
        if t is ast.Quote:
            value = node.value
            return lambda env: value
        if t is ast.QuoteSyntax:
            stx = node.stx
            return lambda env: stx
        if t is ast.LocalRef:
            return self._compile_local_ref(node, cenv)
        if t is ast.ModuleRef:
            return self._compile_module_ref(node)
        if t is ast.If:
            test = self.compile_expr(node.test, cenv, False)
            then = self.compile_expr(node.then, cenv, tail)
            orelse = self.compile_expr(node.orelse, cenv, tail)
            return lambda env: then(env) if test(env) is not False else orelse(env)
        if t is ast.Begin:
            return self._compile_body(node.exprs, cenv, tail)
        if t is ast.Lambda:
            return self._compile_lambda(node, cenv)
        if t is ast.LetValues:
            return self._compile_let(node, cenv, tail)
        if t is ast.SetBang:
            return self._compile_set(node, cenv)
        if t is ast.App:
            return self._compile_app(node, cenv, tail)
        raise AssertionError(f"cannot compile {node!r}")  # pragma: no cover

    def _compile_local_ref(self, node: ast.LocalRef, cenv: Optional[CEnv]) -> Compiled:
        loc = cenv.lookup(node.binding.uid) if cenv is not None else None
        if loc is None:
            raise RuntimeReproError(f"compile: local {node.name} not in scope")
        depth, idx = loc
        name = node.name
        if (
            self.analysis is not None
            and node.binding.uid in self.analysis.initialized_uids
        ):
            if depth == 0:
                return lambda env: env[0][idx]
            if depth == 1:
                return lambda env: env[1][0][idx]

            def ref_fast(env: Any) -> Any:
                e = env
                for _ in range(depth):
                    e = e[1]
                return e[0][idx]

            return ref_fast
        if depth == 0:
            def ref0(env: Any) -> Any:
                value = env[0][idx]
                if value is UNDEFINED:
                    raise RuntimeReproError(f"{name}: used before initialization")
                return value

            return ref0
        if depth == 1:
            def ref1(env: Any) -> Any:
                value = env[1][0][idx]
                if value is UNDEFINED:
                    raise RuntimeReproError(f"{name}: used before initialization")
                return value

            return ref1

        def refn(env: Any) -> Any:
            e = env
            for _ in range(depth):
                e = e[1]
            value = e[0][idx]
            if value is UNDEFINED:
                raise RuntimeReproError(f"{name}: used before initialization")
            return value

        return refn

    def _compile_module_ref(self, node: ast.ModuleRef) -> Compiled:
        cell = self.ns.cell(node.binding.key())
        name = node.binding.name.name

        def ref(env: Any) -> Any:
            value = cell[0]
            if value is UNDEFINED:
                raise RuntimeReproError(f"{name}: undefined; referenced before definition")
            return value

        return ref

    def _compile_body(
        self, exprs: tuple[ast.CoreExpr, ...], cenv: Optional[CEnv], tail: bool
    ) -> Compiled:
        if len(exprs) == 1:
            return self.compile_expr(exprs[0], cenv, tail)
        inits = tuple(self.compile_expr(e, cenv, False) for e in exprs[:-1])
        last = self.compile_expr(exprs[-1], cenv, tail)

        def body(env: Any) -> Any:
            for f in inits:
                f(env)
            return last(env)

        return body

    def _compile_lambda(self, node: ast.Lambda, cenv: Optional[CEnv]) -> Compiled:
        mapping: dict[int, int] = {}
        for i, p in enumerate(node.params):
            mapping[p.uid] = i
        if node.rest is not None:
            mapping[node.rest.uid] = len(node.params)
        inner = CEnv(mapping, cenv)
        body_fn = self._compile_body(node.body, inner, True)
        name = node.name
        nparams = len(node.params)
        has_rest = node.rest is not None

        def make_closure(env: Any) -> Closure:
            return Closure(name, nparams, has_rest, body_fn, env)

        return make_closure

    def _compile_let(self, node: ast.LetValues, cenv: Optional[CEnv], tail: bool) -> Compiled:
        mapping: dict[int, int] = {}
        slots: list[tuple[tuple[int, ...], Compiled]] = []
        idx = 0
        clause_layout: list[tuple[int, int]] = []  # (start index, count)
        for ids, _rhs in node.bindings:
            clause_layout.append((idx, len(ids)))
            for b in ids:
                mapping[b.uid] = idx
                idx += 1
        size = idx
        inner = CEnv(mapping, cenv)
        rhs_env = inner if node.recursive else cenv
        compiled_rhss = [
            self.compile_expr(rhs, rhs_env, False) for (_ids, rhs) in node.bindings
        ]
        body_fn = self._compile_body(node.body, inner, tail)
        layout = tuple(clause_layout)
        rhss = tuple(compiled_rhss)

        if node.recursive:
            def run_letrec(env: Any) -> Any:
                frame = [UNDEFINED] * size
                new_env = (frame, env)
                for (start, count), rhs in zip(layout, rhss):
                    _bind_values(frame, start, count, rhs(new_env))
                return body_fn(new_env)

            return run_letrec

        def run_let(env: Any) -> Any:
            frame = [UNDEFINED] * size
            for (start, count), rhs in zip(layout, rhss):
                _bind_values(frame, start, count, rhs(env))
            return body_fn((frame, env))

        return run_let

    def _compile_set(self, node: ast.SetBang, cenv: Optional[CEnv]) -> Compiled:
        rhs = self.compile_expr(node.expr, cenv, False)
        from repro.runtime.values import VOID

        if isinstance(node.binding, LocalBinding):
            loc = cenv.lookup(node.binding.uid) if cenv is not None else None
            if loc is None:
                raise RuntimeReproError(f"compile: local {node.name} not in scope")
            depth, idx = loc

            def set_local(env: Any) -> Any:
                e = env
                for _ in range(depth):
                    e = e[1]
                e[0][idx] = rhs(env)
                return VOID

            return set_local
        assert isinstance(node.binding, ModuleBinding)
        cell = self.ns.cell(node.binding.key())

        def set_module(env: Any) -> Any:
            cell[0] = rhs(env)
            return VOID

        return set_module

    def _compile_app(self, node: ast.App, cenv: Optional[CEnv], tail: bool) -> Compiled:
        compiled_args = tuple(self.compile_expr(a, cenv, False) for a in node.args)
        nargs = len(compiled_args)

        # Fast path: operator is a module binding already holding a primitive
        # of compatible arity (kernel primitives are pre-installed, so generic
        # and unsafe arithmetic take this route).
        if COMPILE_CONFIG["inline_primitives"] and isinstance(node.fn, ast.ModuleRef):
            cell = self.ns.cell(node.fn.binding.key())
            value = cell[0]
            if (
                isinstance(value, Primitive)
                and value.arity_min <= nargs
                and (value.arity_max is None or nargs <= value.arity_max)
            ):
                pyfn = value.fn
                guard = self.guard
                if guard is not None and guard.track_allocations and value.allocates:
                    # charge the allocation budget at this compiled call
                    # site; the wrapped pyfn keeps the inline fast path
                    raw = pyfn

                    def pyfn(*args: Any, _raw: Any = raw, _guard: Any = guard) -> Any:
                        _guard.charge_alloc()
                        return _raw(*args)

                if nargs == 0:
                    return lambda env: pyfn()
                if nargs == 1:
                    a0 = compiled_args[0]
                    return lambda env: pyfn(a0(env))
                if nargs == 2:
                    a0, a1 = compiled_args
                    return lambda env: pyfn(a0(env), a1(env))
                if nargs == 3:
                    a0, a1, a2 = compiled_args
                    return lambda env: pyfn(a0(env), a1(env), a2(env))
                return lambda env: pyfn(*[a(env) for a in compiled_args])

        fn = self.compile_expr(node.fn, cenv, False)
        if tail:
            def app_tail(env: Any) -> Any:
                return tail_apply(fn(env), [a(env) for a in compiled_args])

            return app_tail

        def app(env: Any) -> Any:
            return apply_procedure(fn(env), [a(env) for a in compiled_args])

        return app

    # -- module-level forms -------------------------------------------------

    def compile_module_form(self, form: ast.ModuleForm) -> Callable[[], Any]:
        if isinstance(form, ast.DefineValues):
            expr = self.compile_expr(form.expr, None, False)
            cells = [self.ns.cell(b.key()) for b in form.bindings]
            count = len(cells)
            names = form.names

            def run_define() -> Any:
                from repro.runtime.values import VOID

                _bind_cells(cells, count, expr(None), names)
                return VOID

            return run_define
        expr_fn = self.compile_expr(form, None, False)
        return lambda: expr_fn(None)


def _bind_values(frame: list[Any], start: int, count: int, result: Any) -> None:
    if count == 1:
        if isinstance(result, Values):
            raise RuntimeReproError(
                f"binding expects 1 value, got {len(result.items)}"
            )
        frame[start] = result
        return
    if not isinstance(result, Values) or len(result.items) != count:
        got = len(result.items) if isinstance(result, Values) else 1
        raise RuntimeReproError(f"binding expects {count} values, got {got}")
    for i, value in enumerate(result.items):
        frame[start + i] = value


def _bind_cells(cells: list[list[Any]], count: int, result: Any, names: tuple[str, ...]) -> None:
    if count == 1:
        if isinstance(result, Values):
            raise RuntimeReproError(
                f"define-values: {names[0]}: expected 1 value, got {len(result.items)}"
            )
        cells[0][0] = result
        return
    if not isinstance(result, Values) or len(result.items) != count:
        got = len(result.items) if isinstance(result, Values) else 1
        raise RuntimeReproError(f"define-values: expected {count} values, got {got}")
    for cell, value in zip(cells, result.items):
        cell[0] = value
