"""Procedure application with trampolined tail calls.

The object language guarantees proper tail calls (benchmarks are written with
tail-recursive loops, as Scheme programs are). Compiled code in tail position
returns a :class:`TailCall` record instead of recursing; the driver loop in
:func:`apply_procedure` unwinds it, keeping the Python stack flat.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ArityError, ContractViolation, RuntimeReproError
from repro.runtime.stats import STATS
from repro.runtime.values import (
    Closure,
    ContractedProcedure,
    Primitive,
    Procedure,
)


class TailCall:
    __slots__ = ("fn", "args")

    def __init__(self, fn: Any, args: list[Any]) -> None:
        self.fn = fn
        self.args = args


#: marker for letrec variables referenced before initialization
class _Undefined:
    __slots__ = ()

    def __repr__(self) -> str:
        return "#<undefined>"


UNDEFINED = _Undefined()


def _make_frame(closure: Closure, args: list[Any]) -> list[Any]:
    n = closure.params
    if closure.rest:
        if len(args) < n:
            raise ArityError(
                f"{closure.name}: expected at least {n} arguments, got {len(args)}"
            )
        from repro.runtime.values import from_list

        frame = args[:n]
        frame.append(from_list(args[n:]))
        return frame
    if len(args) != n:
        raise ArityError(f"{closure.name}: expected {n} arguments, got {len(args)}")
    return args


def apply_procedure(fn: Any, args: list[Any]) -> Any:
    """Apply ``fn`` to ``args``, draining tail calls."""
    while True:
        t = type(fn)
        if t is Closure:
            env = (_make_frame(fn, args), fn.env)
            result = fn.body(env)
            if type(result) is TailCall:
                fn = result.fn
                args = result.args
                continue
            return result
        if t is Primitive:
            if len(args) < fn.arity_min or (
                fn.arity_max is not None and len(args) > fn.arity_max
            ):
                raise ArityError(
                    f"{fn.name}: arity mismatch, got {len(args)} arguments"
                )
            return fn.fn(*args)
        if t is ContractedProcedure:
            return fn.contract.apply(fn, args)
        if isinstance(fn, Procedure):  # pragma: no cover - future proc kinds
            raise RuntimeReproError(f"cannot apply {fn!r}")
        from repro.runtime.printing import write_value

        raise RuntimeReproError(f"application: not a procedure: {write_value(fn)}")


def tail_apply(fn: Any, args: list[Any]) -> Any:
    """Apply in tail position: defer closures to the caller's trampoline."""
    if type(fn) is Closure:
        return TailCall(fn, args)
    return apply_procedure(fn, args)
