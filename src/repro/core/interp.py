"""Procedure application with trampolined tail calls.

The object language guarantees proper tail calls (benchmarks are written with
tail-recursive loops, as Scheme programs are). Compiled code in tail position
returns a :class:`TailCall` record instead of recursing; the driver loop in
:func:`apply_procedure` unwinds it, keeping the Python stack flat.

Resource governance (:mod:`repro.guard`) hooks in here: when the current
Runtime carries a :class:`~repro.guard.Budget`, applications take a second
trampoline loop inlined in :func:`apply_procedure` that charges one *step*
per closure invocation (tail calls included — each trampoline iteration is
a step) and performs the amortized deadline/cancellation checkpoint.
Ungoverned Runtimes pay exactly one context-variable read per application
and keep the original fast loop.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ArityError, ContractViolation, RuntimeReproError
from repro.guard.budget import current_guard
from repro.runtime.stats import STATS
from repro.runtime.values import (
    Closure,
    ContractedProcedure,
    Primitive,
    Procedure,
    PyClosure,
)


class TailCall:
    __slots__ = ("fn", "args")

    def __init__(self, fn: Any, args: list[Any]) -> None:
        self.fn = fn
        self.args = args


#: marker for letrec variables referenced before initialization
class _Undefined:
    __slots__ = ()

    def __repr__(self) -> str:
        return "#<undefined>"


UNDEFINED = _Undefined()


def _make_frame(closure: Closure, args: list[Any]) -> list[Any]:
    n = closure.params
    if closure.rest:
        if len(args) < n:
            raise ArityError(
                f"{closure.name}: expected at least {n} arguments, got {len(args)}"
            )
        from repro.runtime.values import from_list

        frame = args[:n]
        frame.append(from_list(args[n:]))
        return frame
    if len(args) != n:
        raise ArityError(f"{closure.name}: expected {n} arguments, got {len(args)}")
    return args


def _apply_other(fn: Any, args: list[Any]) -> Any:
    """Apply a non-closure callable (shared by both trampolines)."""
    t = type(fn)
    if t is Primitive:
        if len(args) < fn.arity_min or (
            fn.arity_max is not None and len(args) > fn.arity_max
        ):
            raise ArityError(
                f"{fn.name}: arity mismatch, got {len(args)} arguments"
            )
        return fn.fn(*args)
    if t is ContractedProcedure:
        return fn.contract.apply(fn, args)
    if isinstance(fn, Procedure):  # pragma: no cover - future proc kinds
        raise RuntimeReproError(f"cannot apply {fn!r}")
    from repro.runtime.printing import write_value

    raise RuntimeReproError(f"application: not a procedure: {write_value(fn)}")


def apply_procedure(fn: Any, args: list[Any]) -> Any:
    """Apply ``fn`` to ``args``, draining tail calls.

    The governed trampoline is inlined below rather than delegated: an
    extra Python frame per application costs more than all of the charging
    arithmetic combined, and applications are the platform's hottest path.
    The per-step cost under a budget is one slot increment and one integer
    compare; ``checkpoint`` (clock read, cancellation flag, step-limit
    verdict) runs every ``check_interval`` steps. Those same two lines are
    what a bytecode backend would inline into emitted function prologues.
    """
    guard = current_guard()
    if guard is None:
        while True:
            t = type(fn)
            if t is Closure:
                env = (_make_frame(fn, args), fn.env)
                result = fn.body(env)
                if type(result) is TailCall:
                    fn = result.fn
                    args = result.args
                    continue
                return result
            if t is PyClosure:
                result = fn.fn(*_make_frame(fn, args))
                if type(result) is TailCall:
                    fn = result.fn
                    args = result.args
                    continue
                return result
            return _apply_other(fn, args)
    max_depth = guard.max_depth
    alloc = guard.allocations is not None
    while True:
        t = type(fn)
        if t is Closure or t is PyClosure:
            steps = guard.steps_used + 1
            guard.steps_used = steps
            if steps >= guard.next_check:
                guard.checkpoint(fn.name)
            if t is Closure:
                env = (_make_frame(fn, args), fn.env)
                body = fn.body
            else:
                env = _make_frame(fn, args)
                body = None
            if max_depth is None:
                result = fn.fn(*env) if body is None else body(env)
            else:
                # tail bounces balance the +1/-1 within this loop, so
                # `depth` tracks true (non-tail) nesting
                depth = guard.depth + 1
                guard.depth = depth
                if depth > max_depth:
                    guard._exhaust(
                        "depth", "G003",
                        f"evaluation exceeded its recursion-depth budget "
                        f"of {max_depth}",
                        fn.name,
                    )
                try:
                    result = fn.fn(*env) if body is None else body(env)
                finally:
                    guard.depth = depth - 1
            if type(result) is TailCall:
                fn = result.fn
                args = result.args
                continue
            return result
        if alloc and type(fn) is Primitive and fn.allocates:
            guard.charge_alloc()
        return _apply_other(fn, args)


def tail_apply(fn: Any, args: list[Any]) -> Any:
    """Apply in tail position: defer closures to the caller's trampoline."""
    t = type(fn)
    if t is Closure or t is PyClosure:
        return TailCall(fn, args)
    return apply_procedure(fn, args)
