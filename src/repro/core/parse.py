"""Parse fully-expanded syntax into the core AST.

Identifiers are resolved through the global binding table — the scopes on the
expanded syntax still carry all binding structure, so no environment needs to
be threaded (§4.3's observation that expanded identifiers are unique).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import ParseCoreError
from repro.expander.core_forms import CORE_FORMS
from repro.runtime.values import Symbol
from repro.syn.binding import (
    Binding,
    CoreFormBinding,
    LocalBinding,
    ModuleBinding,
    TABLE,
)
from repro.syn.syntax import (
    ImproperList,
    Syntax,
    datum_to_value,
    syntax_to_datum,
    write_datum,
)
from repro.core import ast


def _error(message: str, stx: Syntax) -> ParseCoreError:
    return ParseCoreError(
        f"{message} in: {write_datum(syntax_to_datum(stx))}", stx.srcloc
    )


def _items(stx: Syntax, message: str) -> tuple[Syntax, ...]:
    if not isinstance(stx.e, tuple):
        raise _error(message, stx)
    return stx.e


def core_form_of(stx: Syntax, phase: int = 0) -> Optional[str]:
    """If ``stx`` is a form whose head resolves to a core form, its name."""
    if not isinstance(stx.e, tuple) or not stx.e:
        return None
    head = stx.e[0]
    if not head.is_identifier():
        return None
    binding = TABLE.resolve(head, phase)
    if isinstance(binding, CoreFormBinding):
        return binding.name
    return None


def _resolve_var(ident: Syntax, phase: int) -> Binding:
    binding = TABLE.resolve(ident, phase)
    if binding is None:
        raise _error(f"unbound identifier {ident.e}", ident)
    if isinstance(binding, CoreFormBinding):
        raise _error(f"core form {binding.name} used as a variable", ident)
    return binding


def parse_expr(stx: Syntax, phase: int = 0) -> ast.CoreExpr:
    e = stx.e
    if isinstance(e, Symbol):
        binding = _resolve_var(stx, phase)
        if isinstance(binding, LocalBinding):
            return ast.LocalRef(binding, binding.name.name)
        assert isinstance(binding, ModuleBinding)
        return ast.ModuleRef(binding)
    form = core_form_of(stx, phase)
    if form is None:
        raise _error("not a core expression", stx)
    items = _items(stx, "not a core expression")
    if form == "quote":
        if len(items) != 2:
            raise _error("quote: bad syntax", stx)
        return ast.Quote(datum_to_value(syntax_to_datum(items[1])))
    if form == "quote-syntax":
        if len(items) != 2:
            raise _error("quote-syntax: bad syntax", stx)
        return ast.QuoteSyntax(items[1])
    if form == "if":
        if len(items) != 4:
            raise _error("if: bad syntax", stx)
        return ast.If(
            parse_expr(items[1], phase),
            parse_expr(items[2], phase),
            parse_expr(items[3], phase),
        )
    if form in ("begin", "#%expression", "begin0"):
        if len(items) < 2:
            raise _error(f"{form}: empty body", stx)
        exprs = tuple(parse_expr(x, phase) for x in items[1:])
        if len(exprs) == 1:
            return exprs[0]
        if form == "begin0":
            # (begin0 e rest ...) == (let-values ([(t) e]) rest ... t)
            tmp = LocalBinding(Symbol("begin0-result"))
            return ast.LetValues(
                (((tmp,), exprs[0]),),
                exprs[1:] + (ast.LocalRef(tmp, "begin0-result"),),
            )
        return ast.Begin(exprs)
    if form == "#%plain-lambda":
        return _parse_lambda(stx, items, phase)
    if form in ("let-values", "letrec-values"):
        return _parse_let_values(stx, items, phase, recursive=form == "letrec-values")
    if form == "set!":
        if len(items) != 3 or not items[1].is_identifier():
            raise _error("set!: bad syntax", stx)
        binding = _resolve_var(items[1], phase)
        return ast.SetBang(binding, items[1].e.name, parse_expr(items[2], phase))
    if form == "#%plain-app":
        if len(items) < 2:
            raise _error("#%plain-app: missing procedure", stx)
        return ast.App(
            parse_expr(items[1], phase),
            tuple(parse_expr(x, phase) for x in items[2:]),
        )
    raise _error(f"{form}: not valid in expression position", stx)


def _parse_formals(
    formals: Syntax, phase: int
) -> tuple[tuple[LocalBinding, ...], Optional[LocalBinding]]:
    def resolve_formal(ident: Syntax) -> LocalBinding:
        if not ident.is_identifier():
            raise _error("lambda: formal is not an identifier", ident)
        binding = TABLE.resolve(ident, phase)
        if not isinstance(binding, LocalBinding):
            raise _error(f"lambda: formal {ident.e} has no local binding", ident)
        return binding

    e = formals.e
    if isinstance(e, Symbol):
        return (), resolve_formal(formals)
    if isinstance(e, tuple):
        return tuple(resolve_formal(f) for f in e), None
    if isinstance(e, ImproperList):
        return (
            tuple(resolve_formal(f) for f in e.items),
            resolve_formal(e.tail),
        )
    raise _error("lambda: bad formals", formals)


def _parse_lambda(stx: Syntax, items: tuple[Syntax, ...], phase: int) -> ast.Lambda:
    if len(items) < 3:
        raise _error("#%plain-lambda: bad syntax", stx)
    params, rest = _parse_formals(items[1], phase)
    body = tuple(parse_expr(x, phase) for x in items[2:])
    name = stx.property_get("inferred-name", "anonymous")
    return ast.Lambda(name, params, rest, body)


def _parse_let_values(
    stx: Syntax, items: tuple[Syntax, ...], phase: int, recursive: bool
) -> ast.LetValues:
    if len(items) < 3:
        raise _error("let-values: bad syntax", stx)
    clauses = _items(items[1], "let-values: bad binding clauses")
    bindings: list[tuple[tuple[LocalBinding, ...], ast.CoreExpr]] = []
    for clause in clauses:
        parts = _items(clause, "let-values: bad clause")
        if len(parts) != 2:
            raise _error("let-values: bad clause", clause)
        ids = _items(parts[0], "let-values: bad identifier list")
        locals_: list[LocalBinding] = []
        for ident in ids:
            binding = TABLE.resolve(ident, phase)
            if not isinstance(binding, LocalBinding):
                raise _error(f"let-values: {ident.e} has no local binding", ident)
            locals_.append(binding)
        bindings.append((tuple(locals_), parse_expr(parts[1], phase)))
    body = tuple(parse_expr(x, phase) for x in items[2:])
    return ast.LetValues(tuple(bindings), body, recursive)


def parse_module_level_form(stx: Syntax, phase: int = 0) -> Optional[ast.ModuleForm]:
    """Parse one form of a fully-expanded module body.

    Returns None for forms with no phase-0 runtime content
    (``define-syntaxes``, ``begin-for-syntax``, ``#%provide``, ``#%require``).
    """
    form = core_form_of(stx, phase)
    if form in ("define-syntaxes", "begin-for-syntax", "#%provide", "#%require"):
        return None
    if form == "define-values":
        items = _items(stx, "define-values: bad syntax")
        if len(items) != 3:
            raise _error("define-values: bad syntax", stx)
        ids = _items(items[1], "define-values: bad identifier list")
        bindings: list[ModuleBinding] = []
        names: list[str] = []
        for ident in ids:
            binding = TABLE.resolve(ident, phase)
            if not isinstance(binding, ModuleBinding):
                raise _error(f"define-values: {ident.e} not module-bound", ident)
            bindings.append(binding)
            names.append(ident.e.name)
        return ast.DefineValues(tuple(bindings), tuple(names), parse_expr(items[2], phase))
    if form == "begin":
        # splicing begin at module level
        items = _items(stx, "begin: bad syntax")
        sub = [parse_module_level_form(x, phase) for x in items[1:]]
        parsed = [f for f in sub if f is not None]
        if not parsed:
            return None
        exprs = []
        for f in parsed:
            if isinstance(f, ast.DefineValues):
                raise _error("define-values inside expression-level begin", stx)
            exprs.append(f)
        if len(exprs) == 1:
            return exprs[0]
        return ast.Begin(tuple(exprs))
    return parse_expr(stx, phase)
