"""Backend selection: the last stage of the IR pipeline.

The compilation pipeline is::

    read -> expand -> core AST -> lower (repro.core.lower) -> backend

Two backends implement the final stage, selectable per Runtime
(``Runtime(backend="interp"|"pyc")``, CLI ``--backend``, REPL ``,backend``):

``interp``
    The closure-compiling tree walk (:mod:`repro.core.compile`): each core
    form compiles, at instantiation time with the namespace in hand, to a
    tree of Python closures. Codegen is charged to the ``closure-compile``
    observe phase, interleaved per form with ``run``.

``pyc``
    The CPython code-object backend (:mod:`repro.core.pyc`): the whole
    module body is translated to Python ``ast`` and ``compile()``d once,
    namespace-independently (charged to ``pyc-codegen``, usually at module
    compile time so the unit persists into the ``.zo`` artifact); at
    instantiation the unit is *linked* against the namespace
    (``pyc-link``) and the resulting per-form functions run.

Both backends share the expander, the core AST, the lower pass, the guard
budgets, and the observe bus; their procedures (:class:`Closure` /
:class:`PyClosure`) interoperate through the same trampoline, so a program
may even mix them across modules.
"""

from __future__ import annotations

from typing import Any

from repro.core.compile import Compiler
from repro.core.lower import module_analysis

BACKENDS = ("interp", "pyc")


def validate_backend(name: str) -> str:
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend: {name!r} (expected one of {', '.join(BACKENDS)})"
        )
    return name


class InterpBackend:
    """Per-form closure compilation interleaved with execution."""

    name = "interp"

    def __init__(self, registry: Any) -> None:
        self.registry = registry

    def instantiate(self, compiled: Any, ns: Any, rec: Any, guard: Any) -> None:
        compiler = Compiler(ns, analysis=module_analysis(compiled))
        path = compiled.path
        if not rec.enabled:
            if guard is None:
                for form in compiled.body.forms:
                    compiler.compile_module_form(form)()
                return
            # governed eval loop: a checkpoint between top-level forms
            # bounds deadline/cancellation latency even for programs that
            # never apply a closure (straight-line module bodies)
            for form in compiled.body.forms:
                guard.checkpoint(path)
                compiler.compile_module_form(form)()
            return
        # traced: keep the compile-then-run interleaving, but charge the
        # closure-compilation and execution of each form to separate spans
        with rec.span("instantiate", path):
            for form in compiled.body.forms:
                if guard is not None:
                    guard.checkpoint(path)
                with rec.span("closure-compile", path):
                    thunk = compiler.compile_module_form(form)
                with rec.span("run", path):
                    thunk()


class PycBackend:
    """Link the module's code-object unit, then run its form functions."""

    name = "pyc"

    def __init__(self, registry: Any) -> None:
        self.registry = registry

    def instantiate(self, compiled: Any, ns: Any, rec: Any, guard: Any) -> None:
        from repro.core.pyc import link_unit

        # normally already generated (module compile time / artifact load);
        # regenerates only when the backend was switched after compilation
        # or the artifact came from a different CPython version
        unit = self.registry.ensure_pyc_unit(compiled)
        path = compiled.path
        if not rec.enabled:
            thunks = link_unit(unit, ns, guard)
            if guard is None:
                for thunk in thunks:
                    thunk()
                return
            for thunk in thunks:
                guard.checkpoint(path)
                thunk()
            return
        with rec.span("instantiate", path):
            with rec.span("pyc-link", path):
                thunks = link_unit(unit, ns, guard)
            for thunk in thunks:
                if guard is not None:
                    guard.checkpoint(path)
                with rec.span("run", path):
                    thunk()


def make_backend(name: str, registry: Any):
    if name == "pyc":
        return PycBackend(registry)
    if name == "interp":
        return InterpBackend(registry)
    raise ValueError(
        f"unknown backend: {name!r} (expected one of {', '.join(BACKENDS)})"
    )
