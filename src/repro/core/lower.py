"""The normalize/lower pass: static analysis shared by both backends.

The pipeline is expand -> core AST (:mod:`repro.core.ast`) -> **lower** ->
backend. This pass computes, in one walk over a module body, the facts a
backend needs to emit better code than a naive tree traversal:

- **free variables** of every ``Lambda`` (local binding uids referenced or
  assigned but not bound inside it);
- **initialized locals**: bindings that can never be observed as
  ``UNDEFINED`` (lambda parameters, rest parameters, and non-recursive
  ``let-values`` ids) — the interp backend elides its per-read
  initialization check for these, and the ``pyc`` backend emits a bare
  Python local read; only ``letrec``-bound ids keep the check;
- **loop-safe lambdas**: lambdas whose self tail calls may be compiled to a
  Python ``while`` loop. The hazard is Python's one-cell-per-invocation
  closure capture: a Scheme tail self-call creates *fresh* bindings each
  iteration, while a Python loop rebinds the same cells, so any nested
  lambda closing over a binding that lives inside the loop body (a
  parameter or a ``let`` id bound per iteration) would observe the last
  iteration's values. A lambda is loop-safe only when no nested lambda
  captures any such binding (and it has no rest parameter);
- **mutated bindings**: local uids and module binding keys targeted by
  ``set!`` anywhere in the module — a self call through a mutated binding
  must stay a real (trampolined) call, because the binding may no longer
  hold the function.

The analysis is purely syntactic, namespace-independent, and cheap (one
pass, no fixpoints), so it can run either at module-compile time (``pyc``
codegen) or at instantiation (interp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.core import ast
from repro.syn.binding import LocalBinding, ModuleBinding


@dataclass(slots=True)
class LambdaInfo:
    """Per-``Lambda`` facts, keyed by ``id(node)`` in :class:`ModuleAnalysis`."""

    free: frozenset[int]
    loop_safe: bool


@dataclass(slots=True)
class ModuleAnalysis:
    """The lowering facts for one module body (or a bare expression)."""

    initialized_uids: set[int] = field(default_factory=set)
    letrec_uids: set[int] = field(default_factory=set)
    mutated_uids: set[int] = field(default_factory=set)
    mutated_module_keys: set[tuple] = field(default_factory=set)
    lambdas: dict[int, LambdaInfo] = field(default_factory=dict)

    def lambda_info(self, node: ast.Lambda) -> LambdaInfo:
        info = self.lambdas.get(id(node))
        if info is None:  # pragma: no cover - defensive (unanalyzed node)
            return LambdaInfo(frozenset(), False)
        return info


def analyze_module(
    body: Union[ast.CoreModuleBody, ast.ModuleForm]
) -> ModuleAnalysis:
    """Analyze a module body (or a single form/expression)."""
    analysis = ModuleAnalysis()
    if isinstance(body, ast.CoreModuleBody):
        forms = list(body.forms)
    else:
        forms = [body]
    for form in forms:
        if isinstance(form, ast.DefineValues):
            _walk(form.expr, analysis)
        else:
            _walk(form, analysis)
    return analysis


def module_analysis(compiled) -> ModuleAnalysis:
    """The (memoized) analysis of a :class:`CompiledModule`'s body."""
    cached = getattr(compiled, "_analysis", None)
    if cached is None:
        cached = analyze_module(compiled.body)
        compiled._analysis = cached
    return cached


def _walk(node: ast.CoreExpr, analysis: ModuleAnalysis) -> frozenset[int]:
    """Return the free local-binding uids of ``node``, filling ``analysis``."""
    t = type(node)
    if t is ast.Quote or t is ast.QuoteSyntax:
        return frozenset()
    if t is ast.LocalRef:
        return frozenset((node.binding.uid,))
    if t is ast.ModuleRef:
        return frozenset()
    if t is ast.If:
        return _walk(node.test, analysis) | _walk(node.then, analysis) | _walk(
            node.orelse, analysis
        )
    if t is ast.Begin:
        return _walk_seq(node.exprs, analysis)
    if t is ast.SetBang:
        free = _walk(node.expr, analysis)
        if isinstance(node.binding, LocalBinding):
            analysis.mutated_uids.add(node.binding.uid)
            return free | frozenset((node.binding.uid,))
        if isinstance(node.binding, ModuleBinding):
            analysis.mutated_module_keys.add(node.binding.key())
        return free
    if t is ast.App:
        free = _walk(node.fn, analysis)
        for a in node.args:
            free |= _walk(a, analysis)
        return free
    if t is ast.LetValues:
        bound: set[int] = set()
        for ids, _rhs in node.bindings:
            for b in ids:
                bound.add(b.uid)
                if node.recursive:
                    analysis.letrec_uids.add(b.uid)
                else:
                    analysis.initialized_uids.add(b.uid)
        free: frozenset[int] = frozenset()
        for _ids, rhs in node.bindings:
            free |= _walk(rhs, analysis)
        free |= _walk_seq(node.body, analysis)
        return free - frozenset(bound)
    if t is ast.Lambda:
        bound = set()
        for p in node.params:
            bound.add(p.uid)
            analysis.initialized_uids.add(p.uid)
        if node.rest is not None:
            bound.add(node.rest.uid)
            analysis.initialized_uids.add(node.rest.uid)
        body_free = _walk_seq(node.body, analysis)
        free = body_free - frozenset(bound)
        analysis.lambdas[id(node)] = LambdaInfo(
            free=free, loop_safe=_loop_safe(node, analysis)
        )
        return free
    raise AssertionError(f"cannot analyze {node!r}")  # pragma: no cover


def _walk_seq(
    exprs: tuple[ast.CoreExpr, ...], analysis: ModuleAnalysis
) -> frozenset[int]:
    free: frozenset[int] = frozenset()
    for e in exprs:
        free |= _walk(e, analysis)
    return free


def _loop_safe(lam: ast.Lambda, analysis: ModuleAnalysis) -> bool:
    """May ``lam``'s self tail calls be compiled to a Python loop?

    Requires: no rest parameter (rest lists would need re-packing per
    iteration), and no lambda nested in the body captures a binding that
    is rebound per iteration (parameters, or any ``let``/``letrec`` id
    introduced in the body outside nested lambdas).
    """
    if lam.rest is not None:
        return False
    iteration_bound: set[int] = {p.uid for p in lam.params}
    nested: list[ast.Lambda] = []
    for expr in lam.body:
        _collect_iteration_scope(expr, iteration_bound, nested)
    for inner in nested:
        info = analysis.lambdas.get(id(inner))
        # inner lambdas are analyzed before the enclosing one (bottom-up)
        if info is None or info.free & iteration_bound:
            return False
    return True


def _collect_iteration_scope(
    node: ast.CoreExpr, bound: set[int], nested: list[ast.Lambda]
) -> None:
    """Collect let-introduced uids and directly nested lambdas, not
    descending into nested lambdas (their free sets already account for
    transitive captures)."""
    t = type(node)
    if t is ast.Lambda:
        nested.append(node)
        return
    if t is ast.LetValues:
        for ids, _rhs in node.bindings:
            for b in ids:
                bound.add(b.uid)
        for _ids, rhs in node.bindings:
            _collect_iteration_scope(rhs, bound, nested)
        for e in node.body:
            _collect_iteration_scope(e, bound, nested)
        return
    if t is ast.If:
        _collect_iteration_scope(node.test, bound, nested)
        _collect_iteration_scope(node.then, bound, nested)
        _collect_iteration_scope(node.orelse, bound, nested)
        return
    if t is ast.Begin:
        for e in node.exprs:
            _collect_iteration_scope(e, bound, nested)
        return
    if t is ast.SetBang:
        _collect_iteration_scope(node.expr, bound, nested)
        return
    if t is ast.App:
        _collect_iteration_scope(node.fn, bound, nested)
        for a in node.args:
            _collect_iteration_scope(a, bound, nested)
        return
    # Quote / QuoteSyntax / LocalRef / ModuleRef: nothing to collect


def stable_self_binding(
    lam_binding: Optional[object], analysis: ModuleAnalysis
) -> bool:
    """Is a binding holding ``lam`` stable (never ``set!``), so a self call
    through it is guaranteed to reach the same function?"""
    if isinstance(lam_binding, LocalBinding):
        return lam_binding.uid not in analysis.mutated_uids
    if isinstance(lam_binding, ModuleBinding):
        return lam_binding.key() not in analysis.mutated_module_keys
    return False
