"""Run-time namespaces: binding key -> mutable cell.

A namespace is one "store" in the paper's sense. Each program run gets a
fresh phase-0 namespace; each module *compilation* gets a fresh phase-1
namespace (§2.3: "each module is compiled with a fresh store").
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.interp import UNDEFINED
from repro.errors import RuntimeReproError
from repro.syn.binding import ModuleBinding


class Namespace:
    def __init__(self, name: str = "namespace") -> None:
        self.name = name
        self.cells: dict[Any, list[Any]] = {}
        #: module path -> True once instantiated in this namespace
        self.instantiated: dict[str, bool] = {}

    def cell(self, key: Any) -> list[Any]:
        c = self.cells.get(key)
        if c is None:
            c = [UNDEFINED]
            self.cells[key] = c
        return c

    def define(self, binding: ModuleBinding, value: Any) -> None:
        self.cell(binding.key())[0] = value

    def lookup(self, binding: ModuleBinding) -> Any:
        c = self.cells.get(binding.key())
        if c is None or c[0] is UNDEFINED:
            raise RuntimeReproError(
                f"{binding.name}: undefined; referenced before definition"
            )
        return c[0]

    def has(self, binding: ModuleBinding) -> bool:
        c = self.cells.get(binding.key())
        return c is not None and c[0] is not UNDEFINED
