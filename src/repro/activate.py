"""``import repro.activate`` — install the ``#lang`` import hook, mcpyrate
style: one side-effecting import at the top of an entry point makes every
registered ``#lang`` file importable as an ordinary Python module.

Equivalent to::

    from repro.importer import install
    install()

The installed finder is exported as :data:`finder` so callers can inspect
or reconfigure it (``repro.importer.install(...)`` replaces it).
"""

from repro.importer import install, installed

finder = installed() or install()
