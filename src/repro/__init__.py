"""repro — "Languages as Libraries" (PLDI 2011) reproduced in Python.

An extensible-language platform in the style of Racket: a reader, hygienic
macro expander with syntax objects and ``local-expand``, module system with
``#lang`` dispatch and separate compilation — plus, built *as libraries on
top of it*, the paper's typed sister language with safe typed/untyped
interop and a type-driven optimizer.

Quickstart::

    from repro import Runtime

    rt = Runtime()
    print(rt.run_source('''#lang typed
    (: fib (Integer -> Integer))
    (define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
    (displayln (fib 20))
    '''))
"""

import sys as _sys

# Object-language frames cost several Python frames each; deep (non-tail)
# recursion in benchmarks needs headroom. CPython >= 3.11 allocates frames on
# the heap, so a high limit is safe.
if _sys.getrecursionlimit() < 100_000:
    _sys.setrecursionlimit(100_000)

from repro.diagnostics import CompileResult, Diagnostic, DiagnosticSession
from repro.errors import (
    AmbiguousBindingError,
    BudgetExhausted,
    CompilationFailed,
    ContractViolation,
    EvaluationCancelled,
    ExpansionLimitError,
    ModuleError,
    ParseCoreError,
    ReaderError,
    ReproError,
    RuntimeReproError,
    SyntaxExpansionError,
    TypeCheckError,
    UnboundIdentifierError,
    WrongTypeError,
)
from repro.guard import Budget, CancelToken
from repro.observe import Recorder, Tracer
from repro.runtime.stats import STATS, Stats
from repro.tools.runner import Runtime

__version__ = "1.0.0"

__all__ = [
    "Runtime",
    "STATS",
    "Stats",
    "Budget",
    "CancelToken",
    "BudgetExhausted",
    "EvaluationCancelled",
    "Recorder",
    "Tracer",
    "CompileResult",
    "Diagnostic",
    "DiagnosticSession",
    "ReproError",
    "ReaderError",
    "SyntaxExpansionError",
    "UnboundIdentifierError",
    "AmbiguousBindingError",
    "ExpansionLimitError",
    "ParseCoreError",
    "TypeCheckError",
    "CompilationFailed",
    "ContractViolation",
    "RuntimeReproError",
    "WrongTypeError",
    "ModuleError",
]
