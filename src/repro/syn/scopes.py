"""Scopes and scope sets — the hygiene mechanism of the expander.

We use the sets-of-scopes model (Flatt, POPL 2016), the modern formulation of
the Racket macro expander that the paper relies on. Every syntax object
carries a set of scopes; every binding is recorded together with the scope set
of its binder; a reference resolves to the binding whose scope set is the
largest subset of the reference's scopes.
"""

from __future__ import annotations

import itertools
import sys
from typing import FrozenSet


class Scope:
    """A unique token added to syntax by a binding form or macro expansion.

    ``kind`` is purely informational (useful in error messages and debugging):
    ``module``, ``macro`` (introduction scopes), ``use-site``, ``local``
    (binding forms), ``lang`` (a language library's anchor scope).

    ``token`` is the scope's *persistent identity*: normally ``None``, it is
    assigned when the scope is first serialized into a compiled artifact
    (see :mod:`repro.modules.cache`) so that separately loaded artifacts can
    agree on scope identity across process boundaries. Scopes compare and
    hash by object identity; tokens only name them in the artifact format.
    """

    __slots__ = ("id", "kind", "token", "__weakref__")
    #: atomic id source (``next()`` is safe under the GIL; the old
    #: ``_counter += 1`` could mint duplicate ids on concurrent threads)
    _counter = itertools.count(1)

    def __init__(self, kind: str = "local") -> None:
        self.id = next(Scope._counter)
        # interned: kinds land in pickled artifacts, and byte-identical
        # serialization needs every equal kind to be one string object
        # (pickle memoizes by identity) whether the scope was built from a
        # source literal or reconstructed from an artifact
        self.kind = sys.intern(kind)
        self.token: "str | None" = None

    def __repr__(self) -> str:
        return f"#<scope:{self.kind}:{self.id}>"

    def __lt__(self, other: "Scope") -> bool:
        return self.id < other.id


ScopeSet = FrozenSet[Scope]

EMPTY_SCOPES: ScopeSet = frozenset()


def add_scope(scopes: ScopeSet, scope: Scope) -> ScopeSet:
    return scopes | {scope}


def remove_scope(scopes: ScopeSet, scope: Scope) -> ScopeSet:
    return scopes - {scope}


def flip_scope(scopes: ScopeSet, scope: Scope) -> ScopeSet:
    """Add the scope if absent, remove it if present.

    Flipping is how macro-introduction scopes work: the expander flips the
    introduction scope on the macro's input and again on its output, so only
    syntax *introduced* by the transformer (absent from the input) ends up
    carrying the scope.
    """
    if scope in scopes:
        return scopes - {scope}
    return scopes | {scope}
