"""Syntax objects, scopes, source locations, and bindings."""

from repro.syn.binding import (
    Binding,
    BindingTable,
    CoreFormBinding,
    LocalBinding,
    ModuleBinding,
    TABLE,
    bound_identifier_eq,
    free_identifier_eq,
)
from repro.syn.scopes import EMPTY_SCOPES, Scope, ScopeSet
from repro.syn.srcloc import NO_SRCLOC, SrcLoc
from repro.syn.syntax import (
    ImproperList,
    Syntax,
    VectorDatum,
    datum_to_syntax,
    datum_to_value,
    syntax_to_datum,
    syntax_to_list,
    write_datum,
)

__all__ = [
    "Binding", "BindingTable", "CoreFormBinding", "LocalBinding",
    "ModuleBinding", "TABLE", "bound_identifier_eq", "free_identifier_eq",
    "EMPTY_SCOPES", "Scope", "ScopeSet", "NO_SRCLOC", "SrcLoc",
    "ImproperList", "Syntax", "VectorDatum", "datum_to_syntax",
    "datum_to_value", "syntax_to_datum", "syntax_to_list", "write_datum",
]
