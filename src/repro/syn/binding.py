"""Bindings and the global binding table.

A *binding* is what an identifier resolves to. The table maps
``(symbol, phase)`` to a list of ``(scope set, binding)`` entries. Resolution
of a reference finds all entries whose scope set is a subset of the
reference's scopes and picks the one with the largest scope set; if no single
candidate's scopes are a superset of every other candidate's, the reference is
ambiguous (a hygiene error).

Two binding flavours exist:

- :class:`LocalBinding` — introduced by ``#%plain-lambda``, ``let-values``,
  etc. Identity-based; fully-expanded programs refer to locals through these
  unique objects, which is why the paper's typechecker can use an
  identifier-keyed table "without having to reimplement variable renaming or
  environments" (§4.3).
- :class:`ModuleBinding` — a module-level definition or import. Keyed by
  ``(module path, symbol, phase)`` so the key is *stable across separate
  compilations* — the property §5 relies on to persist type environments.
"""

from __future__ import annotations

import contextvars
import itertools
import sys
import threading
from typing import Any, Optional

from repro.errors import AmbiguousBindingError, UnboundIdentifierError
from repro.runtime.values import Symbol
from repro.syn.scopes import ScopeSet
from repro.syn.syntax import Syntax


class Binding:
    __slots__ = ()

    def key(self) -> Any:
        raise NotImplementedError


class LocalBinding(Binding):
    __slots__ = ("name", "uid")
    #: uid source; itertools.count().__next__ is atomic under the GIL, so
    #: concurrent Runtimes on different threads never mint colliding uids
    #: (the old ``_counter += 1`` read-modify-write could)
    _counter = itertools.count(1)

    def __init__(self, name: Symbol) -> None:
        self.name = name
        self.uid = next(LocalBinding._counter)

    def key(self) -> Any:
        return ("local", self.uid)

    def __reduce__(self):
        # A deserialized LocalBinding takes a *fresh* uid: a uid minted in
        # the storing process could collide with one minted here, and keys
        # like ("local", uid) index compile-time tables. Pickle's memo still
        # deserializes each distinct object exactly once, so references
        # within one artifact keep sharing one binding.
        return (LocalBinding, (self.name,))

    def __repr__(self) -> str:
        return f"#<local:{self.name}.{self.uid}>"


class ModuleBinding(Binding):
    __slots__ = ("module_path", "name", "phase")

    def __init__(self, module_path: str, name: Symbol, phase: int = 0) -> None:
        # interned so every in-memory occurrence of a module path is one
        # string object — pickle's identity memo then shares it, keeping
        # artifact bytes identical whether the binding was built natively
        # or unpickled from a dependency's artifact
        self.module_path = sys.intern(module_path)
        self.name = name
        self.phase = phase

    def key(self) -> Any:
        return ("module", self.module_path, self.name.name, self.phase)

    def __reduce__(self):
        # route unpickling through __init__, so a loaded binding's path is
        # re-interned in this process
        return (ModuleBinding, (self.module_path, self.name, self.phase))

    def __repr__(self) -> str:
        return f"#<module-binding:{self.module_path}:{self.name}>"

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, ModuleBinding) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())


class CoreFormBinding(Binding):
    """A binding for one of the ~20 core syntactic forms of fig. 1."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def key(self) -> Any:
        return ("core", self.name)

    def __repr__(self) -> str:
        return f"#<core:{self.name}>"


#: One recorded table addition: (symbol, phase, scope set, binding). The
#: list of entries added while compiling a module is that module's *table
#: fragment* — persisted into its compiled artifact and replayed on cache
#: load, and removed again when the module is evicted (leak reclamation).
TableEntry = tuple[Symbol, int, ScopeSet, Binding]


class BindingTable:
    """The global (symbol, phase) -> [(scope set, binding)] table.

    Thread-safety (one table is shared by every Runtime in the process):

    - **Readers never lock.** :meth:`resolve` grabs a bucket reference and
      iterates it; concurrent appends are safe under the GIL, and the
      removal paths are *copy-on-write* (they build a new list and swap it
      in), so an in-flight reader keeps iterating a consistent snapshot.
    - **Writers serialize** on ``_lock`` — without it, a bucket rebuilt by
      one thread's :meth:`remove_entries` could silently drop an entry a
      second thread appended between the rebuild and the swap.
    - **Recorders are context-local.** The fragment-recorder stack lives in
      a contextvar, so two modules compiling on two threads each capture
      exactly their own additions (a process-global stack handed thread
      A's bindings to whichever thread pushed a recorder last).
    """

    def __init__(self) -> None:
        self._entries: dict[tuple[Symbol, int], list[tuple[ScopeSet, Binding]]] = {}
        #: serializes structural mutation (add/install/remove/release);
        #: reads stay lock-free
        self._lock = threading.RLock()
        #: active addition recorders, innermost last; only the innermost
        #: records, so nested module compilations each capture exactly
        #: their own additions. Context-local: each thread/task compiling
        #: concurrently sees only its own stack.
        self._recorders: "contextvars.ContextVar[Optional[list[list[TableEntry]]]]" = (
            contextvars.ContextVar("repro_table_recorders", default=None)
        )
        #: active *transaction logs*, also context-local. Unlike fragment
        #: recorders, every add/install in the dynamic extent lands in every
        #: active log (nesting included): a failed outermost compilation
        #: rolls back by removing exactly the entries it logged, never by
        #: truncating buckets to a snapshotted length (which would destroy
        #: entries a concurrent thread appended in the meantime).
        self._txn_logs: "contextvars.ContextVar[Optional[list[list[TableEntry]]]]" = (
            contextvars.ContextVar("repro_table_txn_logs", default=None)
        )

    def _recorder_stack(self) -> list[list[TableEntry]]:
        stack = self._recorders.get()
        if stack is None:
            stack = []
            self._recorders.set(stack)
        return stack

    def _txn_stack(self) -> list[list[TableEntry]]:
        stack = self._txn_logs.get()
        if stack is None:
            stack = []
            self._txn_logs.set(stack)
        return stack

    def add(self, name: Symbol, scopes: ScopeSet, binding: Binding, phase: int = 0) -> None:
        with self._lock:
            self._entries.setdefault((name, phase), []).append((scopes, binding))
        recorders = self._recorders.get()
        if recorders:
            recorders[-1].append((name, phase, scopes, binding))
        logs = self._txn_logs.get()
        if logs:
            entry = (name, phase, scopes, binding)
            for log in logs:
                log.append(entry)

    def bind_identifier(self, ident: Syntax, binding: Binding, phase: int = 0) -> None:
        if not ident.is_identifier():
            raise ValueError(f"bind_identifier: not an identifier: {ident!r}")
        self.add(ident.e, ident.scopes, binding, phase)

    def resolve(
        self, ident: Syntax, phase: int = 0, exactly: bool = False
    ) -> Optional[Binding]:
        """Resolve an identifier; None when unbound.

        ``exactly`` requires the binding's scope set to equal the reference's
        (used when checking for duplicate definitions).
        """
        entries = self._entries.get((ident.e, phase))
        if not entries:
            return None
        ref_scopes = ident.scopes
        candidates = [(s, b) for (s, b) in entries if s <= ref_scopes]
        if not candidates:
            return None
        best_scopes, best = max(candidates, key=lambda sb: len(sb[0]))
        best_key = best.key()
        for s, b in candidates:
            if not (s <= best_scopes) and b.key() != best_key:
                raise AmbiguousBindingError(
                    f"identifier's binding is ambiguous: {ident.e}", ident
                )
        if exactly and best_scopes != ref_scopes:
            return None
        return best

    # -- transactional compilation -----------------------------------------

    def snapshot(self) -> dict[tuple[Symbol, int], int]:
        """An O(keys) snapshot of the table's shape (diagnostic use only —
        rollback is transaction-log based, see :meth:`transaction`)."""
        with self._lock:
            return {key: len(entries) for key, entries in self._entries.items()}

    def transaction(self) -> "_Transaction":
        """Log every addition (add *and* install_entries) made in this
        context while active; ``rollback()`` removes exactly those entries.

        Replaces the earlier snapshot/length-truncation rollback, which was
        not safe under concurrent Runtimes: truncating a bucket to its
        snapshotted length also destroyed entries another thread appended
        after the snapshot. The log removes only this context's additions.
        """
        return _Transaction(self)

    def resolve_or_raise(self, ident: Syntax, phase: int = 0) -> Binding:
        binding = self.resolve(ident, phase)
        if binding is None:
            raise UnboundIdentifierError(f"unbound identifier: {ident.e}", ident)
        return binding

    # -- fragment recording / reclamation ----------------------------------

    def record_additions(self) -> "_Recorder":
        """Record every :meth:`add` made while the context is active.

        Used by module compilation to capture the module's table fragment:
        ``with TABLE.record_additions() as fragment: ...``. Nested recorders
        shadow outer ones, so a dependency compiled mid-way through its
        requirer records into its own fragment only.
        """
        return _Recorder(self)

    def install_entries(self, entries: list[TableEntry]) -> None:
        """Re-add a previously recorded fragment (bypassing recorders).

        Used when loading a compiled artifact: the loaded module's bindings
        must not be charged to whichever module's compilation triggered the
        load. Installed entries *are* logged to active transactions, so a
        compilation that fails after a cache load rolls the load back too.
        """
        with self._lock:
            for name, phase, scopes, binding in entries:
                self._entries.setdefault((name, phase), []).append((scopes, binding))
        logs = self._txn_logs.get()
        if logs:
            for log in logs:
                log.extend(entries)

    def remove_entries(self, entries: list[TableEntry]) -> int:
        """Remove previously recorded additions; returns how many were found.

        Entries already gone (e.g. dropped by a transactional rollback) are
        skipped silently. Buckets are rebuilt, not mutated in place, so a
        concurrent lock-free reader keeps a consistent view.
        """
        removed = 0
        with self._lock:
            for name, phase, scopes, binding in entries:
                bucket = self._entries.get((name, phase))
                if not bucket:
                    continue
                target = (scopes, binding)
                if target not in bucket:
                    continue
                kept = list(bucket)
                kept.remove(target)
                removed += 1
                if kept:
                    self._entries[(name, phase)] = kept
                else:
                    del self._entries[(name, phase)]
        return removed

    def release_scopes(self, scopes: "set | frozenset") -> int:
        """Drop every entry whose scope set intersects ``scopes``.

        The scope-set-based reclamation path: releasing a module's (or a
        whole Runtime's) scopes unbinds everything that could only ever be
        referenced through them. Returns the number of entries dropped.
        """
        if not scopes:
            return 0
        removed = 0
        with self._lock:
            for key in list(self._entries):
                bucket = self._entries[key]
                kept = [(s, b) for (s, b) in bucket if not (s & scopes)]
                removed += len(bucket) - len(kept)
                if kept:
                    self._entries[key] = kept
                else:
                    del self._entries[key]
        return removed

    def entry_count(self) -> int:
        """Total number of live entries (the leak regression metric)."""
        with self._lock:
            return sum(len(bucket) for bucket in self._entries.values())


class _Recorder:
    """Context manager yielding the list of additions made while active."""

    def __init__(self, table: BindingTable) -> None:
        self._table = table
        self.entries: list[TableEntry] = []

    def __enter__(self) -> list[TableEntry]:
        self._table._recorder_stack().append(self.entries)
        return self.entries

    def __exit__(self, *exc_info: Any) -> None:
        self._table._recorder_stack().pop()


class _Transaction:
    """Context-local log of every table addition made while active.

    ``rollback()`` removes exactly the logged entries — precise under
    concurrent Runtimes, where a shape snapshot would not be.
    """

    def __init__(self, table: BindingTable) -> None:
        self._table = table
        self.entries: list[TableEntry] = []

    def __enter__(self) -> "_Transaction":
        self._table._txn_stack().append(self.entries)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._table._txn_stack().remove(self.entries)

    def rollback(self) -> int:
        """Remove every entry this transaction logged; returns the count."""
        removed = self._table.remove_entries(self.entries)
        self.entries.clear()
        return removed


#: The single global binding table (scopes are globally unique, so sharing
#: one table across all compilations is safe — this mirrors Racket, where
#: binding information lives on the scopes themselves).
TABLE = BindingTable()


def free_identifier_eq(a: Syntax, b: Syntax, phase: int = 0) -> bool:
    """The paper's ``free-identifier=?``: do two identifiers refer to the
    same binding? Unbound identifiers compare by symbolic name."""
    ba = TABLE.resolve(a, phase)
    bb = TABLE.resolve(b, phase)
    if ba is None and bb is None:
        return a.e is b.e
    if ba is None or bb is None:
        return False
    return ba is bb or ba.key() == bb.key()


def bound_identifier_eq(a: Syntax, b: Syntax) -> bool:
    """Would ``a`` bind references to ``b``? Same symbol and same scopes."""
    return a.e is b.e and a.scopes == b.scopes
