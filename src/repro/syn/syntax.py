"""Syntax objects: Racket's attributed ASTs (§2.2 of the paper).

A :class:`Syntax` wraps a datum with

- a **scope set** (hygiene information, see :mod:`repro.syn.scopes`),
- a **source location**, and
- **syntax properties** — the out-of-band key/value metadata that the paper's
  ``define:`` uses to smuggle type annotations past the host's ``define``
  (§3.1). Properties are preserved by every scope operation and by
  ``datum->syntax`` when re-wrapping existing syntax.

The wrapped datum ``e`` is one of:

- an atom: :class:`~repro.runtime.values.Symbol`, ``bool``, ``int``,
  ``float``, ``Fraction``, ``complex``, ``str``, :class:`Char`,
  :class:`Keyword`;
- a ``tuple`` of child syntax objects (a proper list);
- an :class:`ImproperList` (a dotted list);
- a :class:`VectorDatum` (a ``#(...)`` literal).

Syntax objects are immutable; all operations return new objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Any, Callable, Iterable, Optional, Union

from repro.syn.scopes import EMPTY_SCOPES, Scope, ScopeSet
from repro.syn.scopes import add_scope as scopes_add
from repro.syn.scopes import flip_scope as scopes_flip
from repro.syn.scopes import remove_scope as scopes_remove
from repro.syn.srcloc import NO_SRCLOC, SrcLoc
from repro.runtime.values import Char, Keyword, Symbol

Atom = Union[Symbol, Keyword, bool, int, float, Fraction, complex, str, Char]

_EMPTY_PROPS: dict[Any, Any] = {}


@dataclass(frozen=True, slots=True)
class ImproperList:
    """The datum of a dotted list ``(a b . c)``: items ``(a, b)``, tail ``c``."""

    items: tuple["Syntax", ...]
    tail: "Syntax"


@dataclass(frozen=True, slots=True)
class VectorDatum:
    """The datum of a vector literal ``#(a b c)``."""

    items: tuple["Syntax", ...]


class Syntax:
    __slots__ = ("e", "scopes", "srcloc", "props")

    def __init__(
        self,
        e: Any,
        scopes: ScopeSet = EMPTY_SCOPES,
        srcloc: SrcLoc = NO_SRCLOC,
        props: Optional[dict[Any, Any]] = None,
    ) -> None:
        self.e = e
        self.scopes = scopes
        self.srcloc = srcloc
        self.props = props if props else _EMPTY_PROPS

    # -- predicates -----------------------------------------------------

    def is_identifier(self) -> bool:
        return isinstance(self.e, Symbol)

    def is_pair(self) -> bool:
        return isinstance(self.e, (tuple, ImproperList)) and len(self._items()) > 0

    def is_list(self) -> bool:
        return isinstance(self.e, tuple)

    def _items(self) -> tuple["Syntax", ...]:
        if isinstance(self.e, tuple):
            return self.e
        if isinstance(self.e, ImproperList):
            return self.e.items
        raise ValueError("not a compound syntax object")

    # -- properties (the paper's syntax-property-put / -get) -------------

    def property_put(self, key: Any, value: Any) -> "Syntax":
        new_props = dict(self.props)
        new_props[key] = value
        return Syntax(self.e, self.scopes, self.srcloc, new_props)

    def property_get(self, key: Any, default: Any = None) -> Any:
        return self.props.get(key, default)

    # -- scope operations -------------------------------------------------

    def _map_scopes(self, fn: Callable[[ScopeSet], ScopeSet]) -> "Syntax":
        e = self.e
        if isinstance(e, tuple):
            new_e: Any = tuple(child._map_scopes(fn) for child in e)
        elif isinstance(e, ImproperList):
            new_e = ImproperList(
                tuple(child._map_scopes(fn) for child in e.items),
                e.tail._map_scopes(fn),
            )
        elif isinstance(e, VectorDatum):
            new_e = VectorDatum(tuple(child._map_scopes(fn) for child in e.items))
        else:
            new_e = e
        return Syntax(new_e, fn(self.scopes), self.srcloc, self.props)

    def add_scope(self, scope: Scope) -> "Syntax":
        return self._map_scopes(lambda s: scopes_add(s, scope))

    def remove_scope(self, scope: Scope) -> "Syntax":
        return self._map_scopes(lambda s: scopes_remove(s, scope))

    def flip_scope(self, scope: Scope) -> "Syntax":
        return self._map_scopes(lambda s: scopes_flip(s, scope))

    def with_scopes(self, scopes: ScopeSet) -> "Syntax":
        """Replace this object's (and children's) scope sets wholesale."""
        return self._map_scopes(lambda _s: scopes)

    # -- misc --------------------------------------------------------------

    def __repr__(self) -> str:
        return f"#<syntax {write_datum(syntax_to_datum(self))}>"


# --- construction -------------------------------------------------------


def syntax_list(items: Iterable[Syntax], srcloc: SrcLoc = NO_SRCLOC) -> Syntax:
    return Syntax(tuple(items), EMPTY_SCOPES, srcloc)


def datum_to_syntax(
    ctx: Optional[Syntax],
    datum: Any,
    srcloc: Optional[SrcLoc] = None,
    props: Optional[dict[Any, Any]] = None,
) -> Syntax:
    """Convert a datum to syntax, using ``ctx``'s scopes for new parts.

    Existing :class:`Syntax` inside ``datum`` is left untouched (its scopes
    and properties are preserved) — this is what lets Python-implemented
    macros mix user subforms into freshly built templates hygienically.
    Python ``list``/``tuple`` become proper-list syntax.
    """
    scopes = ctx.scopes if ctx is not None else EMPTY_SCOPES
    loc = srcloc if srcloc is not None else (ctx.srcloc if ctx is not None else NO_SRCLOC)

    def convert(d: Any) -> Syntax:
        if isinstance(d, Syntax):
            return d
        if isinstance(d, (list, tuple)):
            return Syntax(tuple(convert(x) for x in d), scopes, loc, props)
        if isinstance(d, ImproperList):
            return Syntax(
                ImproperList(tuple(convert(x) for x in d.items), convert(d.tail)),
                scopes,
                loc,
                props,
            )
        if isinstance(d, VectorDatum):
            return Syntax(VectorDatum(tuple(convert(x) for x in d.items)), scopes, loc, props)
        if isinstance(d, str) or _is_atom(d):
            return Syntax(d, scopes, loc, props)
        raise TypeError(f"datum->syntax: cannot convert {d!r}")

    return convert(datum)


def _is_atom(d: Any) -> bool:
    return isinstance(d, (Symbol, Keyword, bool, int, float, Fraction, complex, Char))


def syntax_to_datum(stx: Syntax) -> Any:
    """Strip all syntax wrappers, producing a plain datum tree."""
    e = stx.e
    if isinstance(e, tuple):
        return tuple(syntax_to_datum(c) for c in e)
    if isinstance(e, ImproperList):
        return ImproperList(
            tuple(datum_to_syntax(None, syntax_to_datum(c)) for c in e.items),
            datum_to_syntax(None, syntax_to_datum(e.tail)),
        )
    if isinstance(e, VectorDatum):
        return VectorDatum(tuple(datum_to_syntax(None, syntax_to_datum(c)) for c in e.items))
    return e


def syntax_to_list(stx: Syntax) -> Optional[list[Syntax]]:
    """The paper's ``syntax->list``: children of a proper-list syntax, else None."""
    if isinstance(stx.e, tuple):
        return list(stx.e)
    return None


_SYNTHETIC_SOURCES = ("<template>", "<generated>")


def best_srcloc(stx: Any) -> Optional[SrcLoc]:
    """The most useful source location in a syntax tree.

    The node's own location, unless it is synthetic (template- or
    expander-introduced); then the first real location found among its
    descendants — template fills retain the use site's sub-syntax, so a
    macro-produced wrapper usually contains user syntax that still points
    at the program."""
    loc = getattr(stx, "srcloc", None)
    if loc is not None and loc.source not in _SYNTHETIC_SOURCES:
        return loc
    e = getattr(stx, "e", None)
    children: tuple = ()
    if isinstance(e, tuple):
        children = e
    elif isinstance(e, ImproperList):
        children = (*e.items, e.tail)
    elif isinstance(e, VectorDatum):
        children = e.items
    for child in children:
        found = best_srcloc(child)
        if found is not None and found.source not in _SYNTHETIC_SOURCES:
            return found
    return loc


# --- datum printing (for error messages and tests) ------------------------


def write_datum(d: Any) -> str:
    from repro.runtime.printing import write_value

    if isinstance(d, tuple):
        return "(" + " ".join(write_datum(x) for x in d) + ")"
    if isinstance(d, ImproperList):
        items = " ".join(write_datum(syntax_to_datum(x)) for x in d.items)
        return f"({items} . {write_datum(syntax_to_datum(d.tail))})"
    if isinstance(d, VectorDatum):
        return "#(" + " ".join(write_datum(syntax_to_datum(x)) for x in d.items) + ")"
    if isinstance(d, Syntax):
        return write_datum(syntax_to_datum(d))
    return write_value(d)


# --- datum -> runtime value (used by `quote`) -----------------------------


def datum_to_value(d: Any) -> Any:
    """Convert a stripped datum tree to runtime values (tuples become pairs)."""
    from repro.runtime.values import NULL, MVector, Pair

    if isinstance(d, Syntax):
        return datum_to_value(syntax_to_datum(d))
    if isinstance(d, tuple):
        result: Any = NULL
        for item in reversed(d):
            result = Pair(datum_to_value(item), result)
        return result
    if isinstance(d, ImproperList):
        result = datum_to_value(d.tail)
        for item in reversed(d.items):
            result = Pair(datum_to_value(item), result)
        return result
    if isinstance(d, VectorDatum):
        return MVector([datum_to_value(x) for x in d.items])
    return d
