"""Source locations attached to every datum the reader produces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True, slots=True)
class SrcLoc:
    """A point (and span) in a source file.

    ``line`` and ``column`` are 1- and 0-based respectively, following
    Racket's convention. ``position`` is the 0-based character offset and
    ``span`` the number of characters covered.
    """

    source: str
    line: int
    column: int
    position: int = 0
    span: int = 0

    def __str__(self) -> str:
        return f"{self.source}:{self.line}:{self.column}"

    def merge(self, other: Optional["SrcLoc"]) -> "SrcLoc":
        """Produce a location spanning from ``self`` to the end of ``other``."""
        if other is None or other.source != self.source:
            return self
        end = max(self.position + self.span, other.position + other.span)
        return SrcLoc(
            source=self.source,
            line=self.line,
            column=self.column,
            position=self.position,
            span=end - self.position,
        )


#: Placeholder location for syntax constructed programmatically.
NO_SRCLOC = SrcLoc(source="<generated>", line=0, column=0)
