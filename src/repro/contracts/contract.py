"""Higher-order contracts with blame (§6).

Typed Racket "automatically generate[s] run-time contracts from the types of
imported and exported bindings". These are the contracts it generates: flat
(first-order) checks applied immediately, and function contracts that wrap
procedures to check every application's arguments (blaming the *negative*
party, the caller's side) and results (blaming the *positive* party, the
implementation's side).
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import ContractViolation
from repro.runtime.stats import STATS
from repro.runtime.values import ContractedProcedure, Procedure
from repro.syn.srcloc import SrcLoc


class Contract:
    """Base class. ``attach`` applies the contract to a value at a boundary.

    ``srcloc`` records the boundary that generated this contract (the
    ``require/typed`` clause or provided identifier), so violations can point
    back at source code; ``None`` when the origin is unknown.
    """

    name: str = "contract"
    srcloc: Optional[SrcLoc] = None

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"#<contract:{self.name}>"


def propagate_srcloc(contract: Contract, srcloc: Optional[SrcLoc]) -> Contract:
    """Stamp ``srcloc`` onto ``contract`` and its sub-contracts (the pieces
    that check elements, arguments, results, ...), so that however deep a
    violation occurs, it names the boundary it guards. Already-stamped
    contracts are left alone (shared sub-contracts keep their own origin)."""
    if srcloc is None or contract.srcloc is not None:
        return contract
    if isinstance(contract, AnyContract):
        return contract  # ANY is a shared singleton (and never raises)
    contract.srcloc = srcloc
    for child in _sub_contracts(contract):
        propagate_srcloc(child, srcloc)
    return contract


def _sub_contracts(contract: Contract) -> list[Contract]:
    if isinstance(contract, ListOfContract) or isinstance(contract, VectorOfContract):
        return [contract.element]
    if isinstance(contract, PairOfContract):
        return [contract.car, contract.cdr]
    if isinstance(contract, OrContract):
        return list(contract.disjuncts)
    if isinstance(contract, FunctionContract):
        return [*contract.domain, contract.range]
    return []


class FlatContract(Contract):
    """An immediate first-order check: a named predicate."""

    def __init__(self, name: str, predicate: Callable[[Any], bool]) -> None:
        self.name = name
        self.predicate = predicate

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        STATS.contract_checks += 1
        if not self.predicate(value):
            from repro.runtime.printing import write_value

            raise ContractViolation(
                f"promised {self.name}, produced {write_value(value)}",
                positive,
                srcloc=self.srcloc,
            )
        return value


class AnyContract(Contract):
    """Accepts everything (the contract for type Any)."""

    name = "any/c"

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        return value


ANY = AnyContract()


class ListOfContract(Contract):
    """Checks a proper list, applying the element contract to every element.

    Eager, like ``listof`` on immutable data in Racket (our pairs are
    mutable, but the typed languages treat them as immutable; DESIGN.md
    documents this substitution).
    """

    def __init__(self, element: Contract) -> None:
        self.element = element
        self.name = f"(listof {element.name})"

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        from repro.runtime.values import NULL, Pair

        STATS.contract_checks += 1
        node = value
        out = []
        while isinstance(node, Pair):
            out.append(self.element.attach(node.car, positive, negative))
            node = node.cdr
        if node is not NULL:
            from repro.runtime.printing import write_value

            raise ContractViolation(
                f"promised {self.name}, produced {write_value(value)}",
                positive,
                srcloc=self.srcloc,
            )
        from repro.runtime.values import from_list

        return from_list(out)


class PairOfContract(Contract):
    def __init__(self, car: Contract, cdr: Contract) -> None:
        self.car = car
        self.cdr = cdr
        self.name = f"(cons/c {car.name} {cdr.name})"

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        from repro.runtime.values import Pair

        STATS.contract_checks += 1
        if not isinstance(value, Pair):
            from repro.runtime.printing import write_value

            raise ContractViolation(
                f"promised {self.name}, produced {write_value(value)}",
                positive,
                srcloc=self.srcloc,
            )
        return Pair(
            self.car.attach(value.car, positive, negative),
            self.cdr.attach(value.cdr, positive, negative),
        )


class VectorOfContract(Contract):
    """Eagerly checks (and re-wraps) vector elements."""

    def __init__(self, element: Contract) -> None:
        self.element = element
        self.name = f"(vectorof {element.name})"

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        from repro.runtime.values import MVector

        STATS.contract_checks += 1
        if not isinstance(value, MVector):
            from repro.runtime.printing import write_value

            raise ContractViolation(
                f"promised {self.name}, produced {write_value(value)}",
                positive,
                srcloc=self.srcloc,
            )
        for i, item in enumerate(value.items):
            value.items[i] = self.element.attach(item, positive, negative)
        return value


class OrContract(Contract):
    """First-order union: value must satisfy at least one disjunct.

    Higher-order disjuncts are only allowed if at most one could apply
    (we restrict to: any number of flat disjuncts plus at most one
    function contract, applied when the value is a procedure).
    """

    def __init__(self, disjuncts: Sequence[Contract]) -> None:
        self.disjuncts = list(disjuncts)
        self.name = "(or/c " + " ".join(c.name for c in self.disjuncts) + ")"

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        STATS.contract_checks += 1
        fn_contract: Optional[Contract] = None
        for c in self.disjuncts:
            if isinstance(c, FunctionContract):
                fn_contract = c
                continue
            try:
                return c.attach(value, positive, negative)
            except ContractViolation:
                continue
        if fn_contract is not None and isinstance(value, Procedure):
            return fn_contract.attach(value, positive, negative)
        from repro.runtime.printing import write_value

        raise ContractViolation(
            f"promised {self.name}, produced {write_value(value)}",
            positive,
            srcloc=self.srcloc,
        )


class FunctionContract(Contract):
    """``(-> dom ... rng)``: wraps procedures; checks per application."""

    def __init__(self, domain: Sequence[Contract], range_: Contract) -> None:
        self.domain = list(domain)
        self.range = range_
        self.name = (
            "(-> " + " ".join(c.name for c in self.domain) + f" {range_.name})"
        )

    def attach(self, value: Any, positive: str, negative: str) -> Any:
        # wrapping is not itself a check: applications are counted, in apply
        if not isinstance(value, Procedure):
            from repro.runtime.printing import write_value

            raise ContractViolation(
                f"promised {self.name}, produced {write_value(value)}",
                positive,
                srcloc=self.srcloc,
            )
        return ContractedProcedure(value, self, positive, negative)

    def apply(self, wrapped: ContractedProcedure, args: list[Any]) -> Any:
        from repro.core.interp import apply_procedure

        if len(args) != len(self.domain):
            raise ContractViolation(
                f"{self.name}: expected {len(self.domain)} arguments, "
                f"got {len(args)}",
                wrapped.negative,
                srcloc=self.srcloc,
            )
        checked = [
            # reversed blame for arguments: the *caller* promised them
            c.attach(a, wrapped.negative, wrapped.positive)
            for c, a in zip(self.domain, args)
        ]
        result = apply_procedure(wrapped.inner, checked)
        return self.range.attach(result, wrapped.positive, wrapped.negative)
