"""Module registry: languages, compiled modules, and namespaces.

A *language* here is exactly the paper's notion (§2.3): "a library that
provides ... a set of bindings ... which constitute the base environment of
modules written in the language, and a binding named ``#%module-begin``".
Language libraries are Python packages built on the same syntax-object API
that object-language macros use.

A :class:`CompiledModule` is the persistent result of compilation: the
phase-0 core body, the export table, and the **replayable phase-1
declarations** (:class:`SyntaxDecl`). Visiting a compiled module during a
client's compilation replays those declarations into the client's fresh
compile-time store — the §5 mechanism ("include code in the resulting module
that populates the type environment every time the module is required").
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import ModuleError
from repro.runtime.primitives import PRIMITIVES
from repro.runtime.values import Symbol
from repro.syn.binding import Binding, CoreFormBinding, ModuleBinding
from repro.expander.core_forms import CORE_FORMS

if TYPE_CHECKING:
    from repro.core.ast import CoreModuleBody
    from repro.core.namespace import Namespace
    from repro.expander.env import ExpandContext

KERNEL_PATH = "#%kernel"


def canonical_path(filename: str) -> str:
    """The one canonical registry key for an on-disk module file.

    ``realpath`` collapses symlinks and relative spellings
    (``./m.rkt``, ``sub/../m.rkt``), ``normcase`` collapses case on
    case-insensitive filesystems. Without this the same file reached two
    ways registered — and instantiated — twice (``abspath`` alone keeps
    symlinks distinct). The import hook (:mod:`repro.importer`) relies on
    this being a pure function of the file's identity.

    The result is interned: artifact serialization depends on every
    occurrence of a module path within one pickling being the *same*
    string object (pickle shares via identity memoization), which is what
    makes artifacts byte-identical whether a dependency was compiled
    in-process or loaded from another worker's artifact."""
    import os
    import sys

    return sys.intern(os.path.normcase(os.path.realpath(filename)))


class Export:
    """One exported name of a module or language."""

    __slots__ = ("name", "binding", "transformer")

    def __init__(self, name: str, binding: Binding, transformer: Any = None) -> None:
        self.name = name
        self.binding = binding
        #: Python callable / object closure for macros provided directly by a
        #: Python-implemented language; None for plain variables and for
        #: object-language macros (whose transformers are installed by
        #: replaying the defining module's SyntaxDecls).
        self.transformer = transformer

    def __repr__(self) -> str:
        kind = "macro" if self.transformer is not None else "value"
        return f"#<export {self.name} ({kind})>"


class SyntaxDecl:
    """A phase-1 declaration replayed whenever the module is visited."""

    def replay(self, ctx: "ExpandContext") -> None:
        raise NotImplementedError


class DefineSyntaxesDecl(SyntaxDecl):
    """An object-language ``define-syntaxes``: re-evaluate the compiled
    right-hand side in the visiting compilation's fresh phase-1 store."""

    def __init__(self, bindings: list[ModuleBinding], core: Any, py_value: Any = None) -> None:
        self.bindings = bindings
        self.core = core  # CoreExpr or None
        self.py_value = py_value  # pre-built transformer (e.g. syntax-rules)

    def replay(self, ctx: "ExpandContext") -> None:
        from repro.expander.env import TransformerMeaning

        if self.py_value is not None:
            values = [self.py_value]
        else:
            from repro.core.compile import Compiler
            from repro.runtime.values import Values

            result = Compiler(ctx.phase1_ns).compile_expr(self.core, None, False)(None)
            values = list(result.items) if isinstance(result, Values) else [result]
        if len(values) != len(self.bindings):
            raise ModuleError(
                f"define-syntaxes: expected {len(self.bindings)} values, got {len(values)}"
            )
        for binding, value in zip(self.bindings, values):
            ctx.set_meaning(binding, TransformerMeaning(value))


class ForSyntaxDecl(SyntaxDecl):
    """A ``begin-for-syntax`` body: run for effect in the visiting store."""

    def __init__(self, core: Any) -> None:
        self.core = core  # CoreExpr

    def replay(self, ctx: "ExpandContext") -> None:
        from repro.core.compile import Compiler

        Compiler(ctx.phase1_ns).compile_expr(self.core, None, False)(None)


class PyDecl(SyntaxDecl):
    """A phase-1 declaration implemented in Python (used by Python-implemented
    languages, e.g. the typed languages' type-environment registration)."""

    def __init__(self, fn: Callable[["ExpandContext"], None]) -> None:
        self.fn = fn

    def replay(self, ctx: "ExpandContext") -> None:
        self.fn(ctx)


class CompiledModule:
    def __init__(
        self,
        path: str,
        language: str,
        requires: list[str],
        body: "CoreModuleBody",
        exports: dict[str, Export],
        syntax_decls: list[SyntaxDecl],
        table_fragment: Optional[list] = None,
    ) -> None:
        self.path = path
        self.language = language
        self.requires = requires
        self.body = body
        self.exports = exports
        self.syntax_decls = syntax_decls
        #: the binding-table entries added while compiling this module — the
        #: part of the global TABLE the module owns. Persisted into its
        #: compiled artifact (clients resolve the module's macro templates
        #: through these) and removed when the module is evicted.
        self.table_fragment: list = table_fragment if table_fragment is not None else []
        #: the pyc backend's code-object unit (:class:`repro.core.pyc.PycUnit`),
        #: generated on demand and persisted with the artifact; None until the
        #: module is compiled under (or upgraded for) the pyc backend
        self.pyc: Optional[Any] = None

    def __getstate__(self) -> dict:
        # the lowering analysis memo (repro.core.lower) keys lambdas by
        # id(node), which is meaningless in another process — recompute
        # after unpickling instead of persisting stale keys
        state = dict(self.__dict__)
        state.pop("_analysis", None)
        return state

    def __setstate__(self, state: dict) -> None:
        import sys

        self.__dict__.update(state)
        # artifacts from before the pyc backend lack the attribute
        self.__dict__.setdefault("pyc", None)
        # re-intern paths (see canonical_path): keeps pickle identity
        # sharing — and hence artifact bytes — equal between natively
        # compiled and artifact-loaded dependency graphs
        self.path = sys.intern(self.path)
        self.requires = [sys.intern(r) for r in self.requires]

    def __repr__(self) -> str:
        return f"#<compiled-module {self.path}>"


class Language:
    """A language: a base environment plus a ``#%module-begin``.

    Each language owns an *anchor scope* in which all of its exports are
    bound; syntax built with the language's :attr:`anchor` as lexical context
    therefore resolves introduced identifiers to the language's own bindings
    (plus the kernel). This plays the role that a Racket language module's
    own lexical context plays for the syntax templates in its transformers.
    """

    def __init__(
        self,
        name: str,
        exports: Optional[dict[str, Export]] = None,
        *,
        dialects: tuple[str, ...] = (),
    ) -> None:
        from repro.syn.scopes import Scope

        self.name = name
        self.path = f"#%lang:{name}"
        #: dialect names this language implies (see repro.dialects); the
        #: registry stacks these before any dialects named with ``+`` on
        #: the ``#lang`` line
        self.dialect_names: tuple[str, ...] = tuple(dialects)
        self.exports: dict[str, Export] = {}
        self.scope = Scope(f"lang:{name}")
        self._anchor: Any = None
        #: the TABLE entries this language added (one pair per export), so a
        #: Runtime teardown can reclaim them — without this every Language
        #: instance leaked its whole export table into the global TABLE
        self._table_entries: list = []
        if exports:
            for export_name, export in exports.items():
                self.export(export_name, export.binding, export.transformer)

    @property
    def anchor(self) -> Any:
        """A syntax object carrying this language's scope plus the core scope."""
        if self._anchor is None:
            from repro.expander.kernel_scope import CORE_SCOPE
            from repro.syn.syntax import Syntax

            self._anchor = Syntax(
                Symbol("#%lang-anchor"), frozenset({self.scope, CORE_SCOPE})
            )
        return self._anchor

    def export(self, name: str, binding: Binding, transformer: Any = None) -> None:
        from repro.syn.binding import TABLE

        self.exports[name] = Export(name, binding, transformer)
        scopes = frozenset({self.scope})
        sym = Symbol(name)
        TABLE.add(sym, scopes, binding, phase=0)
        TABLE.add(sym, scopes, binding, phase=1)
        self._table_entries.append((sym, 0, scopes, binding))
        self._table_entries.append((sym, 1, scopes, binding))

    def release_bindings(self) -> int:
        """Remove this language's TABLE entries; returns how many."""
        from repro.syn.binding import TABLE

        removed = TABLE.remove_entries(self._table_entries)
        self._table_entries.clear()
        return removed

    def export_macro(self, name: str, transformer: Callable[..., Any]) -> None:
        self.export(name, ModuleBinding(self.path, Symbol(name)), transformer)

    def inherit(self, other: "Language", *, exclude: tuple[str, ...] = ()) -> None:
        for name, export in other.exports.items():
            if name not in exclude:
                self.export(name, export.binding, export.transformer)

    def __repr__(self) -> str:
        return f"#<language {self.name}>"


#: process-wide kernel export snapshot. Computed exactly once: several
#: language installers register extra primitives lazily (promises, structs,
#: typed prims, datalog), so a registry built *after* another Runtime saw a
#: larger PRIMITIVES table than the process's first registry did — which
#: made compiled artifacts differ byte-for-byte between the first and later
#: Runtimes (and between a parallel compile worker's fresh process and a
#: warm parent). One shared snapshot makes every registry — any Runtime,
#: any process — agree on the kernel environment.
_KERNEL_EXPORTS: Optional[dict[str, Export]] = None


def _kernel_exports() -> dict[str, Export]:
    global _KERNEL_EXPORTS
    if _KERNEL_EXPORTS is not None:
        return _KERNEL_EXPORTS
    exports: dict[str, Export] = {}
    for name, binding in CORE_FORMS.items():
        exports[name] = Export(name, binding)
    for name in PRIMITIVES:
        exports[name] = Export(name, ModuleBinding(KERNEL_PATH, Symbol(name)))
    # `syntax-rules` is recognized specially by define-syntaxes
    exports["syntax-rules"] = Export(
        "syntax-rules", ModuleBinding(KERNEL_PATH, Symbol("syntax-rules"))
    )
    # `quasisyntax` (#`) is a kernel macro, for procedural object macros
    from repro.expander.quasisyntax import expand_quasisyntax

    exports["quasisyntax"] = Export(
        "quasisyntax",
        ModuleBinding(KERNEL_PATH, Symbol("quasisyntax")),
        transformer=expand_quasisyntax,
    )
    _KERNEL_EXPORTS = exports
    return exports


class ModuleRegistry:
    """Languages + module sources + compiled modules + namespace factory."""

    def __init__(self) -> None:
        self.languages: dict[str, Language] = {}
        #: registered dialects (whole-module rewrites), parallel to languages
        self.dialects: dict[str, Any] = {}
        self.sources: dict[str, tuple[str, list[Any]]] = {}  # path -> (lang, forms)
        self.compiled: dict[str, CompiledModule] = {}
        self._compiling: list[str] = []
        #: values provided by Python-implemented modules, preloaded into
        #: every namespace: binding key -> value
        self.py_values: dict[Any, Any] = {}
        #: per-compilation macro-expansion step budget (None = default)
        self.expansion_fuel: Optional[int] = None
        #: which backend instantiation uses: "interp" (closure-compiling
        #: tree walk) or "pyc" (CPython code objects); see repro.core.backend
        self.backend: str = "interp"
        #: the persistent compiled-artifact cache, or None (disabled)
        self.cache: Optional[Any] = None
        #: content hash of each registered module's source text
        self._source_hashes: dict[str, str] = {}
        #: full content keys (source + transitive dependency keys), set once
        #: a module has been compiled or cache-loaded
        self._full_keys: dict[str, str] = {}
        #: scopes owned by this registry (language anchors, module scopes) —
        #: released wholesale on teardown
        self.owned_scopes: set[Any] = set()
        self.kernel_exports: dict[str, Export] = _kernel_exports()

    # -- registration ------------------------------------------------------

    def register_language(self, lang: Language) -> Language:
        self.languages[lang.name] = lang
        self.owned_scopes.add(lang.scope)
        return lang

    def register_dialect(self, dialect: Any) -> Any:
        self.dialects[dialect.name] = dialect
        return dialect

    def register_py_value(self, module_path: str, name: str, value: Any) -> ModuleBinding:
        binding = ModuleBinding(module_path, Symbol(name))
        self.py_values[binding.key()] = value
        return binding

    def register_module_source(self, path: str, text: str) -> None:
        from repro.diagnostics.session import DiagnosticSession
        from repro.reader.lang_line import read_module_source

        # The reader recovers after errors and collects every problem; a
        # single problem re-raises the original ReaderError, several raise
        # one CompilationFailed.
        from repro.observe.recorder import current_recorder

        session = DiagnosticSession(path)
        with current_recorder().span("read", path):
            lang, forms = read_module_source(text, path, session=session)
        session.raise_if_errors()
        self.register_module_forms(path, lang, forms)
        import hashlib

        self._source_hashes[path] = hashlib.sha256(text.encode("utf-8")).hexdigest()

    def register_module_forms(self, path: str, lang: str, forms: list[Any]) -> None:
        self.evict_module(path)
        self._source_hashes.pop(path, None)
        self.sources[path] = (lang, forms)

    def evict_module(self, path: str) -> None:
        """Drop a module's compiled form and reclaim its TABLE entries.

        Re-registering a module evicts its previous compilation; without the
        reclamation every recompile stacked another copy of the module's
        bindings onto the global table.
        """
        compiled = self.compiled.pop(path, None)
        self._full_keys.pop(path, None)
        if compiled is not None:
            from repro.syn.binding import TABLE

            TABLE.remove_entries(compiled.table_fragment)

    def register_file(self, filename: str) -> str:
        """Register an on-disk module file under its canonical path.

        Idempotent for unchanged files: re-registering the same file (via
        any spelling — symlink, relative path, different case) with the
        same content keeps the existing registration *and* its compiled
        module, so requirers and importers sharing a namespace see one
        module instance.
        """
        import hashlib

        path = canonical_path(filename)
        with open(path, "r", encoding="utf-8") as f:
            text = f.read()
        digest = hashlib.sha256(text.encode("utf-8")).hexdigest()
        if path in self.sources and self._source_hashes.get(path) == digest:
            return path
        self.register_module_source(path, text)
        return path

    # -- lookup / compilation ------------------------------------------------

    def language(self, name: str) -> Language:
        lang = self.languages.get(name)
        if lang is None:
            raise ModuleError(f"unknown language: {name}")
        return lang

    def dialect(self, name: str) -> Any:
        from repro.errors import DialectError

        dialect = self.dialects.get(name)
        if dialect is None:
            known = ", ".join(sorted(self.dialects)) or "none registered"
            raise DialectError(
                f"unknown dialect: {name} (known: {known})", code="D001"
            )
        return dialect

    def resolve_lang_spec(self, spec: str) -> tuple[Language, tuple[Any, ...]]:
        """Resolve a ``#lang`` line spec to a language plus dialect stack.

        An exact registered language name wins (so a language named with a
        ``+`` stays addressable); otherwise ``base+d1+d2`` names the
        ``base`` language with dialects ``d1`` and ``d2`` stacked after
        any dialects the language itself implies. Duplicates collapse to
        their first (leftmost) occurrence.
        """
        from repro.errors import DialectError

        extra: list[str] = []
        if spec in self.languages:
            lang = self.languages[spec]
        elif "+" in spec:
            head, *extra = spec.split("+")
            lang = self.language(head)
        else:
            lang = self.language(spec)
        stack: list[Any] = []
        seen: set[str] = set()
        for name in (*lang.dialect_names, *extra):
            if not name:
                raise DialectError(
                    f"malformed #lang spec: {spec!r}", code="D001"
                )
            dialect = self.dialect(name)
            if dialect.name not in seen:
                seen.add(dialect.name)
                stack.append(dialect)
        return lang, tuple(stack)

    def cache_lang_key(self, spec: str) -> str:
        """The language identity folded into artifact-cache content keys.

        A bare language keeps its plain name (artifact compatibility); any
        dialect stack — implied or ``+``-stacked — appends each dialect's
        name *and version*, so editing a dialect (and bumping its version)
        invalidates cached artifacts exactly like editing the source.
        """
        _, dialects = self.resolve_lang_spec(spec)
        if not dialects:
            return spec
        return f"{spec}[{','.join(d.tag for d in dialects)}]"

    @staticmethod
    def _requirer_note(requirer: Optional[str], srcloc: Any = None) -> str:
        if requirer is None:
            return ""
        if srcloc is not None:
            return f" (required by {requirer} at {srcloc})"
        return f" (required by {requirer})"

    def get_compiled(
        self,
        path: str,
        requirer: Optional[str] = None,
        srcloc: Any = None,
    ) -> CompiledModule:
        """Compile (or fetch) a module — *transactionally*.

        The outermost compilation snapshots the global binding TABLE and the
        registry's compiled-module cache; if compilation fails, both roll
        back, so a failed compile leaves no half-registered bindings behind
        and re-registering fixed source compiles cleanly in the same
        registry.

        ``requirer``/``srcloc`` name the module (and source location) whose
        require triggered this compilation, for error messages.
        """
        cached = self.compiled.get(path)
        if cached is not None:
            return cached
        if path in self._compiling:
            cycle = " -> ".join(self._compiling + [path])
            raise ModuleError(
                f"module dependency cycle: {cycle}"
                f"{self._requirer_note(requirer, srcloc)}",
                srcloc,
                code="M003",
            )
        source = self.sources.get(path)
        if source is None:
            # maybe it's an on-disk file not yet registered
            import os

            if os.path.exists(path):
                canon = self.register_file(path)
                if canon != path:
                    # a non-canonical spelling reached us directly; compile
                    # under the one canonical key
                    return self.get_compiled(canon, requirer, srcloc)
                source = self.sources[path]
            else:
                raise ModuleError(
                    f"module not found: {path}"
                    f"{self._requirer_note(requirer, srcloc)}",
                    srcloc,
                    code="M002",
                )
        lang_name, forms = source
        from repro.modules.compiler import compile_module
        from repro.syn.binding import TABLE

        # only the outermost compilation opens a transaction: a nested
        # (dependency) compile that succeeds must keep its bindings even if
        # the outer module later fails — the outer rollback then also evicts
        # the freshly compiled dependencies, whose macro-template bindings
        # it removes, so a retry recompiles them from scratch. Cache loads
        # run inside the same transaction, so a failure after a load also
        # rolls the loaded fragments back. The rollback is a precise
        # transaction log (this context's additions only), so a concurrent
        # Runtime compiling on another thread is never collateral damage.
        transactional = not self._compiling
        if transactional:
            txn = TABLE.transaction()
            txn.__enter__()
            compiled_before = set(self.compiled)
        from repro.observe.recorder import current_recorder

        rec = current_recorder()
        self._compiling.append(path)
        claim = None
        try:
            compiled = None
            if self.cache is not None:
                # the cache identity of a module folds in its dialect stack
                # (names and versions), so artifacts compiled under
                # different dialect stacks never collide
                cache_key = self.cache_lang_key(lang_name)
                with rec.span("cache", f"load {path}"):
                    compiled = self.cache.load(self, path, cache_key)
                if compiled is None:
                    # wait-for-winner: claim the artifact before compiling.
                    # A concurrent context already compiling this exact
                    # content key is about to publish byte-identical
                    # artifacts — wait for it and re-load rather than
                    # duplicating the compile.
                    claim, winner_published = self.cache.claim_writer(
                        self, path, cache_key
                    )
                    if winner_published:
                        with rec.span("cache", f"load {path}"):
                            compiled = self.cache.load(self, path, cache_key)
            if compiled is None:
                compiled = compile_module(self, path, lang_name, forms)
                self._full_keys[path] = self._compute_full_key(
                    path, lang_name, compiled.requires
                )
                if self.backend == "pyc":
                    # generate before the store so the artifact carries the
                    # marshalled code objects and warm starts skip codegen
                    self.ensure_pyc_unit(compiled, store=False)
                if self.cache is not None:
                    with rec.span("cache", f"store {path}"):
                        self.cache.store(
                            self, path, cache_key, compiled,
                            self._full_keys[path], claim=claim,
                        )
            elif self.backend == "pyc":
                # cache hit from an interp-only (or other-Python) session:
                # upgrade the artifact in place
                self.ensure_pyc_unit(compiled)
        except BaseException:
            if transactional:
                txn.rollback()
                for newly in set(self.compiled) - compiled_before:
                    del self.compiled[newly]
                    self._full_keys.pop(newly, None)
            raise
        finally:
            if claim is not None:
                self.cache.release_writer(claim)
            self._compiling.pop()
            if transactional:
                txn.__exit__(None, None, None)
        self.compiled[path] = compiled
        return compiled

    def compile_graph(
        self,
        paths: list[str],
        *,
        jobs: Optional[int] = None,
        mode: Optional[str] = None,
    ) -> Any:
        """Compile a module graph, fanning independent modules across a
        worker pool coordinated through the artifact cache; returns a
        :class:`repro.modules.graph.GraphReport`. See
        :func:`repro.modules.graph.compile_graph`."""
        from repro.modules.graph import compile_graph

        return compile_graph(self, paths, jobs=jobs, mode=mode)

    def ensure_pyc_unit(self, compiled: "CompiledModule", *, store: bool = True):
        """The module's pyc code-object unit, generating it when missing or
        generated under a different CPython bytecode format.

        With ``store`` (the default), a freshly generated unit is persisted
        by re-storing the module's artifact, so the *next* process's warm
        start loads marshalled code objects and performs zero codegen.
        """
        from repro.core.compile import COMPILE_CONFIG
        from repro.core.pyc import PY_TAG, codegen_module

        unit = compiled.pyc
        if (
            unit is not None
            and unit.py_tag == PY_TAG
            and getattr(unit, "inline", None)
            == bool(COMPILE_CONFIG["inline_primitives"])
        ):
            return unit
        from repro.observe.recorder import current_recorder

        rec = current_recorder()
        with rec.span("pyc-codegen", compiled.path):
            unit = codegen_module(compiled)
        compiled.pyc = unit
        if store and self.cache is not None:
            full_key = self._full_keys.get(compiled.path)
            if full_key is not None:
                with rec.span("cache", f"store {compiled.path}"):
                    self.cache.store(
                        self,
                        compiled.path,
                        self.cache_lang_key(compiled.language),
                        compiled,
                        full_key,
                    )
        return unit

    # -- content keys (cache invalidation) -----------------------------------

    def source_hash(self, path: str) -> str:
        """Content hash of a module's registered source.

        Modules registered from text hash the text; modules registered as
        pre-read forms hash their written datum representation.
        """
        cached = self._source_hashes.get(path)
        if cached is None:
            import hashlib

            from repro.syn.syntax import syntax_to_datum, write_datum

            lang, forms = self.sources[path]
            rendered = "\n".join(write_datum(syntax_to_datum(f)) for f in forms)
            cached = hashlib.sha256(rendered.encode("utf-8")).hexdigest()
            self._source_hashes[path] = cached
        return cached

    def full_key_of(self, path: str) -> Optional[str]:
        """The module's full content key (None until compiled/loaded)."""
        return self._full_keys.get(path)

    def set_full_key(self, path: str, key: str) -> None:
        self._full_keys[path] = key

    def _compute_full_key(self, path: str, lang: str, requires: list[str]) -> str:
        from repro.modules.cache import FORMAT_VERSION, content_hash

        dep_keys = [self._full_keys.get(dep, "?") for dep in requires]
        return content_hash(
            str(FORMAT_VERSION),
            path,
            self.cache_lang_key(lang),
            self.source_hash(path),
            *dep_keys,
        )

    # -- teardown -------------------------------------------------------------

    def release_bindings(self) -> int:
        """Reclaim every global-TABLE entry this registry is responsible
        for: each compiled module's fragment, each language's exports, and
        (belt-and-braces) anything else bound in an owned scope. Called when
        the owning Runtime is closed or garbage-collected; returns the
        number of entries removed."""
        from repro.syn.binding import TABLE

        removed = 0
        for compiled in self.compiled.values():
            removed += TABLE.remove_entries(compiled.table_fragment)
        self.compiled.clear()
        self._full_keys.clear()
        for lang in self.languages.values():
            removed += lang.release_bindings()
        removed += TABLE.release_scopes(self.owned_scopes)
        self.owned_scopes.clear()
        return removed

    def resolve_module_path(
        self,
        spec: str,
        relative_to: Optional[str] = None,
        srcloc: Any = None,
    ) -> str:
        """Resolve a require spec to a registry path.

        ``relative_to`` is the requiring module's path; unresolvable specs
        name it (and the require form's location) in the error.
        """
        import sys

        if spec in self.sources or spec in self.compiled:
            return sys.intern(spec)
        if relative_to is not None:
            import os

            base = os.path.dirname(relative_to)
            candidate = os.path.normpath(os.path.join(base, spec))
            if candidate in self.sources:
                return sys.intern(candidate)
            if os.path.exists(candidate):
                return canonical_path(candidate)
        import os

        if os.path.exists(spec):
            return canonical_path(spec)
        raise ModuleError(
            f"cannot resolve module: {spec}"
            f"{self._requirer_note(relative_to, srcloc)}",
            srcloc,
            code="M002",
        )

    # -- namespaces ---------------------------------------------------------

    def _prefill(self, ns: "Namespace") -> "Namespace":
        for name, prim in PRIMITIVES.items():
            ns.cells[("module", KERNEL_PATH, name, 0)] = [prim]
        for key, value in self.py_values.items():
            ns.cells[key] = [value]
        ns.instantiated[KERNEL_PATH] = True
        return ns

    def make_runtime_namespace(self) -> "Namespace":
        from repro.core.namespace import Namespace

        return self._prefill(Namespace("runtime"))

    def make_phase1_namespace(self, module_path: str) -> "Namespace":
        from repro.core.namespace import Namespace

        return self._prefill(Namespace(f"compile:{module_path}"))
