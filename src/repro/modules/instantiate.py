"""Module instantiation: run a compiled module's phase-0 body in a namespace.

The actual execution strategy lives in :mod:`repro.core.backend`: the
registry's ``backend`` attribute selects the closure-compiling tree walk
(``interp``) or the CPython code-object backend (``pyc``). Both honor the
same structure — requires first, idempotence per namespace, a guard
checkpoint between top-level forms, and per-phase observe spans.
"""

from __future__ import annotations

from repro.core.backend import make_backend
from repro.core.namespace import Namespace
from repro.guard.budget import current_guard
from repro.modules.registry import ModuleRegistry
from repro.observe.recorder import current_recorder


def instantiate_module(registry: ModuleRegistry, path: str, ns: Namespace) -> None:
    """Instantiate ``path`` (and, first, its requires) into ``ns``. Idempotent."""
    compiled = registry.get_compiled(path)
    if ns.instantiated.get(path):
        return
    ns.instantiated[path] = True
    for req in compiled.requires:
        instantiate_module(registry, req, ns)
    backend = make_backend(getattr(registry, "backend", "interp"), registry)
    backend.instantiate(compiled, ns, current_recorder(), current_guard())
