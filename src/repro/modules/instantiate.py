"""Module instantiation: run a compiled module's phase-0 body in a namespace."""

from __future__ import annotations

from repro.core.compile import Compiler
from repro.core.namespace import Namespace
from repro.modules.registry import ModuleRegistry


def instantiate_module(registry: ModuleRegistry, path: str, ns: Namespace) -> None:
    """Instantiate ``path`` (and, first, its requires) into ``ns``. Idempotent."""
    compiled = registry.get_compiled(path)
    if ns.instantiated.get(path):
        return
    ns.instantiated[path] = True
    for req in compiled.requires:
        instantiate_module(registry, req, ns)
    compiler = Compiler(ns)
    for form in compiled.body.forms:
        compiler.compile_module_form(form)()
