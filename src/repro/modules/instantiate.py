"""Module instantiation: run a compiled module's phase-0 body in a namespace."""

from __future__ import annotations

from repro.core.compile import Compiler
from repro.core.namespace import Namespace
from repro.guard.budget import current_guard
from repro.modules.registry import ModuleRegistry
from repro.observe.recorder import current_recorder


def instantiate_module(registry: ModuleRegistry, path: str, ns: Namespace) -> None:
    """Instantiate ``path`` (and, first, its requires) into ``ns``. Idempotent."""
    compiled = registry.get_compiled(path)
    if ns.instantiated.get(path):
        return
    ns.instantiated[path] = True
    for req in compiled.requires:
        instantiate_module(registry, req, ns)
    compiler = Compiler(ns)
    rec = current_recorder()
    guard = current_guard()
    if not rec.enabled:
        if guard is None:
            for form in compiled.body.forms:
                compiler.compile_module_form(form)()
            return
        # governed eval loop: a checkpoint between top-level forms bounds
        # deadline/cancellation latency even for programs that never apply
        # a closure (straight-line module bodies)
        for form in compiled.body.forms:
            guard.checkpoint(path)
            compiler.compile_module_form(form)()
        return
    # traced: keep the compile-then-run interleaving, but charge the
    # closure-compilation and execution of each form to separate spans
    with rec.span("instantiate", path):
        for form in compiled.body.forms:
            if guard is not None:
                guard.checkpoint(path)
            with rec.span("closure-compile", path):
                thunk = compiler.compile_module_form(form)
            with rec.span("run", path):
                thunk()
