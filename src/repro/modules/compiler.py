"""Module compilation: the front door of the tool chain.

``compile_module`` wraps a module's body in its language's
``#%module-begin`` (§2.3) and hands the whole thing to the expander; the
language's transformer has complete control from there. The fully-expanded
result is parsed into the core AST and packaged with the export table and
replayable phase-1 declarations as a :class:`CompiledModule`.
"""

from __future__ import annotations

from typing import Any

from repro.core.ast import CoreModuleBody
from repro.core.parse import core_form_of, parse_module_level_form
from repro.diagnostics.session import FATAL_ERRORS
from repro.errors import (
    CompilationFailed,
    ModuleError,
    ReproError,
    SyntaxExpansionError,
)
from repro.expander.env import ExpandContext, TransformerMeaning, pop_context, push_context
from repro.expander.expander import Expander
from repro.modules.registry import CompiledModule, Export, ModuleRegistry
from repro.runtime.values import Symbol
from repro.syn.binding import TABLE
from repro.syn.syntax import Syntax


def compile_module(
    registry: ModuleRegistry, path: str, lang_name: str, forms: list[Syntax]
) -> CompiledModule:
    """Compile one module, collecting *all* diagnostics before failing.

    On any error the raise happens at the end of compilation: a single
    problem re-raises its original exception (so callers keep seeing
    ``TypeCheckError`` etc.), while several problems raise one
    :class:`CompilationFailed` carrying every diagnostic.
    """
    from repro.observe.recorder import current_recorder

    lang, dialects = registry.resolve_lang_spec(lang_name)
    ctx = ExpandContext(path, registry)
    session = ctx.diagnostics
    rec = current_recorder()
    push_context(ctx)
    # Record every binding-table entry this compilation adds (language
    # imports into the module scope, definitions, macro expansions) as the
    # module's *table fragment*: it ships inside the compiled artifact so a
    # cache load can reinstall exactly these entries, and module eviction
    # can remove exactly them. The recorder stack is innermost-only, so a
    # nested dependency compile records into its own fragment, not ours.
    with rec.span("compile", path), TABLE.record_additions() as fragment:
        try:
            expander = Expander(ctx)
            scopes = frozenset({ctx.module_scope})

            # The language's exports form the module's base environment (§2.3),
            # at phase 0 and — like `#lang racket`'s for-syntax self-import — at
            # phase 1, so transformer bodies can use the language's own forms.
            for name, export in lang.exports.items():
                sym = Symbol(name)
                TABLE.add(sym, scopes, export.binding, phase=0)
                TABLE.add(sym, scopes, export.binding, phase=1)
                if export.transformer is not None:
                    ctx.set_meaning(export.binding, TransformerMeaning(export.transformer))
            for name, export in registry.kernel_exports.items():
                if name not in lang.exports:
                    TABLE.add(Symbol(name), scopes, export.binding, phase=1)

            if dialects:
                # dialects rewrite the whole body on reader output — before
                # module scopes are added and before any macro expansion —
                # so their diagnostics point at pre-rewrite source
                from repro.dialects import apply_dialects

                forms = apply_dialects(dialects, forms, path, session)
                session.raise_if_errors()

            body = [f.add_scope(ctx.module_scope) for f in forms]
            srcloc = forms[0].srcloc if forms else None
            mb_id = Syntax(Symbol("#%module-begin"), scopes, srcloc or Syntax(Symbol("x")).srcloc)
            whole = Syntax((mb_id, *body), scopes, mb_id.srcloc)

            if "#%module-begin" not in lang.exports:
                raise ModuleError(
                    f"language {lang_name} does not provide #%module-begin"
                )
            try:
                with rec.span("expand", path):
                    expanded = expander.expand_expr(whole, 0)
                if core_form_of(expanded, 0) != "#%plain-module-begin":
                    raise SyntaxExpansionError(
                        "module expansion did not produce #%plain-module-begin", expanded
                    )
            except CompilationFailed:
                raise
            except ReproError as err:
                session.add_exception(err)
                session.raise_if_errors()
                raise  # pragma: no cover - raise_if_errors always raises here

            body_forms = []
            with rec.span("parse", path):
                for item in expanded.e[1:]:
                    parsed = parse_module_level_form(item, 0)
                    if parsed is not None:
                        body_forms.append(parsed)

            exports: dict[str, Export] = {}
            provides = []
            for spec in ctx.provides:
                if spec.external == "*all-defined*":
                    from repro.expander.env import ProvideSpec

                    provides.extend(
                        ProvideSpec(name, ident, spec.phase)
                        for name, ident in ctx.defined_names.items()
                    )
                else:
                    provides.append(spec)
            for spec in provides:
                try:
                    binding = TABLE.resolve(spec.internal_id, spec.phase)
                    if binding is None:
                        raise SyntaxExpansionError(
                            f"provide: unbound identifier: {spec.internal_id.e}",
                            spec.internal_id,
                        )
                except FATAL_ERRORS:
                    raise
                except ReproError as err:
                    session.add_exception(err)
                    continue
                meaning = ctx.meaning_of(binding)
                transformer = None
                if isinstance(meaning, TransformerMeaning) and callable(meaning.value):
                    # Python-implemented transformers can be embedded directly;
                    # object-language transformers are re-created in each client
                    # compilation by replaying this module's SyntaxDecls.
                    transformer = meaning.value
                exports[spec.external] = Export(spec.external, binding, transformer)

            session.raise_if_errors()
            return CompiledModule(
                path=path,
                language=lang_name,
                requires=list(ctx.requires),
                body=CoreModuleBody(body_forms),
                exports=exports,
                syntax_decls=list(ctx.syntax_decls),
                table_fragment=fragment,
            )
        finally:
            pop_context()
