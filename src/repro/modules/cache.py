"""Persistent compiled-module artifacts — the §5 ``compiled/*.zo`` machinery.

§5 of the paper claims that a language implemented as a library can persist
its *static semantics* into a separable compiled artifact: Racket writes
fully-expanded modules, their export tables, and their replayable phase-1
code into ``compiled/*.zo`` files, and a later run (or a different process)
requires the module without re-expanding it. This module reproduces that:

- a :class:`ModuleCache` stores each :class:`~repro.modules.registry.CompiledModule`
  (core AST, export table, replayable :class:`SyntaxDecl` list, and the
  module's binding-table fragment) as one ``<hash>.zo`` file under a cache
  directory (default ``.repro-cache/``);
- artifacts are keyed by a **content hash** of (cache-format version, module
  path, ``#lang``, source text), and validated against the **full keys** of
  every dependency — the full key folds the dependencies' own full keys in
  transitively, so editing a required module invalidates all of its
  requirers without touching their files;
- corrupt or stale artifacts degrade to a recompile plus a ``C``-series
  warning diagnostic, never an error.

Crash safety (ISSUE 6)
----------------------

The store is hardened against torn writes, corruption, and concurrent
writers, validated by the :mod:`repro.faults` chaos suite:

- every artifact is wrapped in a checksummed envelope (magic + SHA-256 of
  the payload), so truncation and bit-rot are *detected*, not just likely
  to fail unpickling;
- writes go through a temp file + atomic ``os.replace`` under an advisory
  per-hash file lock (``<hash>.zo.lock``), so concurrent writers of the
  same content hash serialize — the loser skips the (identical) write;
- artifacts that fail validation are moved to ``<dir>/quarantine/`` with a
  ``C104`` warning and the module recompiles transparently (``C101`` if
  even quarantining fails and the file is unlinked instead);
- transient I/O errors are retried a bounded number of times before the
  operation degrades;
- an unwritable cache directory disables caching for the process with a
  single ``C105`` warning instead of propagating (or warning per store);
- ``repro cache doctor`` scans a cache directory, quarantines invalid
  artifacts, and removes torn-write debris (``*.tmp.*``) and stale locks.

Serialization notes
-------------------

Artifacts are pickles with three persistent-identity rules, because the
platform's hygiene machinery is identity-based:

- **Symbols/keywords** re-intern on load (pattern matching compares them
  with ``is``).
- **The core scope** and **language anchor scopes** map to the loading
  process's own instances (they are re-created by every Runtime, and cached
  macro templates must keep resolving to the language's bindings).
- **Every other scope** is named by a *persistent token* minted when the
  scope is first serialized and interned process-wide on load, so two
  artifacts that share a scope (a module and its requirer, compiled in the
  same session) agree on its identity after both are loaded.

``LocalBinding`` uids are re-minted on load (see ``LocalBinding.__reduce__``)
to avoid key collisions with bindings created in the loading process.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import threading
import time
import weakref
from contextlib import suppress
from typing import TYPE_CHECKING, Any, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-posix fallback
    fcntl = None  # type: ignore[assignment]

from repro.diagnostics.diagnostic import Diagnostic
from repro.faults import fault_bytes, fault_point
from repro.observe.recorder import current_recorder
from repro.runtime.stats import STATS
from repro.runtime.values import Keyword, Symbol
from repro.syn.binding import TABLE
from repro.syn.scopes import Scope

if TYPE_CHECKING:
    from repro.modules.registry import CompiledModule, ModuleRegistry

#: bump when the artifact layout (or anything it pickles) changes shape;
#: part of every content hash, so old artifacts simply stop matching.
#: v3: modules may carry a ``pyc`` code-object unit (marshalled CPython
#: bytecode emitted by the pyc backend) alongside the core AST
FORMAT_VERSION = 3

#: artifact envelope: MAGIC + SHA-256(payload) + payload. The digest makes
#: corruption (truncation, bit-flips) a *detected* condition rather than a
#: probabilistic unpickling failure.
MAGIC = b"REPROZO\x03"

#: envelope magics of earlier format versions. Artifacts carrying one are
#: *old*, not corrupt: their content-hashed filenames fold the old version
#: in, so loads never open them — ``doctor`` reports them instead of
#: quarantining (deleting a postmortem-worthy file for merely being stale
#: would be wrong, and quarantine is reserved for detected corruption)
HISTORIC_MAGICS = (b"REPROZO\x02",)
_DIGEST_LEN = 32

#: subdirectory that corrupt artifacts are moved into (never deleted, so a
#: postmortem can inspect what went wrong)
QUARANTINE_DIR = "quarantine"

#: bounded retry policy for transient I/O errors
RETRY_ATTEMPTS = 3
_RETRY_BACKOFF = 0.005

#: default cache directory, relative to the working directory (the analogue
#: of Racket's ``compiled/``); overridable via Runtime(cache_dir=) and the
#: REPRO_CACHE_DIR environment variable
DEFAULT_CACHE_DIR = ".repro-cache"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: process-wide intern table: persistent scope token -> live Scope. Weak, so
#: scopes vanish once nothing loaded references them; as long as any loaded
#: artifact holds a scope, later loads of artifacts sharing it agree on
#: identity.
_SCOPE_INTERN: "weakref.WeakValueDictionary[str, Scope]" = weakref.WeakValueDictionary()

#: guards token minting and interning: two threads serializing (or loading)
#: artifacts concurrently must agree on one token per scope object
_INTERN_LOCK = threading.Lock()

#: artifact files some thread of THIS process is currently compiling toward:
#: file -> Event set when the winner publishes (or gives up). In-process
#: losers wait on the event; cross-process losers watch the fcntl lock.
_INFLIGHT: dict[str, threading.Event] = {}
_INFLIGHT_LOCK = threading.Lock()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lock/tmp file's recorded PID."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - exists, owned by another user
        return True
    except OSError:  # pragma: no cover - non-posix oddities
        return False
    return True


def default_cache_dir() -> str:
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


def content_hash(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    return h.hexdigest()


class _ArtifactPickler(pickle.Pickler):
    """Pickler assigning persistent identities to scopes and symbols."""

    def __init__(self, file: Any, token_prefix: str) -> None:
        super().__init__(file, protocol=4)
        self._token_prefix = token_prefix
        self._seq = 0
        # id(frozenset) -> its canonical pid; keeps one pid tuple per set
        # object so pickle's memo preserves sharing (values also keep the
        # sets alive, so ids stay unique for the pickler's lifetime)
        self._scope_sets: dict[int, tuple] = {}
        self._scope_sets_alive: list[frozenset] = []

    def persistent_id(self, obj: Any) -> Optional[tuple]:
        if isinstance(obj, Scope):
            if obj.kind == "core":
                return ("core-scope",)
            if obj.kind.startswith("lang:"):
                return ("lang-scope", obj.kind[len("lang:"):])
            if obj.token is None:
                with _INTERN_LOCK:
                    if obj.token is None:  # re-check under the lock
                        self._seq += 1
                        obj.token = f"{self._token_prefix}#{self._seq}"
                        _SCOPE_INTERN[obj.token] = obj
            return ("scope", obj.token, obj.kind)
        if isinstance(obj, Symbol):
            return ("sym", obj.name)
        if isinstance(obj, Keyword):
            return ("kw", obj.name)
        # scope sets: frozensets iterate in hash (= address) order, so one
        # pickled as-is bakes the process's allocation history into the
        # artifact bytes — the same module compiled by two Runtimes (or a
        # warm vs cold one) would differ byte-for-byte. Persistent-id is
        # the one hook the C pickler consults for *every* object (its
        # exact-type fast path skips reducer_override and dispatch_table
        # for builtin frozensets), so scope sets become ("scopes", sorted
        # tuple) pids and artifact bytes a pure function of content.
        if type(obj) is frozenset and obj and all(
            isinstance(s, Scope) for s in obj
        ):
            pid = self._scope_sets.get(id(obj))
            if pid is None:
                pid = ("scopes", tuple(sorted(obj, key=self._scope_order)))
                self._scope_sets[id(obj)] = pid
                self._scope_sets_alive.append(obj)
            return pid
        return None

    @staticmethod
    def _scope_order(scope: Scope) -> tuple:
        # a content-stable ordering: dependency scopes already carry tokens
        # by the time a requiring module is stored; the module's own fresh
        # scopes order by creation id, which is monotonic per compilation
        # even when other threads are minting scopes concurrently
        if scope.kind == "core":
            return (0, "", 0)
        if scope.kind.startswith("lang:"):
            return (1, scope.kind, 0)
        if scope.token is not None:
            return (2, scope.token, 0)
        return (3, "", scope.id)


class _ArtifactUnpickler(pickle.Unpickler):
    """Unpickler resolving the persistent identities of `_ArtifactPickler`."""

    def __init__(self, file: Any, registry: "ModuleRegistry") -> None:
        super().__init__(file)
        self._registry = registry
        self._scope_sets: dict[int, frozenset] = {}
        self._scope_sets_alive: list[tuple] = []

    def persistent_load(self, pid: tuple) -> Any:
        tag = pid[0]
        if tag == "core-scope":
            from repro.expander.kernel_scope import CORE_SCOPE

            return CORE_SCOPE
        if tag == "lang-scope":
            lang = self._registry.languages.get(pid[1])
            if lang is None:
                raise pickle.UnpicklingError(
                    f"artifact references unknown language: {pid[1]}"
                )
            return lang.scope
        if tag == "scope":
            token, kind = pid[1], pid[2]
            with _INTERN_LOCK:
                scope = _SCOPE_INTERN.get(token)
                if scope is None:
                    scope = Scope(kind)
                    scope.token = token
                    _SCOPE_INTERN[token] = scope
            return scope
        if tag == "sym":
            return Symbol(pid[1])
        if tag == "kw":
            return Keyword(pid[1])
        if tag == "scopes":
            # pid tuples are memo-shared by the pickler, so identical set
            # occurrences arrive as the same tuple — rebuild one frozenset
            # per tuple to restore the stored graph's sharing
            cached = self._scope_sets.get(id(pid))
            if cached is None:
                cached = frozenset(pid[1])
                self._scope_sets[id(pid)] = cached
                self._scope_sets_alive.append(pid)
            return cached
        raise pickle.UnpicklingError(f"unknown persistent id: {pid!r}")


class ModuleCache:
    """A directory of ``<content-hash>.zo`` compiled-module artifacts."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.dir = cache_dir or default_cache_dir()
        #: C-series warnings accumulated by load/store failures; surfaced by
        #: the CLI and inspectable as ``runtime.cache.diagnostics``
        self.diagnostics: list[Diagnostic] = []
        #: set when the cache directory cannot be created: stores become
        #: no-ops after one C105 warning instead of warning per module
        self.disabled = False
        #: transient-I/O retries performed (chaos-suite observability)
        self.retries = 0
        #: loads that blocked on a concurrent writer's lock and picked up
        #: the winner's artifact instead of recompiling (wait-for-winner)
        self.waits = 0
        #: how long a load will wait for a live concurrent writer to
        #: publish the artifact before giving up and compiling anyway
        self.winner_timeout = 30.0
        self._dir_ok = False

    # -- paths and keys -----------------------------------------------------

    def artifact_path(self, path: str, lang: str, source_hash: str) -> str:
        stem = content_hash(str(FORMAT_VERSION), path, lang, source_hash)[:40]
        return os.path.join(self.dir, f"{stem}.zo")

    # -- diagnostics --------------------------------------------------------

    def _warn(self, code: str, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(severity="warning", code=code, message=message)
        )

    @staticmethod
    def _instant(name: str, path: str) -> None:
        """Mirror a cache counter onto the observability bus (if tracing)."""
        rec = current_recorder()
        if rec.enabled:
            rec.instant("cache", name, attrs={"path": path})

    # -- resilience helpers --------------------------------------------------

    def _retrying(self, site: str, fn: Any) -> Any:
        """Run ``fn``, retrying transient ``OSError`` a bounded number of
        times with a short backoff; the final failure propagates."""
        for attempt in range(RETRY_ATTEMPTS):
            try:
                return fn()
            except OSError:
                if attempt + 1 >= RETRY_ATTEMPTS:
                    raise
                self.retries += 1
                self._instant("retry", site)
                time.sleep(_RETRY_BACKOFF * (attempt + 1))

    def _ensure_dir(self) -> bool:
        """Create the cache directory; degrade to one C105 on failure."""
        if self._dir_ok:
            return True
        if self.disabled:
            return False
        try:
            fault_point("cache.makedirs")
            os.makedirs(self.dir, exist_ok=True)
        except OSError as err:
            self.disabled = True
            self._warn(
                "C105",
                f"cache directory {self.dir} unavailable "
                f"({type(err).__name__}: {err}); caching disabled",
            )
            return False
        self._dir_ok = True
        return True

    @staticmethod
    def _verify_envelope(data: bytes) -> bytes:
        """Check the checksummed envelope; returns the pickle payload."""
        header = len(MAGIC) + _DIGEST_LEN
        if len(data) < header:
            raise ValueError("truncated artifact")
        if data[: len(MAGIC)] != MAGIC:
            raise ValueError("bad artifact magic")
        digest = data[len(MAGIC): header]
        payload = data[header:]
        if hashlib.sha256(payload).digest() != digest:
            raise ValueError("artifact checksum mismatch")
        return payload

    @staticmethod
    def _historic_version(data: bytes) -> Optional[str]:
        """If ``data`` is an intact artifact from an earlier cache format,
        return that format's magic (repr'd for reporting); else None."""
        for magic in HISTORIC_MAGICS:
            header = len(magic) + _DIGEST_LEN
            if len(data) < header or data[: len(magic)] != magic:
                continue
            digest = data[len(magic): header]
            if hashlib.sha256(data[header:]).digest() == digest:
                return magic.decode("ascii", "backslashreplace")
        return None

    def _quarantine(self, file: str) -> Optional[str]:
        """Move a bad artifact into the quarantine subdirectory.

        Returns the destination path, or None if quarantining itself failed
        (in which case the file is unlinked, best-effort, so the corrupt
        artifact cannot poison the next run either way).
        """
        name = os.path.basename(file)
        qdir = os.path.join(self.dir, QUARANTINE_DIR)
        try:
            fault_point("cache.quarantine")
            os.makedirs(qdir, exist_ok=True)
            dest = os.path.join(qdir, name)
            n = 0
            while os.path.exists(dest):
                n += 1
                dest = os.path.join(qdir, f"{name}.{n}")
            os.replace(file, dest)
            return dest
        except OSError:
            with suppress(Exception):
                os.unlink(file)
            return None

    # -- locking (one writer per content hash) -------------------------------

    def _acquire_lock(self, file: str) -> Optional[tuple]:
        """Advisory per-artifact lock; None when another writer holds it.

        Uses ``flock`` where available (O_CREAT|O_EXCL elsewhere). The lock
        file is removed on release; the classic unlink/flock race between
        three writers is benign here because the artifact itself is written
        via atomic rename and is content-addressed — the worst case is one
        redundant identical write, never a torn or mixed artifact.
        """
        lock_path = f"{file}.lock"
        try:
            fault_point("cache.lock")
            if fcntl is not None:
                fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
                try:
                    fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                except OSError:
                    os.close(fd)
                    return None
                self._stamp_lock(fd)
                return (fd, lock_path)
            fd = os.open(  # pragma: no cover - non-posix fallback
                lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
            self._stamp_lock(fd)  # pragma: no cover
            return (fd, lock_path)  # pragma: no cover
        except FileExistsError:  # pragma: no cover - non-posix fallback
            return None
        except OSError:
            return None

    @staticmethod
    def _stamp_lock(fd: int) -> None:
        """Record the holder's PID in the lock file, so ``doctor`` can
        report who holds a live lock instead of guessing."""
        with suppress(OSError):
            os.ftruncate(fd, 0)
            os.write(fd, str(os.getpid()).encode("ascii"))

    @staticmethod
    def _lock_holder(lock_path: str) -> Optional[int]:
        """The PID recorded in a lock file, or None when unreadable."""
        try:
            with open(lock_path, "rb") as f:
                return int(f.read().strip() or b"-1")
        except (OSError, ValueError):
            return None

    @staticmethod
    def _release_lock(lock: tuple) -> None:
        fd, lock_path = lock
        with suppress(Exception):
            os.close(fd)
        with suppress(Exception):
            os.unlink(lock_path)

    def _lock_is_stale(self, lock_path: str) -> bool:
        """True when no live process holds the advisory lock."""
        if fcntl is None:  # pragma: no cover - non-posix fallback
            return True
        try:
            fd = os.open(lock_path, os.O_RDWR)
        except OSError:
            return False
        try:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                return True
            except OSError:
                return False
        finally:
            os.close(fd)

    # -- wait-for-winner (writer claims) -------------------------------------

    def claim_writer(self, registry: "ModuleRegistry", path: str, lang: str):
        """Claim the right to compile-and-store ``path``'s artifact.

        Called after a cache miss, *before* compiling. Artifacts are
        content-addressed, so two contexts compiling the same key would do
        byte-identical work — one of them should wait instead:

        - returns ``(claim, False)`` when this context won: it holds the
          artifact's advisory lock for the whole compile+store, and must
          hand ``claim`` to :meth:`store` and then :meth:`release_writer`;
        - returns ``(None, True)`` when a concurrent winner (another
          thread of this process, or a live lock-holding process) was
          waited for and published the artifact — re-load it;
        - returns ``(None, False)`` when there is nothing to coordinate
          with (no live holder, an unattributable lock, a timeout, or a
          disabled cache) — compile locally; the store degrades safely.
        """
        if self.disabled or not self._ensure_dir():
            return None, False
        file = self.artifact_path(path, lang, registry.source_hash(path))
        lock = self._acquire_lock(file)
        if lock is not None:
            event = threading.Event()
            with _INFLIGHT_LOCK:
                _INFLIGHT[file] = event
            return (file, lock, event), False
        # contended. An in-process compile registers an in-flight event —
        # wait on that (cheap, exact); otherwise fall back to watching a
        # live foreign process's lock. A lock with no live in-flight entry
        # and no (or our own) recorded PID is *unattributable* — somebody
        # is holding the file but provably not compiling here — so
        # compiling locally beats waiting for a phantom.
        with _INFLIGHT_LOCK:
            event = _INFLIGHT.get(file)
        if event is not None:
            if event.wait(self.winner_timeout) and os.path.exists(file):
                self.waits += 1
                self._instant("wait-winner", path)
                return None, True
            self._warn(
                "C106",
                f"timed out waiting {self.winner_timeout}s for a concurrent "
                f"compile of {path}; compiling it here too",
            )
            return None, False
        holder = self._lock_holder(f"{file}.lock")
        if holder is None or holder == os.getpid() or not _pid_alive(holder):
            return None, False
        deadline = time.monotonic() + self.winner_timeout
        while time.monotonic() < deadline:
            if os.path.exists(file):
                self.waits += 1
                self._instant("wait-winner", path)
                return None, True
            lock_path = f"{file}.lock"
            if not os.path.exists(lock_path) or self._lock_is_stale(lock_path):
                # winner finished (artifact decides) or died (stale lock)
                return None, os.path.exists(file)
            time.sleep(0.01)
        self._warn(
            "C106",
            f"timed out waiting {self.winner_timeout}s for process {holder} "
            f"to publish the artifact for {path}; compiling it here too",
        )
        return None, False

    def release_writer(self, claim: tuple) -> None:
        """Release a winning :meth:`claim_writer` claim (always runs, even
        when the compile failed — waiters re-check the artifact on wake)."""
        file, lock, event = claim
        with _INFLIGHT_LOCK:
            if _INFLIGHT.get(file) is event:
                del _INFLIGHT[file]
        event.set()
        self._release_lock(lock)

    # -- load ---------------------------------------------------------------

    def load(
        self, registry: "ModuleRegistry", path: str, lang: str
    ) -> Optional["CompiledModule"]:
        """Load ``path`` from its artifact, or None to fall back to a compile.

        Validates the envelope checksum, the artifact header, and every
        recorded dependency's full key (compiling or cache-loading the
        dependencies in the process); on success installs the module's
        binding-table fragment and counts a hit. All failure modes count a
        miss and return None; invalid artifacts are quarantined (C104).
        """
        source_hash = registry.source_hash(path)
        file = self.artifact_path(path, lang, source_hash)
        if not os.path.exists(file):
            STATS.cache_misses += 1
            self._instant("miss", path)
            return None

        def read() -> bytes:
            with open(file, "rb") as f:
                return fault_bytes("cache.read", f.read())

        try:
            data = self._retrying("cache.read", read)
            payload = self._verify_envelope(data)
            artifact = _ArtifactUnpickler(io.BytesIO(payload), registry).load()
            if (
                not isinstance(artifact, dict)
                or artifact.get("format") != FORMAT_VERSION
                or artifact.get("path") != path
                or artifact.get("lang") != lang
            ):
                raise ValueError("artifact header mismatch")
        except Exception as err:
            quarantined = self._quarantine(file)
            if quarantined is not None:
                self._warn(
                    "C104",
                    f"corrupt compiled artifact for {path} "
                    f"({type(err).__name__}: {err}); quarantined to "
                    f"{quarantined}; recompiling from source",
                )
                self._instant("quarantine", path)
            else:
                self._warn(
                    "C101",
                    f"corrupt compiled artifact for {path} "
                    f"({type(err).__name__}: {err}); recompiling from source",
                )
            STATS.cache_misses += 1
            self._instant("miss", path)
            return None

        for dep_path, dep_key in artifact["deps"]:
            try:
                registry.get_compiled(dep_path, requirer=path)
            except Exception as err:
                self._warn(
                    "C102",
                    f"stale compiled artifact for {path}: dependency "
                    f"{dep_path} is unavailable ({type(err).__name__}); "
                    f"recompiling from source",
                )
                STATS.cache_invalidations += 1
                STATS.cache_misses += 1
                self._instant("invalidation", path)
                return None
            if registry.full_key_of(dep_path) != dep_key:
                self._warn(
                    "C102",
                    f"stale compiled artifact for {path}: dependency "
                    f"{dep_path} changed; recompiling from source",
                )
                STATS.cache_invalidations += 1
                STATS.cache_misses += 1
                self._instant("invalidation", path)
                return None

        module: "CompiledModule" = artifact["module"]
        TABLE.install_entries(module.table_fragment)
        registry.set_full_key(path, artifact["key"])
        STATS.cache_hits += 1
        self._instant("hit", path)
        return module

    # -- store --------------------------------------------------------------

    def store(
        self,
        registry: "ModuleRegistry",
        path: str,
        lang: str,
        module: "CompiledModule",
        full_key: str,
        claim: Optional[tuple] = None,
    ) -> bool:
        """Write ``module``'s artifact; best-effort (False on failure).

        One writer per content hash: a concurrent writer holding the
        artifact's lock makes this a silent no-op (it is writing the same
        bytes). Torn writes cannot surface: the envelope is fully
        serialized in memory, written to a temp file, and atomically
        renamed into place.

        ``claim`` is a winning :meth:`claim_writer` claim already holding
        the artifact's lock (the compile-and-store path); the store then
        neither re-acquires nor releases it — :meth:`release_writer` does,
        in the caller's ``finally``.
        """
        deps = []
        for dep_path in module.requires:
            dep_key = registry.full_key_of(dep_path)
            if dep_key is None:
                self._warn(
                    "C103",
                    f"not caching {path}: dependency {dep_path} has no "
                    f"content key",
                )
                return False
            deps.append((dep_path, dep_key))
        artifact = {
            "format": FORMAT_VERSION,
            "path": path,
            "lang": lang,
            "key": full_key,
            "deps": deps,
            "module": module,
        }
        file = self.artifact_path(path, lang, registry.source_hash(path))
        tmp = f"{file}.tmp.{os.getpid()}"
        try:
            # serialize fully before touching the filesystem, so an
            # unpicklable module (e.g. one re-exporting a Python-implemented
            # macro) leaves no partial file behind
            buf = io.BytesIO()
            _ArtifactPickler(buf, token_prefix=full_key[:16]).dump(artifact)
            payload = buf.getvalue()
            envelope = MAGIC + hashlib.sha256(payload).digest() + payload
        except Exception as err:
            self._warn(
                "C103",
                f"could not cache compiled artifact for {path} "
                f"({type(err).__name__}: {err})",
            )
            return False
        if not self._ensure_dir():
            return False
        if claim is not None and claim[0] == file:
            lock: Optional[tuple] = None  # already held; caller releases
        else:
            lock = self._acquire_lock(file)
            if lock is None:
                # another writer owns this content hash; its bytes are ours
                self._instant("store-skipped", path)
                return False
        try:
            # no existence short-circuit: the same source hash can hold a
            # *stale* artifact (a dependency's full key changed), and the
            # rename is atomic either way
            envelope = fault_bytes("cache.write", envelope)

            def write() -> None:
                with open(tmp, "wb") as f:
                    f.write(envelope)
                fault_point("cache.replace")
                os.replace(tmp, file)

            self._retrying("cache.write", write)
        except Exception as err:
            self._warn(
                "C103",
                f"could not cache compiled artifact for {path} "
                f"({type(err).__name__}: {err})",
            )
            # the cleanup must never mask the original degradation: a
            # failing unlink (gone already, permissions, injected fault)
            # is suppressed entirely
            with suppress(Exception):
                fault_point("cache.unlink")
                os.unlink(tmp)
            return False
        finally:
            if lock is not None:
                self._release_lock(lock)
        STATS.cache_stores += 1
        self._instant("store", path)
        return True

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[tuple[str, int]]:
        """(filename, size-in-bytes) for every artifact on disk."""
        try:
            names = sorted(os.listdir(self.dir))
        except OSError:
            return []
        out = []
        for name in names:
            if name.endswith(".zo"):
                try:
                    out.append((name, os.path.getsize(os.path.join(self.dir, name))))
                except OSError:
                    continue
        return out

    def clear(self) -> dict:
        """Delete every artifact *and* the cache's debris.

        Earlier versions iterated :meth:`entries` (``*.zo`` only), so
        ``repro cache clear`` reported success while leaving the
        ``quarantine/`` subdirectory, torn-write ``*.tmp.*`` files, and
        stale lock files behind. This sweeps the same categories
        :meth:`doctor` knows about and removes them; a lock file with a
        live holder is left alone.

        Returns a report dict: counts for ``artifacts``, ``quarantined``,
        ``tmp``, and ``locks`` removed, plus any per-file ``errors``.
        """
        report: dict[str, Any] = {
            "dir": self.dir,
            "artifacts": 0,
            "quarantined": 0,
            "tmp": 0,
            "locks": 0,
            "errors": [],
        }
        try:
            names = sorted(os.listdir(self.dir))
        except OSError:
            return report

        def remove(full: str, counter: str) -> None:
            try:
                os.unlink(full)
                report[counter] += 1
            except OSError as err:
                report["errors"].append(f"cannot remove {full}: {err}")

        for name in names:
            full = os.path.join(self.dir, name)
            if name == QUARANTINE_DIR and os.path.isdir(full):
                try:
                    quarantined = sorted(os.listdir(full))
                except OSError as err:
                    report["errors"].append(f"cannot list {full}: {err}")
                    continue
                for qname in quarantined:
                    remove(os.path.join(full, qname), "quarantined")
                with suppress(OSError):
                    os.rmdir(full)
            elif name.endswith(".zo"):
                remove(full, "artifacts")
            elif ".tmp." in name:
                remove(full, "tmp")
            elif name.endswith(".lock") and self._lock_is_stale(full):
                remove(full, "locks")
        return report

    def doctor(self) -> dict:
        """Scan and repair the cache directory — safe to run *mid-flight*.

        - validates every artifact's envelope (magic + checksum);
          invalid ones are quarantined;
        - artifacts from an earlier ``FORMAT_VERSION`` (recognizable by a
          historic magic with an intact checksum) are **reported**, not
          quarantined — they are stale, not corrupt;
        - removes torn-write debris (``*.tmp.*`` files left by a crash
          between write and rename) — but only when the PID baked into the
          name is dead; an in-flight writer's temp file is *reported*
          (``tmp_live``), not yanked out from under it;
        - removes stale lock files (no live holder); locks held by a live
          process are **reported** (``locks_held``, with the holder's PID
          from the lock stamp), never treated as a failure — so the doctor
          can run concurrently with active compilations.

        Returns a report dict; never raises for per-file problems, and
        live locks / live temp files do not count as errors.
        """
        report: dict[str, Any] = {
            "dir": self.dir,
            "scanned": 0,
            "ok": 0,
            "old_version": [],
            "quarantined": [],
            "tmp_removed": [],
            "tmp_live": [],
            "locks_removed": [],
            "locks_held": [],
            "errors": [],
        }
        try:
            names = sorted(os.listdir(self.dir))
        except OSError as err:
            report["errors"].append(f"cannot list {self.dir}: {err}")
            return report
        for name in names:
            full = os.path.join(self.dir, name)
            if name.endswith(".zo"):
                report["scanned"] += 1
                data = b""
                try:
                    with open(full, "rb") as f:
                        data = f.read()
                    self._verify_envelope(data)
                    report["ok"] += 1
                except Exception as err:
                    old = self._historic_version(data)
                    if old is not None:
                        report["old_version"].append((name, old))
                        continue
                    dest = self._quarantine(full)
                    report["quarantined"].append(
                        (name, str(err), dest or "<unlinked>")
                    )
            elif ".tmp." in name:
                writer = self._tmp_writer_pid(name)
                if writer is not None and _pid_alive(writer):
                    report["tmp_live"].append((name, writer))
                    continue
                try:
                    os.unlink(full)
                    report["tmp_removed"].append(name)
                except OSError as err:
                    report["errors"].append(f"cannot remove {name}: {err}")
            elif name.endswith(".lock"):
                if self._lock_is_stale(full):
                    try:
                        os.unlink(full)
                        report["locks_removed"].append(name)
                    except OSError as err:
                        report["errors"].append(f"cannot remove {name}: {err}")
                else:
                    report["locks_held"].append((name, self._lock_holder(full)))
        return report

    @staticmethod
    def _tmp_writer_pid(name: str) -> Optional[int]:
        """The writer PID baked into a ``<hash>.zo.tmp.<pid>`` name."""
        try:
            return int(name.rsplit(".tmp.", 1)[1])
        except (IndexError, ValueError):
            return None
