"""Persistent compiled-module artifacts — the §5 ``compiled/*.zo`` machinery.

§5 of the paper claims that a language implemented as a library can persist
its *static semantics* into a separable compiled artifact: Racket writes
fully-expanded modules, their export tables, and their replayable phase-1
code into ``compiled/*.zo`` files, and a later run (or a different process)
requires the module without re-expanding it. This module reproduces that:

- a :class:`ModuleCache` stores each :class:`~repro.modules.registry.CompiledModule`
  (core AST, export table, replayable :class:`SyntaxDecl` list, and the
  module's binding-table fragment) as one ``<hash>.zo`` file under a cache
  directory (default ``.repro-cache/``);
- artifacts are keyed by a **content hash** of (cache-format version, module
  path, ``#lang``, source text), and validated against the **full keys** of
  every dependency — the full key folds the dependencies' own full keys in
  transitively, so editing a required module invalidates all of its
  requirers without touching their files;
- corrupt or stale artifacts degrade to a recompile plus a ``C``-series
  warning diagnostic (C101 corrupt / C102 stale / C103 store failed), never
  an error.

Serialization notes
-------------------

Artifacts are pickles with three persistent-identity rules, because the
platform's hygiene machinery is identity-based:

- **Symbols/keywords** re-intern on load (pattern matching compares them
  with ``is``).
- **The core scope** and **language anchor scopes** map to the loading
  process's own instances (they are re-created by every Runtime, and cached
  macro templates must keep resolving to the language's bindings).
- **Every other scope** is named by a *persistent token* minted when the
  scope is first serialized and interned process-wide on load, so two
  artifacts that share a scope (a module and its requirer, compiled in the
  same session) agree on its identity after both are loaded.

``LocalBinding`` uids are re-minted on load (see ``LocalBinding.__reduce__``)
to avoid key collisions with bindings created in the loading process.
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import weakref
from typing import TYPE_CHECKING, Any, Optional

from repro.diagnostics.diagnostic import Diagnostic
from repro.observe.recorder import current_recorder
from repro.runtime.stats import STATS
from repro.runtime.values import Keyword, Symbol
from repro.syn.binding import TABLE
from repro.syn.scopes import Scope

if TYPE_CHECKING:
    from repro.modules.registry import CompiledModule, ModuleRegistry

#: bump when the artifact layout (or anything it pickles) changes shape;
#: part of every content hash, so old artifacts simply stop matching
FORMAT_VERSION = 1

#: default cache directory, relative to the working directory (the analogue
#: of Racket's ``compiled/``); overridable via Runtime(cache_dir=) and the
#: REPRO_CACHE_DIR environment variable
DEFAULT_CACHE_DIR = ".repro-cache"

ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: process-wide intern table: persistent scope token -> live Scope. Weak, so
#: scopes vanish once nothing loaded references them; as long as any loaded
#: artifact holds a scope, later loads of artifacts sharing it agree on
#: identity.
_SCOPE_INTERN: "weakref.WeakValueDictionary[str, Scope]" = weakref.WeakValueDictionary()


def default_cache_dir() -> str:
    return os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR


def content_hash(*parts: str) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    return h.hexdigest()


class _ArtifactPickler(pickle.Pickler):
    """Pickler assigning persistent identities to scopes and symbols."""

    def __init__(self, file: Any, token_prefix: str) -> None:
        super().__init__(file, protocol=4)
        self._token_prefix = token_prefix
        self._seq = 0

    def persistent_id(self, obj: Any) -> Optional[tuple]:
        if isinstance(obj, Scope):
            if obj.kind == "core":
                return ("core-scope",)
            if obj.kind.startswith("lang:"):
                return ("lang-scope", obj.kind[len("lang:"):])
            if obj.token is None:
                self._seq += 1
                obj.token = f"{self._token_prefix}#{self._seq}"
                _SCOPE_INTERN[obj.token] = obj
            return ("scope", obj.token, obj.kind)
        if isinstance(obj, Symbol):
            return ("sym", obj.name)
        if isinstance(obj, Keyword):
            return ("kw", obj.name)
        return None


class _ArtifactUnpickler(pickle.Unpickler):
    """Unpickler resolving the persistent identities of `_ArtifactPickler`."""

    def __init__(self, file: Any, registry: "ModuleRegistry") -> None:
        super().__init__(file)
        self._registry = registry

    def persistent_load(self, pid: tuple) -> Any:
        tag = pid[0]
        if tag == "core-scope":
            from repro.expander.kernel_scope import CORE_SCOPE

            return CORE_SCOPE
        if tag == "lang-scope":
            lang = self._registry.languages.get(pid[1])
            if lang is None:
                raise pickle.UnpicklingError(
                    f"artifact references unknown language: {pid[1]}"
                )
            return lang.scope
        if tag == "scope":
            token, kind = pid[1], pid[2]
            scope = _SCOPE_INTERN.get(token)
            if scope is None:
                scope = Scope(kind)
                scope.token = token
                _SCOPE_INTERN[token] = scope
            return scope
        if tag == "sym":
            return Symbol(pid[1])
        if tag == "kw":
            return Keyword(pid[1])
        raise pickle.UnpicklingError(f"unknown persistent id: {pid!r}")


class ModuleCache:
    """A directory of ``<content-hash>.zo`` compiled-module artifacts."""

    def __init__(self, cache_dir: Optional[str] = None) -> None:
        self.dir = cache_dir or default_cache_dir()
        #: C-series warnings accumulated by load/store failures; surfaced by
        #: the CLI and inspectable as ``runtime.cache.diagnostics``
        self.diagnostics: list[Diagnostic] = []

    # -- paths and keys -----------------------------------------------------

    def artifact_path(self, path: str, lang: str, source_hash: str) -> str:
        stem = content_hash(str(FORMAT_VERSION), path, lang, source_hash)[:40]
        return os.path.join(self.dir, f"{stem}.zo")

    # -- diagnostics --------------------------------------------------------

    def _warn(self, code: str, message: str) -> None:
        self.diagnostics.append(
            Diagnostic(severity="warning", code=code, message=message)
        )

    @staticmethod
    def _instant(name: str, path: str) -> None:
        """Mirror a cache counter onto the observability bus (if tracing)."""
        rec = current_recorder()
        if rec.enabled:
            rec.instant("cache", name, attrs={"path": path})

    # -- load ---------------------------------------------------------------

    def load(
        self, registry: "ModuleRegistry", path: str, lang: str
    ) -> Optional["CompiledModule"]:
        """Load ``path`` from its artifact, or None to fall back to a compile.

        Validates the artifact header and every recorded dependency's full
        key (compiling or cache-loading the dependencies in the process);
        on success installs the module's binding-table fragment and counts a
        hit. All failure modes count a miss and return None.
        """
        source_hash = registry.source_hash(path)
        file = self.artifact_path(path, lang, source_hash)
        if not os.path.exists(file):
            STATS.cache_misses += 1
            self._instant("miss", path)
            return None
        try:
            with open(file, "rb") as f:
                artifact = _ArtifactUnpickler(f, registry).load()
            if (
                not isinstance(artifact, dict)
                or artifact.get("format") != FORMAT_VERSION
                or artifact.get("path") != path
                or artifact.get("lang") != lang
            ):
                raise ValueError("artifact header mismatch")
        except Exception as err:
            self._warn(
                "C101",
                f"corrupt compiled artifact for {path} "
                f"({type(err).__name__}: {err}); recompiling from source",
            )
            STATS.cache_misses += 1
            self._instant("miss", path)
            try:
                os.unlink(file)
            except OSError:
                pass
            return None

        for dep_path, dep_key in artifact["deps"]:
            try:
                registry.get_compiled(dep_path, requirer=path)
            except Exception as err:
                self._warn(
                    "C102",
                    f"stale compiled artifact for {path}: dependency "
                    f"{dep_path} is unavailable ({type(err).__name__}); "
                    f"recompiling from source",
                )
                STATS.cache_invalidations += 1
                STATS.cache_misses += 1
                self._instant("invalidation", path)
                return None
            if registry.full_key_of(dep_path) != dep_key:
                self._warn(
                    "C102",
                    f"stale compiled artifact for {path}: dependency "
                    f"{dep_path} changed; recompiling from source",
                )
                STATS.cache_invalidations += 1
                STATS.cache_misses += 1
                self._instant("invalidation", path)
                return None

        module: "CompiledModule" = artifact["module"]
        TABLE.install_entries(module.table_fragment)
        registry.set_full_key(path, artifact["key"])
        STATS.cache_hits += 1
        self._instant("hit", path)
        return module

    # -- store --------------------------------------------------------------

    def store(
        self,
        registry: "ModuleRegistry",
        path: str,
        lang: str,
        module: "CompiledModule",
        full_key: str,
    ) -> bool:
        """Write ``module``'s artifact; best-effort (False on failure)."""
        deps = []
        for dep_path in module.requires:
            dep_key = registry.full_key_of(dep_path)
            if dep_key is None:
                self._warn(
                    "C103",
                    f"not caching {path}: dependency {dep_path} has no "
                    f"content key",
                )
                return False
            deps.append((dep_path, dep_key))
        artifact = {
            "format": FORMAT_VERSION,
            "path": path,
            "lang": lang,
            "key": full_key,
            "deps": deps,
            "module": module,
        }
        file = self.artifact_path(path, lang, registry.source_hash(path))
        tmp = f"{file}.tmp.{os.getpid()}"
        try:
            # serialize fully before touching the filesystem, so an
            # unpicklable module (e.g. one re-exporting a Python-implemented
            # macro) leaves no partial file behind
            buf = io.BytesIO()
            _ArtifactPickler(buf, token_prefix=full_key[:16]).dump(artifact)
            os.makedirs(self.dir, exist_ok=True)
            with open(tmp, "wb") as f:
                f.write(buf.getvalue())
            os.replace(tmp, file)
        except Exception as err:
            self._warn(
                "C103",
                f"could not cache compiled artifact for {path} "
                f"({type(err).__name__}: {err})",
            )
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        STATS.cache_stores += 1
        self._instant("store", path)
        return True

    # -- maintenance --------------------------------------------------------

    def entries(self) -> list[tuple[str, int]]:
        """(filename, size-in-bytes) for every artifact on disk."""
        try:
            names = sorted(os.listdir(self.dir))
        except OSError:
            return []
        out = []
        for name in names:
            if name.endswith(".zo"):
                try:
                    out.append((name, os.path.getsize(os.path.join(self.dir, name))))
                except OSError:
                    continue
        return out

    def clear(self) -> int:
        """Delete every artifact; returns how many were removed."""
        removed = 0
        for name, _size in self.entries():
            try:
                os.unlink(os.path.join(self.dir, name))
                removed += 1
            except OSError:
                continue
        return removed
