"""Parallel module-graph compilation.

``compile_graph`` compiles a set of modules (and their dependencies) by
fanning independent modules out across a ``concurrent.futures`` pool. The
content-hashed artifact cache (:mod:`repro.modules.cache`) is the single
coordination point: every worker builds its own Runtime against the shared
cache directory, compiled artifacts land there atomically, and two workers
that race to the same module are reconciled by the cache's writer-claim
protocol (the loser waits for the winner's artifact instead of duplicating
the compile). The scheduler is therefore an *optimization*, not a
correctness mechanism — a module the dependency scan missed is simply
compiled transitively by whichever worker requires it first.

Scheduling: a cheap top-level scan of each module's ``require`` forms
produces a dependency graph; Kahn's algorithm layers it into *waves* of
mutually independent modules, and each wave is chunked across the pool.
The scan is best-effort by design (a macro that expands into a ``require``
is invisible to it) — see the module-graph note above.

Execution modes:

- ``"process"`` (default when ``jobs > 1``): a ``ProcessPoolExecutor``
  (fork start method when the platform offers it, else spawn). This is the
  mode that actually buys wall-clock speedup — compilation is pure Python,
  so threads serialize on the GIL. Exercises the cache's *cross-process*
  coordination (PID-stamped lock files).
- ``"thread"``: a ``ThreadPoolExecutor``; each worker thread still builds
  its own Runtime. No speedup under the GIL, but the same scheduling and
  the cache's *in-process* wait-for-winner path — which is what the
  concurrency stress suite wants to hammer deterministically.

Only on-disk modules are dispatched to workers (a worker re-registers the
file by path); in-memory modules (``register_module`` sources) are compiled
in the calling Runtime, since only it holds their source forms.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Any, Optional

from repro.errors import ReproError

if TYPE_CHECKING:
    from repro.modules.registry import ModuleRegistry


class ModuleResult:
    """Outcome of one module's compilation within a graph run."""

    __slots__ = ("path", "status", "seconds", "wave", "error")

    def __init__(
        self,
        path: str,
        status: str,
        seconds: float,
        wave: int,
        error: Optional[str] = None,
    ) -> None:
        self.path = path
        #: "compiled" | "cache-hit" | "failed"
        self.status = status
        self.seconds = seconds
        self.wave = wave
        self.error = error

    def __repr__(self) -> str:
        return f"#<module-result {self.path} {self.status} {self.seconds:.3f}s>"


class GraphReport:
    """What ``compile_graph`` did: per-module outcomes plus the schedule."""

    def __init__(self, jobs: int, mode: str) -> None:
        self.jobs = jobs
        self.mode = mode
        self.waves: list[list[str]] = []
        self.results: dict[str, ModuleResult] = {}
        self.seconds = 0.0

    @property
    def ok(self) -> bool:
        return all(r.status != "failed" for r in self.results.values())

    @property
    def errors(self) -> dict[str, str]:
        return {
            path: r.error or "compilation failed"
            for path, r in self.results.items()
            if r.status == "failed"
        }

    def counts(self) -> dict[str, int]:
        out = {"compiled": 0, "cache-hit": 0, "failed": 0}
        for r in self.results.values():
            out[r.status] = out.get(r.status, 0) + 1
        return out

    def snapshot(self) -> dict[str, Any]:
        return {
            "jobs": self.jobs,
            "mode": self.mode,
            "seconds": self.seconds,
            "waves": [list(w) for w in self.waves],
            "counts": self.counts(),
            "modules": {
                path: {
                    "status": r.status,
                    "seconds": r.seconds,
                    "wave": r.wave,
                    **({"error": r.error} if r.error else {}),
                }
                for path, r in self.results.items()
            },
        }

    def __repr__(self) -> str:
        c = self.counts()
        return (
            f"#<graph-report jobs={self.jobs} mode={self.mode} "
            f"compiled={c['compiled']} cache-hit={c['cache-hit']} "
            f"failed={c['failed']} {self.seconds:.3f}s>"
        )


# -- dependency scan ---------------------------------------------------------

_WRAPPERS = ("only-in", "rename-in", "only")


def _spec_module_name(spec: Any) -> Optional[str]:
    """The module name of one require spec, or None when it isn't literal."""
    e = spec.e
    if isinstance(e, tuple) and e and e[0].is_identifier() and e[0].e.name in _WRAPPERS:
        if len(e) < 2:
            return None
        e = e[1].e
    if isinstance(e, str):
        return e
    # a symbol spec names a registered module path verbatim
    from repro.runtime.values import Symbol

    if isinstance(e, Symbol):
        return e.name
    return None


def scan_requires(registry: "ModuleRegistry", path: str) -> list[str]:
    """Best-effort top-level ``require`` scan of a registered module.

    Resolves each literal require spec against the registry; specs that
    cannot be resolved (or requires produced by macro expansion) are
    silently skipped — the compile itself discovers and compiles them.
    """
    source = registry.sources.get(path)
    if source is None and os.path.exists(path):
        # an on-disk dependency reached only through the scan: register it
        # so its own requires are visible to the planner
        try:
            registry.register_file(path)
        except (ReproError, OSError):
            return []
        source = registry.sources.get(path)
    if source is None:
        return []
    _lang, forms = source
    deps: list[str] = []
    for form in forms:
        e = form.e
        if not (isinstance(e, tuple) and e and e[0].is_identifier()):
            continue
        if e[0].e.name != "require":
            continue
        for spec in e[1:]:
            name = _spec_module_name(spec)
            if name is None:
                continue
            try:
                dep = registry.resolve_module_path(name, relative_to=path)
            except ReproError:
                continue
            if dep != path and dep not in deps:
                deps.append(dep)
    return deps


def plan_waves(
    registry: "ModuleRegistry", paths: list[str]
) -> tuple[list[list[str]], dict[str, list[str]]]:
    """Layer the (scanned) dependency graph into waves of independent
    modules — Kahn's algorithm, with deterministic ordering inside each
    wave. Returns ``(waves, deps)`` where ``deps`` maps each discovered
    module to its scanned in-graph dependencies. A scan-visible dependency
    cycle puts its members into one final wave (the compile itself then
    reports M003 with the precise chain)."""
    deps: dict[str, list[str]] = {}
    order: list[str] = []
    stack = list(paths)
    while stack:
        path = stack.pop()
        if path in deps:
            continue
        scanned = scan_requires(registry, path)
        deps[path] = scanned
        order.append(path)
        stack.extend(d for d in scanned if d not in deps)

    remaining = {p: set(d for d in ds if d in deps) for p, ds in deps.items()}
    waves: list[list[str]] = []
    while remaining:
        ready = sorted(p for p, blockers in remaining.items() if not blockers)
        if not ready:
            # cycle: flush the rest in one wave; compilation raises M003
            waves.append(sorted(remaining))
            break
        waves.append(ready)
        for p in ready:
            del remaining[p]
        for blockers in remaining.values():
            blockers.difference_update(ready)
    return waves, deps


# -- the pool worker ---------------------------------------------------------


def _compile_batch(
    paths: list[str],
    cache_dir: str,
    backend: str,
    expansion_fuel: Optional[int],
) -> dict[str, tuple[str, float, Optional[str]]]:
    """Compile a batch of on-disk modules into the shared cache.

    Module-level (hence picklable) so it runs in a ProcessPoolExecutor;
    the same function serves thread mode. Builds one fresh Runtime per
    batch — the artifacts it publishes into ``cache_dir`` are the result;
    the Runtime itself is torn down before returning.
    """
    from repro.tools.runner import Runtime

    results: dict[str, tuple[str, float, Optional[str]]] = {}
    rt = Runtime(
        cache_dir=cache_dir,
        backend=backend,
        expansion_fuel=expansion_fuel,
    )
    try:
        for path in paths:
            t0 = time.perf_counter()
            try:
                canon = rt.register_file(path)
                before = rt.stats.cache_misses
                rt.compile(canon)
                status = "compiled" if rt.stats.cache_misses > before else "cache-hit"
                results[path] = (status, time.perf_counter() - t0, None)
            except ReproError as err:
                results[path] = ("failed", time.perf_counter() - t0, str(err))
            except OSError as err:
                results[path] = (
                    "failed",
                    time.perf_counter() - t0,
                    f"cannot read {path}: {err.strerror or err}",
                )
    finally:
        rt.close()
    return results


def _chunk(items: list[str], jobs: int) -> list[list[str]]:
    """Split a wave into at most ``jobs`` contiguous, balanced batches."""
    n = min(jobs, len(items))
    if n <= 0:
        return []
    size, extra = divmod(len(items), n)
    out: list[list[str]] = []
    start = 0
    for i in range(n):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return out


def _make_executor(mode: str, jobs: int) -> Any:
    import concurrent.futures

    if mode == "thread":
        return concurrent.futures.ThreadPoolExecutor(max_workers=jobs)
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # platform without fork
        ctx = multiprocessing.get_context("spawn")
    return concurrent.futures.ProcessPoolExecutor(max_workers=jobs, mp_context=ctx)


# -- the driver --------------------------------------------------------------


def compile_graph(
    registry: "ModuleRegistry",
    paths: list[str],
    *,
    jobs: Optional[int] = None,
    mode: Optional[str] = None,
) -> GraphReport:
    """Compile ``paths`` (and their dependencies), fanning independent
    modules across a worker pool; see the module docstring for the model.

    ``jobs=None`` uses ``os.cpu_count()``; ``jobs=1`` compiles serially in
    the calling registry (the differential baseline). ``jobs > 1`` requires
    an artifact cache — it is the only channel through which workers hand
    their results back. After the fan-out the calling registry cache-loads
    every artifact, so on return the modules are compiled *in this
    registry* exactly as if it had done all the work itself.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise ValueError(f"compile_graph: jobs must be >= 1, got {jobs}")
    if mode is None:
        mode = "process" if jobs > 1 else "serial"
    if mode not in ("serial", "process", "thread"):
        raise ValueError(f"compile_graph: unknown mode: {mode}")
    if jobs > 1 and registry.cache is None:
        raise ValueError(
            "compile_graph: jobs > 1 requires an artifact cache "
            "(workers publish their results through it); build the "
            "Runtime with cache=True or cache_dir=..."
        )

    from repro.observe.recorder import current_recorder

    rec = current_recorder()
    t_start = time.perf_counter()

    # canonicalize: on-disk spellings register under their canonical path
    resolved: list[str] = []
    for p in paths:
        canon = registry.register_file(p) if os.path.exists(p) else p
        if canon not in resolved:
            resolved.append(canon)

    with rec.span("graph", f"plan {len(resolved)} roots"):
        waves, _deps = plan_waves(registry, resolved)
    report = GraphReport(jobs, mode)
    report.waves = waves

    def _serial_compile(path: str, wave_no: int) -> None:
        t0 = time.perf_counter()
        try:
            before = (
                registry.compiled.get(path) is not None
                or _has_artifact(registry, path)
            )
            registry.get_compiled(path)
            status = "cache-hit" if before else "compiled"
            report.results[path] = ModuleResult(
                path, status, time.perf_counter() - t0, wave_no
            )
        except ReproError as err:
            report.results[path] = ModuleResult(
                path, "failed", time.perf_counter() - t0, wave_no, str(err)
            )

    if jobs == 1 or mode == "serial":
        for wave_no, wave in enumerate(waves):
            for path in wave:
                _serial_compile(path, wave_no)
        report.seconds = time.perf_counter() - t_start
        return report

    import concurrent.futures

    executor = _make_executor(mode, jobs)
    try:
        for wave_no, wave in enumerate(waves):
            disk = [p for p in wave if os.path.exists(p)]
            local = [p for p in wave if p not in disk]
            # in-memory modules: only this registry holds their forms
            for path in local:
                _serial_compile(path, wave_no)
            if not disk:
                continue
            with rec.span("graph", f"wave {wave_no} ({len(disk)} modules)"):
                futures = {
                    executor.submit(
                        _compile_batch,
                        batch,
                        registry.cache.dir,
                        registry.backend,
                        registry.expansion_fuel,
                    ): batch
                    for batch in _chunk(disk, jobs)
                }
                for future in concurrent.futures.as_completed(futures):
                    batch = futures[future]
                    try:
                        outcomes = future.result()
                    except BaseException as err:  # worker died (crash, kill)
                        for path in batch:
                            report.results[path] = ModuleResult(
                                path, "failed", 0.0, wave_no,
                                f"worker failed: {err}",
                            )
                        continue
                    for path, (status, seconds, error) in outcomes.items():
                        report.results[path] = ModuleResult(
                            path, status, seconds, wave_no, error
                        )
    finally:
        executor.shutdown(wait=True)

    # adopt the workers' artifacts: cache-load every successfully compiled
    # module into *this* registry (deps first — get_compiled recurses, so
    # plain topo order suffices)
    with rec.span("graph", "adopt artifacts"):
        for wave_no, wave in enumerate(waves):
            for path in wave:
                result = report.results.get(path)
                if result is None or result.status == "failed":
                    continue
                if registry.compiled.get(path) is not None:
                    continue
                try:
                    registry.get_compiled(path)
                except ReproError as err:
                    report.results[path] = ModuleResult(
                        path, "failed", result.seconds, wave_no, str(err)
                    )
    report.seconds = time.perf_counter() - t_start
    return report


def _has_artifact(registry: "ModuleRegistry", path: str) -> bool:
    """Whether the cache already holds an artifact for ``path`` (used only
    to label serial results compiled vs cache-hit)."""
    cache = registry.cache
    if cache is None:
        return False
    try:
        lang, _forms = registry.sources[path]
        file = cache.artifact_path(path, lang, registry.source_hash(path))
    except (KeyError, OSError):
        return False
    return os.path.exists(file)
