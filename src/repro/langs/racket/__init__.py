"""The ``racket`` base language: the kernel plus the surface-macro library."""

from __future__ import annotations

from repro.expander.core_forms import CORE_FORMS
from repro.langs.racket.forms import install_forms
from repro.langs.racket.match import install_match
from repro.langs.racket.structs import install_structs
from repro.modules.registry import Export, Language, ModuleRegistry


def make_racket_language(registry: ModuleRegistry) -> Language:
    lang = Language("racket")
    # the kernel: every primitive and core form
    for name, export in registry.kernel_exports.items():
        lang.export(name, export.binding, export.transformer)
    # friendlier names for core forms
    lang.export("lambda", CORE_FORMS["#%plain-lambda"])
    lang.export("λ", CORE_FORMS["#%plain-lambda"])
    lang.export("#%app", CORE_FORMS["#%plain-app"])
    install_forms(lang)
    install_match(lang)
    install_structs(lang)
    registry.register_language(lang)
    return lang
