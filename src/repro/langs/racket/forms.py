"""The surface forms of the ``racket`` language, as macros over the core.

Every form here is a library-defined rewrite into fig. 1's core grammar —
"most [syntactic forms] can be reduced to simpler forms via rewrite rules
implemented as macros" (§3.1).
"""

from __future__ import annotations

from typing import Any

from repro.errors import SyntaxExpansionError
from repro.expander.pattern import compile_pattern, compile_template
from repro.langs.base import expand_with, fn_macro, rule_macro
from repro.modules.registry import Language
from repro.runtime.values import Symbol
from repro.syn.syntax import ImproperList, Syntax, datum_to_syntax


def install_forms(lang: Language) -> None:
    _install_module_hooks(lang)
    install_misc_forms(lang)
    install_case_lambda(lang)
    _install_definition_forms(lang)
    _install_binding_forms(lang)
    _install_conditionals(lang)
    _install_loops(lang)
    _install_quasiquote(lang)
    _install_provide_require(lang)


# --- module hooks -----------------------------------------------------------


def _install_module_hooks(lang: Language) -> None:
    @fn_macro(lang, "#%module-begin")
    def module_begin(stx: Syntax, lang: Language) -> Syntax:
        return expand_with(
            lang, "(#%plain-module-begin form ...)", form=list(stx.e[1:])
        )

    @fn_macro(lang, "#%datum")
    def datum(stx: Syntax, lang: Language) -> Syntax:
        # (#%datum . d) -> (quote d)
        if isinstance(stx.e, ImproperList):
            payload: Syntax = stx.e.tail
        elif isinstance(stx.e, tuple) and len(stx.e) == 2:
            payload = stx.e[1]
        else:
            raise SyntaxExpansionError("#%datum: bad syntax", stx)
        return expand_with(lang, "(quote d)", d=payload)


# --- definitions --------------------------------------------------------------


def _install_definition_forms(lang: Language) -> None:
    @fn_macro(lang, "define")
    def define(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (isinstance(items, tuple) and len(items) >= 2):
            raise SyntaxExpansionError("define: bad syntax", stx)
        header = items[1]
        if header.is_identifier():
            if len(items) != 3:
                raise SyntaxExpansionError("define: bad syntax", stx)
            return expand_with(lang, "(define-values (x) e)", x=header, e=items[2])
        # (define (f . args) body ...) — possibly curried headers are not
        # supported; Racket's full `define` is, but the paper doesn't use them.
        if isinstance(header.e, tuple) and header.e:
            fn_name, formals = header.e[0], header.e[1:]
            formals_stx: Syntax = Syntax(tuple(formals), header.scopes, header.srcloc)
        elif isinstance(header.e, ImproperList) and header.e.items:
            fn_name = header.e.items[0]
            formals_stx = Syntax(
                ImproperList(header.e.items[1:], header.e.tail),
                header.scopes,
                header.srcloc,
            )
        else:
            raise SyntaxExpansionError("define: bad syntax", stx)
        if not fn_name.is_identifier():
            raise SyntaxExpansionError("define: expected an identifier", fn_name)
        body = list(items[2:])
        if not body:
            raise SyntaxExpansionError("define: missing body", stx)
        lam = expand_with(
            lang, "(#%plain-lambda formals body ...)", formals=formals_stx, body=body
        ).property_put("inferred-name", fn_name.e.name)
        return expand_with(lang, "(define-values (f) lam)", f=fn_name, lam=lam)

    @fn_macro(lang, "define-syntax")
    def define_syntax(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (isinstance(items, tuple) and len(items) >= 3):
            raise SyntaxExpansionError("define-syntax: bad syntax", stx)
        header = items[1]
        if header.is_identifier():
            if len(items) != 3:
                raise SyntaxExpansionError("define-syntax: bad syntax", stx)
            return expand_with(
                lang, "(define-syntaxes (f) rhs)", f=header, rhs=items[2]
            )
        if not (isinstance(header.e, tuple) and len(header.e) == 2):
            raise SyntaxExpansionError("define-syntax: bad header", stx)
        fn_name, arg = header.e
        return expand_with(
            lang,
            "(define-syntaxes (f) (#%plain-lambda (arg) body ...))",
            f=fn_name,
            arg=arg,
            body=list(items[2:]),
        )


# --- binding forms --------------------------------------------------------------


def _install_binding_forms(lang: Language) -> None:
    @fn_macro(lang, "let")
    def let(stx: Syntax, lang: Language) -> Syntax:
        named = compile_pattern("(_ name:id ([x:id e] ...) body ...)").match(stx)
        if named is not None and isinstance(named["name"].e, Symbol):
            return expand_with(
                lang,
                "((letrec-values (((name) (#%plain-lambda (x ...) body ...)))"
                " name) e ...)",
                **named,
            )
        plain = compile_pattern("(_ ([x:id e] ...) body ...)").match(stx)
        if plain is None:
            raise SyntaxExpansionError("let: bad syntax", stx)
        return expand_with(lang, "(let-values (((x) e) ...) body ...)", **plain)

    rule_macro(
        lang,
        "letrec",
        [("(_ ([x:id e] ...) body ...)", "(letrec-values (((x) e) ...) body ...)")],
    )

    @fn_macro(lang, "let*")
    def let_star(stx: Syntax, lang: Language) -> Syntax:
        m = compile_pattern("(_ (clause ...) body ...)").match(stx)
        if m is None:
            raise SyntaxExpansionError("let*: bad syntax", stx)
        clauses, body = m["clause"], m["body"]
        if not clauses:
            return expand_with(lang, "(let-values () body ...)", body=body)
        return expand_with(
            lang,
            "(let (first) (let* (rest ...) body ...))",
            first=clauses[0],
            rest=clauses[1:],
            body=body,
        )

    rule_macro(
        lang,
        "let*-values",
        [
            ("(_ () body ...)", "(let-values () body ...)"),
            (
                "(_ (clause rest ...) body ...)",
                "(let-values (clause) (let*-values (rest ...) body ...))",
            ),
        ],
    )


# --- conditionals -----------------------------------------------------------------


def _is_else(stx: Syntax) -> bool:
    return stx.is_identifier() and stx.e.name == "else"


def _install_conditionals(lang: Language) -> None:
    @fn_macro(lang, "cond")
    def cond(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not isinstance(items, tuple):
            raise SyntaxExpansionError("cond: bad syntax", stx)
        clauses = items[1:]
        if not clauses:
            return expand_with(lang, "(#%plain-app void)")
        clause = clauses[0]
        if not (isinstance(clause.e, tuple) and clause.e):
            raise SyntaxExpansionError("cond: bad clause", clause)
        test = clause.e[0]
        body = list(clause.e[1:])
        rest = list(clauses[1:])
        if _is_else(test):
            if rest:
                raise SyntaxExpansionError("cond: else clause must be last", stx)
            if not body:
                raise SyntaxExpansionError("cond: else clause needs a body", clause)
            return expand_with(lang, "(begin body ...)", body=body)
        if not body:
            return expand_with(
                lang,
                "(let ((t test)) (if t t (cond rest ...)))",
                test=test,
                rest=rest,
            )
        return expand_with(
            lang,
            "(if test (begin body ...) (cond rest ...))",
            test=test,
            body=body,
            rest=rest,
        )

    @fn_macro(lang, "case")
    def case(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (isinstance(items, tuple) and len(items) >= 2):
            raise SyntaxExpansionError("case: bad syntax", stx)
        subject = items[1]
        cond_clauses = []
        for clause in items[2:]:
            if not (isinstance(clause.e, tuple) and len(clause.e) >= 2):
                raise SyntaxExpansionError("case: bad clause", clause)
            head = clause.e[0]
            body = list(clause.e[1:])
            if _is_else(head):
                cond_clauses.append(
                    expand_with(lang, "(else body ...)", body=body)
                )
            else:
                cond_clauses.append(
                    expand_with(
                        lang,
                        "((#%plain-app memv t (quote data)) body ...)",
                        data=head,
                        body=body,
                    )
                )
        return expand_with(
            lang,
            "(let ((t subject)) (cond clause ...))",
            subject=subject,
            clause=cond_clauses,
        )

    rule_macro(lang, "when", [("(_ test body ...)", "(if test (begin body ...) (#%plain-app void))")])
    rule_macro(lang, "unless", [("(_ test body ...)", "(if test (#%plain-app void) (begin body ...))")])

    rule_macro(
        lang,
        "and",
        [
            ("(_)", "(quote #t)"),
            ("(_ e)", "e"),
            ("(_ e rest ...)", "(if e (and rest ...) (quote #f))"),
        ],
    )
    rule_macro(
        lang,
        "or",
        [
            ("(_)", "(quote #f)"),
            ("(_ e)", "e"),
            ("(_ e rest ...)", "(let ((t e)) (if t t (or rest ...)))"),
        ],
    )


# --- loops ---------------------------------------------------------------------


def _install_loops(lang: Language) -> None:
    @fn_macro(lang, "do")
    def do_loop(stx: Syntax, lang: Language) -> Syntax:
        m = compile_pattern("(_ (clause ...) (test result ...) body ...)").match(stx)
        if m is None:
            raise SyntaxExpansionError("do: bad syntax", stx)
        vars_: list[Syntax] = []
        inits: list[Syntax] = []
        steps: list[Syntax] = []
        for clause in m["clause"]:
            parts = clause.e if isinstance(clause.e, tuple) else ()
            if len(parts) == 2:
                var, init = parts
                step: Syntax = var
            elif len(parts) == 3:
                var, init, step = parts
            else:
                raise SyntaxExpansionError("do: bad clause", clause)
            vars_.append(var)
            inits.append(init)
            steps.append(step)
        result = list(m["result"]) or [expand_with(lang, "(#%plain-app void)")]
        body = list(m["body"])
        return expand_with(
            lang,
            "(let do-loop ((var init) ...)"
            " (if test (begin result ...)"
            " (begin (#%plain-app void) body ... (do-loop step ...))))",
            var=vars_,
            init=inits,
            step=steps,
            test=m["test"],
            result=result,
            body=body,
        )

    rule_macro(
        lang,
        "for",
        [
            (
                "(_ ([x:id seq]) body ...)",
                "(#%plain-app for-each (#%plain-lambda (x) body ...)"
                " (#%plain-app sequence->list seq))",
            )
        ],
    )

    rule_macro(
        lang,
        "for/list",
        [
            (
                "(_ ([x:id seq]) body ...)",
                "(#%plain-app map (#%plain-lambda (x) body ...)"
                " (#%plain-app sequence->list seq))",
            )
        ],
    )


# --- quasiquote -------------------------------------------------------------------


def _install_quasiquote(lang: Language) -> None:
    @fn_macro(lang, "quasiquote")
    def quasiquote(stx: Syntax, lang: Language) -> Syntax:
        if not (isinstance(stx.e, tuple) and len(stx.e) == 2):
            raise SyntaxExpansionError("quasiquote: bad syntax", stx)
        return _qq(lang, stx.e[1], 1)


def _head_is(stx: Syntax, name: str) -> bool:
    return (
        isinstance(stx.e, tuple)
        and len(stx.e) == 2
        and stx.e[0].is_identifier()
        and stx.e[0].e.name == name
    )


def _qq(lang: Language, tpl: Syntax, depth: int) -> Syntax:
    if _head_is(tpl, "unquote"):
        if depth == 1:
            return tpl.e[1]
        return expand_with(
            lang,
            "(#%plain-app list (quote unquote) inner)",
            inner=_qq(lang, tpl.e[1], depth - 1),
        )
    if _head_is(tpl, "quasiquote"):
        return expand_with(
            lang,
            "(#%plain-app list (quote quasiquote) inner)",
            inner=_qq(lang, tpl.e[1], depth + 1),
        )
    if isinstance(tpl.e, tuple):
        return _qq_list(lang, list(tpl.e), None, depth)
    if isinstance(tpl.e, ImproperList):
        return _qq_list(lang, list(tpl.e.items), tpl.e.tail, depth)
    return expand_with(lang, "(quote d)", d=tpl)


def _qq_list(lang: Language, items: list[Syntax], tail: Any, depth: int) -> Syntax:
    # `(a . ,b) reads as the proper list (a unquote b): recognize the
    # unquote-in-tail-position shape, as Racket's quasiquote does
    if (
        tail is None
        and len(items) >= 2
        and items[-2].is_identifier()
        and items[-2].e.name in ("unquote", "quasiquote")
    ):
        marker = Syntax((items[-2], items[-1]), items[-2].scopes, items[-2].srcloc)
        tail, items = marker, items[:-2]
    if tail is not None:
        result = _qq(lang, tail, depth)
    else:
        result = expand_with(lang, "(quote ())")
    for item in reversed(items):
        if _head_is(item, "unquote-splicing") and depth == 1:
            result = expand_with(
                lang, "(#%plain-app append spliced rest)", spliced=item.e[1], rest=result
            )
        else:
            result = expand_with(
                lang,
                "(#%plain-app cons head rest)",
                head=_qq(lang, item, depth),
                rest=result,
            )
    return result


# --- provide / require -------------------------------------------------------------


def _install_provide_require(lang: Language) -> None:
    @fn_macro(lang, "provide")
    def provide(stx: Syntax, lang: Language) -> Syntax:
        specs: list[Syntax] = []
        for spec in stx.e[1:]:
            if spec.is_identifier():
                specs.append(spec)
            elif (
                isinstance(spec.e, tuple)
                and len(spec.e) == 1
                and spec.e[0].is_identifier()
                and spec.e[0].e.name == "all-defined-out"
            ):
                specs.append(expand_with(lang, "(all-defined)"))
            elif (
                isinstance(spec.e, tuple)
                and spec.e
                and spec.e[0].is_identifier()
                and spec.e[0].e.name == "rename-out"
            ):
                for clause in spec.e[1:]:
                    if not (isinstance(clause.e, tuple) and len(clause.e) == 2):
                        raise SyntaxExpansionError("provide: bad rename-out", clause)
                    specs.append(
                        expand_with(
                            lang,
                            "(rename internal external)",
                            internal=clause.e[0],
                            external=clause.e[1],
                        )
                    )
            else:
                raise SyntaxExpansionError("provide: bad spec", spec)
        return expand_with(lang, "(#%provide spec ...)", spec=specs)

    rule_macro(lang, "require", [("(_ spec ...)", "(#%require spec ...)")])


# --- time and error handling ---------------------------------------------------


def install_misc_forms(lang: Language) -> None:
    rule_macro(
        lang,
        "time",
        [(
            "(_ e)",
            "(let ((start (#%plain-app current-inexact-milliseconds)))"
            " (let ((result e))"
            "  (begin"
            "   (#%plain-app printf \"cpu time: ~a ms~n\""
            "    (#%plain-app round (#%plain-app -"
            "     (#%plain-app current-inexact-milliseconds) start)))"
            "   result)))",
        )],
    )

    @fn_macro(lang, "with-handlers")
    def with_handlers(stx: Syntax, lang: Language) -> Syntax:
        # (with-handlers ([pred handler] ...) body ...)
        items = stx.e
        if not (
            isinstance(items, tuple)
            and len(items) >= 3
            and isinstance(items[1].e, tuple)
        ):
            raise SyntaxExpansionError("with-handlers: bad syntax", stx)
        preds: list[Syntax] = []
        handlers: list[Syntax] = []
        for clause in items[1].e:
            if not (isinstance(clause.e, tuple) and len(clause.e) == 2):
                raise SyntaxExpansionError("with-handlers: bad clause", clause)
            preds.append(clause.e[0])
            handlers.append(clause.e[1])
        return expand_with(
            lang,
            "(#%plain-app call-with-error-handlers"
            " (#%plain-app list pred ...)"
            " (#%plain-app list handler ...)"
            " (#%plain-lambda () body ...))",
            pred=preds,
            handler=handlers,
            body=list(items[2:]),
        )


def install_case_lambda(lang: Language) -> None:
    @fn_macro(lang, "case-lambda")
    def case_lambda(stx: Syntax, lang: Language) -> Syntax:
        # (case-lambda [(a ...) body ...] [(a ... . rest) body ...] ...)
        # -> a rest-arg lambda dispatching on the argument count
        clauses = []
        for clause in stx.e[1:]:
            if not (isinstance(clause.e, tuple) and len(clause.e) >= 2):
                raise SyntaxExpansionError("case-lambda: bad clause", clause)
            formals = clause.e[0]
            body = list(clause.e[1:])
            lam = expand_with(
                lang, "(#%plain-lambda formals body ...)", formals=formals, body=body
            )
            if isinstance(formals.e, tuple):
                test = expand_with(
                    lang,
                    "(#%plain-app = nargs (quote k))",
                    k=Syntax(len(formals.e)),
                )
            elif isinstance(formals.e, ImproperList):
                test = expand_with(
                    lang,
                    "(#%plain-app >= nargs (quote k))",
                    k=Syntax(len(formals.e.items)),
                )
            elif formals.is_identifier():
                test = expand_with(lang, "(quote #t)")
            else:
                raise SyntaxExpansionError("case-lambda: bad formals", formals)
            clauses.append(
                expand_with(lang, "(test (#%plain-app apply lam args))",
                            test=test, lam=lam)
            )
        return expand_with(
            lang,
            "(#%plain-lambda args"
            " (let ((nargs (#%plain-app length args)))"
            '  (cond clause ... (else (#%plain-app error "case-lambda: no matching clause")))))',
            clause=clauses,
        )
