"""``match``: a pattern-matching form implemented purely as a macro.

The paper (§3.2) uses ``match`` as its example of "a syntactic form
implemented in a library written in plain Racket, rather than a primitive
form as in ML or Haskell, but nonetheless indistinguishable from a language
primitive". This module is that library for our platform: ``match`` expands
to core ``if``/``let-values``/accessor code.

Supported patterns::

    _                 wildcard
    id                variable (binds)
    <literal>         numbers, strings, booleans, characters
    (quote datum)     equal? comparison against the datum
    (list p ...)      a proper list of exactly those elements
    (cons p q)        a pair
    (vector p ...)    a vector of exactly those elements
    (? pred p ...)    values satisfying predicate pred, then matching p ...
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Any, Callable

from repro.errors import SyntaxExpansionError
from repro.langs.base import expand_with, fn_macro
from repro.modules.registry import Language
from repro.runtime.values import Char, Symbol
from repro.syn.syntax import Syntax


def install_match(lang: Language) -> None:
    @fn_macro(lang, "match")
    def match(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (isinstance(items, tuple) and len(items) >= 3):
            raise SyntaxExpansionError("match: bad syntax", stx)
        subject = items[1]
        clauses = items[2:]
        compiler = _MatchCompiler(lang)
        return compiler.compile(subject, clauses, stx)


class _MatchCompiler:
    def __init__(self, lang: Language) -> None:
        self.lang = lang
        self._fresh = itertools.count()

    def fresh_id(self, base: str) -> Syntax:
        return Syntax(
            Symbol(f"{base}%{next(self._fresh)}"), self.lang.anchor.scopes
        )

    def compile(self, subject: Syntax, clauses: tuple[Syntax, ...], stx: Syntax) -> Syntax:
        subj = self.fresh_id("match-subject")
        body = self.compile_clauses(subj, list(clauses), stx)
        return expand_with(
            self.lang, "(let ((subj subject)) body)", subj=subj, subject=subject, body=body
        )

    def compile_clauses(
        self, subj: Syntax, clauses: list[Syntax], stx: Syntax
    ) -> Syntax:
        if not clauses:
            return expand_with(
                self.lang,
                '(#%plain-app error "match: no matching clause for" subj)',
                subj=subj,
            )
        clause = clauses[0]
        if not (isinstance(clause.e, tuple) and len(clause.e) >= 2):
            raise SyntaxExpansionError("match: bad clause", clause)
        pattern = clause.e[0]
        body = list(clause.e[1:])
        fail = self.fresh_id("match-fail")
        fail_call = expand_with(self.lang, "(#%plain-app fail)", fail=fail)
        success = expand_with(self.lang, "(begin body ...)", body=body)
        matched = self.compile_pattern(subj, pattern, success, fail_call)
        rest = self.compile_clauses(subj, clauses[1:], stx)
        return expand_with(
            self.lang,
            "(let ((fail (#%plain-lambda () rest))) matched)",
            fail=fail,
            rest=rest,
            matched=matched,
        )

    # -- single patterns ---------------------------------------------------

    def compile_pattern(
        self, subj: Syntax, pattern: Syntax, success: Syntax, fail: Syntax
    ) -> Syntax:
        e = pattern.e
        if isinstance(e, Symbol):
            if e.name == "_":
                return success
            return expand_with(
                self.lang, "(let ((var subj)) success)",
                var=pattern, subj=subj, success=success,
            )
        if isinstance(e, (int, float, Fraction, complex, bool, str, Char)):
            return expand_with(
                self.lang,
                "(if (#%plain-app equal? subj (quote lit)) success fail)",
                subj=subj, lit=pattern, success=success, fail=fail,
            )
        if isinstance(e, tuple) and e and e[0].is_identifier():
            head = e[0].e.name
            if head == "quote" and len(e) == 2:
                return expand_with(
                    self.lang,
                    "(if (#%plain-app equal? subj (quote d)) success fail)",
                    subj=subj, d=e[1], success=success, fail=fail,
                )
            if head == "list":
                return self._compile_list(subj, list(e[1:]), success, fail)
            if head == "cons" and len(e) == 3:
                return self._compile_cons(subj, e[1], e[2], success, fail)
            if head == "vector":
                return self._compile_vector(subj, list(e[1:]), success, fail)
            if head == "?" and len(e) >= 2:
                inner = success
                for sub in reversed(e[2:]):
                    inner = self.compile_pattern(subj, sub, inner, fail)
                return expand_with(
                    self.lang,
                    "(if (#%plain-app pred subj) inner fail)",
                    pred=e[1], subj=subj, inner=inner, fail=fail,
                )
            if head == "struct" and len(e) == 3 and e[1].is_identifier():
                return self._compile_struct(subj, e[1], e[2], success, fail)
        raise SyntaxExpansionError("match: unsupported pattern", pattern)

    def _compile_struct(
        self, subj: Syntax, name: Syntax, fields_stx: Syntax,
        success: Syntax, fail: Syntax,
    ) -> Syntax:
        """(struct name (p ...)): test with name?, bind fields positionally."""
        if not isinstance(fields_stx.e, tuple):
            raise SyntaxExpansionError("match: bad struct pattern", fields_stx)
        patterns = list(fields_stx.e)
        predicate = Syntax(Symbol(f"{name.e.name}?"), name.scopes, name.srcloc)
        field_ids = [self.fresh_id(f"match-sf{i}") for i in range(len(patterns))]
        inner = success
        for ident, pattern in reversed(list(zip(field_ids, patterns))):
            inner = self.compile_pattern(ident, pattern, inner, fail)
        binds = [
            expand_with(
                self.lang,
                "(x (#%plain-app struct-ref subj (quote i)))",
                x=ident, subj=subj, i=Syntax(i),
            )
            for i, ident in enumerate(field_ids)
        ]
        return expand_with(
            self.lang,
            "(if (#%plain-app predicate subj) (let (bind ...) inner) fail)",
            predicate=predicate, subj=subj, bind=binds, inner=inner, fail=fail,
        )

    def _compile_list(
        self, subj: Syntax, elements: list[Syntax], success: Syntax, fail: Syntax
    ) -> Syntax:
        if not elements:
            return expand_with(
                self.lang,
                "(if (#%plain-app null? subj) success fail)",
                subj=subj, success=success, fail=fail,
            )
        head_id = self.fresh_id("match-car")
        tail_id = self.fresh_id("match-cdr")
        rest = self._compile_list(tail_id, elements[1:], success, fail)
        inner = self.compile_pattern(head_id, elements[0], rest, fail)
        return expand_with(
            self.lang,
            "(if (#%plain-app pair? subj)"
            " (let ((h (#%plain-app unsafe-car subj)) (t (#%plain-app unsafe-cdr subj)))"
            " inner) fail)",
            subj=subj, h=head_id, t=tail_id, inner=inner, fail=fail,
        )

    def _compile_cons(
        self, subj: Syntax, car_pat: Syntax, cdr_pat: Syntax, success: Syntax, fail: Syntax
    ) -> Syntax:
        head_id = self.fresh_id("match-car")
        tail_id = self.fresh_id("match-cdr")
        inner = self.compile_pattern(
            head_id, car_pat, self.compile_pattern(tail_id, cdr_pat, success, fail), fail
        )
        return expand_with(
            self.lang,
            "(if (#%plain-app pair? subj)"
            " (let ((h (#%plain-app unsafe-car subj)) (t (#%plain-app unsafe-cdr subj)))"
            " inner) fail)",
            subj=subj, h=head_id, t=tail_id, inner=inner, fail=fail,
        )

    def _compile_vector(
        self, subj: Syntax, elements: list[Syntax], success: Syntax, fail: Syntax
    ) -> Syntax:
        element_ids = [self.fresh_id(f"match-vec{i}") for i in range(len(elements))]
        inner = success
        for ident, pattern in reversed(list(zip(element_ids, elements))):
            inner = self.compile_pattern(ident, pattern, inner, fail)
        binds = [
            expand_with(
                self.lang,
                "(x (#%plain-app unsafe-vector-ref subj (quote i)))",
                x=ident, subj=subj, i=Syntax(i),
            )
            for i, ident in enumerate(element_ids)
        ]
        return expand_with(
            self.lang,
            "(if (if (#%plain-app vector? subj)"
            "       (#%plain-app = (#%plain-app vector-length subj) (quote n))"
            "       (quote #f))"
            " (let (bind ...) inner) fail)",
            subj=subj, n=Syntax(len(elements)), bind=binds, inner=inner, fail=fail,
        )
