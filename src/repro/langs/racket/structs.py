"""The ``struct`` / ``define-struct`` forms, as macros.

    (struct point (x y))              ; point, point?, point-x, point-y
    (struct cell (value) #:mutable)   ; + set-cell-value!
    (struct leaf (v) #:transparent)   ; structural equal? and readable printing
    (define-struct point (x y))       ; constructor named make-point

Everything expands to a single ``define-values`` over ``make-struct-type``
— structs need no new core forms, like everything else in the language.
"""

from __future__ import annotations

from repro.errors import SyntaxExpansionError
from repro.langs.base import expand_with, fn_macro
from repro.modules.registry import Language
from repro.runtime.values import Keyword, Symbol
from repro.syn.syntax import Syntax


def install_structs(lang: Language) -> None:
    @fn_macro(lang, "struct")
    def struct(stx: Syntax, lang: Language) -> Syntax:
        return _expand_struct(stx, lang, constructor_prefix="")

    @fn_macro(lang, "define-struct")
    def define_struct(stx: Syntax, lang: Language) -> Syntax:
        return _expand_struct(stx, lang, constructor_prefix="make-")


def _expand_struct(stx: Syntax, lang: Language, constructor_prefix: str) -> Syntax:
    items = stx.e
    if not (
        isinstance(items, tuple)
        and len(items) >= 3
        and items[1].is_identifier()
        and isinstance(items[2].e, tuple)
    ):
        raise SyntaxExpansionError("struct: expected (struct name (field ...))", stx)
    name = items[1]
    fields = items[2].e
    for field in fields:
        if not field.is_identifier():
            raise SyntaxExpansionError("struct: field must be an identifier", field)
    mutable = False
    transparent = False
    for option in items[3:]:
        if isinstance(option.e, Keyword) and option.e.name == "mutable":
            mutable = True
        elif isinstance(option.e, Keyword) and option.e.name == "transparent":
            transparent = True
        else:
            raise SyntaxExpansionError("struct: unknown option", option)

    base = name.e.name

    def derived(text: str) -> Syntax:
        # derived names share the struct name's lexical context, so they are
        # bound exactly where the user's `(struct ...)` form is
        return Syntax(Symbol(text), name.scopes, name.srcloc)

    bound = [derived(constructor_prefix + base), derived(f"{base}?")]
    bound += [derived(f"{base}-{f.e.name}") for f in fields]
    if mutable:
        bound += [derived(f"set-{base}-{f.e.name}!") for f in fields]

    return expand_with(
        lang,
        "(define-values (bound ...)"
        " (#%plain-app make-struct-type (quote name) (quote n)"
        "  (quote mutableflag) (quote transparentflag)))",
        bound=bound,
        name=name,
        n=Syntax(len(fields)),
        mutableflag=Syntax(mutable),
        transparentflag=Syntax(transparent),
    )
