"""``#lang racket/infix``: user-defined infix and mixfix operators.

Reproduces the surface-language side of Ichikawa & Chiba's *User-Defined
Operators Including Name Binding for New Language Constructs* on top of the
dialect layer: the reader already records brace lists with a ``paren-shape``
syntax property (Racket's convention), and :class:`InfixDialect` rewrites
every brace-shaped list in the module into ordinary prefix applications by
precedence climbing — before any macro expansion runs.

Operator tables are per module. A module starts from the default table
(arithmetic, comparison, ``and``/``or``) and extends it with top-level
declarations::

    (define-op <name> <precedence> left|right [<target>])

``{a <name> b}`` then rewrites to ``(<target> a b)`` — or ``(<name> a b)``
when no target is given. Binding is hygienic by *reuse of real syntax*:
the function position of the rewritten application is the operator's own
occurrence (no target) or the target identifier exactly as written in the
declaration, scopes and srcloc intact — so the name resolves where the
user wrote it, may be a macro, and may itself bind names. ``:=`` uses
that: ``{x := e}`` (or ``{(f n) := e}``) rewrites to ``(define ...)``,
binding ``x`` with the use site's scopes. The ternary mixfix
``{c ? t : e}`` rewrites to ``(if c t e)``.

Because the rewrite runs on reader output, every diagnostic (D003 for bad
declarations, D004 for malformed brace expressions) points at the original
source, and quoted data (``'{1 + 2}``) is left alone. A brace list in any
*other* language stays a plain parenthesized form, exactly like Racket
without an infix reader.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.dialects import Dialect
from repro.errors import DialectError
from repro.modules.registry import Language, ModuleRegistry
from repro.runtime.values import Symbol
from repro.syn.syntax import ImproperList, Syntax, VectorDatum

_SHAPE = "paren-shape"

#: operator table entry: name -> (precedence, associativity, target syntax)
_OpEntry = tuple[int, str, Optional[Syntax]]

#: the default table every module starts from (higher binds tighter)
_DEFAULT_OPS: dict[str, _OpEntry] = {
    "or": (1, "left", None),
    "and": (2, "left", None),
    "<": (3, "left", None),
    "<=": (3, "left", None),
    ">": (3, "left", None),
    ">=": (3, "left", None),
    "=": (3, "left", None),
    "+": (4, "left", None),
    "-": (4, "left", None),
    "*": (5, "left", None),
    "/": (5, "left", None),
    "remainder": (5, "left", None),
    "modulo": (5, "left", None),
    "quotient": (5, "left", None),
}

#: heads whose bodies are data, not expressions — never rewritten
_OPAQUE_HEADS = frozenset({"quote", "quote-syntax", "quasiquote"})


def _is_id_named(stx: Any, name: str) -> bool:
    return isinstance(stx, Syntax) and stx.is_identifier() and stx.e.name == name


class InfixDialect(Dialect):
    """Rewrite brace-shaped lists into prefix applications, module-wide."""

    name = "infix"
    version = "1"

    def rewrite(self, forms, path, session):
        table = dict(_DEFAULT_OPS)
        body = []
        for form in forms:
            if self._is_define_op(form):
                with session.recover():
                    self._declare(form, table)
                continue
            body.append(form)
        out = []
        for form in body:
            with session.recover():
                form = self._rewrite(form, table, session)
            out.append(form)
        return out

    # -- operator declarations ---------------------------------------------

    @staticmethod
    def _is_define_op(form: Syntax) -> bool:
        return isinstance(form.e, tuple) and len(form.e) > 0 and _is_id_named(
            form.e[0], "define-op"
        )

    def _declare(self, form: Syntax, table: dict[str, _OpEntry]) -> None:
        e = form.e
        if not (4 <= len(e) <= 5):
            raise DialectError(
                "define-op: expected (define-op name precedence assoc [target])",
                form,
                code="D003",
            )
        name_stx, prec_stx, assoc_stx = e[1], e[2], e[3]
        if not name_stx.is_identifier():
            raise DialectError(
                "define-op: operator name must be an identifier",
                form, name_stx, code="D003",
            )
        if not isinstance(prec_stx.e, int) or isinstance(prec_stx.e, bool):
            raise DialectError(
                "define-op: precedence must be an integer",
                form, prec_stx, code="D003",
            )
        if not (assoc_stx.is_identifier() and assoc_stx.e.name in ("left", "right")):
            raise DialectError(
                "define-op: associativity must be `left` or `right`",
                form, assoc_stx, code="D003",
            )
        target = None
        if len(e) == 5:
            if not e[4].is_identifier():
                raise DialectError(
                    "define-op: target must be an identifier",
                    form, e[4], code="D003",
                )
            target = e[4]
        table[name_stx.e.name] = (prec_stx.e, assoc_stx.e.name, target)

    # -- recursive rewrite --------------------------------------------------

    def _rewrite(self, stx: Syntax, table: dict[str, _OpEntry], session) -> Syntax:
        e = stx.e
        if isinstance(e, tuple):
            if (
                e
                and e[0].is_identifier()
                and e[0].e.name in _OPAQUE_HEADS
            ):
                return stx
            children = tuple(self._rewrite(c, table, session) for c in e)
            out = Syntax(children, stx.scopes, stx.srcloc, stx.props)
            if stx.property_get(_SHAPE) == "{":
                out = self._parse_infix(out, table)
            return out
        if isinstance(e, ImproperList):
            items = tuple(self._rewrite(c, table, session) for c in e.items)
            tail = self._rewrite(e.tail, table, session)
            return Syntax(ImproperList(items, tail), stx.scopes, stx.srcloc, stx.props)
        if isinstance(e, VectorDatum):
            items = tuple(self._rewrite(c, table, session) for c in e.items)
            return Syntax(VectorDatum(items), stx.scopes, stx.srcloc, stx.props)
        return stx

    # -- precedence climbing -------------------------------------------------

    def _entry(self, item: Any, table: dict[str, _OpEntry]) -> Optional[_OpEntry]:
        if isinstance(item, Syntax) and item.is_identifier():
            return table.get(item.e.name)
        return None

    def _parse_infix(self, stx: Syntax, table: dict[str, _OpEntry]) -> Syntax:
        items = list(stx.e)
        if not items:
            raise DialectError("infix: empty brace expression", stx, code="D004")
        return self._parse_items(items, stx, table)

    def _parse_items(
        self, items: list[Syntax], whole: Syntax, table: dict[str, _OpEntry]
    ) -> Syntax:
        # mixfix define: {lhs := rhs ...}
        if len(items) >= 3 and _is_id_named(items[1], ":="):
            lhs = items[0]
            if not (lhs.is_identifier() or isinstance(lhs.e, tuple)):
                raise DialectError(
                    "infix: `:=` needs an identifier or (f arg ...) header",
                    whole, lhs, code="D004",
                )
            rhs = self._parse_items(items[2:], whole, table)
            define_id = Syntax(Symbol("define"), whole.scopes, items[1].srcloc)
            return Syntax((define_id, lhs, rhs), whole.scopes, whole.srcloc)
        # mixfix ternary: {c ? t : e}
        for i, item in enumerate(items):
            if _is_id_named(item, "?"):
                j = self._matching_colon(items, i)
                if j is None or i == 0 or j == i + 1 or j == len(items) - 1:
                    raise DialectError(
                        "infix: malformed `? :` expression",
                        whole, item, code="D004",
                    )
                cond = self._parse_items(items[:i], whole, table)
                then = self._parse_items(items[i + 1:j], whole, table)
                alt = self._parse_items(items[j + 1:], whole, table)
                if_id = Syntax(Symbol("if"), whole.scopes, item.srcloc)
                return Syntax((if_id, cond, then, alt), whole.scopes, whole.srcloc)
        expr, pos = self._parse_binary(items, 0, 0, whole, table)
        if pos != len(items):
            raise DialectError(
                "infix: expected an operator", whole, items[pos], code="D004"
            )
        return expr

    @staticmethod
    def _matching_colon(items: list[Syntax], qpos: int) -> Optional[int]:
        depth = 0
        for j in range(qpos + 1, len(items)):
            if _is_id_named(items[j], "?"):
                depth += 1
            elif _is_id_named(items[j], ":"):
                if depth == 0:
                    return j
                depth -= 1
        return None

    def _operand(
        self, items: list[Syntax], pos: int, whole: Syntax,
        table: dict[str, _OpEntry],
    ) -> Syntax:
        if pos >= len(items):
            raise DialectError(
                "infix: expression ends where an operand was expected",
                whole, code="D004",
            )
        item = items[pos]
        if self._entry(item, table) is not None:
            raise DialectError(
                f"infix: operator `{item.e.name}` used where an operand was "
                "expected", whole, item, code="D004",
            )
        return item

    def _parse_binary(
        self,
        items: list[Syntax],
        pos: int,
        min_prec: int,
        whole: Syntax,
        table: dict[str, _OpEntry],
    ) -> tuple[Syntax, int]:
        lhs = self._operand(items, pos, whole, table)
        pos += 1
        while pos < len(items):
            entry = self._entry(items[pos], table)
            if entry is None:
                break
            prec, assoc, target = entry
            if prec < min_prec:
                break
            op = items[pos]
            next_min = prec + 1 if assoc == "left" else prec
            rhs, pos = self._parse_binary(items, pos + 1, next_min, whole, table)
            # hygiene by reuse: the function position is real user syntax —
            # the operator occurrence itself, or the declaration's target —
            # so it resolves (and binds) with the scopes the user wrote
            fn = target if target is not None else op
            try:
                loc = lhs.srcloc.merge(rhs.srcloc)
            except Exception:
                loc = op.srcloc
            lhs = Syntax((fn, lhs, rhs), whole.scopes, loc)
        return lhs, pos


def make_infix_language(registry: ModuleRegistry) -> Language:
    racket = registry.language("racket")
    lang = Language("racket/infix", dialects=("infix",))
    lang.inherit(racket)
    registry.register_language(lang)
    registry.register_dialect(InfixDialect())
    return lang
