"""``typed``: the full typed sister language used by the benchmarks.

Everything ``simple-type`` does (annotation forms, fig. 2 driver, §5 type
persistence, §6 safe interop) plus the §4.4 scaling: a two-pass checker with
mutual recursion, ``(: name type)`` declarations, a richer type grammar
(unions, containers, overloads), and the §7.2 optimizer with float, fixnum,
pair, vector, and float-complex specialization.
"""

from __future__ import annotations

from typing import Any

from repro.expander.env import ExpandContext
from repro.langs.racket import make_racket_language
from repro.langs.simple_type.forms import install_forms as install_annotation_forms
from repro.langs.simple_type.module_begin import install_module_begin
from repro.langs.typed.base_env import install_base_type_env
from repro.langs.typed.checker import FullChecker
from repro.langs.typed.forms import install_typed_forms
from repro.langs.typed.structs import install_typed_structs
from repro.langs.typed.optimizer import ALL_RULES, FullOptimizer
from repro.modules.registry import Language, ModuleRegistry

#: Mutable optimizer configuration, consulted at each compilation of a
#: ``typed`` module. The benchmark harness flips these for the ablations
#: (`typed/no-opt` configuration, per-rule-group ablation).
OPTIMIZER_CONFIG: dict[str, Any] = {"optimize": True, "rules": set(ALL_RULES)}


def _optimizer_factory(ctx: ExpandContext) -> FullOptimizer:
    return FullOptimizer(ctx, frozenset(OPTIMIZER_CONFIG["rules"]))


def make_typed_language(registry: ModuleRegistry) -> Language:
    racket = registry.languages.get("racket")
    if racket is None:
        racket = make_racket_language(registry)
    lang = Language("typed")
    lang.inherit(racket, exclude=("#%module-begin", "define", "struct", "define-struct"))
    install_annotation_forms(lang)
    install_typed_forms(lang)
    install_typed_structs(lang)
    install_module_begin(
        lang,
        checker_factory=FullChecker,
        optimizer_factory=_optimizer_factory,
        base_env_installer=install_base_type_env,
        config=OPTIMIZER_CONFIG,
    )
    registry.register_language(lang)
    registry.languages["typed/racket"] = lang  # the paper's `#lang typed/racket`
    return lang
