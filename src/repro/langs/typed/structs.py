"""Typed structs: ``(struct point ([x : Float] [y : Float]))``.

Extends the ``typed`` language with nominal struct types. The macro expands
to the same ``make-struct-type`` core the untyped ``struct`` uses, and then
registers — through ordinary ``(begin-for-syntax (add-type! ...))``
declarations — the types of the generated constructor, predicate, and
accessors. Because those declarations ride the §5 machinery, typed structs
work across separately compiled modules, and the checker's knowledge of the
struct type flows to the optimizer (accessor applications on proven struct
values could drop their tag checks).
"""

from __future__ import annotations

from repro.errors import SyntaxExpansionError
from repro.expander.env import current_context
from repro.langs.base import expand_with, fn_macro
from repro.langs.simple_type.checker import TYPE_ANNOTATION_KEY
from repro.langs.simple_type.forms import parse_annotated_formal
from repro.langs.typed_common import types as ty
from repro.modules.registry import Language
from repro.runtime.values import Symbol
from repro.syn.syntax import Syntax, datum_to_syntax


def install_typed_structs(lang: Language) -> None:
    @fn_macro(lang, "struct")
    def typed_struct(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (
            isinstance(items, tuple)
            and len(items) >= 3
            and items[1].is_identifier()
            and isinstance(items[2].e, tuple)
        ):
            raise SyntaxExpansionError(
                "struct: expected (struct name ([field : Type] ...))", stx
            )
        name = items[1]
        formals = [parse_annotated_formal(f) for f in items[2].e]
        field_names = [f.e.name for f in formals]
        field_types = [
            ty.parse_type(f.property_get(TYPE_ANNOTATION_KEY)) for f in formals
        ]
        for option in items[3:]:
            raise SyntaxExpansionError(
                "struct: options are not supported in the typed language", option
            )

        ctx = current_context()
        base = name.e.name
        struct_type = ty.StructType(
            f"{ctx.module_path}:{base}", field_names, field_types
        )
        # register the type name for annotations in this compilation, and
        # (below, via a begin-for-syntax declaration) in client compilations
        ctx.store(ty.NAMED_TYPES_STORE, dict)[base] = struct_type

        def derived(text: str) -> Syntax:
            return Syntax(Symbol(text), name.scopes, name.srcloc)

        ctor = derived(base)
        predicate = derived(f"{base}?")
        accessors = [derived(f"{base}-{field}") for field in field_names]

        typed_bindings: list[tuple[Syntax, ty.Type]] = [
            (ctor, ty.FunType(field_types, struct_type)),
            (predicate, ty.FunType([ty.ANY], ty.BOOLEAN)),
        ]
        typed_bindings += [
            (accessor, ty.FunType([struct_type], field_type))
            for accessor, field_type in zip(accessors, field_types)
        ]
        decls = [
            expand_with(
                lang,
                "(begin-for-syntax"
                " (#%plain-app declare-named-type! (quote base) (quote ser)))",
                base=Syntax(Symbol(base)),
                ser=datum_to_syntax(None, ty.serialize(struct_type)),
            )
        ]
        decls += [
            expand_with(
                lang,
                "(begin-for-syntax"
                " (#%plain-app add-type! (quote-syntax n) (quote ser)))",
                n=ident,
                ser=datum_to_syntax(None, ty.serialize(binding_type)),
            )
            for ident, binding_type in typed_bindings
        ]
        definition = expand_with(
            lang,
            "(define-values (ctor predicate accessor ...)"
            " (#%plain-app make-struct-type (quote name) (quote n)"
            "  (quote #f) (quote #f)))",
            ctor=ctor,
            predicate=predicate,
            accessor=accessors,
            name=name,
            n=Syntax(len(field_names)),
        ).property_put("typed-ignore", True)
        return expand_with(
            lang, "(begin definition decl ...)", definition=definition, decl=decls
        )
