"""The initial type environment of the ``typed`` language.

Two mechanisms cover the kernel:

- ``BASE_TYPES`` — ordinary (possibly overloaded) function types;
- ``DELTA_RULES`` — custom typing rules for operations that are variadic or
  polymorphic (``+`` over the numeric tower, ``cons``/``car``/``map`` over
  element types, ...). Full Typed Racket expresses these with variable-arity
  polymorphism (Strickland et al. 2009); monomorphic delta rules are our
  scoped-down equivalent (documented in DESIGN.md).

A delta rule receives the checker, the application syntax, the argument
syntaxes, and their already-computed types, and returns the result type.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

from repro.errors import TypeCheckError
from repro.expander.env import ExpandContext
from repro.langs.typed_common import env as tenv
from repro.langs.typed_common import types as ty
from repro.modules.registry import KERNEL_PATH
from repro.syn.syntax import Syntax

_I, _F, _R, _N, _FC = ty.INTEGER, ty.FLOAT, ty.REAL, ty.NUMBER, ty.FLOAT_COMPLEX
_B, _A, _V, _S = ty.BOOLEAN, ty.ANY, ty.VOID, ty.STRING

NOTHING = ty.NOTHING  # bottom, for `error`


def _numeric_result(argtys: Sequence[ty.Type], where: Syntax, who: str) -> ty.Type:
    for t in argtys:
        if not ty.subtype(t, _N):
            raise TypeCheckError(f"{who}: expected a number", where)
    for candidate in (_I, _F, _FC, _R):
        if all(ty.subtype(t, candidate) for t in argtys):
            return candidate
    return _N


DeltaRule = Callable[[Any, Syntax, Sequence[Syntax], Sequence[ty.Type]], ty.Type]
DELTA_RULES: dict[str, DeltaRule] = {}


def delta(name: str) -> Callable[[DeltaRule], DeltaRule]:
    def register(rule: DeltaRule) -> DeltaRule:
        DELTA_RULES[name] = rule
        return rule

    return register


# --- numeric tower -----------------------------------------------------------


def _arith_rule(who: str) -> DeltaRule:
    def rule(checker: Any, t: Syntax, args: Sequence[Syntax],
             argtys: Sequence[ty.Type]) -> ty.Type:
        if not argtys:
            return _I
        return _numeric_result(argtys, t, who)

    return rule


for _name in ("+", "-", "*"):
    DELTA_RULES[_name] = _arith_rule(_name)


@delta("/")
def _div_rule(checker, t, args, argtys):
    result = _numeric_result(argtys, t, "/")
    if result is _I:
        return _R  # exact division may produce a rational
    return result


def _cmp_rule(who: str, numeric: ty.Type) -> DeltaRule:
    def rule(checker, t, args, argtys):
        for a in argtys:
            if not ty.subtype(a, numeric):
                raise TypeCheckError(f"{who}: expected {numeric}", t)
        return _B

    return rule


for _name in ("<", "<=", ">", ">="):
    DELTA_RULES[_name] = _cmp_rule(_name, _R)
DELTA_RULES["="] = _cmp_rule("=", _N)


def _minmax_rule(who: str) -> DeltaRule:
    def rule(checker, t, args, argtys):
        result = _numeric_result(argtys, t, who)
        if result is _FC or result is _N:
            raise TypeCheckError(f"{who}: expected real numbers", t)
        return result

    return rule


DELTA_RULES["min"] = _minmax_rule("min")
DELTA_RULES["max"] = _minmax_rule("max")


# --- pairs and lists ----------------------------------------------------------


def _listof_view(t: ty.Type, where: Syntax, who: str) -> ty.ListofType:
    """Coerce any list-shaped type to (Listof elem)."""
    if isinstance(t, ty.ListofType):
        return t
    if isinstance(t, ty.BaseType) and t.name == "Null":
        return ty.ListofType(NOTHING)
    if isinstance(t, ty.PairType):
        rest = _listof_view(t.cdr, where, who)
        return ty.ListofType(ty.join(t.car, rest.element))
    raise TypeCheckError(f"{who}: expected a list, got {t}", where)


@delta("cons")
def _cons_rule(checker, t, args, argtys):
    if len(argtys) != 2:
        raise TypeCheckError("cons: expects 2 arguments", t)
    return ty.PairType(argtys[0], argtys[1])


def _car_rule(who: str) -> DeltaRule:
    def rule(checker, t, args, argtys):
        (arg,) = argtys
        if isinstance(arg, ty.PairType):
            return arg.car
        # permitted on (Listof a) for pragmatics (full TR requires occurrence
        # typing to prove non-emptiness); the runtime check remains in place
        # because the optimizer only rewrites Pairof accesses.
        return _listof_view(arg, t, who).element

    return rule


def _cdr_rule(who: str) -> DeltaRule:
    def rule(checker, t, args, argtys):
        (arg,) = argtys
        if isinstance(arg, ty.PairType):
            return arg.cdr
        return _listof_view(arg, t, who)

    return rule


DELTA_RULES["car"] = _car_rule("car")
DELTA_RULES["first"] = _car_rule("first")
DELTA_RULES["cdr"] = _cdr_rule("cdr")
DELTA_RULES["rest"] = _cdr_rule("rest")


@delta("list")
def _list_rule(checker, t, args, argtys):
    result: ty.Type = ty.NULL_TYPE
    for a in reversed(argtys):
        result = ty.PairType(a, result)
    return result


@delta("append")
def _append_rule(checker, t, args, argtys):
    views = [_listof_view(a, t, "append") for a in argtys]
    if not views:
        return ty.NULL_TYPE
    elem: ty.Type = NOTHING
    for view in views:
        elem = ty.join(elem, view.element) if elem is not NOTHING else view.element
    return ty.ListofType(elem)


@delta("reverse")
def _reverse_rule(checker, t, args, argtys):
    return _listof_view(argtys[0], t, "reverse")


@delta("length")
def _length_rule(checker, t, args, argtys):
    _listof_view(argtys[0], t, "length")
    return _I


@delta("list-ref")
def _list_ref_rule(checker, t, args, argtys):
    if not ty.subtype(argtys[1], _I):
        raise TypeCheckError("list-ref: index must be an Integer", t)
    return _listof_view(argtys[0], t, "list-ref").element


@delta("list-tail")
def _list_tail_rule(checker, t, args, argtys):
    return _listof_view(argtys[0], t, "list-tail")


def _fun_view(t: ty.Type, arity: int, where: Syntax, who: str) -> ty.FunType:
    if isinstance(t, ty.FunType) and len(t.params) == arity:
        return t
    if isinstance(t, ty.CaseFunType):
        for case in t.cases:
            if len(case.params) == arity:
                return case
    raise TypeCheckError(f"{who}: expected a {arity}-argument function, got {t}", where)


@delta("map")
def _map_rule(checker, t, args, argtys):
    if len(argtys) != 2:
        raise TypeCheckError("map: only single-list map is typed", t)
    fn = _fun_view(argtys[0], 1, t, "map")
    elem = _listof_view(argtys[1], t, "map").element
    if elem is not NOTHING and not ty.subtype(elem, fn.params[0]):
        raise TypeCheckError("map: function domain does not match list", t)
    return ty.ListofType(fn.result)


@delta("for-each")
def _for_each_rule(checker, t, args, argtys):
    if len(argtys) != 2:
        raise TypeCheckError("for-each: only single-list for-each is typed", t)
    fn = _fun_view(argtys[0], 1, t, "for-each")
    elem = _listof_view(argtys[1], t, "for-each").element
    if elem is not NOTHING and not ty.subtype(elem, fn.params[0]):
        raise TypeCheckError("for-each: function domain does not match list", t)
    return _V


@delta("filter")
def _filter_rule(checker, t, args, argtys):
    fn = _fun_view(argtys[0], 1, t, "filter")
    view = _listof_view(argtys[1], t, "filter")
    return view


@delta("foldl")
def _foldl_rule(checker, t, args, argtys):
    if len(argtys) != 3:
        raise TypeCheckError("foldl: only single-list foldl is typed", t)
    fn = _fun_view(argtys[0], 2, t, "foldl")
    return fn.result


DELTA_RULES["foldr"] = DELTA_RULES["foldl"]


@delta("sort")
def _sort_rule(checker, t, args, argtys):
    return _listof_view(argtys[0], t, "sort")


@delta("build-list")
def _build_list_rule(checker, t, args, argtys):
    fn = _fun_view(argtys[1], 1, t, "build-list")
    return ty.ListofType(fn.result)


@delta("member")
def _member_rule(checker, t, args, argtys):
    view = _listof_view(argtys[1], t, "member")
    return ty.make_union([_B, view])


DELTA_RULES["memq"] = DELTA_RULES["member"]
DELTA_RULES["memv"] = DELTA_RULES["member"]


# --- vectors ---------------------------------------------------------------------


def _vector_view(t: ty.Type, where: Syntax, who: str) -> ty.VectorofType:
    if isinstance(t, ty.VectorofType):
        return t
    raise TypeCheckError(f"{who}: expected a vector, got {t}", where)


@delta("vector")
def _vector_rule(checker, t, args, argtys):
    elem: ty.Type = NOTHING
    for a in argtys:
        elem = a if elem is NOTHING else ty.join(elem, a)
    return ty.VectorofType(elem if elem is not NOTHING else _A)


@delta("make-vector")
def _make_vector_rule(checker, t, args, argtys):
    if not ty.subtype(argtys[0], _I):
        raise TypeCheckError("make-vector: size must be an Integer", t)
    return ty.VectorofType(argtys[1] if len(argtys) > 1 else _I)


@delta("vector-ref")
def _vector_ref_rule(checker, t, args, argtys):
    view = _vector_view(argtys[0], t, "vector-ref")
    if not ty.subtype(argtys[1], _I):
        raise TypeCheckError("vector-ref: index must be an Integer", t)
    return view.element


@delta("vector-set!")
def _vector_set_rule(checker, t, args, argtys):
    view = _vector_view(argtys[0], t, "vector-set!")
    if not ty.subtype(argtys[1], _I):
        raise TypeCheckError("vector-set!: index must be an Integer", t)
    if not ty.subtype(argtys[2], view.element):
        raise TypeCheckError(
            f"vector-set!: cannot store {argtys[2]} in {view}", t
        )
    return _V


@delta("vector-length")
def _vector_length_rule(checker, t, args, argtys):
    _vector_view(argtys[0], t, "vector-length")
    return _I


@delta("build-vector")
def _build_vector_rule(checker, t, args, argtys):
    fn = _fun_view(argtys[1], 1, t, "build-vector")
    return ty.VectorofType(fn.result)


@delta("vector->list")
def _vector_to_list_rule(checker, t, args, argtys):
    return ty.ListofType(_vector_view(argtys[0], t, "vector->list").element)


@delta("list->vector")
def _list_to_vector_rule(checker, t, args, argtys):
    return ty.VectorofType(_listof_view(argtys[0], t, "list->vector").element)


@delta("vector-fill!")
def _vector_fill_rule(checker, t, args, argtys):
    _vector_view(argtys[0], t, "vector-fill!")
    return _V


@delta("vector-copy")
def _vector_copy_rule(checker, t, args, argtys):
    return _vector_view(argtys[0], t, "vector-copy")


# --- strings and output -------------------------------------------------------


@delta("string-append")
def _string_append_rule(checker, t, args, argtys):
    for a in argtys:
        if not ty.subtype(a, _S):
            raise TypeCheckError("string-append: expected strings", t)
    return _S


@delta("printf")
def _printf_rule(checker, t, args, argtys):
    if not argtys or not ty.subtype(argtys[0], _S):
        raise TypeCheckError("printf: first argument must be a format string", t)
    return _V


@delta("format")
def _format_rule(checker, t, args, argtys):
    if not argtys or not ty.subtype(argtys[0], _S):
        raise TypeCheckError("format: first argument must be a format string", t)
    return _S


@delta("error")
def _error_rule(checker, t, args, argtys):
    return NOTHING


@delta("string")
def _string_rule(checker, t, args, argtys):
    return _S


@delta("list*")
def _list_star_rule(checker, t, args, argtys):
    result = argtys[-1]
    for a in reversed(argtys[:-1]):
        result = ty.PairType(a, result)
    return result


# --- predicates and equality -----------------------------------------------------

_PREDICATES = (
    "null?", "pair?", "list?", "number?", "integer?", "exact-integer?",
    "flonum?", "real?", "boolean?", "string?", "char?", "symbol?",
    "procedure?", "vector?", "void?", "zero?", "positive?", "negative?",
    "even?", "odd?", "nan?", "infinite?", "exact?", "inexact?",
    "float-complex?", "keyword?", "eq?", "eqv?", "equal?", "not",
    "string=?", "string<?", "string>?", "char=?", "char<?",
)


def _predicate_rule(checker, t, args, argtys):
    return _B


for _name in _PREDICATES:
    DELTA_RULES[_name] = _predicate_rule


# --- fixed-type table --------------------------------------------------------------


def _case(*fns: ty.FunType) -> ty.CaseFunType:
    return ty.CaseFunType(list(fns))


def _arith_value_type() -> ty.CaseFunType:
    """The type arithmetic gets when referenced as a value (e.g. passed to
    foldl); at application heads the delta rules refine this."""
    return _case(
        ty.FunType([_I, _I], _I),
        ty.FunType([_F, _F], _F),
        ty.FunType([_FC, _FC], _FC),
        ty.FunType([_R, _R], _R),
        ty.FunType([_N, _N], _N),
    )


BASE_TYPES: dict[str, ty.Type] = {
    "+": _arith_value_type(),
    "-": _arith_value_type(),
    "*": _arith_value_type(),
    "/": _case(
        ty.FunType([_F, _F], _F),
        ty.FunType([_FC, _FC], _FC),
        ty.FunType([_R, _R], _R),
        ty.FunType([_N, _N], _N),
    ),
    "<": ty.FunType([_R, _R], _B),
    "<=": ty.FunType([_R, _R], _B),
    ">": ty.FunType([_R, _R], _B),
    ">=": ty.FunType([_R, _R], _B),
    "=": ty.FunType([_N, _N], _B),
    "min": _case(ty.FunType([_I, _I], _I), ty.FunType([_F, _F], _F),
                 ty.FunType([_R, _R], _R)),
    "max": _case(ty.FunType([_I, _I], _I), ty.FunType([_F, _F], _F),
                 ty.FunType([_R, _R], _R)),
    "zero?": ty.FunType([_N], _B),
    "positive?": ty.FunType([_R], _B),
    "negative?": ty.FunType([_R], _B),
    "even?": ty.FunType([_I], _B),
    "odd?": ty.FunType([_I], _B),
    "not": ty.FunType([_A], _B),
    "null?": ty.FunType([_A], _B),
    "pair?": ty.FunType([_A], _B),
    "number?": ty.FunType([_A], _B),
    "string?": ty.FunType([_A], _B),
    "symbol?": ty.FunType([_A], _B),
    "boolean?": ty.FunType([_A], _B),
    "procedure?": ty.FunType([_A], _B),
    "flonum?": ty.FunType([_A], _B),
    "exact-integer?": ty.FunType([_A], _B),
    "eq?": ty.FunType([_A, _A], _B),
    "eqv?": ty.FunType([_A, _A], _B),
    "equal?": ty.FunType([_A, _A], _B),
    "add1": _case(ty.FunType([_I], _I), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "sub1": _case(ty.FunType([_I], _I), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "abs": _case(ty.FunType([_I], _I), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "quotient": ty.FunType([_I, _I], _I),
    "remainder": ty.FunType([_I, _I], _I),
    "modulo": ty.FunType([_I, _I], _I),
    "gcd": ty.FunType([_I, _I], _I),
    "sqrt": _case(
        ty.FunType([_F], _F),
        ty.FunType([_FC], _FC),
        ty.FunType([_I], _N),
        ty.FunType([_R], _N),
    ),
    "expt": _case(ty.FunType([_F, _F], _F), ty.FunType([_R, _R], _R),
                  ty.FunType([_N, _N], _N)),
    "exp": _case(ty.FunType([_F], _F), ty.FunType([_R], _F), ty.FunType([_FC], _FC)),
    "log": _case(ty.FunType([_F], _F), ty.FunType([_R], _N), ty.FunType([_FC], _FC)),
    "sin": _case(ty.FunType([_F], _F), ty.FunType([_R], _F)),
    "cos": _case(ty.FunType([_F], _F), ty.FunType([_R], _F)),
    "tan": _case(ty.FunType([_F], _F), ty.FunType([_R], _F)),
    "asin": _case(ty.FunType([_F], _F), ty.FunType([_R], _F)),
    "acos": _case(ty.FunType([_F], _F), ty.FunType([_R], _F)),
    "atan": _case(ty.FunType([_F], _F), ty.FunType([_R], _F),
                  ty.FunType([_F, _F], _F), ty.FunType([_R, _R], _F)),
    "floor": _case(ty.FunType([_I], _I), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "ceiling": _case(ty.FunType([_I], _I), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "truncate": _case(ty.FunType([_I], _I), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "round": _case(ty.FunType([_I], _I), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "magnitude": _case(ty.FunType([_FC], _F), ty.FunType([_F], _F), ty.FunType([_R], _R)),
    "real-part": _case(ty.FunType([_FC], _F), ty.FunType([_R], _R)),
    "imag-part": _case(ty.FunType([_FC], _F), ty.FunType([_R], _R)),
    "make-rectangular": _case(ty.FunType([_F, _F], _FC), ty.FunType([_R, _R], _N)),
    "exact->inexact": _case(
        ty.FunType([_I], _F), ty.FunType([_F], _F), ty.FunType([_R], _F),
        ty.FunType([_FC], _FC),
    ),
    "inexact->exact": _case(ty.FunType([_F], _R), ty.FunType([_R], _R)),
    "exact": _case(ty.FunType([_F], _R), ty.FunType([_R], _R)),
    "number->string": ty.FunType([_N], _S),
    "string->number": ty.FunType([_S], _N),
    "numerator": ty.FunType([_R], _I),
    "denominator": ty.FunType([_R], _I),
    "random": _case(ty.FunType([_I], _I), ty.FunType([], _F)),
    "random-seed": ty.FunType([_I], _V),
    "void": ty.FunType([], _V),
    "display": ty.FunType([_A], _V),
    "displayln": ty.FunType([_A], _V),
    "write": ty.FunType([_A], _V),
    "newline": ty.FunType([], _V),
    "current-seconds": ty.FunType([], _I),
    "current-inexact-milliseconds": ty.FunType([], _F),
    "string-length": ty.FunType([_S], _I),
    "substring": _case(ty.FunType([_S, _I], _S), ty.FunType([_S, _I, _I], _S)),
    "string-ref": ty.FunType([_S, _I], ty.CHAR),
    "string-upcase": ty.FunType([_S], _S),
    "string-downcase": ty.FunType([_S], _S),
    "symbol->string": ty.FunType([ty.SYMBOL], _S),
    "string->symbol": ty.FunType([_S], ty.SYMBOL),
    "char->integer": ty.FunType([ty.CHAR], _I),
    "integer->char": ty.FunType([_I], ty.CHAR),
    "char-upcase": ty.FunType([ty.CHAR], ty.CHAR),
    "char-downcase": ty.FunType([ty.CHAR], ty.CHAR),
    "identity": ty.FunType([_A], _A),
}


def install_base_type_env(ctx: ExpandContext) -> None:
    table = tenv.type_table(ctx)
    for name, t in BASE_TYPES.items():
        table[("module", KERNEL_PATH, name, 0)] = t
