"""Extra surface forms of the ``typed`` language: ``(: name type)``
declarations (the §3.2 example style) and ``ann`` ascriptions."""

from __future__ import annotations

from repro.errors import SyntaxExpansionError
from repro.expander.env import current_context
from repro.langs.base import expand_with, fn_macro
from repro.langs.typed.checker import ASCRIPTION_KEY, declared_types
from repro.langs.typed_common.types import parse_type
from repro.modules.registry import Language
from repro.syn.syntax import Syntax


def install_typed_forms(lang: Language) -> None:
    @fn_macro(lang, ":")
    def colon_declaration(stx: Syntax, lang: Language) -> Syntax:
        # (: name type)  or  (: name : type) — both appear in the paper
        items = stx.e
        if not (isinstance(items, tuple) and len(items) in (3, 4)):
            raise SyntaxExpansionError(":: expected (: name type)", stx)
        name = items[1]
        if not name.is_identifier():
            raise SyntaxExpansionError(":: expected an identifier", name)
        if len(items) == 4:
            sep = items[2]
            if not (sep.is_identifier() and sep.e.name == ":"):
                raise SyntaxExpansionError(":: bad syntax", stx)
            type_stx = items[3]
        else:
            type_stx = items[2]
        # record the declaration in this compilation's store, for the
        # two-pass checker to find (by name: declarations precede bindings)
        declared_types(current_context())[name.e.name] = parse_type(type_stx)
        return expand_with(lang, "(#%plain-app void)")

    @fn_macro(lang, "ann")
    def ann(stx: Syntax, lang: Language) -> Syntax:
        # (ann expr type): check expr against type, which becomes its type
        items = stx.e
        if not (isinstance(items, tuple) and len(items) == 3):
            raise SyntaxExpansionError("ann: expected (ann expr type)", stx)
        wrapped = expand_with(lang, "(#%expression e)", e=items[1])
        return wrapped.property_put(ASCRIPTION_KEY, items[2])
