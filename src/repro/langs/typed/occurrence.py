"""Occurrence typing (lite) — "Logical types for untyped languages"
(Tobin-Hochstadt & Felleisen 2010, cited by the paper as the full system's
type theory).

When an ``if`` test is a predicate applied to a variable reference —
``(if (null? l) A B)`` — the variable's type is *refined* in each branch:
in the then-branch to the part of its type satisfying the predicate, in the
else-branch to the rest. This is what makes idiomatic Scheme list code
typecheck::

    (: sum ((Listof Integer) -> Integer))
    (define (sum l)
      (if (null? l) 0 (+ (car l) (sum (cdr l)))))

and it feeds the optimizer: in the else branch ``l`` is known to be a
``Pairof``, so ``car``/``cdr`` lose their tag checks (§7.2's "eliminates
tag-checking made redundant by the typechecker").

Supported predicates: ``null?``, ``pair?``, ``flonum?``, ``exact-integer?``,
``number?``, ``real?``, ``string?``, ``boolean?``, ``symbol?``, ``char?``,
``vector?``, and ``not`` composed around them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.parse import core_form_of
from repro.langs.typed_common import types as ty
from repro.modules.registry import KERNEL_PATH
from repro.syn.binding import Binding, ModuleBinding, TABLE
from repro.syn.syntax import Syntax


@dataclass(frozen=True)
class Refinement:
    """Refined types for one variable in the two branches of an ``if``."""

    binding: Binding
    then_type: ty.Type
    else_type: ty.Type


def _restrict_list(t: ty.Type, to_null: bool) -> ty.Type:
    """Split a list-shaped type into its Null / Pairof parts."""
    if isinstance(t, ty.ListofType):
        if to_null:
            return ty.NULL_TYPE
        return ty.PairType(t.element, t)
    if isinstance(t, ty.UnionType):
        parts = [_restrict_list(m, to_null) for m in t.members]
        keep = [p for p in parts if p is not ty.NOTHING]
        if not keep:
            return ty.NOTHING
        return ty.make_union(keep)
    if isinstance(t, ty.BaseType) and t.name == "Null":
        return t if to_null else ty.NOTHING
    if isinstance(t, ty.PairType):
        return ty.NOTHING if to_null else t
    # unknown shape (e.g. Any): no refinement possible
    return t


def _restrict_base(t: ty.Type, base: ty.Type, positive: bool) -> ty.Type:
    """Refine ``t`` by a base-type predicate (e.g. flonum? -> Float)."""
    if positive:
        if ty.subtype(t, base):
            return t
        if isinstance(t, ty.UnionType):
            keep = [m for m in t.members if ty.subtype(m, base)]
            if keep:
                return ty.make_union(keep)
        if ty.subtype(base, t):
            return base  # e.g. t = Any / Number, predicate narrows
        return t
    # negative: remove the members covered by the predicate
    if isinstance(t, ty.UnionType):
        keep = [m for m in t.members if not ty.subtype(m, base)]
        if keep:
            return ty.make_union(keep)
        return ty.NOTHING
    if ty.subtype(t, base):
        return ty.NOTHING
    return t


def _list_refiner(to_null_then: bool) -> Callable[[ty.Type], tuple[ty.Type, ty.Type]]:
    def refine(t: ty.Type) -> tuple[ty.Type, ty.Type]:
        return (
            _restrict_list(t, to_null=to_null_then),
            _restrict_list(t, to_null=not to_null_then),
        )

    return refine


def _base_refiner(base: ty.Type) -> Callable[[ty.Type], tuple[ty.Type, ty.Type]]:
    def refine(t: ty.Type) -> tuple[ty.Type, ty.Type]:
        return (
            _restrict_base(t, base, positive=True),
            _restrict_base(t, base, positive=False),
        )

    return refine


#: predicate name -> how it splits a type into (then, else) parts
PREDICATE_REFINERS: dict[str, Callable[[ty.Type], tuple[ty.Type, ty.Type]]] = {
    "null?": _list_refiner(to_null_then=True),
    "pair?": _list_refiner(to_null_then=False),
    "flonum?": _base_refiner(ty.FLOAT),
    "exact-integer?": _base_refiner(ty.INTEGER),
    "number?": _base_refiner(ty.NUMBER),
    "real?": _base_refiner(ty.REAL),
    "string?": _base_refiner(ty.STRING),
    "boolean?": _base_refiner(ty.BOOLEAN),
    "symbol?": _base_refiner(ty.SYMBOL),
    "char?": _base_refiner(ty.CHAR),
}


def _kernel_name(ident: Syntax) -> Optional[str]:
    if not ident.is_identifier():
        return None
    binding = TABLE.resolve(ident, 0)
    if isinstance(binding, ModuleBinding) and binding.module_path == KERNEL_PATH:
        return binding.name.name
    return None


def analyze_test(
    test: Syntax, current_type_of: Callable[[Binding], Optional[ty.Type]]
) -> Optional[Refinement]:
    """If ``test`` is ``(pred var)`` (possibly under ``not``), the refinement
    it implies; otherwise None."""
    negated = False
    node = test
    while True:
        if not (isinstance(node.e, tuple) and len(node.e) >= 2):
            return None
        head = node.e[0]
        if core_form_of(node, 0) != "#%plain-app":
            return None
        op, args = node.e[1], node.e[2:]
        name = _kernel_name(op)
        if name == "not" and len(args) == 1:
            negated = not negated
            node = args[0]
            # peel (#%plain-app not X): X may itself be an app or a variable
            if node.is_identifier():
                return None
            continue
        if name in PREDICATE_REFINERS and len(args) == 1 and args[0].is_identifier():
            binding = TABLE.resolve(args[0], 0)
            if binding is None:
                return None
            current = current_type_of(binding)
            if current is None:
                return None
            then_t, else_t = PREDICATE_REFINERS[name](current)
            if negated:
                then_t, else_t = else_t, then_t
            return Refinement(binding, then_t, else_t)
        return None
