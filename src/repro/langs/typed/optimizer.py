"""The full type-driven optimizer (§7.2).

"Typed Racket uses the same techniques as the simple optimizer ... but
applies a wider range of optimizations. It supports a number of
floating-point specialization transformations, eliminates tag-checking made
redundant by the typechecker and performs arity raising on functions with
complex number arguments."

Rule groups (individually switchable, for the ablation benchmarks):

- ``float``   — generic arithmetic on proven ``Float`` operands becomes
                ``unsafe-fl*`` (fig. 5, extended to comparisons, ``sqrt``,
                ``sin``/``cos``, ``abs``, ``min``/``max``, ``floor``);
- ``fixnum``  — arithmetic on proven ``Integer`` operands becomes
                ``unsafe-fx*`` (sound here: host integers are unbounded);
- ``pairs``   — ``car``/``cdr``/``first``/``rest`` on proven ``Pairof``
                values skip the pair tag check (``unsafe-car``/``unsafe-cdr``);
- ``vectors`` — ``vector-ref``/``vector-set!``/``vector-length`` on proven
                ``Vectorof`` values skip the vector tag check;
- ``complex`` — arithmetic on proven ``Float-Complex`` operands becomes
                ``unsafe-fc*``: the specialized, non-dispatching complex
                path (our stand-in for Typed Racket's unboxing/arity
                raising, which needs backend support we expose this way).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.langs.simple_type.optimize import SimpleOptimizer
from repro.langs.typed_common import types as ty
from repro.expander.env import ExpandContext
from repro.expander.kernel_scope import core_id
from repro.syn.syntax import Syntax

ALL_RULES = frozenset({"float", "fixnum", "pairs", "vectors", "complex"})

_FLOAT_OPS = {
    "+": "unsafe-fl+", "-": "unsafe-fl-", "*": "unsafe-fl*", "/": "unsafe-fl/",
    "<": "unsafe-fl<", "<=": "unsafe-fl<=", ">": "unsafe-fl>",
    ">=": "unsafe-fl>=", "=": "unsafe-fl=",
    "min": "unsafe-flmin", "max": "unsafe-flmax",
}
_FLOAT_UNARY = {
    "abs": "unsafe-flabs", "sqrt": "unsafe-flsqrt",
    "sin": "unsafe-flsin", "cos": "unsafe-flcos", "floor": "unsafe-flfloor",
    "-": "unsafe-flneg",
}
_FIXNUM_OPS = {
    "+": "unsafe-fx+", "-": "unsafe-fx-", "*": "unsafe-fx*",
    "<": "unsafe-fx<", "<=": "unsafe-fx<=", ">": "unsafe-fx>",
    ">=": "unsafe-fx>=", "=": "unsafe-fx=",
    "quotient": "unsafe-fxquotient", "remainder": "unsafe-fxremainder",
}
_COMPLEX_OPS = {
    "+": "unsafe-fc+", "-": "unsafe-fc-", "*": "unsafe-fc*", "/": "unsafe-fc/",
}
_COMPLEX_UNARY = {
    "magnitude": "unsafe-fcmagnitude",
    "real-part": "unsafe-fcreal-part",
    "imag-part": "unsafe-fcimag-part",
}
_PAIR_OPS = {"car": "unsafe-car", "cdr": "unsafe-cdr",
             "first": "unsafe-car", "rest": "unsafe-cdr"}
_VECTOR_OPS = {
    "vector-ref": "unsafe-vector-ref",
    "vector-set!": "unsafe-vector-set!",
    "vector-length": "unsafe-vector-length",
}


class FullOptimizer(SimpleOptimizer):
    def __init__(self, ctx: ExpandContext, rules: frozenset[str] = ALL_RULES) -> None:
        super().__init__(ctx)
        self.rules = rules

    def _all_are(self, args: Sequence[Syntax], expected: ty.Type) -> bool:
        return bool(args) and all(self.type_of(a) == expected for a in args)

    def _optimize_app(self, t: Syntax) -> Syntax:
        op = t.e[1]
        args = t.e[2:]
        new_args = tuple(self.optimize(a) for a in args)
        incr = self._specialize_incr(op, args)
        if incr is not None:
            # (add1 e) / (sub1 e) -> (unsafe-?x+/- e 1) — arity changes
            new_op, literal = incr
            self.rewrites += 1
            one = Syntax((core_id("quote", op.srcloc), Syntax(literal)), t.scopes, t.srcloc)
            return self._rebuild(
                t, (t.e[0], core_id(new_op, op.srcloc), new_args[0], one)
            )
        replacement = self._specialize(op, args)
        if replacement is not None:
            self.rewrites += 1
            new_op_stx: Syntax = core_id(replacement, op.srcloc)
        else:
            new_op_stx = self.optimize(op)
        return self._rebuild(t, (t.e[0], new_op_stx, *new_args))

    def _specialize_incr(
        self, op: Syntax, args: Sequence[Syntax]
    ) -> Optional[tuple[str, object]]:
        name = self._kernel_op_name(op)
        if name not in ("add1", "sub1") or len(args) != 1:
            return None
        arg_type = self.type_of(args[0])
        suffix = "+" if name == "add1" else "-"
        if "fixnum" in self.rules and arg_type == ty.INTEGER:
            return (f"unsafe-fx{suffix}", 1)
        if "float" in self.rules and arg_type == ty.FLOAT:
            return (f"unsafe-fl{suffix}", 1.0)
        return None

    def _specialize(self, op: Syntax, args: Sequence[Syntax]) -> Optional[str]:
        name = self._kernel_op_name(op)
        if name is None:
            return None
        if "float" in self.rules:
            if len(args) == 2 and name in _FLOAT_OPS and self._all_are(args, ty.FLOAT):
                return _FLOAT_OPS[name]
            if len(args) == 1 and name in _FLOAT_UNARY and self._all_are(args, ty.FLOAT):
                return _FLOAT_UNARY[name]
        if "fixnum" in self.rules:
            if len(args) == 2 and name in _FIXNUM_OPS and self._all_are(args, ty.INTEGER):
                return _FIXNUM_OPS[name]
        if "complex" in self.rules:
            if (
                len(args) == 2
                and name in _COMPLEX_OPS
                and all(
                    self.type_of(a) in (ty.FLOAT_COMPLEX,) for a in args
                )
            ):
                return _COMPLEX_OPS[name]
            if (
                len(args) == 1
                and name in _COMPLEX_UNARY
                and self.type_of(args[0]) == ty.FLOAT_COMPLEX
            ):
                return _COMPLEX_UNARY[name]
        if "pairs" in self.rules:
            if len(args) == 1 and name in _PAIR_OPS:
                arg_type = self.type_of(args[0])
                if isinstance(arg_type, ty.PairType):
                    return _PAIR_OPS[name]
        if "vectors" in self.rules:
            if name in _VECTOR_OPS and args:
                if isinstance(self.type_of(args[0]), ty.VectorofType):
                    return _VECTOR_OPS[name]
        return None
