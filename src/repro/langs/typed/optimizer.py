"""The full type-driven optimizer (§7.2).

"Typed Racket uses the same techniques as the simple optimizer ... but
applies a wider range of optimizations. It supports a number of
floating-point specialization transformations, eliminates tag-checking made
redundant by the typechecker and performs arity raising on functions with
complex number arguments."

Rule groups (individually switchable, for the ablation benchmarks):

- ``float``   — generic arithmetic on proven ``Float`` operands becomes
                ``unsafe-fl*`` (fig. 5, extended to comparisons, ``sqrt``,
                ``sin``/``cos``, ``abs``, ``min``/``max``, ``floor``);
- ``fixnum``  — arithmetic on proven ``Integer`` operands becomes
                ``unsafe-fx*`` (sound here: host integers are unbounded);
- ``pairs``   — ``car``/``cdr``/``first``/``rest`` on proven ``Pairof``
                values skip the pair tag check (``unsafe-car``/``unsafe-cdr``);
- ``vectors`` — ``vector-ref``/``vector-set!``/``vector-length`` on proven
                ``Vectorof`` values skip the vector tag check;
- ``complex`` — arithmetic on proven ``Float-Complex`` operands becomes
                ``unsafe-fc*``: the specialized, non-dispatching complex
                path (our stand-in for Typed Racket's unboxing/arity
                raising, which needs backend support we expose this way).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.langs.simple_type.optimize import SimpleOptimizer
from repro.langs.typed_common import types as ty
from repro.expander.env import ExpandContext
from repro.expander.kernel_scope import core_id
from repro.syn.syntax import Syntax

ALL_RULES = frozenset({"float", "fixnum", "pairs", "vectors", "complex"})

_FLOAT_OPS = {
    "+": "unsafe-fl+", "-": "unsafe-fl-", "*": "unsafe-fl*", "/": "unsafe-fl/",
    "<": "unsafe-fl<", "<=": "unsafe-fl<=", ">": "unsafe-fl>",
    ">=": "unsafe-fl>=", "=": "unsafe-fl=",
    "min": "unsafe-flmin", "max": "unsafe-flmax",
}
_FLOAT_UNARY = {
    "abs": "unsafe-flabs", "sqrt": "unsafe-flsqrt",
    "sin": "unsafe-flsin", "cos": "unsafe-flcos", "floor": "unsafe-flfloor",
    "-": "unsafe-flneg",
}
_FIXNUM_OPS = {
    "+": "unsafe-fx+", "-": "unsafe-fx-", "*": "unsafe-fx*",
    "<": "unsafe-fx<", "<=": "unsafe-fx<=", ">": "unsafe-fx>",
    ">=": "unsafe-fx>=", "=": "unsafe-fx=",
    "quotient": "unsafe-fxquotient", "remainder": "unsafe-fxremainder",
}
_COMPLEX_OPS = {
    "+": "unsafe-fc+", "-": "unsafe-fc-", "*": "unsafe-fc*", "/": "unsafe-fc/",
}
_COMPLEX_UNARY = {
    "magnitude": "unsafe-fcmagnitude",
    "real-part": "unsafe-fcreal-part",
    "imag-part": "unsafe-fcimag-part",
}
_PAIR_OPS = {"car": "unsafe-car", "cdr": "unsafe-cdr",
             "first": "unsafe-car", "rest": "unsafe-cdr"}
_VECTOR_OPS = {
    "vector-ref": "unsafe-vector-ref",
    "vector-set!": "unsafe-vector-set!",
    "vector-length": "unsafe-vector-length",
}


def _rule_of(replacement: str) -> str:
    """Rule-group name of a specialized primitive, for coach attribution."""
    if replacement.startswith("unsafe-fl"):
        return "float"
    if replacement.startswith("unsafe-fx"):
        return "fixnum"
    if replacement.startswith("unsafe-fc"):
        return "complex"
    if replacement in ("unsafe-car", "unsafe-cdr"):
        return "pairs"
    if replacement.startswith("unsafe-vector"):
        return "vectors"
    return "unknown"


class FullOptimizer(SimpleOptimizer):
    def __init__(self, ctx: ExpandContext, rules: frozenset[str] = ALL_RULES) -> None:
        super().__init__(ctx)
        self.rules = rules

    def _all_are(self, args: Sequence[Syntax], expected: ty.Type) -> bool:
        return bool(args) and all(self.type_of(a) == expected for a in args)

    def _optimize_app(self, t: Syntax) -> Syntax:
        op = t.e[1]
        args = t.e[2:]
        new_args = tuple(self.optimize(a) for a in args)
        op_name = self._kernel_op_name(op)
        incr = self._specialize_incr(op, args)
        if incr is not None:
            # (add1 e) / (sub1 e) -> (unsafe-?x+/- e 1) — arity changes
            new_op, literal = incr
            self.rewrites += 1
            if self._rec.enabled:
                self._coach_fired(_rule_of(new_op), t, op_name, new_op, args)
            one = Syntax((core_id("quote", op.srcloc), Syntax(literal)), t.scopes, t.srcloc)
            return self._rebuild(
                t, (t.e[0], core_id(new_op, op.srcloc), new_args[0], one)
            )
        replacement = self._specialize(op, args)
        if replacement is not None:
            self.rewrites += 1
            if self._rec.enabled:
                self._coach_fired(_rule_of(replacement), t, op_name, replacement, args)
            new_op_stx: Syntax = core_id(replacement, op.srcloc)
        else:
            if self._rec.enabled and op_name is not None:
                miss = self._explain_near_miss(op_name, args)
                if miss is not None:
                    rule, reason = miss
                    self._coach_near_miss(rule, t, op_name, reason, args)
            new_op_stx = self.optimize(op)
        return self._rebuild(t, (t.e[0], new_op_stx, *new_args))

    def _specialize_incr(
        self, op: Syntax, args: Sequence[Syntax]
    ) -> Optional[tuple[str, object]]:
        name = self._kernel_op_name(op)
        if name not in ("add1", "sub1") or len(args) != 1:
            return None
        arg_type = self.type_of(args[0])
        suffix = "+" if name == "add1" else "-"
        if "fixnum" in self.rules and arg_type == ty.INTEGER:
            return (f"unsafe-fx{suffix}", 1)
        if "float" in self.rules and arg_type == ty.FLOAT:
            return (f"unsafe-fl{suffix}", 1.0)
        return None

    # -- optimization coach: near-miss analysis -----------------------------

    def _explain_near_miss(
        self, op_name: str, args: Sequence[Syntax]
    ) -> Optional[tuple[str, str]]:
        """Why didn't ``op_name`` specialize? Returns ``(rule, reason)``.

        Scans every rule table whose shape (operator name + arity) matches
        the application, then reports the candidate whose expected operand
        type matches the *most* operands — the specialization the programmer
        was closest to getting (St-Amour et al.'s coaching recipe). Requires
        at least one operand with a known type, so untyped positions don't
        drown the report in noise.
        """
        types = [self.type_of(a) for a in args]
        if not any(s is not None for s in types):
            return None
        n = len(args)

        #: (rule, table, expected type, arity) — the uniform-expected-type
        #: rule groups; pairs/vectors need a type-family check instead
        candidates = []
        if n == 2:
            candidates += [
                ("float", _FLOAT_OPS, ty.FLOAT),
                ("fixnum", _FIXNUM_OPS, ty.INTEGER),
                ("complex", _COMPLEX_OPS, ty.FLOAT_COMPLEX),
            ]
        elif n == 1:
            candidates += [
                ("float", _FLOAT_UNARY, ty.FLOAT),
                ("complex", _COMPLEX_UNARY, ty.FLOAT_COMPLEX),
            ]
            if op_name in ("add1", "sub1"):
                suffix = "+" if op_name == "add1" else "-"
                candidates += [
                    ("fixnum", {op_name: f"unsafe-fx{suffix}"}, ty.INTEGER),
                    ("float", {op_name: f"unsafe-fl{suffix}"}, ty.FLOAT),
                ]

        best: Optional[tuple[int, str, str]] = None  # (score, rule, reason)
        for rule, table, expected in candidates:
            if op_name not in table:
                continue
            replacement = table[op_name]
            if rule not in self.rules:
                reason = f"rule group `{rule}` disabled (would be `{replacement}`)"
                score = sum(1 for s in types if s == expected)
            else:
                blockers = [s for s in types if s != expected]
                if not blockers:
                    continue  # would have fired; not a near-miss
                blocker = next((s for s in blockers if s is not None), None)
                if blocker is None:
                    reason = (
                        f"operand has no known type — no `{replacement}`"
                    )
                else:
                    reason = (
                        f"operand typed `{blocker}`, not `{expected}` — "
                        f"no `{replacement}`"
                    )
                score = sum(1 for s in types if s == expected)
            if best is None or score > best[0]:
                best = (score, rule, reason)

        # the type-family rules: pairs (any Pairof) and vectors (any Vectorof)
        if n == 1 and op_name in _PAIR_OPS:
            replacement = _PAIR_OPS[op_name]
            if "pairs" not in self.rules:
                reason = f"rule group `pairs` disabled (would be `{replacement}`)"
            else:
                reason = (
                    f"operand typed `{types[0]}`, not a `Pairof` — "
                    f"no `{replacement}`"
                )
            if best is None or best[0] == 0:
                best = (0, "pairs", reason)
        if args and op_name in _VECTOR_OPS and types[0] is not None:
            replacement = _VECTOR_OPS[op_name]
            if "vectors" not in self.rules:
                reason = f"rule group `vectors` disabled (would be `{replacement}`)"
            else:
                reason = (
                    f"operand typed `{types[0]}`, not a `Vectorof` — "
                    f"no `{replacement}`"
                )
            if best is None or best[0] == 0:
                best = (0, "vectors", reason)

        if best is None:
            return None
        return (best[1], best[2])

    def _specialize(self, op: Syntax, args: Sequence[Syntax]) -> Optional[str]:
        name = self._kernel_op_name(op)
        if name is None:
            return None
        if "float" in self.rules:
            if len(args) == 2 and name in _FLOAT_OPS and self._all_are(args, ty.FLOAT):
                return _FLOAT_OPS[name]
            if len(args) == 1 and name in _FLOAT_UNARY and self._all_are(args, ty.FLOAT):
                return _FLOAT_UNARY[name]
        if "fixnum" in self.rules:
            if len(args) == 2 and name in _FIXNUM_OPS and self._all_are(args, ty.INTEGER):
                return _FIXNUM_OPS[name]
        if "complex" in self.rules:
            if (
                len(args) == 2
                and name in _COMPLEX_OPS
                and all(
                    self.type_of(a) in (ty.FLOAT_COMPLEX,) for a in args
                )
            ):
                return _COMPLEX_OPS[name]
            if (
                len(args) == 1
                and name in _COMPLEX_UNARY
                and self.type_of(args[0]) == ty.FLOAT_COMPLEX
            ):
                return _COMPLEX_UNARY[name]
        if "pairs" in self.rules:
            if len(args) == 1 and name in _PAIR_OPS:
                arg_type = self.type_of(args[0])
                if isinstance(arg_type, ty.PairType):
                    return _PAIR_OPS[name]
        if "vectors" in self.rules:
            if name in _VECTOR_OPS and args:
                if isinstance(self.type_of(args[0]), ty.VectorofType):
                    return _VECTOR_OPS[name]
        return None
