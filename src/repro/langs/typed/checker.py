"""The full typechecker of the ``typed`` language.

Scales the fig. 3 checker with exactly the ingredients §4.4 describes:
"Mutual recursion is implemented with a two-pass typechecker: the first pass
collects definitions with their types, and the second pass checks individual
expressions in this type context." The added type-system complexity (unions,
container types, overloads, delta rules) "is encapsulated in the behavior of
typecheck on the core forms" — the traversal structure is unchanged.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Optional, Sequence

from repro.core.parse import core_form_of
from repro.errors import ReproError, TypeCheckError
from repro.expander.env import ExpandContext
from repro.langs.simple_type.checker import SKIP_KEY, TYPE_ANNOTATION_KEY, SimpleChecker
from repro.langs.typed.base_env import DELTA_RULES
from repro.langs.typed_common import env as tenv
from repro.langs.typed_common import types as ty
from repro.modules.registry import KERNEL_PATH
from repro.runtime.values import Keyword, Symbol
from repro.syn.binding import ModuleBinding, TABLE
from repro.syn.syntax import ImproperList, Syntax, VectorDatum

DECLARED_STORE = "typed:declared"
ASCRIPTION_KEY = "type-ascription"


def declared_types(ctx: ExpandContext) -> dict[str, ty.Type]:
    """Types declared by ``(: name type)``, keyed by name (module-local)."""
    return ctx.store(DECLARED_STORE, dict)


class FullChecker(SimpleChecker):
    def __init__(self, ctx: ExpandContext) -> None:
        super().__init__(ctx)
        self.declared = declared_types(ctx)

    # -- module-level: two passes (§4.4) ------------------------------------

    def check_module(self, forms: Sequence[Syntax]) -> None:
        # pass 1: collect definitions with their declared types. A bad
        # declaration is recorded in the diagnostic session; the remaining
        # declarations are still collected so pass 2 sees the fullest
        # possible type context.
        for form in forms:
            if form.property_get(SKIP_KEY):
                continue
            if core_form_of(form, 0) != "define-values":
                continue
            for ident in form.e[1].e:
                with self.session.recover():
                    declared = self._declared_type_of(ident)
                    if declared is not None:
                        self.add_type(ident, declared)
        # pass 2: check each form in this type context; each form checks
        # under `recover` so every failing form is reported, not just the
        # first (the #%module-begin driver raises after the whole pass)
        for form in forms:
            with self.session.recover():
                try:
                    self.typecheck_module_form(form)
                except ReproError:
                    self.poison_definition(form)
                    raise

    def _declared_type_of(self, ident: Syntax) -> Optional[ty.Type]:
        annotation = ident.property_get(TYPE_ANNOTATION_KEY)
        if annotation is not None:
            if isinstance(annotation, Syntax):
                return ty.parse_type(annotation)
            return ty.parse_type_datum(annotation, ident)
        if ident.is_identifier():
            return self.declared.get(ident.e.name)
        return None

    def typecheck_module_form(self, form: Syntax) -> Optional[ty.Type]:
        if form.property_get(SKIP_KEY):
            return None
        head = core_form_of(form, 0)
        if head in ("#%provide", "#%require", "define-syntaxes", "begin-for-syntax"):
            return None
        if head == "define-values":
            ids = form.e[1].e
            if len(ids) != 1:
                raise TypeCheckError("define-values: expected a single binding", form)
            ident = ids[0]
            declared = self._declared_type_of(ident)
            if declared is not None:
                self.add_type(ident, declared)
                self.typecheck(form.e[2], declared)
            else:
                self.add_type(ident, self.typecheck(form.e[2]))
            return None
        return self.typecheck(form)

    # -- bidirectional checking against an expected type ----------------------

    def typecheck(self, t: Syntax, check: Optional[ty.Type] = None) -> ty.Type:
        if check is not None and self._is_unannotated_lambda(t):
            result = self._check_lambda_against(t, check)
            self.expr_types[id(t)] = result
            return result
        the_type = self._typecheck(t)
        if check is not None and not ty.subtype(the_type, check):
            raise TypeCheckError(f"wrong type (expected {check}, got {the_type})", t)
        self.expr_types[id(t)] = the_type
        return the_type

    def _is_unannotated_lambda(self, t: Syntax) -> bool:
        if core_form_of(t, 0) != "#%plain-lambda":
            return False
        formals = t.e[1]
        if not isinstance(formals.e, tuple):
            return False
        return any(
            f.property_get(TYPE_ANNOTATION_KEY) is None for f in formals.e
        )

    def _check_lambda_against(self, t: Syntax, expected: ty.Type) -> ty.Type:
        formals = t.e[1].e
        fn_expected: Optional[ty.FunType] = None
        if isinstance(expected, ty.FunType) and len(expected.params) == len(formals):
            fn_expected = expected
        elif isinstance(expected, ty.CaseFunType):
            for case in expected.cases:
                if len(case.params) == len(formals):
                    fn_expected = case
                    break
        if fn_expected is None:
            raise TypeCheckError(
                f"function does not match expected type {expected}", t
            )
        for ident, param_type in zip(formals, fn_expected.params):
            annotation = ident.property_get(TYPE_ANNOTATION_KEY)
            if annotation is not None:
                own = (
                    ty.parse_type(annotation)
                    if isinstance(annotation, Syntax)
                    else ty.parse_type_datum(annotation, ident)
                )
                if not ty.subtype(param_type, own):
                    raise TypeCheckError(
                        f"parameter annotation {own} conflicts with expected "
                        f"{param_type}",
                        ident,
                    )
                self.add_type(ident, own)
            else:
                self.add_type(ident, param_type)
        result = None
        for i, expr in enumerate(t.e[2:]):
            is_last = i == len(t.e) - 3
            result = self.typecheck(expr, fn_expected.result if is_last else None)
        assert result is not None
        return fn_expected

    # -- the expression rules that differ from the simple checker ---------------

    def _typecheck(self, t: Syntax) -> ty.Type:
        ascription = t.property_get(ASCRIPTION_KEY)
        if ascription is not None:
            inner = self._typecheck_no_ascription(t)
            target = (
                ty.parse_type(ascription)
                if isinstance(ascription, Syntax)
                else ty.parse_type_datum(ascription, t)
            )
            if not ty.subtype(inner, target):
                raise TypeCheckError(
                    f"ascription failed (expected {target}, got {inner})", t
                )
            return target
        return self._typecheck_no_ascription(t)

    def _typecheck_no_ascription(self, t: Syntax) -> ty.Type:
        head = core_form_of(t, 0)
        if head == "if":
            return self._check_if(t)
        if head == "quote":
            return self._type_of_quoted(t.e[1], t)
        if head == "#%plain-app":
            return self._check_app(t)
        return super()._typecheck(t)

    def _check_if(self, t: Syntax) -> ty.Type:
        """``if`` with occurrence typing: a predicate test on a variable
        refines that variable's type per branch (see typed.occurrence)."""
        from repro.langs.typed.occurrence import analyze_test

        self.typecheck(t.e[1])  # any type is a valid test (truthiness)
        refinement = analyze_test(t.e[1], lambda b: self.types.get(b.key()))
        if refinement is None:
            then_t = self.typecheck(t.e[2])
            else_t = self.typecheck(t.e[3])
            return ty.join(then_t, else_t)
        key = refinement.binding.key()
        original = self.types[key]
        try:
            # a branch refined to Nothing is dead code; check it under the
            # unrefined type so its body still elaborates sensibly
            self.types[key] = (
                refinement.then_type
                if refinement.then_type is not ty.NOTHING
                else original
            )
            then_t = self.typecheck(t.e[2])
            self.types[key] = (
                refinement.else_type
                if refinement.else_type is not ty.NOTHING
                else original
            )
            else_t = self.typecheck(t.e[3])
        finally:
            self.types[key] = original
        return ty.join(then_t, else_t)

    def _type_of_quoted(self, d: Syntax, where: Syntax) -> ty.Type:
        e = d.e
        if isinstance(e, tuple):
            if not e:
                return ty.NULL_TYPE
            result: ty.Type = ty.NULL_TYPE
            for item in reversed(e):
                result = ty.PairType(self._type_of_quoted(item, where), result)
            return result
        if isinstance(e, ImproperList):
            result = self._type_of_quoted(e.tail, where)
            for item in reversed(e.items):
                result = ty.PairType(self._type_of_quoted(item, where), result)
            return result
        if isinstance(e, VectorDatum):
            elem: ty.Type = ty.NOTHING
            for item in e.items:
                elem = ty.join(elem, self._type_of_quoted(item, where))
            return ty.VectorofType(elem if e.items else ty.ANY)
        if isinstance(e, Keyword):
            return ty.ANY
        return self._type_of_datum(d, where)

    def _check_app(self, t: Syntax) -> ty.Type:
        op = t.e[1]
        args = t.e[2:]
        # delta rules: the kernel's variadic / polymorphic operations
        if op.is_identifier():
            binding = TABLE.resolve(op, 0)
            if (
                isinstance(binding, ModuleBinding)
                and binding.module_path == KERNEL_PATH
            ):
                rule = DELTA_RULES.get(binding.name.name)
                if rule is not None:
                    argtys = [self.typecheck(a) for a in args]
                    self.expr_types[id(op)] = ty.ANY
                    return rule(self, t, list(args), argtys)
        # otherwise: the fig. 3 rule, plus expected-type checking of arguments
        op_type = self.typecheck(op)
        if op_type is ty.NOTHING:
            # a poisoned (already-reported) definition; don't cascade
            for a in args:
                self.typecheck(a)
            return ty.NOTHING
        if isinstance(op_type, ty.FunType):
            if len(args) != len(op_type.params):
                raise TypeCheckError(
                    f"wrong number of arguments (expected {len(op_type.params)}, "
                    f"got {len(args)})",
                    t,
                )
            for a, p in zip(args, op_type.params):
                self.typecheck(a, p)
            return op_type.result
        if isinstance(op_type, ty.CaseFunType):
            argtys = [self.typecheck(a) for a in args]
            for case in op_type.cases:
                if len(argtys) == len(case.params) and all(
                    ty.subtype(a, p) for a, p in zip(argtys, case.params)
                ):
                    return case.result
            raise TypeCheckError(
                f"no matching case in {op_type} for argument types "
                f"({' '.join(str(a) for a in argtys)})",
                t,
            )
        raise TypeCheckError(f"not a function type: {op_type}", op)
