"""Types, subtyping, parsing, and serialization for the typed languages.

The type grammar (a faithful miniature of Typed Racket's):

    T ::= Integer | Float | Real | Number | Float-Complex
        | Boolean | String | Char | Symbol | Void | Any
        | (-> T ... T)  |  (T ... -> T)
        | (Listof T) | (List T ...) | (Pairof T T) | Null | (Vectorof T)
        | (U T ...)
        | (case-> (-> T ... T) ...)

Types serialize to s-expression data (``serialize``/``parse_type_datum``),
which is how compiled typed modules persist exported types: the compiled
artifact carries ``(begin-for-syntax (add-type! (quote-syntax n) 'ser))``
declarations whose payload is this serialization (§5).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.errors import TypeCheckError
from repro.runtime.values import NULL, Pair, Symbol, from_list, to_list
from repro.syn.syntax import Syntax, syntax_to_datum


class Type:
    name: str = "type"

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return self.name

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Type) and serialize(self) == serialize(other)

    def __hash__(self) -> int:
        return hash(str(serialize(self)))


class BaseType(Type):
    def __init__(self, name: str) -> None:
        self.name = name


INTEGER = BaseType("Integer")
FLOAT = BaseType("Float")
REAL = BaseType("Real")
NUMBER = BaseType("Number")
FLOAT_COMPLEX = BaseType("Float-Complex")
BOOLEAN = BaseType("Boolean")
STRING = BaseType("String")
CHAR = BaseType("Char")
SYMBOL = BaseType("Symbol")
VOID = BaseType("Void")
ANY = BaseType("Any")
NULL_TYPE = BaseType("Null")
NOTHING = BaseType("Nothing")  # the bottom type (e.g. the result of `error`)

_BASE_TYPES = {
    t.name: t
    for t in (
        INTEGER, FLOAT, REAL, NUMBER, FLOAT_COMPLEX, BOOLEAN, STRING, CHAR,
        SYMBOL, VOID, ANY, NULL_TYPE, NOTHING,
    )
}

#: numeric-tower subtyping edges (transitively closed in `subtype`)
_NUMERIC_SUPERS: dict[str, tuple[str, ...]] = {
    "Integer": ("Real", "Number"),
    "Float": ("Real", "Number"),
    "Real": ("Number",),
    "Float-Complex": ("Number",),
}


class FunType(Type):
    def __init__(self, params: Sequence[Type], result: Type) -> None:
        self.params = list(params)
        self.result = result

    @property
    def name(self) -> str:  # type: ignore[override]
        parts = " ".join(str(p) for p in self.params)
        return f"(-> {parts} {self.result})" if parts else f"(-> {self.result})"


class CaseFunType(Type):
    """An overloaded function type; applications try cases in order."""

    def __init__(self, cases: Sequence[FunType]) -> None:
        self.cases = list(cases)

    @property
    def name(self) -> str:  # type: ignore[override]
        return "(case-> " + " ".join(str(c) for c in self.cases) + ")"


class ListofType(Type):
    def __init__(self, element: Type) -> None:
        self.element = element

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"(Listof {self.element})"


class PairType(Type):
    def __init__(self, car: Type, cdr: Type) -> None:
        self.car = car
        self.cdr = cdr

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"(Pairof {self.car} {self.cdr})"


class VectorofType(Type):
    def __init__(self, element: Type) -> None:
        self.element = element

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"(Vectorof {self.element})"


class UnionType(Type):
    def __init__(self, members: Sequence[Type]) -> None:
        self.members = list(members)

    @property
    def name(self) -> str:  # type: ignore[override]
        return "(U " + " ".join(str(m) for m in self.members) + ")"


class StructType(Type):
    """A nominal struct type; identity is the module-qualified tag."""

    def __init__(
        self, tag: str, field_names: Sequence[str], field_types: Sequence[Type]
    ) -> None:
        self.tag = tag
        self.field_names = list(field_names)
        self.field_types = list(field_types)

    @property
    def name(self) -> str:  # type: ignore[override]
        base = self.tag.rsplit(":", 1)[-1]
        return f"#(struct:{base})"


def make_union(members: Iterable[Type]) -> Type:
    """Normalize a union: flatten, dedupe, drop subsumed members."""
    flat: list[Type] = []
    for m in members:
        if isinstance(m, UnionType):
            flat.extend(m.members)
        else:
            flat.append(m)
    kept: list[Type] = []
    for m in flat:
        if any(subtype(m, k) for k in kept):
            continue
        kept = [k for k in kept if not subtype(k, m)]
        kept.append(m)
    if len(kept) == 1:
        return kept[0]
    return UnionType(kept)


# --- subtyping -----------------------------------------------------------------


def subtype(a: Type, b: Type) -> bool:
    if a is b or (isinstance(a, BaseType) and isinstance(b, BaseType) and a.name == b.name):
        return True
    if isinstance(b, BaseType) and b.name == "Any":
        return True
    if isinstance(a, BaseType) and a.name == "Nothing":
        return True
    if isinstance(a, UnionType):
        return all(subtype(m, b) for m in a.members)
    if isinstance(b, UnionType):
        return any(subtype(a, m) for m in b.members)
    if isinstance(a, BaseType) and isinstance(b, BaseType):
        return b.name in _NUMERIC_SUPERS.get(a.name, ())
    if isinstance(b, ListofType):
        if isinstance(a, BaseType) and a.name == "Null":
            return True
        if isinstance(a, ListofType):
            return subtype(a.element, b.element)
        if isinstance(a, PairType):
            return subtype(a.car, b.element) and subtype(a.cdr, b)
        return False
    if isinstance(a, PairType) and isinstance(b, PairType):
        return subtype(a.car, b.car) and subtype(a.cdr, b.cdr)
    if isinstance(a, VectorofType) and isinstance(b, VectorofType):
        # invariant: vectors are mutable
        return subtype(a.element, b.element) and subtype(b.element, a.element)
    if isinstance(b, FunType):
        if isinstance(a, FunType):
            return (
                len(a.params) == len(b.params)
                and all(subtype(bp, ap) for ap, bp in zip(a.params, b.params))
                and subtype(a.result, b.result)
            )
        if isinstance(a, CaseFunType):
            return any(subtype(case, b) for case in a.cases)
    if isinstance(b, CaseFunType):
        return all(subtype(a, case) for case in b.cases)
    if isinstance(a, StructType) and isinstance(b, StructType):
        return a.tag == b.tag
    return False


def join(a: Type, b: Type) -> Type:
    """Least upper bound (used for `if` in the full typed language)."""
    if subtype(a, b):
        return b
    if subtype(b, a):
        return a
    return make_union([a, b])


# --- parsing --------------------------------------------------------------------


def parse_type(stx: Syntax) -> Type:
    """Parse a type from syntax (as written in annotations)."""
    return parse_type_datum(syntax_to_datum(stx), stx)


NAMED_TYPES_STORE = "typed:named-types"


def _lookup_named_type(name: str) -> Optional[Type]:
    """Consult the active compilation's named-type table (e.g. struct names).

    Returns None when no compilation is active or the name is unknown.
    """
    from repro.expander.env import peek_context

    ctx = peek_context()
    if ctx is None:
        return None
    table = ctx.stores.get(NAMED_TYPES_STORE)
    if table is None:
        return None
    return table.get(name)


def parse_type_datum(d: Any, stx: Optional[Syntax] = None) -> Type:
    if isinstance(d, Symbol):
        t = _BASE_TYPES.get(d.name)
        if t is None:
            named = _lookup_named_type(d.name)
            if named is not None:
                return named
            raise TypeCheckError(f"unknown type: {d.name}", stx)
        return t
    if isinstance(d, Pair):  # runtime-list form (from serialization)
        d = tuple(_pair_tree_to_tuple(x) for x in to_list(d))
    if isinstance(d, tuple) and d:
        head = d[0]
        head_name = head.name if isinstance(head, Symbol) else None
        if head_name == "->":
            if len(d) < 2:
                raise TypeCheckError("bad function type", stx)
            return FunType([parse_type_datum(p, stx) for p in d[1:-1]],
                           parse_type_datum(d[-1], stx))
        # infix: (T ... -> R)
        arrow_positions = [
            i for i, x in enumerate(d) if isinstance(x, Symbol) and x.name == "->"
        ]
        if len(arrow_positions) == 1 and 0 < arrow_positions[0] == len(d) - 2:
            i = arrow_positions[0]
            return FunType(
                [parse_type_datum(p, stx) for p in d[:i]],
                parse_type_datum(d[-1], stx),
            )
        if head_name == "case->":
            cases = []
            for c in d[1:]:
                parsed = parse_type_datum(c, stx)
                if not isinstance(parsed, FunType):
                    raise TypeCheckError("case-> expects function types", stx)
                cases.append(parsed)
            return CaseFunType(cases)
        if head_name == "Listof" and len(d) == 2:
            return ListofType(parse_type_datum(d[1], stx))
        if head_name == "Vectorof" and len(d) == 2:
            return VectorofType(parse_type_datum(d[1], stx))
        if head_name == "Pairof" and len(d) == 3:
            return PairType(parse_type_datum(d[1], stx), parse_type_datum(d[2], stx))
        if head_name == "List":
            result: Type = NULL_TYPE
            for elem in reversed(d[1:]):
                result = PairType(parse_type_datum(elem, stx), result)
            return result
        if head_name == "U":
            return make_union(parse_type_datum(m, stx) for m in d[1:])
        if head_name == "Struct" and len(d) == 4:
            tag, names, types = d[1], d[2], d[3]
            return StructType(
                tag.name,
                [n.name for n in names],
                [parse_type_datum(x, stx) for x in types],
            )
        raise TypeCheckError(f"unknown type constructor: {head_name}", stx)
    raise TypeCheckError(f"bad type syntax: {d!r}", stx)


def _pair_tree_to_tuple(x: Any) -> Any:
    if isinstance(x, Pair) or x is NULL:
        return tuple(_pair_tree_to_tuple(i) for i in to_list(x))
    return x


# --- serialization ---------------------------------------------------------------


def serialize(t: Type) -> Any:
    """Type -> datum (tuples and symbols), invertible via parse_type_datum."""
    if isinstance(t, BaseType):
        return Symbol(t.name)
    if isinstance(t, FunType):
        return (Symbol("->"), *[serialize(p) for p in t.params], serialize(t.result))
    if isinstance(t, CaseFunType):
        return (Symbol("case->"), *[serialize(c) for c in t.cases])
    if isinstance(t, ListofType):
        return (Symbol("Listof"), serialize(t.element))
    if isinstance(t, VectorofType):
        return (Symbol("Vectorof"), serialize(t.element))
    if isinstance(t, PairType):
        return (Symbol("Pairof"), serialize(t.car), serialize(t.cdr))
    if isinstance(t, UnionType):
        return (Symbol("U"), *[serialize(m) for m in t.members])
    if isinstance(t, StructType):
        return (
            Symbol("Struct"),
            Symbol(t.tag),
            tuple(Symbol(n) for n in t.field_names),
            tuple(serialize(f) for f in t.field_types),
        )
    raise TypeCheckError(f"cannot serialize type: {t}")  # pragma: no cover


def serialize_to_value(t: Type) -> Any:
    """Type -> object-language list value (for embedding under `quote`)."""

    def convert(d: Any) -> Any:
        if isinstance(d, tuple):
            return from_list([convert(x) for x in d])
        return d

    return convert(serialize(t))
