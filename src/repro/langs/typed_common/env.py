"""Compile-time type environments, keyed by binding (§4.3).

"Using an identifier-keyed table allows reuse of the Racket binding structure
without having to reimplement variable renaming or environments." The table
lives in the compilation's fresh store (``ExpandContext.stores``), so type
information never leaks between compilations except through the explicit
replay mechanism of §5.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.expander.env import ExpandContext, current_context
from repro.langs.typed_common.types import Type
from repro.syn.binding import Binding, TABLE
from repro.syn.syntax import Syntax

TYPES_STORE = "typed:types"
EXPR_TYPES_STORE = "typed:expr-types"
TYPED_CONTEXT_STORE = "typed:context?"


def type_table(ctx: Optional[ExpandContext] = None) -> dict[Any, Type]:
    ctx = ctx or current_context()
    return ctx.store(TYPES_STORE, dict)


def expr_types(ctx: Optional[ExpandContext] = None) -> dict[int, Type]:
    """Types computed for expressions, keyed by syntax-object identity.

    This is the channel between the typechecker and the optimizer: the
    checker records every sub-expression's validated type here and the
    optimizer's ``type-of`` reads it back (§7.1: the optimizer uses "the
    validated and still accessible type information").
    """
    ctx = ctx or current_context()
    return ctx.store(EXPR_TYPES_STORE, dict)


def typed_context_flag(ctx: Optional[ExpandContext] = None) -> list[bool]:
    """The §6.2 flag: a one-element mutable cell in the fresh store."""
    ctx = ctx or current_context()
    return ctx.store(TYPED_CONTEXT_STORE, lambda: [False])


def add_type(binding: Binding, t: Type, ctx: Optional[ExpandContext] = None) -> None:
    type_table(ctx)[binding.key()] = t


def lookup_type(binding: Binding, ctx: Optional[ExpandContext] = None) -> Optional[Type]:
    return type_table(ctx).get(binding.key())


def lookup_type_of_id(ident: Syntax, phase: int = 0,
                      ctx: Optional[ExpandContext] = None) -> Optional[Type]:
    binding = TABLE.resolve(ident, phase)
    if binding is None:
        return None
    return lookup_type(binding, ctx)
