"""Type -> contract translation (§6: "the type is converted to a contract
and attached to the procedure on import")."""

from __future__ import annotations

from typing import Any

from repro.contracts.contract import (
    ANY,
    Contract,
    FlatContract,
    FunctionContract,
    ListOfContract,
    OrContract,
    PairOfContract,
    VectorOfContract,
)
from repro.errors import TypeCheckError
from repro.runtime import numerics as num
from repro.runtime import values as v
from repro.langs.typed_common import types as ty

_FLAT_PREDICATES = {
    "Integer": ("exact-integer?", num.is_exact_integer),
    "Float": ("flonum?", num.is_flonum),
    "Real": ("real?", num.is_real),
    "Number": ("number?", num.is_number),
    "Float-Complex": ("float-complex?", num.is_float_complex),
    "Boolean": ("boolean?", lambda x: isinstance(x, bool)),
    "String": ("string?", lambda x: isinstance(x, str)),
    "Char": ("char?", lambda x: isinstance(x, v.Char)),
    "Symbol": ("symbol?", lambda x: isinstance(x, v.Symbol)),
    "Void": ("void?", lambda x: x is v.VOID),
    "Null": ("null?", lambda x: x is v.NULL),
}


def type_to_contract(t: ty.Type) -> Contract:
    if isinstance(t, ty.BaseType):
        if t.name == "Any":
            return ANY
        entry = _FLAT_PREDICATES.get(t.name)
        if entry is None:  # pragma: no cover - all base types covered
            raise TypeCheckError(f"no contract for type {t}")
        return FlatContract(*entry)
    if isinstance(t, ty.FunType):
        return FunctionContract(
            [type_to_contract(p) for p in t.params], type_to_contract(t.result)
        )
    if isinstance(t, ty.CaseFunType):
        # A full case-> contract would dispatch per arity; for simplicity the
        # generated contract checks only that the value is a procedure
        # (documented substitution — Typed Racket generates case-> contracts).
        return FlatContract("procedure?", lambda x: isinstance(x, v.Procedure))
    if isinstance(t, ty.ListofType):
        return ListOfContract(type_to_contract(t.element))
    if isinstance(t, ty.PairType):
        return PairOfContract(type_to_contract(t.car), type_to_contract(t.cdr))
    if isinstance(t, ty.VectorofType):
        return VectorOfContract(type_to_contract(t.element))
    if isinstance(t, ty.UnionType):
        return OrContract([type_to_contract(m) for m in t.members])
    if isinstance(t, ty.StructType):
        from repro.runtime.structs import StructInstance

        base = t.tag.rsplit(":", 1)[-1]
        return FlatContract(
            f"{base}?",
            lambda x: isinstance(x, StructInstance) and x.descriptor.name == base,
        )
    raise TypeCheckError(f"no contract for type {t}")  # pragma: no cover
