"""``#lang racket/match-ext``: extensible pattern matching.

Elevates :mod:`repro.langs.racket.match` to the user-extensible protocol of
Tobin-Hochstadt's *Extensible Pattern Matching in an Extensible Language*:

- ``define-match-expander`` binds a *match expander* — a ``syntax-rules``
  rewrite applied to patterns, not expressions. A pattern whose head
  resolves to a match expander is rewritten and re-compiled, so user
  libraries extend the pattern language itself — and can shadow built-in
  pattern keywords such as ``?`` (heads that are also language imports,
  like ``vector``, keep their import binding).
- Clause compilation builds **decision trees**: adjacent clauses with the
  same root constructor (pair or fixed-length vector) share one root test
  and one field-binding step instead of re-testing per clause. The sharing
  is reported on the observe bus (``match-dtree`` coach events), and the
  output is plain core forms, so both the interp and pyc backends run it
  unchanged.
- The optimization coach also receives **exhaustiveness near-misses**: a
  ``match`` with no catch-all clause, or with clauses shadowed by an
  earlier catch-all, reports why the compiled tree may raise (or dead code
  survives) at runtime.

The companion :class:`MatchExtDialect` hoists ``define-match-expander``
forms above the rest of the body, so expanders may be defined *after*
their first head-position use — a whole-module reordering no single macro
could perform.

Match expanders survive separate compilation: ``define-match-expander``
expands to a ``define-syntaxes`` whose right-hand side rebuilds the
expander from the quoted ``syntax-rules`` form (via the
``make-match-expander`` primitive), so cached ``.zo`` artifacts replay it
like any other object-language macro, and :class:`MatchExpander` itself
pickles for directly-provided exports.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.dialects import Dialect
from repro.errors import SyntaxExpansionError
from repro.expander.env import TransformerMeaning, peek_context
from repro.langs.base import expand_with, fn_macro, rule_macro
from repro.langs.racket.match import _MatchCompiler
from repro.modules.registry import KERNEL_PATH, Language, ModuleRegistry
from repro.observe import current_recorder
from repro.runtime.primitives import add_prim
from repro.runtime.values import Symbol
from repro.syn.binding import TABLE, ModuleBinding
from repro.syn.syntax import Syntax, best_srcloc

#: bound recursion for expander-rewrites-to-expander chains
_MAX_EXPANSIONS = 100


class MatchExpander:
    """A pattern-position transformer bound by ``define-match-expander``.

    Wraps a :class:`~repro.expander.syntax_rules.SyntaxRulesTransformer`
    (already picklable), applied by the match compiler to the whole
    pattern form. Calling it as an ordinary macro — i.e. using the name
    in expression position — is a syntax error, which is how the match
    compiler distinguishes expanders from expression macros.
    """

    __slots__ = ("transformer",)

    def __init__(self, transformer: Any) -> None:
        self.transformer = transformer

    def expand_pattern(self, pattern: Syntax) -> Syntax:
        return self.transformer(pattern)

    def __call__(self, stx: Syntax) -> Syntax:
        raise SyntaxExpansionError(
            "match expander used outside a match pattern", stx
        )

    def __reduce__(self):
        return (MatchExpander, (self.transformer,))


def _make_match_expander(form: Any) -> MatchExpander:
    from repro.expander.syntax_rules import make_syntax_rules_transformer

    if not isinstance(form, Syntax):
        raise SyntaxExpansionError(
            "make-match-expander: expected a syntax-rules form"
        )
    return MatchExpander(make_syntax_rules_transformer(form))


def _install_primitives() -> None:
    add_prim("make-match-expander", _make_match_expander, 1, 1)


class MatchExtDialect(Dialect):
    """Hoist ``define-match-expander`` forms to the front of the module.

    The expander's first pass partially expands forms in order, so a
    head-position ``match`` above a ``define-match-expander`` would
    otherwise compile before the expander exists. Hoisting (stable within
    each group) makes definition order irrelevant, like Racket's module
    pass separation does for ordinary macros.
    """

    name = "match-ext"
    version = "1"

    def rewrite(self, forms, path, session):
        defs = [f for f in forms if self._is_definer(f)]
        if not defs:
            return list(forms)
        return defs + [f for f in forms if not self._is_definer(f)]

    @staticmethod
    def _is_definer(form: Syntax) -> bool:
        e = form.e
        return (
            isinstance(e, tuple)
            and len(e) > 0
            and form.e[0].is_identifier()
            and form.e[0].e.name == "define-match-expander"
        )


class _ExtMatchCompiler(_MatchCompiler):
    """The base match compiler plus expander application and tree sharing."""

    def __init__(self, lang: Language) -> None:
        super().__init__(lang)
        self.rec = current_recorder()

    # -- extensibility: match expanders ------------------------------------

    def _expander_of(self, head: Syntax) -> Optional[MatchExpander]:
        if not head.is_identifier():
            return None
        try:
            binding = TABLE.resolve(head, 0)
        except SyntaxExpansionError:
            return None
        if binding is None:
            return None
        ctx = peek_context()
        if ctx is None:
            return None
        meaning = ctx.meaning_of(binding)
        if isinstance(meaning, TransformerMeaning) and isinstance(
            meaning.value, MatchExpander
        ):
            return meaning.value
        return None

    def _normalize(self, pattern: Syntax) -> Syntax:
        """Apply match expanders at the pattern's head to a fixed point."""
        for _ in range(_MAX_EXPANSIONS):
            e = pattern.e
            if not (isinstance(e, tuple) and e):
                return pattern
            expander = self._expander_of(e[0])
            if expander is None:
                return pattern
            pattern = expander.expand_pattern(pattern)
        raise SyntaxExpansionError(
            "match: expander expansion did not terminate", pattern, code="E004"
        )

    def compile_pattern(
        self, subj: Syntax, pattern: Syntax, success: Syntax, fail: Syntax
    ) -> Syntax:
        return super().compile_pattern(subj, self._normalize(pattern), success, fail)

    # -- exhaustiveness reporting ------------------------------------------

    @staticmethod
    def _is_catch_all(pattern: Syntax) -> bool:
        return isinstance(pattern.e, Symbol)

    def compile(
        self, subject: Syntax, clauses: tuple[Syntax, ...], stx: Syntax
    ) -> Syntax:
        patterns = []
        for clause in clauses:
            if isinstance(clause.e, tuple) and len(clause.e) >= 2:
                patterns.append(self._normalize(clause.e[0]))
        if patterns and not self._is_catch_all(patterns[-1]):
            self.rec.opt_near_miss(
                "match-exhaustive",
                "match",
                "no catch-all clause: unmatched subjects raise at runtime",
                best_srcloc(stx),
            )
        for i, pattern in enumerate(patterns[:-1]):
            if self._is_catch_all(pattern):
                self.rec.opt_near_miss(
                    "match-exhaustive",
                    "match",
                    f"clause {i + 2} is unreachable: clause {i + 1} matches "
                    "everything",
                    best_srcloc(clauses[i + 1]),
                )
                break
        return super().compile(subject, clauses, stx)

    # -- decision trees: shared root tests across adjacent clauses ---------

    def _root_kind(self, pattern: Syntax) -> Optional[tuple]:
        e = pattern.e
        if not (isinstance(e, tuple) and e and e[0].is_identifier()):
            return None
        head = e[0].e.name
        if head == "list" and len(e) >= 2:
            return ("pair",)
        if head == "cons" and len(e) == 3:
            return ("pair",)
        if head == "vector":
            return ("vector", len(e) - 1)
        return None

    def _decompose_pair(self, pattern: Syntax) -> tuple[Syntax, Syntax]:
        """A pair-rooted pattern as (car pattern, cdr pattern)."""
        e = pattern.e
        if e[0].e.name == "cons":
            return e[1], e[2]
        rest = Syntax((e[0], *e[2:]), pattern.scopes, pattern.srcloc)
        return e[1], rest

    def compile_clauses(
        self, subj: Syntax, clauses: list[Syntax], stx: Syntax
    ) -> Syntax:
        if not clauses:
            return super().compile_clauses(subj, clauses, stx)
        clause = clauses[0]
        if not (isinstance(clause.e, tuple) and len(clause.e) >= 2):
            raise SyntaxExpansionError("match: bad clause", clause)
        first = self._normalize(clause.e[0])
        kind = self._root_kind(first)
        run: list[tuple[Syntax, Syntax]] = []  # (normalized pattern, clause)
        if kind is not None:
            for candidate in clauses:
                if not (
                    isinstance(candidate.e, tuple) and len(candidate.e) >= 2
                ):
                    break
                normalized = self._normalize(candidate.e[0])
                if self._root_kind(normalized) != kind:
                    break
                run.append((normalized, candidate))
        if len(run) < 2:
            return super().compile_clauses(subj, clauses, stx)

        rest = self.compile_clauses(subj, clauses[len(run):], stx)
        exit_id = self.fresh_id("match-exit")
        exit_call = expand_with(self.lang, "(#%plain-app fail)", fail=exit_id)
        self.rec.opt_fired(
            "match-dtree",
            "match",
            f"shared {kind[0]} test across {len(run)} clauses",
            best_srcloc(run[0][1]),
        )
        if kind[0] == "pair":
            tested = self._compile_pair_run(subj, run, exit_call)
        else:
            tested = self._compile_vector_run(subj, kind[1], run, exit_call)
        return expand_with(
            self.lang,
            "(let ((fail (#%plain-lambda () rest))) tested)",
            fail=exit_id,
            rest=rest,
            tested=tested,
        )

    def _chain(
        self,
        run: list[tuple[Syntax, Syntax]],
        exit_call: Syntax,
        compile_clause,
    ) -> Syntax:
        """Try each run clause in order inside the shared test's success arm."""
        inner = exit_call
        for normalized, clause in reversed(run):
            body = list(clause.e[1:])
            success = expand_with(self.lang, "(begin body ...)", body=body)
            if inner is exit_call:
                inner = compile_clause(normalized, success, exit_call)
            else:
                next_id = self.fresh_id("match-fail")
                next_call = expand_with(
                    self.lang, "(#%plain-app fail)", fail=next_id
                )
                matched = compile_clause(normalized, success, next_call)
                inner = expand_with(
                    self.lang,
                    "(let ((fail (#%plain-lambda () rest))) matched)",
                    fail=next_id,
                    rest=inner,
                    matched=matched,
                )
        return inner

    def _compile_pair_run(
        self, subj: Syntax, run: list[tuple[Syntax, Syntax]], exit_call: Syntax
    ) -> Syntax:
        head_id = self.fresh_id("match-car")
        tail_id = self.fresh_id("match-cdr")

        def compile_clause(pattern, success, fail):
            car_pat, cdr_pat = self._decompose_pair(pattern)
            inner = self.compile_pattern(tail_id, cdr_pat, success, fail)
            return self.compile_pattern(head_id, car_pat, inner, fail)

        chain = self._chain(run, exit_call, compile_clause)
        return expand_with(
            self.lang,
            "(if (#%plain-app pair? subj)"
            " (let ((h (#%plain-app unsafe-car subj)) (t (#%plain-app unsafe-cdr subj)))"
            " inner) fail)",
            subj=subj, h=head_id, t=tail_id, inner=chain, fail=exit_call,
        )

    def _compile_vector_run(
        self,
        subj: Syntax,
        arity: int,
        run: list[tuple[Syntax, Syntax]],
        exit_call: Syntax,
    ) -> Syntax:
        element_ids = [self.fresh_id(f"match-vec{i}") for i in range(arity)]

        def compile_clause(pattern, success, fail):
            inner = success
            for ident, sub in reversed(list(zip(element_ids, pattern.e[1:]))):
                inner = self.compile_pattern(ident, sub, inner, fail)
            return inner

        chain = self._chain(run, exit_call, compile_clause)
        binds = [
            expand_with(
                self.lang,
                "(x (#%plain-app unsafe-vector-ref subj (quote i)))",
                x=ident, subj=subj, i=Syntax(i),
            )
            for i, ident in enumerate(element_ids)
        ]
        return expand_with(
            self.lang,
            "(if (if (#%plain-app vector? subj)"
            "       (#%plain-app = (#%plain-app vector-length subj) (quote n))"
            "       (quote #f))"
            " (let (bind ...) inner) fail)",
            subj=subj, n=Syntax(arity), bind=binds, inner=chain, fail=exit_call,
        )


def make_match_ext_language(registry: ModuleRegistry) -> Language:
    racket = registry.language("racket")
    lang = Language("racket/match-ext", dialects=("match-ext",))
    lang.inherit(racket, exclude=("match",))
    _install_primitives()
    lang.export(
        "make-match-expander",
        ModuleBinding(KERNEL_PATH, Symbol("make-match-expander")),
    )

    @fn_macro(lang, "match")
    def match(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (isinstance(items, tuple) and len(items) >= 3):
            raise SyntaxExpansionError("match: bad syntax", stx)
        return _ExtMatchCompiler(lang).compile(items[1], items[2:], stx)

    # the right-hand side re-evaluates on every visit (from source or from
    # a cached artifact), rebuilding the expander exactly like any other
    # object-language transformer
    rule_macro(
        lang,
        "define-match-expander",
        [(
            "(_ name rules)",
            "(define-syntaxes (name)"
            " (#%plain-app make-match-expander (quote-syntax rules)))",
        )],
    )

    registry.register_language(lang)
    registry.register_dialect(MatchExtDialect())
    return lang
