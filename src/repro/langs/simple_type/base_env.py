"""The initial type environment of the ``simple-type`` language (§4.2):
"types for any identifiers that the language provides, such as ``+``"."""

from __future__ import annotations

from repro.expander.env import ExpandContext
from repro.langs.typed_common import env as tenv
from repro.langs.typed_common import types as ty
from repro.modules.registry import KERNEL_PATH

_I, _F, _R, _N = ty.INTEGER, ty.FLOAT, ty.REAL, ty.NUMBER
_B, _A, _V = ty.BOOLEAN, ty.ANY, ty.VOID


def _arith() -> ty.CaseFunType:
    return ty.CaseFunType(
        [
            ty.FunType([_I, _I], _I),
            ty.FunType([_F, _F], _F),
            ty.FunType([_R, _R], _R),
            ty.FunType([_N, _N], _N),
        ]
    )


def _cmp() -> ty.FunType:
    return ty.FunType([_R, _R], _B)


def _unary_num() -> ty.CaseFunType:
    return ty.CaseFunType(
        [
            ty.FunType([_I], _I),
            ty.FunType([_F], _F),
            ty.FunType([_R], _R),
            ty.FunType([_N], _N),
        ]
    )


BASE_TYPES: dict[str, ty.Type] = {
    "+": _arith(),
    "-": _arith(),
    "*": _arith(),
    "/": ty.CaseFunType([ty.FunType([_F, _F], _F), ty.FunType([_N, _N], _N)]),
    "<": _cmp(),
    "<=": _cmp(),
    ">": _cmp(),
    ">=": _cmp(),
    "=": ty.FunType([_N, _N], _B),
    "add1": _unary_num(),
    "sub1": _unary_num(),
    "abs": _unary_num(),
    "min": _arith(),
    "max": _arith(),
    "sqrt": ty.CaseFunType([ty.FunType([_F], _F), ty.FunType([_N], _N)]),
    "magnitude": ty.CaseFunType(
        [ty.FunType([ty.FLOAT_COMPLEX], _F), ty.FunType([_R], _R)]
    ),
    "exact->inexact": ty.CaseFunType([ty.FunType([_R], _F), ty.FunType([_N], _N)]),
    "zero?": ty.FunType([_N], _B),
    "not": ty.FunType([_A], _B),
    "void": ty.FunType([], _V),
    "void?": ty.FunType([_A], _B),
    "display": ty.FunType([_A], _V),
    "displayln": ty.FunType([_A], _V),
    "newline": ty.FunType([], _V),
    "equal?": ty.FunType([_A, _A], _B),
}


def install_base_type_env(ctx: ExpandContext) -> None:
    table = tenv.type_table(ctx)
    for name, t in BASE_TYPES.items():
        table[("module", KERNEL_PATH, name, 0)] = t
