"""The ``simple-type`` ``#%module-begin``: the fig. 2 driver, extended with
the §5 provide rewriting, the §6.2 export indirection, and the fig. 5
optimizer pass.

The driver's shape is exactly the paper's:

1. set the ``typed-context?`` flag (§6.2 — before expanding the contents);
2. ``local-expand`` the whole module body to core forms;
3. typecheck each form in turn;
4. optimize (fig. 5);
5. rewrite provides so exported types persist and exports are protected;
6. return new core forms, avoiding a re-typecheck of the input.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.core.parse import core_form_of
from repro.errors import SyntaxExpansionError
from repro.expander.env import ExpandContext, current_context
from repro.expander.expander import Expander, current_expander
from repro.langs.base import expand_with, fn_macro
from repro.langs.simple_type.base_env import install_base_type_env
from repro.langs.simple_type.checker import SimpleChecker
from repro.langs.simple_type.optimize import SimpleOptimizer
from repro.langs.typed_common import env as tenv
from repro.langs.typed_common import types as ty
from repro.modules.registry import Language
from repro.runtime.values import Symbol
from repro.syn.binding import TABLE
from repro.syn.syntax import Syntax, datum_to_syntax


def install_module_begin(
    lang: Language,
    checker_factory: Any = SimpleChecker,
    optimizer_factory: Any = SimpleOptimizer,
    base_env_installer: Any = install_base_type_env,
    config: Optional[dict[str, Any]] = None,
) -> None:
    """Install a fig. 2-style typed ``#%module-begin`` on ``lang``.

    ``config`` is a mutable dict consulted at each compilation:
    ``{"optimize": bool}`` — the benchmark harness toggles it for the
    optimizer ablation.
    """

    @fn_macro(lang, "#%module-begin")
    def module_begin(stx: Syntax, lang: Language) -> Syntax:
        ctx = current_context()
        expander = current_expander()

        # §6.2: flag this compilation as typed, in the fresh store. Untyped
        # compilations never run this code, so they can never see #t.
        tenv.typed_context_flag(ctx)[0] = True
        base_env_installer(ctx)

        # fig. 2: fully expand the module body to core forms
        pmb = expand_with(
            lang, "(#%plain-module-begin form ...)", form=list(stx.e[1:])
        )
        core = expander.local_expand(pmb, "module-begin")

        # fig. 2: typecheck each form in turn. The checker records every
        # failing form in the compilation's diagnostic session; stop here
        # (before the optimizer, which assumes well-typed input) if any form
        # failed, reporting all of them at once.
        from repro.observe.recorder import current_recorder

        rec = current_recorder()
        checker = checker_factory(ctx)
        with rec.span("typecheck", ctx.module_path):
            checker.check_module(list(core.e[1:]))
        ctx.diagnostics.raise_if_errors()

        # fig. 5: the type-driven optimizer
        if config is None or config.get("optimize", True):
            optimizer = optimizer_factory(ctx)
            with rec.span("optimize", ctx.module_path):
                body = [optimizer.optimize_module_form(form) for form in core.e[1:]]
        else:
            body = list(core.e[1:])

        # §5 + §6.2: rewrite provides
        body = _rewrite_provides(body, ctx, lang, checker)

        # construct the output module from new core forms, avoiding a
        # re-expansion of the typechecked code (the driver still traverses
        # it, but define-syntaxes/begin-for-syntax are marked as processed)
        return expand_with(lang, "(#%plain-module-begin form ...)", form=body)


def _rewrite_provides(
    body: list[Syntax], ctx: ExpandContext, lang: Language, checker: Any
) -> list[Syntax]:
    """Rewrite each provided binding per §5 (type persistence) and §6.2
    (contract/plain indirection chosen by the client's typed-context? flag).
    """
    out: list[Syntax] = []
    extra: list[Syntax] = []
    for form in body:
        if core_form_of(form, 0) != "#%provide":
            out.append(form)
            continue
        new_specs: list[Syntax] = []
        specs: list[Syntax] = []
        for spec in form.e[1:]:
            if (
                isinstance(spec.e, tuple)
                and len(spec.e) == 1
                and spec.e[0].is_identifier()
                and spec.e[0].e.name == "all-defined"
            ):
                specs.extend(ctx.defined_names.values())
            else:
                specs.append(spec)
        for spec in specs:
            rewritten = _rewrite_one_provide(spec, ctx, lang, extra)
            if rewritten is not None:
                new_specs.append(rewritten)
        if new_specs:
            out.append(expand_with(lang, "(#%provide spec ...)", spec=new_specs))
    return out + extra


def _rewrite_one_provide(
    spec: Syntax, ctx: ExpandContext, lang: Language, extra: list[Syntax]
) -> Optional[Syntax]:
    if spec.is_identifier():
        internal, external_name = spec, spec.e.name
    elif (
        isinstance(spec.e, tuple)
        and len(spec.e) == 3
        and spec.e[0].is_identifier()
        and spec.e[0].e.name == "rename"
    ):
        internal, external_name = spec.e[1], spec.e[2].e.name
    else:
        raise SyntaxExpansionError("provide: unsupported spec in typed module", spec)

    binding = TABLE.resolve(internal, 0)
    if binding is None:
        raise SyntaxExpansionError(
            f"provide: unbound identifier {internal.e}", spec
        )
    from repro.expander.env import TransformerMeaning

    if isinstance(ctx.meaning_of(binding), TransformerMeaning):
        # §6.3: "Typed Racket currently prevents macros defined in typed
        # modules from escaping into untyped modules" — their expansions
        # could reference internals not protected by contracts.
        raise SyntaxExpansionError(
            f"provide: macros may not be provided from a typed module "
            f"({internal.e})",
            spec,
        )
    t = tenv.type_table(ctx).get(binding.key())
    if t is None:
        # an untyped value binding: leave the spec alone
        return spec

    ser = datum_to_syntax(None, ty.serialize(t))
    scopes = internal.scopes
    defensive = Syntax(Symbol(f"defensive-{external_name}"), scopes, internal.srcloc)
    indirection = Syntax(
        Symbol(f"typed-export-{external_name}"), scopes, internal.srcloc
    )
    external = Syntax(Symbol(external_name), scopes, internal.srcloc)

    # the §5 declaration: persist the export's type into every client
    # compilation's environment
    extra.append(
        expand_with(
            lang,
            "(begin-for-syntax (#%plain-app add-type! (quote-syntax n) (quote ser)))",
            n=internal,
            ser=ser,
        )
    )
    # §6.2 stage 1: the defensive (contract-protected) variant
    from repro.langs.simple_type.forms import boundary_loc_args

    extra.append(
        expand_with(
            lang,
            "(define-values (defensive)"
            " (#%plain-app contract (#%plain-app type->contract (quote ser))"
            "  n (quote typed-module) (quote untyped-client) locarg ...))",
            defensive=defensive,
            ser=ser,
            n=internal,
            locarg=boundary_loc_args(lang, internal),
        ).property_put("typed-ignore", True)
    )
    # §6.2 stage 2: the indirection macro, choosing by the client
    # compilation's typed-context? flag at expansion time
    extra.append(
        expand_with(
            lang,
            "(define-syntaxes (indirection)"
            " (#%plain-lambda (use)"
            "  (if (#%plain-app identifier? use)"
            "      (if (#%plain-app typed-context?) (quote-syntax n) (quote-syntax defensive))"
            "      (#%plain-app datum->syntax use"
            "       (#%plain-app cons"
            "        (if (#%plain-app typed-context?) (quote-syntax n) (quote-syntax defensive))"
            "        (#%plain-app cdr (#%plain-app syntax-e use)))))))",
            indirection=indirection,
            n=internal,
            defensive=defensive,
        )
    )
    # §6.2 stage 3: provide the indirection under the original name
    return expand_with(
        lang, "(rename indirection external)", indirection=indirection, external=external
    )
