"""The single-module typechecker of fig. 3.

``typecheck`` takes a fully-expanded term and an optional expected type; each
clause considers one of the core forms of fig. 1. The two distinctive
features the paper calls out are both here:

- the type environment is an identifier-keyed table, reusing the host's
  binding structure (see :mod:`repro.langs.typed_common.env`);
- ``type_of`` reads the ``type-annotation`` syntax property that the
  language's binding forms attached (§3.1), with a known key.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Optional

from repro.errors import ReproError, TypeCheckError
from repro.expander.env import ExpandContext
from repro.core.parse import core_form_of
from repro.langs.typed_common import env as tenv
from repro.langs.typed_common import types as ty
from repro.runtime.values import Symbol
from repro.syn.binding import TABLE
from repro.syn.syntax import ImproperList, Syntax

TYPE_ANNOTATION_KEY = "type-annotation"
SKIP_KEY = "typed-ignore"


class SimpleChecker:
    """The paper's fig. 3 checker, one method per core form."""

    def __init__(self, ctx: ExpandContext) -> None:
        self.ctx = ctx
        self.types = tenv.type_table(ctx)
        self.expr_types = tenv.expr_types(ctx)
        self.session = ctx.diagnostics

    # -- the two fig. 3 helpers -------------------------------------------

    def lookup_type(self, ident: Syntax) -> ty.Type:
        binding = TABLE.resolve(ident, 0)
        if binding is None:
            raise TypeCheckError(f"unbound variable {ident.e}", ident)
        t = self.types.get(binding.key())
        if t is None:
            if binding.key() in self.ctx.poisoned:
                # the definition failed to expand and was already reported;
                # treat references as bottom rather than cascading
                return ty.NOTHING
            raise TypeCheckError(f"untyped variable {ident.e}", ident)
        return t

    def add_type(self, ident: Syntax, t: ty.Type) -> None:
        binding = TABLE.resolve(ident, 0)
        if binding is None:
            raise TypeCheckError(f"unbound variable {ident.e}", ident)
        self.types[binding.key()] = t

    def type_of(self, ident: Syntax) -> ty.Type:
        """Read the type the user attached to a binding position (§4.3)."""
        annotation = ident.property_get(TYPE_ANNOTATION_KEY)
        if annotation is None:
            raise TypeCheckError(f"untyped variable {ident.e}", ident)
        if isinstance(annotation, Syntax):
            return ty.parse_type(annotation)
        return ty.parse_type_datum(annotation, ident)

    # -- module-level entry --------------------------------------------------

    def check_module(self, forms: list[Syntax]) -> None:
        """fig. 2's loop: typecheck each form in turn.

        Each form is checked inside the compilation's diagnostic session, so
        a type error in one definition doesn't hide errors in the next: the
        driver reports every failing form at once (``raise_if_errors`` at the
        end of the ``#%module-begin``).
        """
        for form in forms:
            with self.session.recover():
                try:
                    self.typecheck_module_form(form)
                except ReproError:
                    self.poison_definition(form)
                    raise

    def poison_definition(self, form: Syntax) -> None:
        """After a definition fails to check, bind its identifiers to the
        bottom type so later forms that mention them don't pile cascading
        "untyped variable" errors on top of the one real diagnostic."""
        if core_form_of(form, 0) != "define-values":
            return
        ids = form.e[1].e
        if not isinstance(ids, tuple):
            return
        for ident in ids:
            binding = TABLE.resolve(ident, 0)
            if binding is not None and binding.key() not in self.types:
                self.types[binding.key()] = ty.NOTHING

    def typecheck_module_form(self, form: Syntax) -> Optional[ty.Type]:
        if form.property_get(SKIP_KEY):
            return None
        head = core_form_of(form, 0)
        if head in ("#%provide", "#%require", "define-syntaxes", "begin-for-syntax"):
            return None
        if head == "define-values":
            ids = form.e[1].e
            if len(ids) != 1:
                raise TypeCheckError("define-values: expected a single binding", form)
            ident = ids[0]
            declared = self.type_of(ident)
            self.add_type(ident, declared)
            self.typecheck(form.e[2], declared)
            return None
        return self.typecheck(form)

    # -- the checker proper (fig. 3) -------------------------------------------

    def typecheck(self, t: Syntax, check: Optional[ty.Type] = None) -> ty.Type:
        the_type = self._typecheck(t)
        if check is not None and not ty.subtype(the_type, check):
            raise TypeCheckError("wrong type", t)
        self.expr_types[id(t)] = the_type
        return the_type

    def _typecheck(self, t: Syntax) -> ty.Type:
        if t.is_identifier():
            return self.lookup_type(t)
        head = core_form_of(t, 0)
        if head == "quote":
            return self._type_of_datum(t.e[1], t)
        if head == "quote-syntax":
            return ty.ANY
        if head == "if":
            self.typecheck(t.e[1], ty.BOOLEAN)
            then_t = self.typecheck(t.e[2])
            else_t = self.typecheck(t.e[3])
            if then_t != else_t:
                raise TypeCheckError("if branches must agree", t)
            return else_t
        if head == "#%plain-lambda":
            return self._check_lambda(t)
        if head == "#%plain-app":
            return self._check_app(t)
        if head in ("begin", "begin0", "#%expression"):
            body_types = [self.typecheck(e) for e in t.e[1:]]
            return body_types[0 if head == "begin0" else -1]
        if head in ("let-values", "letrec-values"):
            return self._check_let(t, recursive=head == "letrec-values")
        if head == "set!":
            target_type = self.lookup_type(t.e[1])
            self.typecheck(t.e[2], target_type)
            return ty.VOID
        raise TypeCheckError("unsupported form", t)

    def _type_of_datum(self, d: Syntax, where: Syntax) -> ty.Type:
        e = d.e
        if isinstance(e, bool):
            return ty.BOOLEAN
        if isinstance(e, int):
            return ty.INTEGER
        if isinstance(e, float):
            return ty.FLOAT
        if isinstance(e, (Fraction,)):
            return ty.REAL
        if isinstance(e, complex):
            return ty.FLOAT_COMPLEX
        if isinstance(e, str):
            return ty.STRING
        from repro.runtime.values import Char

        if isinstance(e, Char):
            return ty.CHAR
        if isinstance(e, Symbol):
            return ty.SYMBOL
        raise TypeCheckError("cannot type this literal", where)

    def _formal_ids(self, formals: Syntax, where: Syntax) -> list[Syntax]:
        if isinstance(formals.e, tuple):
            return list(formals.e)
        raise TypeCheckError("rest arguments are not supported", where)

    def _check_lambda(self, t: Syntax) -> ty.Type:
        formals = self._formal_ids(t.e[1], t)
        formal_types = [self.type_of(f) for f in formals]
        for ident, ftype in zip(formals, formal_types):
            self.add_type(ident, ftype)
        body = t.e[2:]
        result = None
        for expr in body:
            result = self.typecheck(expr)
        assert result is not None
        return ty.FunType(formal_types, result)

    def _check_app(self, t: Syntax) -> ty.Type:
        args = t.e[2:]
        argtys = [self.typecheck(a) for a in args]
        op_type = self.typecheck(t.e[1])
        if op_type is ty.NOTHING:
            # the operator is a poisoned (already-reported) definition;
            # don't cascade
            return ty.NOTHING
        if isinstance(op_type, ty.FunType):
            if len(argtys) != len(op_type.params) or not all(
                ty.subtype(a, p) for a, p in zip(argtys, op_type.params)
            ):
                raise TypeCheckError("wrong argument types", t)
            return op_type.result
        if isinstance(op_type, ty.CaseFunType):
            for case in op_type.cases:
                if len(argtys) == len(case.params) and all(
                    ty.subtype(a, p) for a, p in zip(argtys, case.params)
                ):
                    return case.result
            raise TypeCheckError("no matching case for arguments", t)
        raise TypeCheckError("not a function type", t.e[1])

    def _check_let(self, t: Syntax, recursive: bool) -> ty.Type:
        clauses = t.e[1].e
        if recursive:
            # first pass: declared types (from annotations) for all ids
            for clause in clauses:
                for ident in clause.e[0].e:
                    if ident.property_get(TYPE_ANNOTATION_KEY) is not None:
                        self.add_type(ident, self.type_of(ident))
        for clause in clauses:
            ids, rhs = clause.e
            if len(ids.e) == 0:
                self.typecheck(rhs)
                continue
            if len(ids.e) != 1:
                raise TypeCheckError("multiple values are not supported", clause)
            ident = ids.e[0]
            if ident.property_get(TYPE_ANNOTATION_KEY) is not None:
                declared = self.type_of(ident)
                self.add_type(ident, declared)
                self.typecheck(rhs, declared)
            else:
                self.add_type(ident, self.typecheck(rhs))
        result = None
        for expr in t.e[2:]:
            result = self.typecheck(expr)
        assert result is not None
        return result
