"""Annotation forms of the ``simple-type`` language (§3.1, §4.1).

These forms reuse the host's binding forms and smuggle type information
out-of-band through the ``type-annotation`` syntax property, exactly as the
paper's ``define:`` does: "later stages of processing can read the type
annotation from the binding, but the type annotation does not affect the
behavior of Racket's ``define``".
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import SyntaxExpansionError
from repro.langs.base import expand_with, fn_macro
from repro.langs.simple_type.checker import TYPE_ANNOTATION_KEY
from repro.modules.registry import Language
from repro.runtime.values import Symbol
from repro.syn.syntax import Syntax, datum_to_syntax


def _is_colon(stx: Syntax) -> bool:
    return stx.is_identifier() and stx.e.name == ":"


def annotate(ident: Syntax, type_stx: Any) -> Syntax:
    """Attach a type annotation property to a binder identifier."""
    return ident.property_put(TYPE_ANNOTATION_KEY, type_stx)


def parse_annotated_formal(formal: Syntax) -> Syntax:
    """``[x : T]`` -> ``x`` carrying the annotation property."""
    if not (isinstance(formal.e, tuple) and len(formal.e) == 3 and _is_colon(formal.e[1])):
        raise SyntaxExpansionError("expected [id : type]", formal)
    ident = formal.e[0]
    if not ident.is_identifier():
        raise SyntaxExpansionError("expected an identifier", ident)
    return annotate(ident, formal.e[2])


def parse_maybe_annotated_formal(formal: Syntax) -> Syntax:
    """``[x : T]`` or plain ``x``."""
    if formal.is_identifier():
        return formal
    return parse_annotated_formal(formal)


def function_type_syntax(param_types: list[Syntax], result: Syntax) -> Syntax:
    """Build the syntax of ``(-> T ... R)``."""
    arrow = Syntax(Symbol("->"))
    return datum_to_syntax(None, tuple([arrow, *param_types, result]))


def boundary_loc_args(lang: Language, ident: Syntax) -> list[Syntax]:
    """The optional srcloc argument to the ``contract`` primitive: a quoted
    ``(source line column)`` naming the typed/untyped boundary, so contract
    violations can point back at the clause that created the boundary.
    Empty when the identifier has no source location."""
    loc = ident.srcloc
    if loc is None:
        return []
    locdatum = datum_to_syntax(None, (loc.source, loc.line, loc.column))
    return [expand_with(lang, "(quote loc)", loc=locdatum)]


def install_forms(lang: Language) -> None:
    @fn_macro(lang, "define")
    def define(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (isinstance(items, tuple) and len(items) >= 3):
            raise SyntaxExpansionError("define: bad syntax", stx)
        # (define x : T rhs)
        if len(items) == 5 and items[1].is_identifier() and _is_colon(items[2]):
            ann = annotate(items[1], items[3])
            return expand_with(lang, "(define-values (x) rhs)", x=ann, rhs=items[4])
        # (define x rhs) — type comes from a (: x T) declaration or inference
        if len(items) == 3 and items[1].is_identifier():
            return expand_with(
                lang, "(define-values (x) rhs)", x=items[1], rhs=items[2]
            )
        # (define (f formal ...) [: R] body ...) where each formal is either
        # [z : T] or a plain identifier
        if isinstance(items[1].e, tuple) and items[1].e:
            header = items[1].e
            fn_name = header[0]
            if not fn_name.is_identifier():
                raise SyntaxExpansionError("define: expected a function name", items[1])
            formals = [parse_maybe_annotated_formal(f) for f in header[1:]]
            if _is_colon(items[2]):
                if len(items) < 5:
                    raise SyntaxExpansionError("define: missing body", stx)
                result_type: Optional[Syntax] = items[3]
                body = list(items[4:])
            else:
                result_type = None
                body = list(items[2:])
            param_types = [f.property_get(TYPE_ANNOTATION_KEY) for f in formals]
            if result_type is not None and all(p is not None for p in param_types):
                fn_name = annotate(
                    fn_name, function_type_syntax(param_types, result_type)
                )
            elif result_type is not None:
                raise SyntaxExpansionError(
                    "define: result annotation requires annotated parameters", stx
                )
            lam = expand_with(
                lang, "(#%plain-lambda (z ...) body ...)", z=formals, body=body
            ).property_put("inferred-name", fn_name.e.name)
            return expand_with(lang, "(define-values (f) lam)", f=fn_name, lam=lam)
        raise SyntaxExpansionError(
            "define: expected (define x : T e) or (define (f [x : T] ...) : R body)",
            stx,
        )

    @fn_macro(lang, "define:")
    def define_colon(stx: Syntax, lang: Language) -> Syntax:
        # the paper's §3.1 form: (define: name : ty rhs)
        items = stx.e
        if not (
            isinstance(items, tuple)
            and len(items) == 5
            and items[1].is_identifier()
            and _is_colon(items[2])
        ):
            raise SyntaxExpansionError("define:: bad syntax", stx)
        ann = annotate(items[1], items[3])
        return expand_with(lang, "(define-values (name) rhs)", name=ann, rhs=items[4])

    @fn_macro(lang, "lambda:")
    def lambda_colon(stx: Syntax, lang: Language) -> Syntax:
        items = stx.e
        if not (
            isinstance(items, tuple)
            and len(items) >= 3
            and isinstance(items[1].e, tuple)
        ):
            raise SyntaxExpansionError("lambda:: bad syntax", stx)
        formals = [parse_annotated_formal(f) for f in items[1].e]
        return expand_with(
            lang,
            "(#%plain-lambda (z ...) body ...)",
            z=formals,
            body=list(items[2:]),
        )

    @fn_macro(lang, "let:")
    def let_colon(stx: Syntax, lang: Language) -> Syntax:
        # (let: ([x : T rhs] ...) body ...) -> ((lambda: ([x : T] ...) body) rhs ...)
        # (let: loop : R ([x : T rhs] ...) body ...)   (annotated named let)
        items = stx.e
        if (
            isinstance(items, tuple)
            and len(items) >= 5
            and items[1].is_identifier()
            and _is_colon(items[2])
            and isinstance(items[4].e, tuple)
        ):
            return _named_let_colon(stx, lang)
        if not (
            isinstance(items, tuple)
            and len(items) >= 3
            and isinstance(items[1].e, tuple)
        ):
            raise SyntaxExpansionError("let:: bad syntax", stx)
        formal_specs = []
        rhss = []
        for clause in items[1].e:
            if not (
                isinstance(clause.e, tuple)
                and len(clause.e) == 4
                and _is_colon(clause.e[1])
            ):
                raise SyntaxExpansionError("let:: expected [x : T rhs]", clause)
            formal_specs.append(
                Syntax(clause.e[:3], clause.scopes, clause.srcloc)
            )
            rhss.append(clause.e[3])
        return expand_with(
            lang,
            "((lambda: (spec ...) body ...) rhs ...)",
            spec=formal_specs,
            body=list(items[2:]),
            rhs=rhss,
        )

    _install_require_typed(lang)


def _named_let_colon(stx: Syntax, lang: Language) -> Syntax:
    """(let: loop : R ([x : T init] ...) body ...) — Typed Racket's
    annotated named let, for typed tail-recursive loops."""
    items = stx.e
    loop_name, result_type, clauses = items[1], items[3], items[4]
    formals: list[Syntax] = []
    inits: list[Syntax] = []
    param_types: list[Syntax] = []
    for clause in clauses.e:
        if not (
            isinstance(clause.e, tuple)
            and len(clause.e) == 4
            and _is_colon(clause.e[1])
        ):
            raise SyntaxExpansionError("let:: expected [x : T init]", clause)
        formal = annotate(clause.e[0], clause.e[2])
        formals.append(formal)
        param_types.append(clause.e[2])
        inits.append(clause.e[3])
    annotated_loop = annotate(
        loop_name, function_type_syntax(param_types, result_type)
    )
    lam = expand_with(
        lang,
        "(#%plain-lambda (x ...) body ...)",
        x=formals,
        body=list(items[5:]),
    ).property_put("inferred-name", loop_name.e.name)
    return expand_with(
        lang,
        "((letrec-values (((loop) lam)) loop) init ...)",
        loop=annotated_loop,
        lam=lam,
        init=inits,
    )


def _install_require_typed(lang: Language) -> None:
    """Fig. 4: typed imports from untyped modules, in three stages."""

    @fn_macro(lang, "require/typed")
    def require_typed(stx: Syntax, lang: Language) -> Syntax:
        from repro.langs.typed_common.types import parse_type, serialize

        items = stx.e
        if not (isinstance(items, tuple) and len(items) >= 3):
            raise SyntaxExpansionError("require/typed: bad syntax", stx)
        module_spec = items[1]
        forms: list[Syntax] = []
        for clause in items[2:]:
            if not (isinstance(clause.e, tuple) and len(clause.e) == 2):
                raise SyntaxExpansionError(
                    "require/typed: expected [id type]", clause
                )
            ident, type_stx = clause.e
            if not ident.is_identifier():
                raise SyntaxExpansionError("require/typed: expected an identifier", ident)
            ser = datum_to_syntax(None, serialize(parse_type(type_stx)))
            unsafe_id = Syntax(
                Symbol(f"unsafe-{ident.e.name}"), lang.anchor.scopes, ident.srcloc
            )
            # Stage 1: import under a macro-introduced (hence private) name
            forms.append(
                expand_with(
                    lang,
                    "(#%require (only-in mod (id unsafeid)))",
                    mod=module_spec,
                    id=ident,
                    unsafeid=unsafe_id,
                )
            )
            # Stage 3: contract-protected definition (the typechecker must
            # not process this meta-information: it is marked to be ignored,
            # our equivalent of the paper's begin-ignored). Emitted *before*
            # stage 2 so that the definition's binding exists when the
            # begin-for-syntax declaration resolves `id` during pass 1.
            define = expand_with(
                lang,
                "(define-values (id)"
                " (#%plain-app contract"
                "  (#%plain-app type->contract (quote ser))"
                "  unsafeid (quote modname) (quote typed-module) locarg ...))",
                id=ident,
                ser=ser,
                unsafeid=unsafe_id,
                modname=module_spec,
                locarg=boundary_loc_args(lang, ident),
            ).property_put("typed-ignore", True)
            forms.append(define)
            # Stage 2: declare the type at compile time (persisted via §5)
            forms.append(
                expand_with(
                    lang,
                    "(begin-for-syntax"
                    " (#%plain-app add-type! (quote-syntax id) (quote ser)))",
                    id=ident,
                    ser=ser,
                )
            )
        return expand_with(lang, "(begin form ...)", form=forms)
