"""``simple-type``: the paper's small typed sister language (§4–§7).

A module written in this language::

    #lang simple-type
    (define x : Integer 1)
    (define (f [z : Integer]) : Integer (* x (+ x z)))
    (provide f)

is fully expanded, typechecked against fig. 3's rules, optimized per fig. 5,
and linked safely with untyped modules per §5–§6 — all with no changes to
the host: this package is a library.
"""

from __future__ import annotations

from repro.langs.racket import make_racket_language
from repro.langs.simple_type.forms import install_forms
from repro.langs.simple_type.module_begin import install_module_begin
from repro.modules.registry import Language, ModuleRegistry

from repro.langs.simple_type.checker import SimpleChecker, TYPE_ANNOTATION_KEY
from repro.langs.simple_type.optimize import SimpleOptimizer

__all__ = [
    "make_simple_type_language",
    "SimpleChecker",
    "SimpleOptimizer",
    "TYPE_ANNOTATION_KEY",
]


def make_simple_type_language(registry: ModuleRegistry) -> Language:
    racket = registry.languages.get("racket")
    if racket is None:
        racket = make_racket_language(registry)
    lang = Language("simple-type")
    # linguistic reuse: everything except the module hook and `define`
    lang.inherit(racket, exclude=("#%module-begin", "define"))
    install_forms(lang)
    install_module_begin(lang)
    registry.register_language(lang)
    return lang
