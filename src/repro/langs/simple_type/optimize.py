"""The fig. 5 optimizer: float specialization by source rewriting.

"The optimizer rewrites uses of generic arithmetic operations on
floating-point numbers to specialized operations" — here, applications of
``+ - * / < <= > >= =`` whose arguments the checker proved ``Float`` become
the corresponding ``unsafe-fl`` primitives, which skip the numeric tower's
dispatch entirely.
"""

from __future__ import annotations

from typing import Optional

from repro.core.parse import core_form_of
from repro.expander.env import ExpandContext
from repro.expander.kernel_scope import core_id
from repro.langs.typed_common import env as tenv
from repro.langs.typed_common import types as ty
from repro.modules.registry import KERNEL_PATH
from repro.observe.recorder import current_recorder
from repro.syn.binding import ModuleBinding, TABLE
from repro.syn.syntax import Syntax

#: generic operation name -> unsafe float-specialized name (binary cases)
FLOAT_SPECIALIZATIONS = {
    "+": "unsafe-fl+",
    "-": "unsafe-fl-",
    "*": "unsafe-fl*",
    "/": "unsafe-fl/",
    "<": "unsafe-fl<",
    "<=": "unsafe-fl<=",
    ">": "unsafe-fl>",
    ">=": "unsafe-fl>=",
    "=": "unsafe-fl=",
    "min": "unsafe-flmin",
    "max": "unsafe-flmax",
    "abs": "unsafe-flabs",
    "sqrt": "unsafe-flsqrt",
}


class SimpleOptimizer:
    def __init__(self, ctx: ExpandContext) -> None:
        self.ctx = ctx
        self.expr_types = tenv.expr_types(ctx)
        self.rewrites = 0
        #: the optimization-coach event bus (no-op recorder when tracing is
        #: off; every coach call site is guarded on ._rec.enabled)
        self._rec = current_recorder()

    def type_of(self, stx: Syntax) -> Optional[ty.Type]:
        return self.expr_types.get(id(stx))

    # -- optimization coach -------------------------------------------------

    def _loc(self, t: Syntax, op: Syntax):
        loc = t.srcloc if t.srcloc is not None else op.srcloc
        if loc is not None and loc.source == "<generated>":
            loc = op.srcloc
        return loc

    def _operand_types(self, args) -> list[str]:
        return [str(self.type_of(a)) for a in args]

    def _coach_fired(self, rule: str, t: Syntax, op_name: str,
                     replacement: str, args) -> None:
        self._rec.opt_fired(rule, op_name, replacement, self._loc(t, t.e[1]),
                            operand_types=self._operand_types(args))

    def _coach_near_miss(self, rule: str, t: Syntax, op_name: str,
                         reason: str, args) -> None:
        self._rec.opt_near_miss(rule, op_name, reason, self._loc(t, t.e[1]),
                                operand_types=self._operand_types(args))

    def _kernel_op_name(self, op: Syntax) -> Optional[str]:
        if not op.is_identifier():
            return None
        binding = TABLE.resolve(op, 0)
        if isinstance(binding, ModuleBinding) and binding.module_path == KERNEL_PATH:
            return binding.name.name
        return None

    def optimize_module_form(self, form: Syntax) -> Syntax:
        head = core_form_of(form, 0)
        if head in ("#%provide", "#%require", "define-syntaxes", "begin-for-syntax"):
            return form
        if form.property_get("typed-ignore"):
            return form
        if head == "define-values":
            return self._rebuild(form, (form.e[0], form.e[1], self.optimize(form.e[2])))
        if form.is_identifier() or not isinstance(form.e, tuple):
            return form
        return self.optimize(form)

    @staticmethod
    def _rebuild(stx: Syntax, items: tuple[Syntax, ...]) -> Syntax:
        return Syntax(items, stx.scopes, stx.srcloc, stx.props)

    def optimize(self, t: Syntax) -> Syntax:
        head = core_form_of(t, 0)
        if head is None or head in ("quote", "quote-syntax"):
            return t
        if head == "#%plain-app":
            return self._optimize_app(t)
        if head == "#%plain-lambda":
            return self._rebuild(
                t, (t.e[0], t.e[1], *(self.optimize(e) for e in t.e[2:]))
            )
        if head in ("let-values", "letrec-values"):
            clauses = tuple(
                self._rebuild(c, (c.e[0], self.optimize(c.e[1]))) for c in t.e[1].e
            )
            return self._rebuild(
                t,
                (
                    t.e[0],
                    Syntax(clauses, t.e[1].scopes, t.e[1].srcloc),
                    *(self.optimize(e) for e in t.e[2:]),
                ),
            )
        if head in ("if", "begin", "begin0", "#%expression"):
            return self._rebuild(t, (t.e[0], *(self.optimize(e) for e in t.e[1:])))
        if head == "set!":
            return self._rebuild(t, (t.e[0], t.e[1], self.optimize(t.e[2])))
        return t

    def _optimize_app(self, t: Syntax) -> Syntax:
        op = t.e[1]
        args = t.e[2:]
        new_args = tuple(self.optimize(a) for a in args)
        new_op = op
        op_name = self._kernel_op_name(op)
        # unary cases only exist for abs/sqrt; binary for the rest
        if (
            op_name in FLOAT_SPECIALIZATIONS
            and 1 <= len(args) <= 2
            and (len(args) == 1) == (op_name in ("abs", "sqrt"))
        ):
            replacement = FLOAT_SPECIALIZATIONS[op_name]
            if all(self.type_of(a) == ty.FLOAT for a in args):
                new_op = core_id(replacement, op.srcloc)
                self.rewrites += 1
                if self._rec.enabled:
                    self._coach_fired("float", t, op_name, replacement, args)
            elif self._rec.enabled:
                # the shape matched but the types did not prove the rewrite:
                # a coach near-miss, with the operand that blocked it
                blocker = next(
                    (a for a in args if self.type_of(a) != ty.FLOAT), args[0]
                )
                blocker_type = self.type_of(blocker)
                if any(self.type_of(a) is not None for a in args):
                    self._coach_near_miss(
                        "float", t, op_name,
                        f"operand typed `{blocker_type}`, not `Float` — "
                        f"no `{replacement}`",
                        args,
                    )
        return self._rebuild(t, (t.e[0], new_op, *new_args))
