"""A Datalog engine: unification and naive bottom-up fixpoint evaluation.

Backs the ``#lang datalog`` language (the paper's §1 lists Datalog among the
languages implemented on Racket's extension API). Terms are object-language
values: symbols starting with an uppercase letter are variables, everything
else (symbols, numbers, strings) is a constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import RuntimeReproError
from repro.runtime.values import Symbol

Term = Any  # Symbol (constant or variable), int, float, str
Atom = tuple  # (predicate_name: str, *terms)
Bindings = dict[str, Term]


def is_variable(term: Term) -> bool:
    return isinstance(term, Symbol) and term.name[:1].isupper()


@dataclass(frozen=True)
class Rule:
    head: Atom
    body: tuple[Atom, ...]


def walk(term: Term, bindings: Bindings) -> Term:
    while is_variable(term) and term.name in bindings:
        term = bindings[term.name]
    return term


def unify_atom(pattern: Atom, fact: Atom, bindings: Bindings) -> Optional[Bindings]:
    """Unify a (possibly variable-containing) atom against a ground fact."""
    if pattern[0] != fact[0] or len(pattern) != len(fact):
        return None
    out = dict(bindings)
    for p_term, f_term in zip(pattern[1:], fact[1:]):
        p_term = walk(p_term, out)
        if is_variable(p_term):
            out[p_term.name] = f_term
        elif not _constants_equal(p_term, f_term):
            return None
    return out


def _constants_equal(a: Term, b: Term) -> bool:
    if isinstance(a, Symbol) or isinstance(b, Symbol):
        return a is b
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    return type(a) is type(b) and a == b


def substitute(atom: Atom, bindings: Bindings) -> Atom:
    return (atom[0],) + tuple(walk(t, bindings) for t in atom[1:])


def is_ground(atom: Atom) -> bool:
    return not any(is_variable(t) for t in atom[1:])


def _key(atom: Atom) -> tuple:
    out = [atom[0]]
    for t in atom[1:]:
        if isinstance(t, Symbol):
            out.append(("sym", t.name))
        else:
            out.append((type(t).__name__, t))
    return tuple(out)


class Database:
    """Facts + rules with naive fixpoint saturation."""

    def __init__(self) -> None:
        self.facts: dict[tuple, Atom] = {}
        self.rules: list[Rule] = []
        self._saturated = False

    def assert_fact(self, atom: Atom) -> None:
        if not is_ground(atom):
            raise RuntimeReproError(
                f"datalog: cannot assert a non-ground fact: {atom[0]}"
            )
        self.facts[_key(atom)] = atom
        self._saturated = False

    def assert_rule(self, rule: Rule) -> None:
        head_vars = {t.name for t in rule.head[1:] if is_variable(t)}
        body_vars = set()
        for atom in rule.body:
            body_vars |= {t.name for t in atom[1:] if is_variable(t)}
        unsafe = head_vars - body_vars
        if unsafe:
            raise RuntimeReproError(
                f"datalog: unsafe rule, head variables {sorted(unsafe)} "
                "do not appear in the body"
            )
        self.rules.append(rule)
        self._saturated = False

    # -- evaluation -------------------------------------------------------

    def _match_body(
        self, body: tuple[Atom, ...], index: int, bindings: Bindings
    ) -> Iterator[Bindings]:
        if index == len(body):
            yield bindings
            return
        for fact in list(self.facts.values()):
            unified = unify_atom(body[index], fact, bindings)
            if unified is not None:
                yield from self._match_body(body, index + 1, unified)

    def saturate(self) -> None:
        """Naive fixpoint: apply every rule until no new facts appear."""
        if self._saturated:
            return
        changed = True
        while changed:
            changed = False
            for rule in self.rules:
                for bindings in self._match_body(rule.body, 0, {}):
                    derived = substitute(rule.head, bindings)
                    key = _key(derived)
                    if key not in self.facts:
                        self.facts[key] = derived
                        changed = True
        self._saturated = True

    def query(self, pattern: Atom) -> list[Bindings]:
        """All substitutions making ``pattern`` a fact (after saturation)."""
        self.saturate()
        out = []
        for fact in self.facts.values():
            unified = unify_atom(pattern, fact, {})
            if unified is not None:
                out.append(unified)
        return out

    def query_atoms(self, pattern: Atom) -> list[Atom]:
        """The matching ground atoms, deterministically ordered."""
        matches = [substitute(pattern, b) for b in self.query(pattern)]
        return sorted(matches, key=_key)
