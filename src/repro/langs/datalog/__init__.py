"""``#lang datalog`` — logic programming as a library (§1 cites Datalog as
one of the languages built on Racket's extension API).

Module syntax (s-expression surface; the Racket original also swaps the
*reader* — our substitution is documented in DESIGN.md):

    #lang datalog
    (! (parent alice bob))            ; assert a fact
    (! (parent bob carol))
    (:- (ancestor X Y) (parent X Y))  ; a rule (variables are capitalized)
    (:- (ancestor X Z) (parent X Y) (ancestor Y Z))
    (? (ancestor alice Who))          ; query: prints each answer

The whole semantics lives in ``#%module-begin``: each form compiles to a
call into the Python-implemented engine against a module-local database.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RuntimeReproError, SyntaxExpansionError
from repro.langs.base import expand_with, fn_macro
from repro.langs.datalog.engine import Database, Rule
from repro.modules.registry import Language, ModuleRegistry
from repro.runtime.values import Pair, Symbol, to_list
from repro.syn.syntax import Syntax

__all__ = ["make_datalog_language", "Database", "Rule"]


def _register_prims() -> None:
    from repro.runtime.primitives import PRIMITIVES, add_prim
    from repro.runtime.printing import write_value
    from repro.runtime.ports import current_output_port
    from repro.runtime.values import VOID

    if "make-datalog-db" in PRIMITIVES:
        return

    def atom_of(value: Any) -> tuple:
        items = to_list(value)
        if not items or not isinstance(items[0], Symbol):
            raise RuntimeReproError("datalog: an atom is (predicate term ...)")
        return (items[0].name, *items[1:])

    def make_db() -> Database:
        return Database()

    def assert_fact(db: Any, fact: Any) -> Any:
        db.assert_fact(atom_of(fact))
        return VOID

    def assert_rule(db: Any, head: Any, body: Any) -> Any:
        db.assert_rule(Rule(atom_of(head), tuple(atom_of(a) for a in to_list(body))))
        return VOID

    def run_query(db: Any, pattern: Any) -> Any:
        port = current_output_port()
        for atom in db.query_atoms(atom_of(pattern)):
            rendered = ", ".join(write_value(t, display=True) for t in atom[1:])
            port.write(f"{atom[0]}({rendered}).\n")
        return VOID

    add_prim("make-datalog-db", make_db, 0, 0)
    add_prim("datalog-assert!", assert_fact, 2, 2)
    add_prim("datalog-rule!", assert_rule, 3, 3)
    add_prim("datalog-query", run_query, 2, 2)


def make_datalog_language(registry: ModuleRegistry) -> Language:
    _register_prims()
    racket = registry.language("racket")
    lang = Language("datalog")
    # the base environment is deliberately tiny: datalog modules contain
    # only facts, rules, and queries
    for name in ("#%datum", "quote", "#%plain-module-begin", "define-values",
                 "#%plain-app", "begin"):
        if name in racket.exports:
            lang.export(name, racket.exports[name].binding,
                        racket.exports[name].transformer)
    # the engine primitives registered above (they postdate the registry's
    # kernel snapshot, so bind them directly)
    from repro.modules.registry import KERNEL_PATH
    from repro.syn.binding import ModuleBinding

    for name in ("make-datalog-db", "datalog-assert!", "datalog-rule!",
                 "datalog-query"):
        lang.export(name, ModuleBinding(KERNEL_PATH, Symbol(name)))
    lang.export("list", registry.kernel_exports["list"].binding)

    @fn_macro(lang, "#%module-begin")
    def module_begin(stx: Syntax, lang: Language) -> Syntax:
        statements = []
        for form in stx.e[1:]:
            statements.append(_compile_statement(form, lang))
        return expand_with(
            lang,
            "(#%plain-module-begin"
            " (define-values (db) (#%plain-app make-datalog-db))"
            " stmt ...)",
            stmt=statements,
        )

    registry.register_language(lang)
    return lang


def _compile_statement(form: Syntax, lang: Language) -> Syntax:
    if not (isinstance(form.e, tuple) and form.e and form.e[0].is_identifier()):
        raise SyntaxExpansionError(
            "datalog: expected (! fact), (:- head body ...) or (? query)", form
        )
    head_name = form.e[0].e.name
    if head_name == "!":
        if len(form.e) != 2:
            raise SyntaxExpansionError("datalog: (! fact)", form)
        return expand_with(
            lang, "(#%plain-app datalog-assert! db (quote fact))", fact=form.e[1]
        )
    if head_name == ":-":
        if len(form.e) < 3:
            raise SyntaxExpansionError("datalog: (:- head body ...)", form)
        body = Syntax(tuple(form.e[2:]), form.scopes, form.srcloc)
        return expand_with(
            lang,
            "(#%plain-app datalog-rule! db (quote head) (quote body))",
            head=form.e[1],
            body=body,
        )
    if head_name == "?":
        if len(form.e) != 2:
            raise SyntaxExpansionError("datalog: (? query)", form)
        return expand_with(
            lang, "(#%plain-app datalog-query db (quote q))", q=form.e[1]
        )
    raise SyntaxExpansionError(
        f"datalog: unknown statement {head_name} (expected !, :- or ?)", form
    )
