"""Helpers for writing languages as libraries.

A language library defines macros either as (pattern -> template) rewrite
rules or as arbitrary Python functions over syntax objects — the same two
styles Racket macro authors use (``syntax-rules`` vs procedural
``syntax-parse`` macros).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional, Sequence

from repro.errors import SyntaxExpansionError
from repro.expander.pattern import Pattern, Template, compile_pattern, compile_template
from repro.modules.registry import Language
from repro.syn.syntax import Syntax


def rule_macro(
    lang: Language,
    name: str,
    rules: Sequence[tuple[str, str]],
    literals: Iterable[str] = (),
) -> None:
    """Define a macro from (pattern, template) string pairs.

    Introduced identifiers in the templates carry the language's anchor
    scope, so they resolve to the language's own bindings regardless of the
    use site — hygiene is then enforced by the expander's introduction-scope
    flip.
    """
    compiled: list[tuple[Pattern, Template]] = [
        (compile_pattern(p, literals), compile_template(t)) for (p, t) in rules
    ]

    def transform(stx: Syntax) -> Syntax:
        for pattern, template in compiled:
            m = pattern.match(stx)
            if m is not None:
                return template.fill(lang.anchor, **m)
        raise SyntaxExpansionError(f"{name}: bad syntax", stx)

    transform.__name__ = f"macro_{name}"
    lang.export_macro(name, transform)


def fn_macro(lang: Language, name: str) -> Callable[[Callable[..., Syntax]], Any]:
    """Decorator: define a procedural macro on ``lang``.

    The decorated function receives the (introduction-scoped) use syntax and
    the language object, and returns replacement syntax.
    """

    def register(fn: Callable[..., Syntax]) -> Callable[..., Syntax]:
        def transform(stx: Syntax) -> Syntax:
            return fn(stx, lang)

        transform.__name__ = f"macro_{name}"
        lang.export_macro(name, transform)
        return fn

    return register


def expand_with(lang: Language, template_src: str, **bindings: Any) -> Syntax:
    """Fill a template in the language's lexical context."""
    return compile_template(template_src).fill(lang.anchor, **bindings)
