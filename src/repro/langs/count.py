"""The ``count`` language from §2.3 of the paper.

"When this language is used, it prints the number of top-level expressions
in the program, then runs the program as usual." It demonstrates the
``#%module-begin`` mechanism in its smallest form: a language is a library
with a base environment plus whole-module control.
"""

from __future__ import annotations

from repro.langs.base import expand_with, fn_macro
from repro.modules.registry import Language, ModuleRegistry
from repro.syn.syntax import Syntax


def make_count_language(registry: ModuleRegistry) -> Language:
    racket = registry.language("racket")
    lang = Language("count")
    lang.inherit(racket, exclude=("#%module-begin",))

    @fn_macro(lang, "#%module-begin")
    def module_begin(stx: Syntax, lang: Language) -> Syntax:
        body = list(stx.e[1:])
        return expand_with(
            lang,
            '(#%plain-module-begin'
            ' (#%plain-app printf "Found ~a expressions." (quote n))'
            " body ...)",
            n=Syntax(len(body)),
            body=body,
        )

    registry.register_language(lang)
    return lang
