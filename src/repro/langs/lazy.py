"""``lazy``: call-by-need evaluation as a library (§1's "a lazy variant of
Racket", after Barzilay and Clements 2005).

The entire semantic change is carried by macro overrides — ``#%app`` delays
arguments into promises, and the strict positions (``if`` tests, printing)
force — demonstrating that even the evaluation *strategy* of a language is
library-definable through the implicit-form hooks.
"""

from __future__ import annotations

from repro.errors import SyntaxExpansionError
from repro.langs.base import expand_with, fn_macro, rule_macro
from repro.modules.registry import Language, ModuleRegistry
from repro.runtime.promises import Promise, force
from repro.syn.syntax import Syntax

__all__ = ["make_lazy_language", "Promise", "force"]


def make_lazy_language(registry: ModuleRegistry) -> Language:
    racket = registry.language("racket")
    lang = Language("lazy")
    lang.inherit(racket, exclude=("#%app", "if", "displayln", "display"))

    @fn_macro(lang, "#%app")
    def lazy_app(stx: Syntax, lang: Language) -> Syntax:
        # (#%app f a ...) -> (lazy-apply f (make-promise (lambda () a)) ...)
        items = stx.e
        if len(items) < 2:
            raise SyntaxExpansionError("#%app: missing procedure", stx)
        fn = items[1]
        delayed = [
            expand_with(
                lang,
                "(#%plain-app make-promise (#%plain-lambda () arg))",
                arg=arg,
            )
            for arg in items[2:]
        ]
        return expand_with(
            lang, "(#%plain-app lazy-apply fn arg ...)", fn=fn, arg=delayed
        )

    # strict positions force their value
    rule_macro(lang, "if", [("(_ c t e)", "(%strict-if (#%plain-app force c) t e)")])
    lang.export("%strict-if", registry.kernel_exports["if"].binding)
    rule_macro(
        lang,
        "displayln",
        [("(_ e)", "(#%plain-app %displayln-prim (#%plain-app force e))")],
    )
    lang.export("%displayln-prim", registry.kernel_exports["displayln"].binding)
    rule_macro(
        lang,
        "display",
        [("(_ e)", "(#%plain-app %display-prim (#%plain-app force e))")],
    )
    lang.export("%display-prim", registry.kernel_exports["display"].binding)

    registry.register_language(lang)
    return lang
