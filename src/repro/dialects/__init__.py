"""Dialects: whole-module rewrites stacked below the macro layer.

A *dialect* is a source→syntax transformer applied to a module's body —
the reader's output, before the body is wrapped in ``#%module-begin`` and
handed to the macro expander. Where a macro rewrites one form at a time
under hygiene, a dialect sees (and may replace) the whole module body at
once, mcpyrate-style. That makes dialects the right tool for surface-level
reshaping that individual macros cannot express: collecting declarations
scattered through a module (operator tables), hoisting definitions above
their first use, or reinterpreting reader-level notation (brace lists as
infix expressions).

Dialects are registered on the :class:`~repro.modules.registry.ModuleRegistry`
parallel to languages and named on the ``#lang`` line, either implied by a
language (``#lang racket/infix``) or stacked explicitly with ``+``
(``#lang racket+infix``, ``#lang typed+match-ext``). Stacked dialects run
left to right. Each dialect's identity and version are folded into the
artifact-cache content hash, so changing the dialect stack — or bumping a
dialect's version — invalidates cached artifacts exactly like editing the
source would.

Dialect failures surface as D-coded :class:`~repro.errors.DialectError`
diagnostics. Because dialects run on reader syntax, culprit srclocs always
point at the pre-rewrite source text.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Sequence

from repro.errors import DialectError, ReproError
from repro.observe import current_recorder

if TYPE_CHECKING:
    from repro.diagnostics.session import DiagnosticSession
    from repro.syn.syntax import Syntax


class Dialect:
    """Base class for whole-module rewrites.

    Subclasses set :attr:`name` (the registry key used on ``#lang`` lines)
    and bump :attr:`version` whenever the rewrite's output changes, since
    the version participates in artifact-cache keys. The only hook is
    :meth:`rewrite`.
    """

    #: registry key, as written on the ``#lang`` line
    name = "?"
    #: folded into cache keys; bump when the rewrite's output changes
    version = "1"

    @property
    def tag(self) -> str:
        """The cache-key identity of this dialect (name plus version)."""
        return f"{self.name}@{self.version}"

    def rewrite(
        self,
        forms: Sequence["Syntax"],
        path: str,
        session: "DiagnosticSession",
    ) -> Sequence["Syntax"]:
        """Return the replacement module body.

        ``forms`` is the reader output for ``path`` (every top-level form
        after the ``#lang`` line). Recoverable per-form problems should be
        recorded on ``session`` (as D-coded errors) so one bad form does
        not hide the next; the compiler checks the session right after the
        dialect stack runs.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Dialect {self.tag}>"


def apply_dialects(
    dialects: Iterable[Dialect],
    forms: Sequence["Syntax"],
    path: str,
    session: "DiagnosticSession",
) -> list["Syntax"]:
    """Run a dialect stack over a module body, left to right.

    Each dialect runs under a ``dialect.*`` span on the observe bus.
    Platform errors propagate as-is (they already carry codes and
    srclocs); anything else is wrapped in a D002 :class:`DialectError`
    naming the dialect, so a buggy dialect fails like a user error rather
    than an internal crash.
    """
    rec = current_recorder()
    out = list(forms)
    for dialect in dialects:
        with rec.span(
            "dialect", f"{dialect.name} {path}", attrs={"version": dialect.version}
        ):
            try:
                out = list(dialect.rewrite(out, path, session))
            except ReproError:
                raise
            except Exception as err:
                raise DialectError(
                    f"dialect {dialect.name} failed: "
                    f"{type(err).__name__}: {err}"
                ) from err
    return out
