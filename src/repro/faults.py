"""Deterministic fault injection (``repro.faults``).

A :class:`FaultPlan` is a seeded schedule of filesystem failures injected
at named call sites inside the platform (currently the compiled-artifact
cache, :mod:`repro.modules.cache`). The chaos suite uses it to prove the
acceptance property of ISSUE 6: every corrupt artifact, torn write,
transient I/O error, or contended lock ends in a structured diagnostic (or
warning) plus a successful recompile — never a crash, hang, or wrong
result.

Call sites are *guarded no-ops*: production code calls
:func:`fault_point` (and :func:`fault_bytes` for payload-garbling sites),
which return immediately when no plan is active. Activate a plan for a
dynamic extent with :func:`use_fault_plan`.

Fault kinds
-----------

- ``"fail"`` — raise ``OSError`` (``errno`` configurable). With
  ``times=N`` the site fails N times then behaves — the *transient* error
  shape, for exercising bounded retries.
- ``"garble"`` — corrupt the payload bytes flowing through the site
  (deterministically, from the plan's seed).
- ``"torn"`` — truncate the payload, simulating a partial write/read.
- ``"crash"`` — raise :class:`InjectedCrash`, which deliberately derives
  from ``BaseException`` so ``except Exception`` recovery paths do *not*
  swallow it: the process "dies" at that instant, leaving whatever debris
  a real crash would leave (e.g. a ``.tmp`` file and a stale lock) for
  crash-recovery code (``repro cache doctor``) to clean up.
- ``"delay"`` — sleep ``delay`` seconds, for latency/timeout tests.

Example::

    plan = FaultPlan(seed=7, rules=[
        FaultRule("cache.read", "fail", times=2),       # transient
        FaultRule("cache.write", "garble", times=1),    # corruption
    ])
    with use_fault_plan(plan):
        ...exercise the cache...
    assert plan.fired == [("cache.read", "fail"), ...]
"""

from __future__ import annotations

import errno as _errno
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional


class InjectedCrash(BaseException):
    """A simulated process death at a fault point.

    Derives from ``BaseException`` so that the platform's ``except
    Exception`` degradation paths cannot intercept it — exactly like a real
    ``kill -9`` between two filesystem operations, it skips every cleanup
    handler and leaves the on-disk state torn.
    """


@dataclass
class FaultRule:
    """One injection rule: fire ``kind`` at ``site``, ``times`` times.

    ``site`` matches exactly, or as a prefix when it ends with ``*``
    (``"cache.*"``). ``times=None`` fires forever. ``probability`` draws
    from the plan's seeded RNG, so partial-probability plans are still
    reproducible run-to-run.
    """

    site: str
    kind: str  # fail | garble | torn | crash | delay
    times: Optional[int] = 1
    probability: float = 1.0
    errno: int = _errno.EIO
    delay: float = 0.01

    #: how many times this rule has fired (mutated by the plan)
    fired_count: int = field(default=0, compare=False)

    def matches(self, site: str) -> bool:
        if self.site.endswith("*"):
            return site.startswith(self.site[:-1])
        return site == self.site

    def exhausted(self) -> bool:
        return self.times is not None and self.fired_count >= self.times


class FaultPlan:
    """A seeded, ordered collection of :class:`FaultRule`.

    The first non-exhausted matching rule decides each fault point; every
    decision (site, kind) is appended to :attr:`fired` so tests can assert
    the exact fault schedule that ran.
    """

    def __init__(self, seed: int = 0, rules: Optional[list[FaultRule]] = None) -> None:
        self.rules: list[FaultRule] = list(rules or [])
        self._rng = random.Random(seed)
        self.fired: list[tuple[str, str]] = []

    def rule(self, *args, **kwargs) -> "FaultPlan":
        """Append a rule; chainable: ``FaultPlan().rule("cache.read", "fail")``."""
        self.rules.append(FaultRule(*args, **kwargs))
        return self

    def decide(self, site: str) -> Optional[FaultRule]:
        for rule in self.rules:
            if rule.exhausted() or not rule.matches(site):
                continue
            if rule.probability < 1.0 and self._rng.random() >= rule.probability:
                continue
            rule.fired_count += 1
            self.fired.append((site, rule.kind))
            return rule
        return None

    def garble(self, payload: bytes) -> bytes:
        """Deterministically corrupt ``payload`` (flip a run of bytes)."""
        if not payload:
            return b"\xff"
        data = bytearray(payload)
        start = self._rng.randrange(len(data))
        for i in range(start, min(start + 16, len(data))):
            data[i] ^= 0x5A
        return bytes(data)


#: the active plan — a one-element cell, read by every fault point
_ACTIVE: list[Optional[FaultPlan]] = [None]


def current_plan() -> Optional[FaultPlan]:
    return _ACTIVE[0]


@contextmanager
def use_fault_plan(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for a dynamic extent (plans do not nest)."""
    previous = _ACTIVE[0]
    _ACTIVE[0] = plan
    try:
        yield plan
    finally:
        _ACTIVE[0] = previous


def fault_point(site: str) -> None:
    """Raise/delay here if the active plan says so; no-op otherwise."""
    plan = _ACTIVE[0]
    if plan is None:
        return
    rule = plan.decide(site)
    if rule is None:
        return
    _execute(rule, site)


def fault_bytes(site: str, payload: bytes) -> bytes:
    """Like :func:`fault_point`, but can also corrupt a byte payload."""
    plan = _ACTIVE[0]
    if plan is None:
        return payload
    rule = plan.decide(site)
    if rule is None:
        return payload
    if rule.kind == "garble":
        return plan.garble(payload)
    if rule.kind == "torn":
        return payload[: max(1, len(payload) // 2)]
    _execute(rule, site)
    return payload


def _execute(rule: FaultRule, site: str) -> None:
    if rule.kind == "fail":
        raise OSError(rule.errno, f"injected fault at {site}")
    if rule.kind == "crash":
        raise InjectedCrash(f"injected crash at {site}")
    if rule.kind == "delay":
        time.sleep(rule.delay)
        return
    if rule.kind in ("garble", "torn"):
        # payload faults only make sense at fault_bytes sites; at a plain
        # fault_point they degrade to a hard failure
        raise OSError(rule.errno, f"injected {rule.kind} fault at {site}")
    raise ValueError(f"unknown fault kind: {rule.kind!r}")
