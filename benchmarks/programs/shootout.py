"""Fig. 7: Computer Language Benchmarks Game programs.

Scaled-down versions of the shootout benchmarks the paper evaluates
("Benchmarks from the Computer Language Benchmarks Game ... use
Racket-specific features and cannot be measured with other Scheme
compilers"): nbody, spectralnorm, mandelbrot (on Float-Complex — the §7.2
arity-raising target), fannkuch, nsieve, partialsums.
"""

from __future__ import annotations

from benchmarks.harness import BenchmarkProgram


def _drop_declarations(source: str) -> str:
    """Remove every top-level ``(: name type)`` form (may span lines)."""
    out: list[str] = []
    i = 0
    while i < len(source):
        if source.startswith("(: ", i):
            depth = 0
            j = i
            while j < len(source):
                if source[j] == "(":
                    depth += 1
                elif source[j] == ")":
                    depth -= 1
                    if depth == 0:
                        break
                j += 1
            i = j + 1
            if i < len(source) and source[i] == "\n":
                i += 1
            continue
        out.append(source[i])
        i += 1
    return "".join(out)


def _strip_annotations(source: str) -> str:
    """Derive the untyped version: drop ``(: name T)`` lines, rewrite
    ``[x : T]`` formals to ``x``, and drop ``: T`` result/definition
    annotations (types may contain parens nested two deep)."""
    import re

    out = _drop_declarations(source)
    balanced = r"(?:[^\[\]()]|\((?:[^()]|\([^()]*\))*\))+?"
    out = re.sub(rf"\[([^\s\[\]:]+) : {balanced}\]", r"\1", out)
    out = re.sub(r" : \((?:[^()]|\([^()]*\))*\)", "", out)
    out = re.sub(r" : [A-Z][A-Za-z-]*", "", out)
    return out

# --- nbody: 3-body gravitational simulation over flat float vectors -----------

_NBODY_BODY = """
({d} px : (Vectorof Float) (vector 0.0 4.84 8.34))
({d} py : (Vectorof Float) (vector 0.0 -1.16 4.12))
({d} vx : (Vectorof Float) (vector 0.0 0.60 -0.27))
({d} vy : (Vectorof Float) (vector 0.0 0.76 0.49))
({d} mass : (Vectorof Float) (vector 39.47 0.037 0.011))
"""


def _nbody() -> str:
    decls = _NBODY_BODY.format(d="define")
    ann_pair = "[i : Integer] [j : Integer]"
    ann_int = "[i : Integer]"
    ann_steps = "[steps : Integer]"
    ret_f = " : Float"
    ret_v = " : Void"
    return f"""
{decls}
(define (interact {ann_pair}){ret_v}
  (define dx : Float (- (vector-ref px i) (vector-ref px j)))
  (define dy : Float (- (vector-ref py i) (vector-ref py j)))
  (define dist : Float (sqrt (+ (* dx dx) (* dy dy))))
  (define mag : Float (/ 0.01 (* dist (* dist dist))))
  (vector-set! vx i (- (vector-ref vx i) (* dx (* (vector-ref mass j) mag))))
  (vector-set! vy i (- (vector-ref vy i) (* dy (* (vector-ref mass j) mag))))
  (vector-set! vx j (+ (vector-ref vx j) (* dx (* (vector-ref mass i) mag))))
  (vector-set! vy j (+ (vector-ref vy j) (* dy (* (vector-ref mass i) mag)))))
(define (move {ann_int}){ret_v}
  (vector-set! px i (+ (vector-ref px i) (* 0.01 (vector-ref vx i))))
  (vector-set! py i (+ (vector-ref py i) (* 0.01 (vector-ref vy i)))))
(define (advance {ann_steps}){ret_v}
  (if (= steps 0)
      (void)
      (begin
        (interact 0 1) (interact 0 2) (interact 1 2)
        (move 0) (move 1) (move 2)
        (advance (- steps 1)))))
(define (energy){ret_f}
  (define dx01 : Float (- (vector-ref px 0) (vector-ref px 1)))
  (define dy01 : Float (- (vector-ref py 0) (vector-ref py 1)))
  (sqrt (+ (* dx01 dx01) (* dy01 dy01))))
(advance 2500)
(displayln (< 0.0 (energy)))
"""





NBODY_TYPED = _nbody()
NBODY_UNTYPED = _strip_annotations(NBODY_TYPED)


# --- spectralnorm ----------------------------------------------------------------

SPECTRALNORM_TYPED = """
(: eval-a (Integer Integer -> Float))
(define (eval-a i j)
  (/ 1.0 (exact->inexact (+ (quotient (* (+ i j) (+ i j 1)) 2) i 1))))
(define n : Integer 30)
(: mult-av ((Vectorof Float) (Vectorof Float) -> Void))
(define (mult-av v out)
  (define (row [i : Integer]) : Void
    (if (= i n)
        (void)
        (begin
          (vector-set! out i (row-sum i 0 0.0))
          (row (+ i 1)))))
  (define (row-sum [i : Integer] [j : Integer] [acc : Float]) : Float
    (if (= j n) acc (row-sum i (+ j 1) (+ acc (* (eval-a i j) (vector-ref v j))))))
  (row 0))
(define u : (Vectorof Float) (make-vector n 1.0))
(define w : (Vectorof Float) (make-vector n 0.0))
(: iterate (Integer -> Void))
(define (iterate k)
  (if (= k 0)
      (void)
      (begin (mult-av u w) (mult-av w u) (iterate (- k 1)))))
(iterate 6)
(: dot ((Vectorof Float) (Vectorof Float) Integer Float -> Float))
(define (dot a b i acc)
  (if (= i n) acc (dot a b (+ i 1) (+ acc (* (vector-ref a i) (vector-ref b i))))))
(displayln (< 0.0 (sqrt (/ (dot u w 0 0.0) (dot w w 0 0.0)))))
"""

SPECTRALNORM_UNTYPED = _strip_annotations(SPECTRALNORM_TYPED)


# --- mandelbrot on Float-Complex ----------------------------------------------------

MANDELBROT_TYPED = """
(: iterations (Float-Complex -> Integer))
(define (iterations c)
  (define (go [z : Float-Complex] [i : Integer]) : Integer
    (if (= i 30)
        30
        (if (> (magnitude z) 2.0)
            i
            (go (+ (* z z) c) (+ i 1)))))
  (go 0.0+0.0i 0))
(: row (Integer Integer Integer -> Integer))
(define (row y x acc)
  (if (= x 24)
      acc
      (row y (+ x 1)
           (+ acc (iterations
                   (make-rectangular
                    (- (/ (exact->inexact x) 8.0) 2.0)
                    (- (/ (exact->inexact y) 8.0) 1.5)))))))
(: grid (Integer Integer -> Integer))
(define (grid y acc)
  (if (= y 24) acc (grid (+ y 1) (row y 0 acc))))
(displayln (grid 0 0))
"""

MANDELBROT_UNTYPED = _strip_annotations(MANDELBROT_TYPED)


# --- fannkuch --------------------------------------------------------------------

FANNKUCH_TYPED = """
(define n : Integer 6)
(: vector-swap! ((Vectorof Integer) Integer Integer -> Void))
(define (vector-swap! v i j)
  (define tmp : Integer (vector-ref v i))
  (vector-set! v i (vector-ref v j))
  (vector-set! v j tmp))
(: count-flips ((Vectorof Integer) -> Integer))
(define (count-flips perm)
  (define work : (Vectorof Integer) (vector-copy perm))
  (define (flip [count : Integer]) : Integer
    (define first : Integer (vector-ref work 0))
    (if (= first 0)
        count
        (begin
          (reverse-prefix 0 first)
          (flip (+ count 1)))))
  (define (reverse-prefix [lo : Integer] [hi : Integer]) : Void
    (if (< lo hi)
        (begin (vector-swap! work lo hi) (reverse-prefix (+ lo 1) (- hi 1)))
        (void)))
  (flip 0))
(define max-flips : (Vectorof Integer) (vector 0))
(: permute ((Vectorof Integer) Integer -> Void))
(define (permute perm k)
  (if (= k 1)
      (if (> (count-flips perm) (vector-ref max-flips 0))
          (vector-set! max-flips 0 (count-flips perm))
          (void))
      (permute-loop perm k 0)))
(: permute-loop ((Vectorof Integer) Integer Integer -> Void))
(define (permute-loop perm k i)
  (if (= i k)
      (void)
      (begin
        (permute perm (- k 1))
        (if (even? k)
            (vector-swap! perm i (- k 1))
            (vector-swap! perm 0 (- k 1)))
        (permute-loop perm k (+ i 1)))))
(: perm-index (Integer -> Integer))
(define (perm-index i) i)
(define perm : (Vectorof Integer) (build-vector n perm-index))
(permute perm n)
(displayln (vector-ref max-flips 0))
"""

FANNKUCH_UNTYPED = _strip_annotations(FANNKUCH_TYPED)


# --- nsieve ---------------------------------------------------------------------

NSIEVE_TYPED = """
(define size : Integer 8000)
(define flags : (Vectorof Boolean) (make-vector size #t))
(: clear-multiples (Integer Integer -> Void))
(define (clear-multiples step idx)
  (if (< idx size)
      (begin (vector-set! flags idx #f) (clear-multiples step (+ idx step)))
      (void)))
(: sieve (Integer Integer -> Integer))
(define (sieve i count)
  (if (= i size)
      count
      (if (vector-ref flags i)
          (begin
            (clear-multiples i (* i 2))
            (sieve (+ i 1) (+ count 1)))
          (sieve (+ i 1) count))))
(displayln (sieve 2 0))
"""

NSIEVE_UNTYPED = _strip_annotations(NSIEVE_TYPED)


# --- partialsums -----------------------------------------------------------------

PARTIALSUMS_TYPED = """
(: series (Float Float Float Float -> Float))
(define (series k n s1 s2)
  (if (> k n)
      (+ s1 s2)
      (series (+ k 1.0) n
              (+ s1 (/ 1.0 (* k k)))
              (+ s2 (/ (sin k) (* k (sqrt k)))))))
(displayln (< 1.6 (series 1.0 12000.0 0.0 0.0)))
"""

PARTIALSUMS_UNTYPED = _strip_annotations(PARTIALSUMS_TYPED)


SHOOTOUT_PROGRAMS: list[BenchmarkProgram] = [
    BenchmarkProgram("nbody", NBODY_UNTYPED, NBODY_TYPED, "#t\n", "fig7"),
    BenchmarkProgram(
        "spectralnorm", SPECTRALNORM_UNTYPED, SPECTRALNORM_TYPED, "#t\n", "fig7"
    ),
    BenchmarkProgram("mandelbrot", MANDELBROT_UNTYPED, MANDELBROT_TYPED, "5172\n", "fig7"),
    BenchmarkProgram("fannkuch", FANNKUCH_UNTYPED, FANNKUCH_TYPED, "10\n", "fig7"),
    BenchmarkProgram("nsieve", NSIEVE_UNTYPED, NSIEVE_TYPED, "1007\n", "fig7"),
    BenchmarkProgram(
        "partialsums", PARTIALSUMS_UNTYPED, PARTIALSUMS_TYPED, "#t\n", "fig7"
    ),
]
