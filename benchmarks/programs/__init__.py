"""Benchmark programs (untyped + typed versions) for figures 6–9."""

from benchmarks.programs.gabriel import GABRIEL_PROGRAMS
from benchmarks.programs.shootout import SHOOTOUT_PROGRAMS
from benchmarks.programs.pseudoknot import PSEUDOKNOT_PROGRAMS
from benchmarks.programs.large import LARGE_PROGRAMS

ALL_PROGRAMS = (
    GABRIEL_PROGRAMS + SHOOTOUT_PROGRAMS + PSEUDOKNOT_PROGRAMS + LARGE_PROGRAMS
)

__all__ = [
    "GABRIEL_PROGRAMS",
    "SHOOTOUT_PROGRAMS",
    "PSEUDOKNOT_PROGRAMS",
    "LARGE_PROGRAMS",
    "ALL_PROGRAMS",
]
