"""Fig. 8: the pseudoknot benchmark (substitute).

The paper's pseudoknot (Hartel et al. 1996) is a 3000-line float-intensive
molecular-conformation search we do not have; per DESIGN.md §3 we substitute
a float-intensive molecular-distance kernel with the same operation mix
(nested float arithmetic, square roots, trigonometry over 3-D coordinates),
which exercises exactly the optimizer rules responsible for the paper's
"123% speedup on pseudoknot".
"""

from __future__ import annotations

from benchmarks.harness import BenchmarkProgram
from benchmarks.programs.shootout import _strip_annotations

PSEUDOKNOT_TYPED = """
(define n-atoms : Integer 40)
(define xs : (Vectorof Float) (make-vector n-atoms 0.0))
(define ys : (Vectorof Float) (make-vector n-atoms 0.0))
(define zs : (Vectorof Float) (make-vector n-atoms 0.0))
(: init! (Integer Float -> Void))
(define (init! i seed)
  (if (= i n-atoms)
      (void)
      (begin
        (vector-set! xs i (sin (* seed 1.7)))
        (vector-set! ys i (cos (* seed 2.3)))
        (vector-set! zs i (sin (+ seed 0.5)))
        (init! (+ i 1) (+ seed 1.0)))))
(init! 0 0.0)
(: pair-energy (Integer Integer -> Float))
(define (pair-energy i j)
  (define dx : Float (- (vector-ref xs i) (vector-ref xs j)))
  (define dy : Float (- (vector-ref ys i) (vector-ref ys j)))
  (define dz : Float (- (vector-ref zs i) (vector-ref zs j)))
  (define r2 : Float (+ (* dx dx) (+ (* dy dy) (* dz dz))))
  (define r : Float (sqrt (+ r2 0.1)))
  (+ (/ 1.0 (* r (* r r))) (* 0.5 (cos r))))
(: sum-pairs (Integer Integer Float -> Float))
(define (sum-pairs i j acc)
  (if (= i n-atoms)
      acc
      (if (= j n-atoms)
          (sum-pairs (+ i 1) (+ i 2) acc)
          (sum-pairs i (+ j 1) (+ acc (pair-energy i j))))))
(: refine (Integer Float -> Float))
(define (refine iterations best)
  (if (= iterations 0)
      best
      (begin
        (perturb! 0 (exact->inexact iterations))
        (refine (- iterations 1) (min best (sum-pairs 0 1 0.0))))))
(: perturb! (Integer Float -> Void))
(define (perturb! i phase)
  (if (= i n-atoms)
      (void)
      (begin
        (vector-set! xs i (+ (vector-ref xs i) (* 0.01 (sin (+ phase (exact->inexact i))))))
        (vector-set! ys i (+ (vector-ref ys i) (* 0.01 (cos phase))))
        (perturb! (+ i 1) phase))))
(displayln (< (refine 25 1000000.0) 1000000.0))
"""

PSEUDOKNOT_UNTYPED = _strip_annotations(PSEUDOKNOT_TYPED)

PSEUDOKNOT_PROGRAMS: list[BenchmarkProgram] = [
    BenchmarkProgram(
        "pseudoknot", PSEUDOKNOT_UNTYPED, PSEUDOKNOT_TYPED, "#t\n", "fig8"
    ),
]
