"""Fig. 9: the large benchmarks.

The paper's large applications — a ray tracer, an industrial-strength FFT,
and two purely functional data structures (Prashanth & Tobin-Hochstadt
2010) — reproduced as full programs in the object language: a sphere ray
tracer over float vectors, a recursive radix-2 FFT over Float-Complex
vectors, a Banker's queue, and a merge sort over float lists.
"""

from __future__ import annotations

from benchmarks.harness import BenchmarkProgram
from benchmarks.programs.shootout import _strip_annotations

# --- ray tracer --------------------------------------------------------------
# scene: spheres as (Vectorof Float) [cx cy cz radius]; camera at origin
# looking down -z; one directional light; brightness accumulated as checksum.

RAYTRACE_TYPED = """
(define spheres : (Listof (Vectorof Float))
  (list (vector 0.0 0.0 -3.0 1.0)
        (vector 1.5 0.5 -4.0 1.0)
        (vector -1.5 -0.5 -2.5 0.5)))
(: hit-distance ((Vectorof Float) Float Float Float -> Float))
(define (hit-distance s dx dy dz)
  ;; ray from origin: o + t*d; returns smallest positive t or -1.0
  (define cx : Float (vector-ref s 0))
  (define cy : Float (vector-ref s 1))
  (define cz : Float (vector-ref s 2))
  (define r : Float (vector-ref s 3))
  (define b : Float (* 2.0 (+ (* dx (- 0.0 cx)) (+ (* dy (- 0.0 cy)) (* dz (- 0.0 cz))))))
  (define c : Float (- (+ (* cx cx) (+ (* cy cy) (* cz cz))) (* r r)))
  (define disc : Float (- (* b b) (* 4.0 c)))
  (if (< disc 0.0)
      -1.0
      (/ (- (- 0.0 b) (sqrt disc)) 2.0)))
(: nearest-hit ((Listof (Vectorof Float)) Float Float Float Float -> Float))
(define (nearest-hit ss dx dy dz best)
  (if (null? ss)
      best
      (nearest-hit (cdr ss) dx dy dz
        (pick-nearer (hit-distance (car ss) dx dy dz) best))))
(: pick-nearer (Float Float -> Float))
(define (pick-nearer t best)
  (if (< t 0.001) best (if (< t best) t best)))
(: trace-pixel (Integer Integer -> Float))
(define (trace-pixel px py)
  (define dx : Float (/ (- (exact->inexact px) 12.0) 24.0))
  (define dy : Float (/ (- (exact->inexact py) 12.0) 24.0))
  (define dz : Float -1.0)
  (define len : Float (sqrt (+ (* dx dx) (+ (* dy dy) (* dz dz)))))
  (define t : Float (nearest-hit spheres (/ dx len) (/ dy len) (/ dz len) 1e30))
  (if (< t 1e29) (/ 1.0 (+ 1.0 t)) 0.0))
(: render (Integer Integer Float -> Float))
(define (render px py acc)
  (if (= py 24)
      acc
      (if (= px 24)
          (render 0 (+ py 1) acc)
          (render (+ px 1) py (+ acc (trace-pixel px py))))))
(displayln (< 40.0 (render 0 0 0.0)))
"""

RAYTRACE_UNTYPED = _strip_annotations(RAYTRACE_TYPED)

# --- FFT: recursive radix-2 Cooley-Tukey over Float-Complex vectors ------------

FFT_TYPED = """
(: evens-of ((Vectorof Float-Complex) -> (Vectorof Float-Complex)))
(define (evens-of v)
  (define n : Integer (quotient (vector-length v) 2))
  (define out : (Vectorof Float-Complex) (make-vector n 0.0+0.0i))
  (define (fill [i : Integer]) : Void
    (if (= i n) (void) (begin (vector-set! out i (vector-ref v (* 2 i))) (fill (+ i 1)))))
  (fill 0)
  out)
(: odds-of ((Vectorof Float-Complex) -> (Vectorof Float-Complex)))
(define (odds-of v)
  (define n : Integer (quotient (vector-length v) 2))
  (define out : (Vectorof Float-Complex) (make-vector n 0.0+0.0i))
  (define (fill [i : Integer]) : Void
    (if (= i n) (void) (begin (vector-set! out i (vector-ref v (+ (* 2 i) 1))) (fill (+ i 1)))))
  (fill 0)
  out)
(: twiddle (Integer Integer -> Float-Complex))
(define (twiddle k n)
  (define angle : Float (/ (* -6.283185307179586 (exact->inexact k)) (exact->inexact n)))
  (make-rectangular (cos angle) (sin angle)))
(: fft ((Vectorof Float-Complex) -> (Vectorof Float-Complex)))
(define (fft v)
  (define n : Integer (vector-length v))
  (if (= n 1)
      v
      (combine (fft (evens-of v)) (fft (odds-of v)) n)))
(: combine ((Vectorof Float-Complex) (Vectorof Float-Complex) Integer -> (Vectorof Float-Complex)))
(define (combine es os n)
  (define out : (Vectorof Float-Complex) (make-vector n 0.0+0.0i))
  (define half : Integer (quotient n 2))
  (define (fill [k : Integer]) : Void
    (if (= k half)
        (void)
        (begin
          (vector-set! out k
            (+ (vector-ref es k) (* (twiddle k n) (vector-ref os k))))
          (vector-set! out (+ k half)
            (- (vector-ref es k) (* (twiddle k n) (vector-ref os k))))
          (fill (+ k 1)))))
  (fill 0)
  out)
(define signal : (Vectorof Float-Complex) (make-vector 256 0.0+0.0i))
(: init-signal! (Integer -> Void))
(define (init-signal! i)
  (if (= i 256)
      (void)
      (begin
        (vector-set! signal i
          (make-rectangular (sin (* 0.1 (exact->inexact i))) 0.0))
        (init-signal! (+ i 1)))))
(init-signal! 0)
(define spectrum : (Vectorof Float-Complex) (fft signal))
(: magnitude-sum (Integer Float -> Float))
(define (magnitude-sum i acc)
  (if (= i 256) acc (magnitude-sum (+ i 1) (+ acc (magnitude (vector-ref spectrum i))))))
(displayln (< 50.0 (magnitude-sum 0 0.0)))
"""

FFT_UNTYPED = _strip_annotations(FFT_TYPED)

# --- Banker's queue (purely functional data structure) --------------------------
# queue = (Pairof front-list rear-list); enqueue conses onto rear; dequeue
# takes from front, reversing rear when the front empties.

BANKERS_QUEUE_TYPED = """
(: queue-empty (-> (Pairof (Listof Integer) (Listof Integer))))
(define (queue-empty) (cons '() '()))
(: enqueue ((Pairof (Listof Integer) (Listof Integer)) Integer
            -> (Pairof (Listof Integer) (Listof Integer))))
(define (enqueue q x)
  (balance (car q) (cons x (cdr q))))
(: balance ((Listof Integer) (Listof Integer)
            -> (Pairof (Listof Integer) (Listof Integer))))
(define (balance front rear)
  (if (null? front)
      (cons (reverse rear) '())
      (cons front rear)))
(: queue-head ((Pairof (Listof Integer) (Listof Integer)) -> Integer))
(define (queue-head q) (car (car q)))
(: dequeue ((Pairof (Listof Integer) (Listof Integer))
            -> (Pairof (Listof Integer) (Listof Integer))))
(define (dequeue q) (balance (cdr (car q)) (cdr q)))
(: fill (Integer (Pairof (Listof Integer) (Listof Integer))
         -> (Pairof (Listof Integer) (Listof Integer))))
(define (fill n q)
  (if (= n 0) q (fill (- n 1) (enqueue q n))))
(: drain ((Pairof (Listof Integer) (Listof Integer)) Integer -> Integer))
(define (drain q acc)
  (if (null? (car q))
      acc
      (drain (dequeue q) (+ acc (queue-head q)))))
(: rounds (Integer Integer -> Integer))
(define (rounds k acc)
  (if (= k 0) acc (rounds (- k 1) (+ acc (drain (fill 400 (queue-empty)) 0))))
  )
(displayln (rounds 25 0))
"""

BANKERS_QUEUE_UNTYPED = _strip_annotations(BANKERS_QUEUE_TYPED)

# --- merge sort over float lists -------------------------------------------------

MSORT_TYPED = """
(: halve ((Listof Float) (Listof Float) (Listof Float)
          -> (Pairof (Listof Float) (Listof Float))))
(define (halve lst a b)
  (if (null? lst)
      (cons a b)
      (halve (cdr lst) (cons (car lst) b) a)))
(: merge ((Listof Float) (Listof Float) -> (Listof Float)))
(define (merge a b)
  (if (null? a)
      b
      (if (null? b)
          a
          (if (< (car a) (car b))
              (cons (car a) (merge (cdr a) b))
              (cons (car b) (merge a (cdr b)))))))
(: msort ((Listof Float) -> (Listof Float)))
(define (msort lst)
  (if (null? lst)
      lst
      (if (null? (cdr lst))
          lst
          (split-and-merge (halve lst '() '())))))
(: split-and-merge ((Pairof (Listof Float) (Listof Float)) -> (Listof Float)))
(define (split-and-merge halves)
  (merge (msort (car halves)) (msort (cdr halves))))
(: pseudo-randoms (Integer Float (Listof Float) -> (Listof Float)))
(define (pseudo-randoms n seed acc)
  (if (= n 0)
      acc
      (pseudo-randoms (- n 1) (* 3.9 (* seed (- 1.0 seed))) (cons seed acc))))
(: is-sorted? ((Listof Float) -> Boolean))
(define (is-sorted? lst)
  (if (null? lst)
      #t
      (if (null? (cdr lst))
          #t
          (if (<= (car lst) (car (cdr lst)))
              (is-sorted? (cdr lst))
              #f))))
(: run-rounds (Integer Boolean -> Boolean))
(define (run-rounds k ok)
  (if (= k 0)
      ok
      (run-rounds (- k 1)
                  (if (is-sorted? (msort (pseudo-randoms 300 0.37 '()))) ok #f))))
(displayln (run-rounds 12 #t))
"""

MSORT_UNTYPED = _strip_annotations(MSORT_TYPED)

LARGE_PROGRAMS: list[BenchmarkProgram] = [
    BenchmarkProgram("raytrace", RAYTRACE_UNTYPED, RAYTRACE_TYPED, "#t\n", "fig9"),
    BenchmarkProgram("fft", FFT_UNTYPED, FFT_TYPED, "#t\n", "fig9"),
    BenchmarkProgram(
        "bankers-queue", BANKERS_QUEUE_UNTYPED, BANKERS_QUEUE_TYPED, "2005000\n", "fig9"
    ),
    BenchmarkProgram("msort", MSORT_UNTYPED, MSORT_TYPED, "#t\n", "fig9"),
]
