"""Fig. 6: Gabriel & Larceny micro-benchmarks.

Classic Scheme benchmarks (Gabriel 1985; Larceny suite), each in the
original untyped form and a Typed Racket-style translation. Workload sizes
are scaled to the interpreter substrate (DESIGN.md §3) — the comparison
*between configurations* is what reproduces the figure.
"""

from __future__ import annotations

from benchmarks.harness import BenchmarkProgram

TAK_UNTYPED = """
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(displayln (tak 18 12 6))
"""

TAK_TYPED = """
(: tak (Integer Integer Integer -> Integer))
(define (tak x y z)
  (if (not (< y x))
      z
      (tak (tak (- x 1) y z)
           (tak (- y 1) z x)
           (tak (- z 1) x y))))
(displayln (tak 18 12 6))
"""

CPSTAK_UNTYPED = """
(define (cps-tak x y z k)
  (if (not (< y x))
      (k z)
      (cps-tak (- x 1) y z
        (lambda (v1)
          (cps-tak (- y 1) z x
            (lambda (v2)
              (cps-tak (- z 1) x y
                (lambda (v3) (cps-tak v1 v2 v3 k)))))))))
(displayln (cps-tak 16 10 4 (lambda (a) a)))
"""

CPSTAK_TYPED = """
(: cps-tak (Integer Integer Integer (Integer -> Integer) -> Integer))
(define (cps-tak x y z k)
  (if (not (< y x))
      (k z)
      (cps-tak (- x 1) y z
        (lambda (v1)
          (cps-tak (- y 1) z x
            (lambda (v2)
              (cps-tak (- z 1) x y
                (lambda (v3) (cps-tak v1 v2 v3 k)))))))))
(: identity-k (Integer -> Integer))
(define (identity-k a) a)
(displayln (cps-tak 16 10 4 identity-k))
"""

FIB_UNTYPED = """
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(displayln (fib 20))
"""

FIB_TYPED = """
(: fib (Integer -> Integer))
(define (fib n)
  (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))
(displayln (fib 20))
"""

ACK_UNTYPED = """
(define (ack m n)
  (if (= m 0)
      (+ n 1)
      (if (= n 0)
          (ack (- m 1) 1)
          (ack (- m 1) (ack m (- n 1))))))
(displayln (ack 2 9))
"""

ACK_TYPED = """
(: ack (Integer Integer -> Integer))
(define (ack m n)
  (if (= m 0)
      (+ n 1)
      (if (= n 0)
          (ack (- m 1) 1)
          (ack (- m 1) (ack m (- n 1))))))
(displayln (ack 2 9))
"""

DIVITER_UNTYPED = """
(define (create-n n acc)
  (if (= n 0) acc (create-n (- n 1) (cons 0 acc))))
(define ll (create-n 200 '()))
(define (div-loop l result)
  (if (null? l)
      result
      (div-loop (cdr (cdr l)) (cons (car l) result))))
(define (test-loop n count)
  (if (= n 0)
      count
      (test-loop (- n 1) (+ count (length (div-loop ll '()))))))
(displayln (test-loop 400 0))
"""

DIVITER_TYPED = """
(: create-n (Integer (Listof Integer) -> (Listof Integer)))
(define (create-n n acc)
  (if (= n 0) acc (create-n (- n 1) (cons 0 acc))))
(define ll : (Listof Integer) (create-n 200 '()))
(: div-loop ((Listof Integer) (Listof Integer) -> (Listof Integer)))
(define (div-loop l result)
  (if (null? l)
      result
      (div-loop (cdr (cdr l)) (cons (car l) result))))
(: test-loop (Integer Integer -> Integer))
(define (test-loop n count)
  (if (= n 0)
      count
      (test-loop (- n 1) (+ count (length (div-loop ll '()))))))
(displayln (test-loop 400 0))
"""

SUMLOOP_UNTYPED = """
(define (sum-to i n sum)
  (if (> i n) sum (sum-to (+ i 1) n (+ sum i))))
(define (outer k acc)
  (if (= k 0) acc (outer (- k 1) (+ acc (sum-to 0 1000 0)))))
(displayln (outer 120 0))
"""

SUMLOOP_TYPED = """
(: sum-to (Integer Integer Integer -> Integer))
(define (sum-to i n sum)
  (if (> i n) sum (sum-to (+ i 1) n (+ sum i))))
(: outer (Integer Integer -> Integer))
(define (outer k acc)
  (if (= k 0) acc (outer (- k 1) (+ acc (sum-to 0 1000 0)))))
(displayln (outer 120 0))
"""

NQUEENS_UNTYPED = """
(define (ok? row dist placed)
  (if (null? placed)
      #t
      (if (= (car placed) (+ row dist))
          #f
          (if (= (car placed) (- row dist))
              #f
              (ok? row (+ dist 1) (cdr placed))))))
(define (try-queens x y z)
  (if (null? x)
      (if (null? y) 1 0)
      (+ (if (ok? (car x) 1 z)
             (try-queens (append (cdr x) y) '() (cons (car x) z))
             0)
         (try-queens (cdr x) (cons (car x) y) z))))
(displayln (try-queens (list 1 2 3 4 5 6 7) '() '()))
"""

NQUEENS_TYPED = """
(: ok? (Integer Integer (Listof Integer) -> Boolean))
(define (ok? row dist placed)
  (if (null? placed)
      #t
      (if (= (car placed) (+ row dist))
          #f
          (if (= (car placed) (- row dist))
              #f
              (ok? row (+ dist 1) (cdr placed))))))
(: try-queens ((Listof Integer) (Listof Integer) (Listof Integer) -> Integer))
(define (try-queens x y z)
  (if (null? x)
      (if (null? y) 1 0)
      (+ (if (ok? (car x) 1 z)
             (try-queens (append (cdr x) y) '() (cons (car x) z))
             0)
         (try-queens (cdr x) (cons (car x) y) z))))
(displayln (try-queens (list 1 2 3 4 5 6 7) '() '()))
"""

TRIANGLE_UNTYPED = """
(define (tri-step n moves)
  (if (= n 0)
      moves
      (tri-step (- n 1) (+ moves (remainder (* n 7) 11)))))
(define (tri-outer k acc)
  (if (= k 0) acc (tri-outer (- k 1) (+ acc (tri-step 2000 0)))))
(displayln (tri-outer 30 0))
"""

TRIANGLE_TYPED = """
(: tri-step (Integer Integer -> Integer))
(define (tri-step n moves)
  (if (= n 0)
      moves
      (tri-step (- n 1) (+ moves (remainder (* n 7) 11)))))
(: tri-outer (Integer Integer -> Integer))
(define (tri-outer k acc)
  (if (= k 0) acc (tri-outer (- k 1) (+ acc (tri-step 2000 0)))))
(displayln (tri-outer 30 0))
"""

GABRIEL_PROGRAMS: list[BenchmarkProgram] = [
    BenchmarkProgram("tak", TAK_UNTYPED, TAK_TYPED, "7\n", "fig6"),
    BenchmarkProgram("cpstak", CPSTAK_UNTYPED, CPSTAK_TYPED, "5\n", "fig6"),
    BenchmarkProgram("fib", FIB_UNTYPED, FIB_TYPED, "6765\n", "fig6"),
    BenchmarkProgram("ack", ACK_UNTYPED, ACK_TYPED, "21\n", "fig6"),
    BenchmarkProgram("diviter", DIVITER_UNTYPED, DIVITER_TYPED, "40000\n", "fig6"),
    BenchmarkProgram("sumloop", SUMLOOP_UNTYPED, SUMLOOP_TYPED, "60060000\n", "fig6"),
    BenchmarkProgram("nqueens", NQUEENS_UNTYPED, NQUEENS_TYPED, "40\n", "fig6"),
    BenchmarkProgram("triangle", TRIANGLE_UNTYPED, TRIANGLE_TYPED, "300180\n", "fig6"),
]
