"""Cold-vs-warm compiled-artifact cache benchmark.

Measures compilation of a generated 400-definition module (the ISSUE's
acceptance workload) from source (cold) and from the persistent artifact
cache (warm), and writes the numbers — wall-clock plus the deterministic
hit/miss/expansion counters — to ``BENCH_cache.json`` at the repo root.

Usage::

    python benchmarks/bench_cache.py [--defs 400] [--repeats 3] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro import Runtime

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def big_module(n_defs: int) -> str:
    defs = "\n".join(f"(define (f{i} x) (+ x {i}))" for i in range(n_defs))
    return f"#lang racket\n{defs}\n(displayln (f{n_defs - 1} 1))\n"


def time_compile(source: str, cache_dir: str) -> tuple[float, dict[str, int]]:
    with Runtime(cache_dir=cache_dir) as rt:
        rt.register_module("big", source)
        start = time.perf_counter()
        rt.compile("big")
        elapsed = time.perf_counter() - start
        return elapsed, rt.stats.snapshot()


def run(n_defs: int, repeats: int) -> dict:
    source = big_module(n_defs)
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-cache-")
    try:
        colds, warms = [], []
        cold_stats = warm_stats = {}
        for _ in range(repeats):
            shutil.rmtree(cache_dir, ignore_errors=True)
            cold, cold_stats = time_compile(source, cache_dir)
            warm, warm_stats = time_compile(source, cache_dir)
            colds.append(cold)
            warms.append(warm)
        cold_best, warm_best = min(colds), min(warms)
        return {
            "benchmark": "compiled-artifact-cache",
            "module_definitions": n_defs,
            "repeats": repeats,
            "cold_seconds": cold_best,
            "warm_seconds": warm_best,
            "speedup": cold_best / warm_best if warm_best else None,
            "cold_counters": cold_stats,
            "warm_counters": warm_stats,
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--defs", type=int, default=400)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_cache.json")
    )
    args = parser.parse_args(argv)

    result = run(args.defs, args.repeats)
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(
        f"cold {result['cold_seconds']:.4f}s  warm {result['warm_seconds']:.4f}s  "
        f"speedup {result['speedup']:.1f}x  "
        f"(warm expansion steps: {result['warm_counters']['expansion_steps']})"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
