"""Regenerate the paper's figures 6-9 as text tables.

Usage::

    python benchmarks/run_figures.py            # all figures
    python benchmarks/run_figures.py fig6 fig8  # a subset
    python benchmarks/run_figures.py --repeats 3 --markdown

Prints, per figure, runtime normalized to the untyped configuration
(smaller is better — the paper's bar-chart convention), the typed/opt
speedup percentage, and the deterministic dispatch-counter view.

``--json FILE`` (default ``BENCH_figures.json``) additionally writes the
raw measurements — absolute seconds per configuration, the counters, and
the phase profiler's exclusive per-phase timings for both the compile and
the timed run — for machine consumption (CI uploads this as an artifact).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterable

if __package__ in (None, ""):
    # allow `python benchmarks/run_figures.py`
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.harness import (
    BenchResult,
    BenchmarkProgram,
    CONFIGURATIONS,
    Harness,
    counter_table,
    normalized_table,
)
from benchmarks.programs import ALL_PROGRAMS

FIGURE_TITLES = {
    "fig6": "Figure 6: Gabriel and Larceny benchmarks (smaller is better)",
    "fig7": "Figure 7: Computer Language Benchmark Game (smaller is better)",
    "fig8": "Figure 8: pseudoknot (smaller is better)",
    "fig9": "Figure 9: large benchmarks (smaller is better)",
}


def run_figure(
    figure: str, harness: Harness, repeats: int
) -> dict[str, dict[str, BenchResult]]:
    programs = [p for p in ALL_PROGRAMS if p.figure == figure]
    results: dict[str, dict[str, BenchResult]] = {}
    for program in programs:
        by_config: dict[str, BenchResult] = {}
        for config in CONFIGURATIONS:
            by_config[config] = harness.run(program, config, repeats=repeats)
            print(
                f"  ran {program.name:>14} [{config:<12}] "
                f"{by_config[config].seconds:8.3f}s",
                file=sys.stderr,
            )
        results[program.name] = by_config
    return results


def _result_record(result: BenchResult) -> dict:
    return {
        "seconds": result.seconds,
        "expansion_steps": result.expansion_steps,
        "phases": {k: round(v, 6) for k, v in result.phases.items()},
        "compile_phases": {
            k: round(v, 6) for k, v in result.compile_phases.items()
        },
        "counters": {
            "generic_dispatches": result.generic_dispatches,
            "tag_checks": result.tag_checks,
            "unsafe_ops": result.unsafe_ops,
            "contract_checks": result.contract_checks,
        },
    }


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figures", nargs="*", default=[], help="fig6 fig7 fig8 fig9 (default: all)"
    )
    parser.add_argument("--repeats", type=int, default=2, help="runs per cell (keep best)")
    parser.add_argument(
        "--counters", action="store_true", help="also print the dispatch-counter tables"
    )
    parser.add_argument(
        "--backend",
        choices=("interp", "pyc"),
        default="interp",
        help="execution backend the timed runs use (default: interp)",
    )
    parser.add_argument(
        "--json",
        nargs="?",
        const="BENCH_figures.json",
        default=None,
        metavar="FILE",
        help="write raw measurements (absolute seconds, counters, per-phase "
        "timings) as JSON (default file: BENCH_figures.json)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    figures = args.figures or list(FIGURE_TITLES)

    # the phase profiler rides along only when its output is wanted: traced
    # runs pay a (small) span overhead per module form
    harness = Harness(trace=args.json is not None, backend=args.backend)
    payload: dict = {
        "schema": "repro-bench/1",
        "repeats": args.repeats,
        "backend": args.backend,
        "figures": {},
    }
    for figure in figures:
        if figure not in FIGURE_TITLES:
            parser.error(f"unknown figure: {figure}")
        print(f"\n{FIGURE_TITLES[figure]}")
        print("=" * len(FIGURE_TITLES[figure]))
        results = run_figure(figure, harness, args.repeats)
        print(normalized_table(results))
        if args.counters:
            print()
            print(counter_table(results))
        payload["figures"][figure] = {
            name: {
                config: _result_record(result)
                for config, result in by_config.items()
            }
            for name, by_config in results.items()
        }
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"\nwrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
