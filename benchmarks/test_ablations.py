"""Ablation benchmarks for the design choices DESIGN.md calls out:

- contract-boundary cost: typed->typed vs untyped->typed call loops (§6's
  "no extra checks between typed modules");
- per-rule-group optimizer ablation (float / fixnum / pairs / vectors /
  complex), isolating each §7.2 rule family's contribution.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import HARNESS, BenchmarkProgram
from benchmarks.harness import Harness
from repro import Runtime
from repro.runtime.ports import capture_output
from repro.runtime.stats import STATS

# --- contract boundary ablation -------------------------------------------------

SERVER = """#lang simple-type
(define (step [x : Integer]) : Integer (+ x 1))
(provide step)
"""

CLIENT_TEMPLATE = """#lang {lang}
(require server)
(define (loop {binder}{acc_binder}){result}
  (if (= n 0) acc (loop (- n 1) (step acc))))
(displayln (loop 20000 0))
"""


def _make_client(lang: str) -> str:
    if lang == "simple-type":
        return CLIENT_TEMPLATE.format(
            lang=lang,
            binder="[n : Integer] ",
            acc_binder="[acc : Integer]",
            result=" : Integer",
        )
    return CLIENT_TEMPLATE.format(lang=lang, binder="n ", acc_binder="acc", result="")


def _run_boundary(lang: str):
    rt = Runtime()
    rt.register_module("server", SERVER)
    rt.register_module("client", _make_client(lang))
    rt.compile("client")
    ns = rt.make_namespace()
    STATS.reset()
    with capture_output() as port:
        rt.instantiate("client", ns)
    assert port.contents() == "20000\n"
    return STATS.snapshot()


class TestContractBoundaryAblation:
    def test_typed_to_typed_pays_no_contracts(self, benchmark):
        benchmark.group = "ablation:boundary"
        stats = benchmark.pedantic(
            lambda: _run_boundary("simple-type"), rounds=2, iterations=1
        )
        assert stats["contract_checks"] == 0

    def test_untyped_to_typed_pays_per_call(self, benchmark):
        benchmark.group = "ablation:boundary"
        stats = benchmark.pedantic(
            lambda: _run_boundary("racket"), rounds=2, iterations=1
        )
        # 20000 calls, each checking domain and range
        assert stats["contract_checks"] >= 2 * 20000


# --- optimizer rule-group ablation ------------------------------------------------

from benchmarks.programs.pseudoknot import PSEUDOKNOT_PROGRAMS
from benchmarks.programs.gabriel import GABRIEL_PROGRAMS
from benchmarks.programs.large import LARGE_PROGRAMS

PSEUDOKNOT = PSEUDOKNOT_PROGRAMS[0]
SUMLOOP = next(p for p in GABRIEL_PROGRAMS if p.name == "sumloop")
BANKERS = next(p for p in LARGE_PROGRAMS if p.name == "bankers-queue")

RULE_CASES = [
    # (program, rule group that matters for it)
    (PSEUDOKNOT, "float"),
    (SUMLOOP, "fixnum"),
    (BANKERS, "pairs"),
    (PSEUDOKNOT, "vectors"),
]


class TestRuleGroupAblation:
    @pytest.mark.parametrize(
        "program,rule", RULE_CASES, ids=[f"{p.name}-{r}" for p, r in RULE_CASES]
    )
    def test_single_rule_group(self, benchmark, program, rule):
        benchmark.group = f"ablation:rules:{program.name}"
        thunk = HARNESS.prepare(program, "typed/opt", rules={rule})
        result = benchmark.pedantic(thunk, rounds=2, iterations=1)
        assert result.unsafe_ops > 0  # the lone rule group fired

    @pytest.mark.parametrize("program", [PSEUDOKNOT, SUMLOOP, BANKERS],
                             ids=lambda p: p.name)
    def test_all_rules(self, benchmark, program):
        benchmark.group = f"ablation:rules:{program.name}"
        thunk = HARNESS.prepare(program, "typed/opt")
        result = benchmark.pedantic(thunk, rounds=2, iterations=1)
        assert result.unsafe_ops > 0

    def test_relevant_rule_dominates(self):
        """For the float-heavy pseudoknot, the float group removes far more
        dispatch than the pair group does."""
        float_only = HARNESS.run(PSEUDOKNOT, "typed/opt", rules={"float"})
        pairs_only = HARNESS.run(PSEUDOKNOT, "typed/opt", rules={"pairs"})
        assert float_only.generic_dispatches < pairs_only.generic_dispatches
