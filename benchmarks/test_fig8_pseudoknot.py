"""Fig. 8 regeneration: pseudoknot (the float-intensive benchmark where the
paper reports its largest optimizer win, a 123% speedup). All four
configurations, since fig. 8 is a single-benchmark figure."""

from __future__ import annotations

import pytest

from benchmarks.conftest import HARNESS, bench_program
from benchmarks.programs.pseudoknot import PSEUDOKNOT_PROGRAMS

PSEUDOKNOT = PSEUDOKNOT_PROGRAMS[0]


@pytest.mark.parametrize("config", ["untyped", "typed/opt", "typed/no-opt", "baseline"])
def test_fig8_pseudoknot(benchmark, config):
    result = bench_program(benchmark, PSEUDOKNOT, config)
    if config == "typed/opt":
        # nearly all float dispatch must be gone
        assert result.unsafe_ops > 100_000
        assert result.generic_dispatches < result.unsafe_ops / 100
    else:
        assert result.unsafe_ops == 0


def test_fig8_shape_typed_opt_eliminates_dispatch():
    """The deterministic core of the figure: the optimizer removes ~all of
    pseudoknot's generic dispatches (which is what produced the paper's
    large speedup on this benchmark)."""
    untyped = HARNESS.run(PSEUDOKNOT, "untyped")
    typed_opt = HARNESS.run(PSEUDOKNOT, "typed/opt")
    assert untyped.output == typed_opt.output
    assert typed_opt.generic_dispatches < untyped.generic_dispatches / 100
