"""Benchmark harness reproducing §7.3's evaluation.

Each benchmark is a program in two versions — "the original version and a
translation to Typed Racket" — run under four configurations:

- ``untyped``      — the untyped program on the full platform (the paper's
                     "Racket" bars);
- ``typed/opt``    — the typed program with the type-driven optimizer (the
                     paper's "Typed Racket" bars);
- ``typed/no-opt`` — the typed program, optimizer disabled (isolates the
                     §7 contribution from mere type checking);
- ``baseline``     — the untyped program with the compiler's primitive
                     inlining disabled: a simulated less-optimizing
                     comparison compiler standing in for the paper's
                     Gambit/Larceny/Bigloo bars (see DESIGN.md §3).

Alongside wall-clock time the harness records the runtime's deterministic
instrumentation counters (generic dispatches, tag checks, unsafe ops), which
make the optimizer's effect reproducible independent of machine noise.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro import Runtime
from repro.core.compile import COMPILE_CONFIG
from repro.langs.typed import OPTIMIZER_CONFIG
from repro.langs.typed.optimizer import ALL_RULES
from repro.runtime.ports import capture_output

CONFIGURATIONS = ("untyped", "typed/opt", "typed/no-opt", "baseline")


@dataclass(frozen=True)
class BenchmarkProgram:
    """One benchmark: untyped + typed sources and the expected output."""

    name: str
    untyped: str
    typed: str
    expected: Optional[str] = None  # exact expected output, or None
    figure: str = ""


@dataclass
class BenchResult:
    name: str
    config: str
    seconds: float
    output: str
    generic_dispatches: int
    tag_checks: int
    unsafe_ops: int
    contract_checks: int
    expansion_steps: int = 0
    #: exclusive per-phase seconds of the timed run (trace=True harness only)
    phases: dict = field(default_factory=dict)
    #: exclusive per-phase seconds of the untimed compile in prepare()
    compile_phases: dict = field(default_factory=dict)


def _phase_slice(tracer, mark: int) -> dict:
    """Exclusive per-phase totals over the events appended since ``mark``."""
    from types import SimpleNamespace

    from repro.observe.profiler import phase_totals

    return phase_totals(SimpleNamespace(events=tracer.events[mark:]))


class Harness:
    """Compiles and runs benchmark programs under named configurations.

    ``trace=True`` attaches a :class:`repro.observe.Tracer` to each fresh
    Runtime and fills ``BenchResult.phases`` / ``compile_phases`` with
    exclusive per-phase timings (used by ``run_figures.py --json``). The
    default is off so timed runs carry no tracing overhead — and stays off
    even under a process-global tracer, keeping benchmarks hermetic.

    ``backend`` selects the execution backend each fresh Runtime uses
    (``"interp"`` or ``"pyc"``, see DESIGN.md §9).
    """

    def __init__(self, trace: bool = False, backend: str = "interp") -> None:
        self._counter = 0
        self.trace = trace
        self.backend = backend

    def _fresh_runtime(self) -> Runtime:
        return Runtime(trace=True if self.trace else False,
                       backend=self.backend)

    def prepare(
        self, program: BenchmarkProgram, config: str, rules: Optional[set[str]] = None
    ) -> Callable[[], BenchResult]:
        """Compile under ``config``; return a thunk that runs one timed
        iteration in a fresh namespace (compile time excluded)."""
        if config not in CONFIGURATIONS:
            raise ValueError(f"unknown configuration: {config}")
        rt = self._fresh_runtime()
        self._counter += 1
        path = f"<bench-{program.name}-{config.replace('/', '-')}-{self._counter}>"

        inline = config != "baseline"
        saved_opt = dict(OPTIMIZER_CONFIG)
        saved_rules = set(OPTIMIZER_CONFIG["rules"])
        saved_inline = COMPILE_CONFIG["inline_primitives"]
        try:
            if config in ("untyped", "baseline"):
                source = "#lang racket\n" + program.untyped
            else:
                OPTIMIZER_CONFIG["optimize"] = config == "typed/opt"
                OPTIMIZER_CONFIG["rules"] = set(rules if rules is not None else ALL_RULES)
                source = "#lang typed\n" + program.typed
            # the pyc backend bakes the inlining decision in at codegen
            # (which happens during compile), so the flag must already be
            # set here, not only around the timed run
            COMPILE_CONFIG["inline_primitives"] = inline
            rt.register_module(path, source)
            rt.compile(path)
        finally:
            COMPILE_CONFIG["inline_primitives"] = saved_inline
            OPTIMIZER_CONFIG.update(saved_opt)
            OPTIMIZER_CONFIG["rules"] = saved_rules
        compile_phases = (
            _phase_slice(rt.tracer, 0) if rt.tracer is not None else {}
        )
        compile_steps = rt.stats.expansion_steps

        def run_once() -> BenchResult:
            saved_inline = COMPILE_CONFIG["inline_primitives"]
            COMPILE_CONFIG["inline_primitives"] = inline
            try:
                ns = rt.make_namespace()
                # per-Runtime counters: immune to other Runtimes created
                # between prepare() and the timed run
                rt.stats.reset()
                mark = len(rt.tracer.events) if rt.tracer is not None else 0
                with capture_output() as port:
                    start = time.perf_counter()
                    rt.instantiate(path, ns)
                    elapsed = time.perf_counter() - start
                snapshot = rt.stats.snapshot()
            finally:
                COMPILE_CONFIG["inline_primitives"] = saved_inline
            output = port.contents()
            if program.expected is not None and output != program.expected:
                raise AssertionError(
                    f"{program.name} [{config}]: expected {program.expected!r}, "
                    f"got {output!r}"
                )
            return BenchResult(
                name=program.name,
                config=config,
                seconds=elapsed,
                output=output,
                generic_dispatches=snapshot["generic_dispatches"],
                tag_checks=snapshot["tag_checks"],
                unsafe_ops=snapshot["unsafe_ops"],
                contract_checks=snapshot["contract_checks"],
                expansion_steps=compile_steps,
                phases=(
                    _phase_slice(rt.tracer, mark)
                    if rt.tracer is not None else {}
                ),
                compile_phases=compile_phases,
            )

        return run_once

    def run(
        self, program: BenchmarkProgram, config: str, repeats: int = 1,
        rules: Optional[set[str]] = None,
    ) -> BenchResult:
        """Run; keep the best (minimum) time of ``repeats`` runs."""
        thunk = self.prepare(program, config, rules)
        best: Optional[BenchResult] = None
        for _ in range(repeats):
            result = thunk()
            if best is None or result.seconds < best.seconds:
                best = result
        assert best is not None
        return best


def normalized_table(
    results: dict[str, dict[str, BenchResult]],
    configs: tuple[str, ...] = CONFIGURATIONS,
) -> str:
    """Render results the way the paper's figures do: runtime normalized to
    the untyped (Racket) configuration; smaller is better."""
    header = f"{'benchmark':<14}" + "".join(f"{c:>14}" for c in configs) + f"{'speedup':>10}"
    lines = [header, "-" * len(header)]
    for name, by_config in results.items():
        base = by_config["untyped"].seconds
        cells = []
        for config in configs:
            result = by_config.get(config)
            cells.append(
                f"{result.seconds / base:>13.2f}x" if result else f"{'—':>14}"
            )
        opt = by_config.get("typed/opt")
        speedup = f"{(base / opt.seconds - 1) * 100:>+9.0f}%" if opt else ""
        lines.append(f"{name:<14}" + "".join(cells) + speedup)
    return "\n".join(lines)


def counter_table(results: dict[str, dict[str, BenchResult]]) -> str:
    """The deterministic view: dispatches and tag checks per configuration."""
    header = (
        f"{'benchmark':<14}{'config':>14}{'generic':>12}{'tag-checks':>12}"
        f"{'unsafe':>12}{'contracts':>11}"
    )
    lines = [header, "-" * len(header)]
    for name, by_config in results.items():
        for config, r in by_config.items():
            lines.append(
                f"{name:<14}{config:>14}{r.generic_dispatches:>12}"
                f"{r.tag_checks:>12}{r.unsafe_ops:>12}{r.contract_checks:>11}"
            )
    return "\n".join(lines)
