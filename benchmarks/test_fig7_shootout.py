"""Fig. 7 regeneration: Computer Language Benchmarks Game programs
(smaller is better)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_program
from benchmarks.programs.shootout import SHOOTOUT_PROGRAMS

_IDS = [p.name for p in SHOOTOUT_PROGRAMS]


@pytest.mark.parametrize("program", SHOOTOUT_PROGRAMS, ids=_IDS)
def test_fig7_untyped(benchmark, program):
    result = bench_program(benchmark, program, "untyped")
    assert result.generic_dispatches > 0


@pytest.mark.parametrize("program", SHOOTOUT_PROGRAMS, ids=_IDS)
def test_fig7_typed_opt(benchmark, program):
    result = bench_program(benchmark, program, "typed/opt")
    assert result.unsafe_ops > 0
    # float-heavy programs lose the overwhelming majority of their dispatch
    assert result.generic_dispatches < result.unsafe_ops


@pytest.mark.parametrize("program", SHOOTOUT_PROGRAMS, ids=_IDS)
def test_fig7_baseline(benchmark, program):
    # the simulated less-optimizing comparison compiler (DESIGN.md §3)
    result = bench_program(benchmark, program, "baseline")
    assert result.generic_dispatches > 0
