"""Load-generator benchmark for ``repro serve``.

Boots a real :class:`ReproServer` (HTTP, ephemeral port, shared artifact
cache), drives a mixed cold/warm request stream from concurrent client
threads — including one deliberate G001 budget kill and one injected
cache fault — and writes latency percentiles, throughput, and the
warm-cache hit rate to ``BENCH_serve.json`` at the repo root. A second
section measures ``compile_graph`` on a generated module graph at
``jobs=1`` vs ``jobs=N``.

Usage::

    python benchmarks/bench_serve.py [--requests 60] [--concurrency 4]
                                     [--backend interp] [--graph-modules 12]
                                     [--jobs 4] [--out PATH]

The numbers are honest about the machine: ``cpu_count`` is recorded in
the JSON, and on a single-core container the ``jobs=N`` speedup will be
~1x (the parallel path is exercised for correctness; the speedup shows up
in CI's multi-core runners).
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import threading
import time
import urllib.request

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from repro import Runtime
from repro.faults import FaultPlan, FaultRule, use_fault_plan
from repro.serve import ReproServer

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# -- client ------------------------------------------------------------------

def post(url: str, path: str, body: dict) -> dict:
    data = json.dumps(body).encode("utf-8")
    req = urllib.request.Request(
        url + path, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except urllib.error.HTTPError as err:  # 4xx/5xx still carry JSON
        return json.loads(err.read().decode("utf-8"))


def program(i: int) -> str:
    """A small but non-trivial module, distinct per variant ``i``."""
    defs = "\n".join(f"(define (f{j} x) (+ x {j + i}))" for j in range(20))
    calls = " ".join(f"(f{j} {i})" for j in range(20))
    return f"#lang racket\n{defs}\n(displayln (+ {calls}))\n"


def percentile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, round(q * (len(sorted_values) - 1)))
    return sorted_values[idx]


# -- the serve load test -----------------------------------------------------

def bench_serve(
    requests: int, concurrency: int, variants: int, backend: str
) -> dict:
    cache_dir = tempfile.mkdtemp(prefix="repro-bench-serve-")
    sources = [program(i) for i in range(variants)]
    records: list[dict] = []
    records_lock = threading.Lock()
    try:
        with ReproServer(cache_dir=cache_dir, backend=backend) as srv:
            url = srv.url

            # deterministic round-robin schedule: the first pass over the
            # variants is cold (every artifact is a miss+store), every
            # later pass is warm
            schedule = [sources[r % variants] for r in range(requests)]

            def worker(worker_id: int) -> None:
                for r in range(worker_id, requests, concurrency):
                    tenant = f"t{r % 3}"  # three tenants sharing the cache
                    t0 = time.perf_counter()
                    reply = post(url, "/run", {
                        "source": schedule[r], "tenant": tenant,
                    })
                    elapsed = time.perf_counter() - t0
                    with records_lock:
                        records.append({"reply": reply, "seconds": elapsed})

            t_start = time.perf_counter()
            threads = [
                threading.Thread(target=worker, args=(w,))
                for w in range(concurrency)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

            # one budget kill: a fresh source (never cached, so it really
            # expands) under a tiny step budget — must come back as a
            # well-formed ok:false G001 response, not a dropped connection
            t0 = time.perf_counter()
            kill = post(url, "/run", {
                "source": program(10_000), "tenant": "t0",
                "budget": {"steps": 5},
            })
            records.append({"reply": kill, "seconds": time.perf_counter() - t0})
            assert kill["ok"] is False and kill["error"]["code"] == "G001", kill

            # one injected cache fault: garble the next artifact read; the
            # service must degrade (recompile from source) and succeed,
            # reporting the C-coded warning in "diagnostics"
            plan = FaultPlan(rules=[FaultRule("cache.read", "garble", times=1)])
            with use_fault_plan(plan):
                t0 = time.perf_counter()
                faulted = post(url, "/run", {"source": sources[0], "tenant": "t1"})
                records.append(
                    {"reply": faulted, "seconds": time.perf_counter() - t0}
                )
            assert faulted["ok"] is True, faulted
            assert faulted.get("diagnostics"), faulted

            total_seconds = time.perf_counter() - t_start
            service_stats = json.loads(
                urllib.request.urlopen(url + "/stats", timeout=30)
                .read().decode("utf-8")
            )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    ok_runs = [
        r for r in records if r["reply"].get("ok") and "stats" in r["reply"]
    ]
    warm = [
        r for r in ok_runs
        if r["reply"]["stats"]["cache_hits"] > 0
        and r["reply"]["stats"]["cache_misses"] == 0
    ]
    cold = [r for r in ok_runs if r["reply"]["stats"]["cache_misses"] > 0]
    latencies = sorted(r["seconds"] for r in records)
    warm_latencies = sorted(r["seconds"] for r in warm)
    return {
        "requests": len(records),
        "concurrency": concurrency,
        "variants": variants,
        "seconds": round(total_seconds, 4),
        "req_per_s": round(len(records) / total_seconds, 2),
        "latency_ms": {
            "p50": round(percentile(latencies, 0.50) * 1000, 3),
            "p90": round(percentile(latencies, 0.90) * 1000, 3),
            "p99": round(percentile(latencies, 0.99) * 1000, 3),
            "max": round(latencies[-1] * 1000, 3),
        },
        "warm_latency_ms_p50": round(percentile(warm_latencies, 0.50) * 1000, 3),
        "cold_requests": len(cold),
        "warm_requests": len(warm),
        "warm_hit_rate": round(len(warm) / len(ok_runs), 4) if ok_runs else 0.0,
        "budget_kills": service_stats.get("budget_kills", {}),
        "fault_diagnostics": faulted.get("diagnostics", []),
        "runtimes": service_stats.get("runtimes", {}),
    }


# -- the parallel-compile section --------------------------------------------

def write_graph(root: str, modules: int) -> list[str]:
    """A layered diamond graph of ``modules`` files under ``root``."""
    paths = []
    for i in range(modules):
        deps = [f"m{j}" for j in (i - 1, i - 2) if j >= 0]
        requires = "\n".join(f'(require "{d}.rkt")' for d in deps)
        body = (
            f"#lang racket\n{requires}\n"
            + "\n".join(f"(define (g{i}_{k} x) (+ x {k})) " for k in range(30))
            + f"\n(define v{i} {i})\n(provide v{i})\n"
        )
        path = os.path.join(root, f"m{i}.rkt")
        with open(path, "w", encoding="utf-8") as f:
            f.write(body)
        paths.append(path)
    return paths


def bench_graph(modules: int, jobs: int, backend: str) -> dict:
    src_dir = tempfile.mkdtemp(prefix="repro-bench-graph-src-")
    try:
        roots = write_graph(src_dir, modules)
        timings = {}
        for label, n_jobs, mode in (
            ("jobs1", 1, "serial"), (f"jobs{jobs}", jobs, "process")
        ):
            cache_dir = tempfile.mkdtemp(prefix="repro-bench-graph-")
            try:
                with Runtime(cache_dir=cache_dir, backend=backend) as rt:
                    t0 = time.perf_counter()
                    report = rt.compile_graph(roots, jobs=n_jobs, mode=mode)
                    timings[label] = time.perf_counter() - t0
                    assert report.ok, report.errors
            finally:
                shutil.rmtree(cache_dir, ignore_errors=True)
        jobs1 = timings["jobs1"]
        jobsn = timings[f"jobs{jobs}"]
        return {
            "modules": modules,
            "jobs": jobs,
            "mode": "process",
            "jobs1_seconds": round(jobs1, 4),
            f"jobs{jobs}_seconds": round(jobsn, 4),
            "speedup": round(jobs1 / jobsn, 3) if jobsn else None,
        }
    finally:
        shutil.rmtree(src_dir, ignore_errors=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--requests", type=int, default=60)
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument("--variants", type=int, default=8)
    parser.add_argument("--backend", default="interp", choices=("interp", "pyc"))
    parser.add_argument("--graph-modules", type=int, default=12)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--skip-graph", action="store_true")
    parser.add_argument("--out", default=os.path.join(REPO_ROOT, "BENCH_serve.json"))
    args = parser.parse_args(argv)

    result = {
        "schema": "repro-bench-serve/1",
        "cpu_count": os.cpu_count(),
        "python": sys.version.split()[0],
        "backend": args.backend,
        "serve": bench_serve(
            args.requests, args.concurrency, args.variants, args.backend
        ),
    }
    if not args.skip_graph:
        result["graph"] = bench_graph(args.graph_modules, args.jobs, args.backend)

    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    serve = result["serve"]
    print(
        f"serve: {serve['requests']} requests @ {serve['concurrency']} clients  "
        f"{serve['req_per_s']} req/s  p50 {serve['latency_ms']['p50']}ms  "
        f"p99 {serve['latency_ms']['p99']}ms  "
        f"warm hit rate {serve['warm_hit_rate']:.0%}  "
        f"kills {serve['budget_kills']}"
    )
    if "graph" in result:
        g = result["graph"]
        jobsn_seconds = g[f"jobs{g['jobs']}_seconds"]
        print(
            f"graph: {g['modules']} modules  jobs=1 {g['jobs1_seconds']}s  "
            f"jobs={g['jobs']} {jobsn_seconds}s  "
            f"speedup {g['speedup']}x  (cpu_count={result['cpu_count']})"
        )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
