"""Benchmark the new ``#lang`` frontends: cold vs warm cache, both backends.

Usage::

    python benchmarks/bench_langs.py                  # 3 repeats, table only
    python benchmarks/bench_langs.py --repeats 5
    python benchmarks/bench_langs.py --json BENCH_langs.json

Two workload families exercise the dialect layer end-to-end:

- ``match-heavy`` (``#lang racket/match-ext``): a dispatch loop over
  tagged lists, vectors, and a user match expander — decision trees and
  pattern expansion on the compile path, tree execution on the run path.
- ``operator-heavy`` (``#lang racket/infix``): arithmetic written in
  braces — the whole-module infix rewrite on the compile path, ordinary
  compiled arithmetic on the run path.

Each program runs on both backends, cold (empty artifact cache: read +
dialect rewrite + expand + compile + store + run) and warm (a fresh
Runtime over the same cache: load + run). Warm runs assert the platform
contract: **zero** expansion steps and zero pyc codegens. ``--json``
writes ``BENCH_langs.json``::

    {"schema": "repro-bench-langs/1",
     "programs": {"match-heavy": {"interp": {"cold_seconds": ...,
                                             "warm_seconds": ...,
                                             "warm_speedup": ...,
                                             "warm_expansions": 0,
                                             "warm_pyc_codegens": 0}, ...},
                  ...}}
"""

from __future__ import annotations

import argparse
import json
import shutil
import sys
import tempfile
import time
from typing import Iterable

if __package__ in (None, ""):
    # allow `python benchmarks/bench_langs.py`
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    sys.path.insert(
        0,
        os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
        ),
    )

from repro import Runtime

BACKENDS = ("interp", "pyc")

MATCH_HEAVY = """#lang racket/match-ext
(define-match-expander point
  (syntax-rules () [(_ x y) (list 'point x y)]))
(define (step v)
  (match v
    [(list 'add a b) (+ a b)]
    [(list 'sub a b) (- a b)]
    [(list 'mul a b) (* a b)]
    [(cons 'neg r) (- 0 (car r))]
    [(point x y) (+ x y)]
    [(vector a b) (* a b)]
    [(vector a b c) (+ a (* b c))]
    [_ 0]))
(define (loop i acc)
  (if (= i 0)
      acc
      (loop (- i 1)
            (+ acc
               (step (list 'add i 1))
               (step (list 'mul i 2))
               (step (list 'point i i))
               (step (vector i 7))
               (step (vector i i i))))))
(displayln (loop 1500 0))
"""

OPERATOR_HEAVY = """#lang racket/infix
(define-op ^ 8 right expt)
(define (poly x) {3 * x * x + 2 * x + 1})
(define (tri n) {n * {n + 1} quotient 2})
(define (loop i acc)
  (if {i = 0}
      acc
      (loop {i - 1}
            {acc + (poly i) + {i ^ 2} - (tri i) + {i > 100 ? i : 0}})))
(displayln (loop 1500 0))
"""

PROGRAMS = {
    "match-heavy": MATCH_HEAVY,
    "operator-heavy": OPERATOR_HEAVY,
}


def time_run(source: str, backend: str, cache_dir: str) -> tuple[float, dict]:
    """One full cycle against ``cache_dir``; returns (seconds, stats)."""
    t0 = time.perf_counter()
    with Runtime(cache_dir=cache_dir, backend=backend) as rt:
        rt.register_module("bench", source)
        rt.run("bench")
        elapsed = time.perf_counter() - t0
        return elapsed, rt.stats.snapshot()


def bench_program(name: str, source: str, backend: str, repeats: int) -> dict:
    cold_best = warm_best = float("inf")
    warm_stats: dict = {}
    for _ in range(repeats):
        cache_dir = tempfile.mkdtemp(prefix="bench-langs-")
        try:
            cold, _ = time_run(source, backend, cache_dir)
            warm, stats = time_run(source, backend, cache_dir)
            cold_best = min(cold_best, cold)
            if warm < warm_best:
                warm_best, warm_stats = warm, stats
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    record = {
        "cold_seconds": round(cold_best, 6),
        "warm_seconds": round(warm_best, 6),
        "warm_speedup": round(cold_best / warm_best, 3),
        "warm_expansions": warm_stats["expansion_steps"],
        "warm_pyc_codegens": warm_stats["pyc_codegens"],
    }
    # the platform contract this benchmark exists to witness
    assert record["warm_expansions"] == 0, record
    assert record["warm_pyc_codegens"] == 0, record
    return record


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="cycles per cell (keep best)")
    parser.add_argument(
        "--json",
        nargs="?",
        const="BENCH_langs.json",
        default=None,
        metavar="FILE",
        help="write the summary as JSON (default file: BENCH_langs.json)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    payload: dict = {
        "schema": "repro-bench-langs/1",
        "repeats": args.repeats,
        "programs": {},
    }
    header = (
        f"{'program':<16}{'backend':<9}{'cold':>10}{'warm':>10}{'speedup':>9}"
        f"{'warm exp':>10}"
    )
    print(header)
    print("-" * len(header))
    for name, source in PROGRAMS.items():
        payload["programs"][name] = {}
        for backend in BACKENDS:
            rec = bench_program(name, source, backend, args.repeats)
            payload["programs"][name][backend] = rec
            print(
                f"{name:<16}{backend:<9}"
                f"{rec['cold_seconds']*1000:>8.1f}ms"
                f"{rec['warm_seconds']*1000:>8.1f}ms"
                f"{rec['warm_speedup']:>8.2f}x"
                f"{rec['warm_expansions']:>10}"
            )
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
