"""Shared fixtures and helpers for the benchmark suite."""

from __future__ import annotations

import pytest

from benchmarks.harness import BenchResult, BenchmarkProgram, Harness

HARNESS = Harness()


def bench_program(
    benchmark, program: BenchmarkProgram, config: str
) -> BenchResult:
    """Run one (program, configuration) pair under pytest-benchmark."""
    thunk = HARNESS.prepare(program, config)
    benchmark.group = f"{program.figure}:{program.name}"
    result = benchmark.pedantic(thunk, rounds=2, iterations=1, warmup_rounds=0)
    assert isinstance(result, BenchResult)
    return result
