"""Fig. 6 regeneration: Gabriel & Larceny benchmarks, typed vs untyped
(smaller is better). Run ``python benchmarks/run_figures.py fig6`` for the
paper-shaped table."""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_program
from benchmarks.programs.gabriel import GABRIEL_PROGRAMS

_IDS = [p.name for p in GABRIEL_PROGRAMS]


@pytest.mark.parametrize("program", GABRIEL_PROGRAMS, ids=_IDS)
def test_fig6_untyped(benchmark, program):
    result = bench_program(benchmark, program, "untyped")
    assert result.generic_dispatches > 0  # the untyped path is the generic one


@pytest.mark.parametrize("program", GABRIEL_PROGRAMS, ids=_IDS)
def test_fig6_typed_opt(benchmark, program):
    result = bench_program(benchmark, program, "typed/opt")
    # the figure's shape: the optimizer eliminated the generic dispatches
    assert result.unsafe_ops > 0
    assert result.generic_dispatches == 0


@pytest.mark.parametrize("program", GABRIEL_PROGRAMS, ids=_IDS)
def test_fig6_typed_no_opt(benchmark, program):
    result = bench_program(benchmark, program, "typed/no-opt")
    # without the optimizer, typed code runs exactly like untyped code
    assert result.unsafe_ops == 0
    assert result.generic_dispatches > 0
