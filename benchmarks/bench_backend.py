"""Compare the execution backends: interp vs pyc wall-clock speedups.

Usage::

    python benchmarks/bench_backend.py                 # fig6, 3 repeats
    python benchmarks/bench_backend.py fig6 fig8 --repeats 5
    python benchmarks/bench_backend.py --json BENCH_backend.json

Runs every program of the selected figures under the ``untyped``
configuration on both backends (same compiled module AST, different final
pipeline stage; see DESIGN.md §9), prints a per-program speedup table with
the geometric mean, and with ``--json`` writes ``BENCH_backend.json``::

    {"schema": "repro-bench-backend/1",
     "figures": {"fig6": {"programs": {"tak": {"interp_seconds": ...,
                                               "pyc_seconds": ...,
                                               "speedup": ...}, ...},
                          "geomean_speedup": ...}},
     "geomean_speedup": ...}

Speedup is interp_seconds / pyc_seconds — larger means the pyc backend is
faster. Both measurements time ``Runtime.instantiate`` in a fresh
namespace with compilation (and pyc codegen) already done, so the numbers
isolate the run phase of each backend.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from typing import Iterable

if __package__ in (None, ""):
    # allow `python benchmarks/bench_backend.py`
    import os

    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

from benchmarks.harness import Harness
from benchmarks.programs import ALL_PROGRAMS

BACKENDS = ("interp", "pyc")


def geomean(values: list[float]) -> float:
    return math.exp(sum(map(math.log, values)) / len(values)) if values else 0.0


def run_figure(figure: str, repeats: int, config: str) -> dict:
    programs = [p for p in ALL_PROGRAMS if p.figure == figure]
    records: dict[str, dict] = {}
    for program in programs:
        seconds: dict[str, float] = {}
        for backend in BACKENDS:
            harness = Harness(backend=backend)
            result = harness.run(program, config, repeats=repeats)
            seconds[backend] = result.seconds
            print(
                f"  ran {program.name:>14} [{backend:<6}] {result.seconds:8.3f}s",
                file=sys.stderr,
            )
        records[program.name] = {
            "interp_seconds": seconds["interp"],
            "pyc_seconds": seconds["pyc"],
            "speedup": seconds["interp"] / seconds["pyc"],
        }
    return {
        "programs": records,
        "geomean_speedup": geomean([r["speedup"] for r in records.values()]),
    }


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figures", nargs="*", default=[], help="fig6 fig7 fig8 fig9 (default: fig6)"
    )
    parser.add_argument("--repeats", type=int, default=3,
                        help="runs per cell (keep best)")
    parser.add_argument("--config", default="untyped",
                        help="benchmark configuration to time (default: untyped)")
    parser.add_argument(
        "--json",
        nargs="?",
        const="BENCH_backend.json",
        default=None,
        metavar="FILE",
        help="write the speedup summary as JSON (default file: BENCH_backend.json)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)
    figures = args.figures or ["fig6"]

    payload: dict = {
        "schema": "repro-bench-backend/1",
        "repeats": args.repeats,
        "config": args.config,
        "figures": {},
    }
    all_speedups: list[float] = []
    for figure in figures:
        print(f"\n{figure}: interp vs pyc [{args.config}]")
        fig = run_figure(figure, args.repeats, args.config)
        payload["figures"][figure] = fig
        header = f"{'benchmark':<14}{'interp':>12}{'pyc':>12}{'speedup':>10}"
        print(header)
        print("-" * len(header))
        for name, rec in fig["programs"].items():
            all_speedups.append(rec["speedup"])
            print(
                f"{name:<14}{rec['interp_seconds']*1000:>10.1f}ms"
                f"{rec['pyc_seconds']*1000:>10.1f}ms{rec['speedup']:>9.2f}x"
            )
        print(f"{'geomean':<14}{'':>12}{'':>12}{fig['geomean_speedup']:>9.2f}x")
    payload["geomean_speedup"] = geomean(all_speedups)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"\nwrote {args.json}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
