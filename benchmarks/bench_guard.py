"""Governance overhead benchmark: budgets on vs off (ISSUE 6).

Runs the fig. 6 Gabriel micro-benchmarks (untyped configuration) on an
ungoverned Runtime and again under a Budget with generous limits on every
dimension, and reports the slowdown. The acceptance criterion is <= 5%
overhead with the amortized checkpoint design; a separate ``allocations``
mode is reported on its own because allocation tracking compiles a charging
wrapper into every constructor call site and is priced differently.

Writes ``BENCH_guard.json`` at the repo root.

Usage::

    python benchmarks/bench_guard.py [--repeats 5] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time

if __package__ in (None, ""):
    sys.path.insert(0, os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
    sys.path.insert(
        0, os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
    )

from benchmarks.programs.gabriel import GABRIEL_PROGRAMS

from repro import Runtime
from repro.runtime.ports import capture_output

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: generous limits: every dimension is governed, nothing ever exhausts
GOVERNED = {
    "steps": 10**15,
    "seconds": 3600.0,
    "max_depth": 10**9,
}
GOVERNED_ALLOC = dict(GOVERNED, allocations=10**15)


def time_program(source: str, budget, repeats: int) -> tuple[float, dict]:
    """Best-of-N instantiation time for ``source`` under ``budget``."""
    with Runtime(cache=False, budget=budget) as rt:
        path = "<bench-guard>"
        rt.register_module(path, source)
        rt.compile(path)
        best = math.inf
        for _ in range(repeats):
            if rt.budget is not None:
                rt.budget.reset()
            ns = rt.make_namespace()
            with capture_output():
                start = time.perf_counter()
                rt.instantiate(path, ns)
                best = min(best, time.perf_counter() - start)
        return best, rt.stats.snapshot()


def geomean(values: list[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run(repeats: int) -> dict:
    rows = []
    for program in GABRIEL_PROGRAMS:
        source = "#lang racket\n" + program.untyped
        off, _ = time_program(source, None, repeats)
        on, on_stats = time_program(source, GOVERNED, repeats)
        alloc, alloc_stats = time_program(source, GOVERNED_ALLOC, repeats)
        rows.append(
            {
                "benchmark": program.name,
                "ungoverned_seconds": off,
                "governed_seconds": on,
                "governed_alloc_seconds": alloc,
                "overhead_pct": (on / off - 1) * 100,
                "alloc_overhead_pct": (alloc / off - 1) * 100,
                "eval_steps": on_stats["eval_steps"],
                "eval_allocations": alloc_stats["eval_allocations"],
            }
        )
        print(
            f"{program.name:<12} off {off:.4f}s  on {on:.4f}s "
            f"({rows[-1]['overhead_pct']:+.1f}%)  "
            f"alloc {alloc:.4f}s ({rows[-1]['alloc_overhead_pct']:+.1f}%)"
        )
    ratio = geomean([r["governed_seconds"] / r["ungoverned_seconds"] for r in rows])
    alloc_ratio = geomean(
        [r["governed_alloc_seconds"] / r["ungoverned_seconds"] for r in rows]
    )
    return {
        "benchmark": "guard-overhead",
        "repeats": repeats,
        "governed_limits": {k: v for k, v in GOVERNED.items()},
        "results": rows,
        "geomean_overhead_pct": (ratio - 1) * 100,
        "geomean_alloc_overhead_pct": (alloc_ratio - 1) * 100,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--out", default=os.path.join(REPO_ROOT, "BENCH_guard.json")
    )
    args = parser.parse_args(argv)

    result = run(args.repeats)
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(
        f"geomean overhead: {result['geomean_overhead_pct']:+.1f}% "
        f"(with allocation tracking: "
        f"{result['geomean_alloc_overhead_pct']:+.1f}%)"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
