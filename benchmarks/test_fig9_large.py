"""Fig. 9 regeneration: large benchmarks (ray tracer, FFT, functional data
structures), typed vs untyped (smaller is better)."""

from __future__ import annotations

import pytest

from benchmarks.conftest import HARNESS, bench_program
from benchmarks.programs.large import LARGE_PROGRAMS

_IDS = [p.name for p in LARGE_PROGRAMS]


@pytest.mark.parametrize("program", LARGE_PROGRAMS, ids=_IDS)
def test_fig9_untyped(benchmark, program):
    result = bench_program(benchmark, program, "untyped")
    assert result.generic_dispatches > 0


@pytest.mark.parametrize("program", LARGE_PROGRAMS, ids=_IDS)
def test_fig9_typed_opt(benchmark, program):
    result = bench_program(benchmark, program, "typed/opt")
    assert result.unsafe_ops > 0


@pytest.mark.parametrize("program", LARGE_PROGRAMS, ids=_IDS)
def test_fig9_typed_no_opt(benchmark, program):
    result = bench_program(benchmark, program, "typed/no-opt")
    assert result.unsafe_ops == 0


def test_fig9_fft_shape():
    """§7.3 reports a 33% optimizer speedup on fft; our reproduction's claim
    is the same *direction*: the typed+optimized fft eliminates most generic
    dispatch, and the outputs agree."""
    fft = next(p for p in LARGE_PROGRAMS if p.name == "fft")
    untyped = HARNESS.run(fft, "untyped")
    typed_opt = HARNESS.run(fft, "typed/opt")
    assert untyped.output == typed_opt.output
    assert typed_opt.generic_dispatches < untyped.generic_dispatches


def test_fig9_large_apps_benefit():
    """"The large applications benefit even more from our optimizer than the
    microbenchmarks": the float-heavy large apps lose nearly all dispatch."""
    raytrace = next(p for p in LARGE_PROGRAMS if p.name == "raytrace")
    result = HARNESS.run(raytrace, "typed/opt")
    baseline = HARNESS.run(raytrace, "untyped")
    assert result.generic_dispatches < baseline.generic_dispatches / 10
