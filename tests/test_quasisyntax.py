"""Tests for quasisyntax (#`) / unsyntax (#,) — procedural macro templates."""

from __future__ import annotations

import pytest

from repro.errors import SyntaxExpansionError


class TestBasicTemplates:
    def test_pure_template_is_like_quote_syntax(self, run):
        assert run(
            """#lang racket
(define-syntax (five stx) #`5)
(displayln (five))"""
        ) == "5\n"

    def test_unsyntax_splices_computed_syntax(self, run):
        assert run(
            """#lang racket
(define-syntax (when-compiled stx)
  #`(quote #,(current-seconds)))
(displayln (exact-integer? (when-compiled)))"""
        ) == "#t\n"

    def test_unsyntax_of_subform(self, run):
        assert run(
            """#lang racket
(define-syntax (twice stx)
  (define e (car (cdr (syntax-e stx))))
  #`(begin #,e #,e))
(twice (display "x"))
(newline)"""
        ) == "xx\n"

    def test_unsyntax_splicing(self, run):
        assert run(
            """#lang racket
(define-syntax (sum-args stx)
  #`(+ #,@(cdr (syntax-e stx))))
(displayln (sum-args 1 2 3 4))"""
        ) == "10\n"

    def test_unsyntax_coerces_plain_data(self, run):
        assert run(
            """#lang racket
(define-syntax (arg-count stx)
  #`(quote #,(length (syntax-e stx))))
(displayln (arg-count a b c))"""
        ) == "4\n"

    def test_nested_structure(self, run):
        assert run(
            """#lang racket
(define-syntax (make-pair stx)
  (define parts (syntax-e stx))
  #`(cons #,(car (cdr parts)) (list #,(car (cdr (cdr parts))) 99)))
(displayln (make-pair 1 2))"""
        ) == "(1 2 99)\n"

    def test_hygiene_of_template_identifiers(self, run):
        # `tmp` in the template does not capture the user's `tmp`
        assert run(
            """#lang racket
(define-syntax (with-tmp stx)
  #`(let ([tmp 42]) #,(car (cdr (syntax-e stx)))))
(define tmp 'user)
(displayln (with-tmp tmp))"""
        ) == "user\n"

    def test_bad_quasisyntax_shape(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n(define-syntax (f stx) (quasisyntax))\n(f)")


class TestPaperStyleMacros:
    def test_define_colon_reimplemented_in_object_language(self, run):
        """§3.1's define: — annotation via syntax-property-put — written as
        an object-language macro in a simple-type module, composing with the
        Python-implemented typechecker."""
        assert run(
            """#lang simple-type
(define-syntax (my-define: stx)
  (define parts (syntax-e stx))
  (define name (car (cdr parts)))
  (define ty (car (cdr (cdr (cdr parts)))))
  (define rhs (car (cdr (cdr (cdr (cdr parts))))))
  #`(define-values (#,(syntax-property-put name 'type-annotation ty)) #,rhs))
(my-define: x : Integer 41)
(displayln (+ x 1))"""
        ) == "42\n"

    def test_object_language_define_colon_still_typechecks(self, run):
        from repro.errors import TypeCheckError

        with pytest.raises(TypeCheckError):
            run(
                """#lang simple-type
(define-syntax (my-define: stx)
  (define parts (syntax-e stx))
  (define name (car (cdr parts)))
  (define ty (car (cdr (cdr (cdr parts)))))
  (define rhs (car (cdr (cdr (cdr (cdr parts))))))
  #`(define-values (#,(syntax-property-put name 'type-annotation ty)) #,rhs))
(my-define: x : Integer 3.7)"""
            )

    def test_paper_let_colon_rewrite_rule(self, run):
        """§3.1's let: rewrite — (let: ([x : T rhs]) body) as a library
        macro over lambda:, 'preserving the specified type information'."""
        assert run(
            """#lang simple-type
(define-syntax (my-let: stx)
  (define parts (syntax-e stx))
  (define clause (car (syntax-e (car (cdr parts)))))
  (define body (car (cdr (cdr parts))))
  (define cparts (syntax-e clause))
  (define x (car cparts))
  (define ty (car (cdr (cdr cparts))))
  (define rhs (car (cdr (cdr (cdr cparts)))))
  #`((lambda: ([#,x : #,ty]) #,body) #,rhs))
(displayln (my-let: ([y : Integer 20]) (+ y 2)))"""
        ) == "22\n"
