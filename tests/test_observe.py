"""Tests for the observability subsystem (repro.observe).

Covers the recorder/event bus, the macro stepper, the optimization coach
(fired + near-miss srcloc correctness, asserted against known source
positions), the phase profiler and its Chrome-trace export, the CLI
``trace`` subcommand (including the acceptance run over
``examples/optimizer_tour.py``), and the differential guarantee that
tracing never changes program results.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import Runtime, Tracer
from repro.observe import (
    NULL_RECORDER,
    Recorder,
    chrome_trace,
    coach_report,
    current_recorder,
    fired,
    global_tracer,
    install_global_tracer,
    macro_steps,
    near_misses,
    phase_totals,
    resolve_trace,
    steps_by_macro,
    summary,
    uninstall_global_tracer,
    use_recorder,
    validate_chrome_trace,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

TYPED_FLOAT = """#lang typed
(define (norm [x : Float] [y : Float]) : Float
  (sqrt (+ (* x x) (* y y))))
(define (blend [a : Float] [b : Number]) : Number
  (* a b))
(displayln (norm 3.0 4.0))
(displayln (blend 2.0 3))
"""


def traced_runtime(trace="full") -> Runtime:
    return Runtime(trace=trace, cache=False)


class TestRecorder:
    def test_default_runtime_has_no_tracer(self):
        assert Runtime().tracer is None

    def test_trace_true_attaches_tracer(self):
        rt = Runtime(trace=True)
        assert isinstance(rt.tracer, Tracer)
        assert rt.tracer.capture_syntax is False

    def test_trace_full_captures_syntax(self):
        assert Runtime(trace="full").tracer.capture_syntax is True

    def test_trace_accepts_shared_recorder(self):
        tracer = Tracer()
        assert Runtime(trace=tracer).tracer is tracer

    def test_trace_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            Runtime(trace="verbose")
        with pytest.raises(TypeError):
            Runtime(trace=42)

    def test_null_recorder_is_disabled_noop(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.instant("cache", "hit")
        with NULL_RECORDER.span("compile", "m"):
            pass
        NULL_RECORDER.macro_step("m", None, 1)
        NULL_RECORDER.opt_fired("float", "+", "unsafe-fl+", None)
        NULL_RECORDER.opt_near_miss("float", "+", "reason", None)

    def test_current_recorder_prefers_context_over_global(self):
        ctx_tracer, glob_tracer = Tracer(), Tracer()
        install_global_tracer(glob_tracer)
        try:
            assert current_recorder() is glob_tracer
            with use_recorder(ctx_tracer):
                assert current_recorder() is ctx_tracer
            assert current_recorder() is glob_tracer
        finally:
            uninstall_global_tracer()
        assert current_recorder() is NULL_RECORDER
        assert global_tracer() is None

    def test_runtime_adopts_global_tracer(self):
        tracer = Tracer()
        install_global_tracer(tracer)
        try:
            rt = Runtime(cache=False)
            assert rt.tracer is tracer
            rt.register_module("m", "#lang racket\n(displayln (+ 1 2))")
            rt.run("m")
        finally:
            uninstall_global_tracer()
        assert any(e.category == "macro" for e in tracer.events)

    def test_trace_false_opts_out_of_global_tracer(self):
        tracer = Tracer()
        install_global_tracer(tracer)
        try:
            assert resolve_trace(False) is None
            rt = Runtime(trace=False, cache=False)
            assert rt.tracer is None
        finally:
            uninstall_global_tracer()

    def test_event_cap_counts_drops(self):
        tracer = Tracer(max_events=2)
        for _ in range(5):
            tracer.instant("cache", "hit")
        assert len(tracer.events) == 2
        assert tracer.dropped == 3


class TestStepper:
    def test_macro_steps_record_name_depth_and_srcloc(self):
        rt = traced_runtime()
        rt.register_module(
            "stepper-m",
            "#lang racket\n"
            "(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))\n"
            "(twice (display 'hi))\n",
        )
        rt.run("stepper-m")
        steps = [e for e in macro_steps(rt.tracer) if e.name == "twice"]
        assert len(steps) == 1
        (step,) = steps
        assert step.srcloc is not None
        assert step.srcloc.source == "stepper-m"
        assert step.srcloc.line == 3
        assert step.depth >= 1
        # full-stepper mode renders the input and output syntax
        assert "twice" in step.attrs["in"]
        assert "begin" in step.attrs["out"]
        assert "intro_scope" in step.attrs

    def test_steps_by_macro_counts(self):
        rt = traced_runtime()
        rt.register_module(
            "count-m",
            "#lang racket\n"
            "(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))\n"
            "(twice (void))\n(twice (void))\n(twice (void))\n",
        )
        rt.run("count-m")
        assert steps_by_macro(rt.tracer)["twice"] == 3

    def test_stats_expansion_by_macro_attribution(self):
        rt = traced_runtime()
        rt.register_module(
            "attr-m",
            "#lang racket\n"
            "(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))\n"
            "(twice (void))\n(twice (void))\n",
        )
        rt.run("attr-m")
        assert rt.stats.expansion_by_macro["twice"] == 2
        assert rt.stats.snapshot()["expansion_by_macro"]["twice"] == 2
        assert ("twice", 2) in rt.stats.top_macros(50)

    def test_macro_attribution_without_tracer(self):
        # per-macro stats come from the stats layer, not the tracer
        rt = Runtime(cache=False)
        rt.register_module(
            "attr-plain",
            "#lang racket\n"
            "(define-syntax twice (syntax-rules () [(_ e) (begin e e)]))\n"
            "(twice (void))\n",
        )
        rt.run("attr-plain")
        assert rt.stats.expansion_by_macro["twice"] == 1


class TestCoach:
    def test_fired_and_near_miss_srclocs(self):
        rt = traced_runtime()
        rt.register_module("coach-m", TYPED_FLOAT)
        rt.run("coach-m")
        hits = fired(rt.tracer)
        misses = near_misses(rt.tracer)
        assert hits and misses

        # (* x x) sits at line 3 col 11 of TYPED_FLOAT; the fired event's
        # srcloc must be the application's own use site
        mults = [e for e in hits if e.attrs["op"] == "*"]
        assert {(e.srcloc.source, e.srcloc.line) for e in mults} == {("coach-m", 3)}
        assert all(e.attrs["replacement"] == "unsafe-fl*" for e in mults)
        assert all(e.attrs["rule"] == "float" for e in mults)
        sqrt_hits = [e for e in hits if e.attrs["op"] == "sqrt"]
        assert [e.srcloc.line for e in sqrt_hits] == [3]

        # (* a b) in blend is at line 5; b : Number blocks the float rule
        (miss,) = misses
        assert (miss.srcloc.source, miss.srcloc.line) == ("coach-m", 5)
        assert miss.attrs["op"] == "*"
        assert "Number" in miss.attrs["reason"]
        assert "unsafe-fl*" in miss.attrs["reason"]
        assert "Float" in miss.attrs["reason"]

    def test_near_miss_reports_disabled_rule_group(self):
        from repro.langs.typed import OPTIMIZER_CONFIG

        rt = traced_runtime()
        saved = set(OPTIMIZER_CONFIG["rules"])
        try:
            OPTIMIZER_CONFIG["rules"] = {"fixnum"}
            rt.register_module(
                "disabled-m",
                "#lang typed\n"
                "(define (f [x : Float]) : Float (* x x))\n"
                "(displayln (f 2.0))\n",
            )
            rt.run("disabled-m")
        finally:
            OPTIMIZER_CONFIG["rules"] = saved
        misses = near_misses(rt.tracer)
        assert any(
            "rule group `float` disabled" in e.attrs["reason"] for e in misses
        )

    def test_simple_type_optimizer_coaches_too(self):
        rt = traced_runtime()
        rt.register_module(
            "simple-m",
            "#lang simple-type\n"
            "(define (f [x : Float]) : Float (* x x))\n"
            "(displayln (f 2.0))\n",
        )
        rt.run("simple-m")
        assert any(e.attrs["op"] == "*" for e in fired(rt.tracer))

    def test_coach_report_renders_both_kinds(self):
        rt = traced_runtime()
        rt.register_module("report-m", TYPED_FLOAT)
        rt.run("report-m")
        report = coach_report(rt.tracer)
        assert "specialization(s) fired" in report
        assert "near-miss" in report
        assert "report-m:5" in report

    def test_untraced_run_emits_no_coach_events(self):
        rt = Runtime(trace=False, cache=False)
        rt.register_module("quiet-m", TYPED_FLOAT)
        rt.run("quiet-m")
        assert rt.tracer is None


class TestProfiler:
    def test_phase_totals_cover_pipeline(self):
        rt = traced_runtime()
        rt.register_module("prof-m", TYPED_FLOAT)
        rt.run("prof-m")
        totals = phase_totals(rt.tracer)
        # the final pipeline stage's phase depends on the active backend
        codegen = {"interp": "closure-compile", "pyc": "pyc-codegen"}[rt.backend]
        for phase in ("read", "compile", "expand", "typecheck", "optimize",
                      codegen, "run"):
            assert totals.get(phase, 0.0) > 0.0, phase

    def test_exclusive_times_do_not_double_count(self):
        rt = traced_runtime()
        rt.register_module("excl-m", TYPED_FLOAT)
        rt.run("excl-m")
        totals = phase_totals(rt.tracer)
        spans = [e for e in rt.tracer.events if e.kind == "X"]
        first = min(e.ts for e in spans)
        last = max(e.ts + e.dur for e in spans)
        # exclusive totals sum to at most the traced wall-clock envelope
        assert sum(totals.values()) <= (last - first) + 1e-6

    def test_chrome_trace_is_valid(self):
        rt = traced_runtime()
        rt.register_module("chrome-m", TYPED_FLOAT)
        rt.run("chrome-m")
        data = chrome_trace(rt.tracer)
        # round-trip through JSON: what the CLI writes is what we validate
        assert validate_chrome_trace(json.loads(json.dumps(data))) == []
        phases = {e["ph"] for e in data["traceEvents"]}
        assert phases == {"X", "i"}

    def test_validate_rejects_malformed(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": []}) != []
        bad = {
            "otherData": {"schema": "repro-trace/1"},
            "traceEvents": [{"name": "x", "cat": "run", "ph": "Q", "ts": 0,
                             "pid": 1, "tid": 1}],
        }
        assert any("bad ph" in p for p in validate_chrome_trace(bad))

    def test_summary_mentions_phases_macros_and_coach(self):
        rt = traced_runtime()
        rt.register_module("sum-m", TYPED_FLOAT)
        rt.run("sum-m")
        text = summary(rt.tracer)
        assert "per-phase timings" in text
        assert "typecheck" in text
        assert "expansion steps by macro" in text
        assert "optimization coach" in text


class TestDifferential:
    PROGRAMS = [
        TYPED_FLOAT,
        "#lang racket\n"
        "(define-syntax swap! (syntax-rules () [(_ a b)\n"
        "  (let ([tmp a]) (set! a b) (set! b tmp))]))\n"
        "(define x 1) (define y 2.5)\n"
        "(swap! x y)\n(displayln (list x y))\n",
        "#lang simple-type\n"
        "(define (area [r : Float]) : Float (* 3.141592653589793 (* r r)))\n"
        "(displayln (area 2.0))\n",
    ]

    @pytest.mark.parametrize("idx", range(len(PROGRAMS)))
    def test_tracing_does_not_change_results(self, idx):
        source = self.PROGRAMS[idx]
        outputs = {}
        for mode in (False, True, "full"):
            rt = Runtime(trace=mode, cache=False)
            rt.register_module(f"diff-{idx}", source)
            outputs[mode] = rt.run(f"diff-{idx}")
            rt.close()
        assert outputs[False] == outputs[True] == outputs["full"]

    def test_tracing_does_not_change_counters(self):
        snaps = {}
        for mode in (False, "full"):
            rt = Runtime(trace=mode, cache=False)
            rt.register_module("diff-c", TYPED_FLOAT)
            rt.run("diff-c")
            snap = rt.stats.snapshot()
            snap.pop("expansion_by_macro")
            snaps[mode] = snap
            rt.close()
        assert snaps[False] == snaps["full"]


class TestTraceCli:
    def test_trace_rkt_file_chrome_out(self, tmp_path, capsys):
        from repro.tools.runner import main

        src = tmp_path / "prog.rkt"
        src.write_text(TYPED_FLOAT)
        out = tmp_path / "trace.json"
        assert main(["trace", str(src), "--format", "chrome",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        # the program's own output goes to stderr; the trace to the file
        assert "5.0" in captured.err
        data = json.loads(out.read_text())
        assert validate_chrome_trace(data) == []

    def test_trace_summary_to_stdout(self, tmp_path, capsys):
        from repro.tools.runner import main

        src = tmp_path / "prog.rkt"
        src.write_text(TYPED_FLOAT)
        assert main(["trace", str(src), "--format", "summary"]) == 0
        out = capsys.readouterr().out
        assert "per-phase timings" in out
        assert "optimization coach" in out

    def test_trace_rejects_bad_format(self, capsys):
        from repro.tools.runner import main

        assert main(["trace", "x.rkt", "--format", "xml"]) == 2

    def test_run_log_optimizations(self, tmp_path, capsys):
        from repro.tools.runner import main

        src = tmp_path / "prog.rkt"
        src.write_text(TYPED_FLOAT)
        assert main(["run", str(src), "--log-optimizations"]) == 0
        err = capsys.readouterr().err
        assert "optimization coach" in err
        assert "near-miss" in err

    def test_acceptance_optimizer_tour_summary(self, capsys):
        """The ISSUE's acceptance run: `repro trace examples/optimizer_tour.py
        --format summary` reports >= 1 fired and >= 1 near-miss, with
        srclocs."""
        from repro.tools.runner import main

        example = os.path.join(REPO_ROOT, "examples", "optimizer_tour.py")
        assert main(["trace", example, "--format", "summary"]) == 0
        out = capsys.readouterr().out
        coach = out[out.index("optimization coach"):]
        header = coach.splitlines()[0]
        n_fired, n_miss = (
            int(header.split(": ")[1].split()[0]),
            int(header.split(", ")[1].split()[0]),
        )
        assert n_fired >= 1 and n_miss >= 1
        # srclocs: every fired/near-miss line carries source:line:col
        import re

        for line in coach.splitlines()[1:]:
            if line.strip().startswith(("fired", "near-miss")):
                match = re.search(r":(\d+):(\d+):", line)
                assert match, line
                assert int(match.group(1)) >= 1

    def test_acceptance_optimizer_tour_near_miss_srcloc(self):
        """The tour's near-miss is the (* a b) in blend, with its line."""
        tracer = Tracer(capture_syntax=True)
        install_global_tracer(tracer)
        try:
            import runpy
            from contextlib import redirect_stdout
            from io import StringIO

            with redirect_stdout(StringIO()):
                runpy.run_path(
                    os.path.join(REPO_ROOT, "examples", "optimizer_tour.py"),
                    run_name="__main__",
                )
        finally:
            uninstall_global_tracer()
        misses = near_misses(tracer)
        assert misses
        assert all("unsafe-fl*" in e.attrs["reason"] for e in misses)
        # the blend body (* a b) is two lines below the define in NEAR_MISS
        assert {e.srcloc.line for e in misses} == {10}
