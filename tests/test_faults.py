"""Chaos suite: deterministic fault injection against the artifact cache.

The ISSUE 6 acceptance property, exercised scenario by scenario: every
corrupt artifact, torn write, transient I/O error, contended lock, or
simulated crash ends in a structured diagnostic (or warning) plus a
successful recompile — never an unstructured crash, a hang, or a wrong
result.
"""

from __future__ import annotations

import gc
import os

import pytest

from repro import Runtime
from repro.faults import (
    FaultPlan,
    FaultRule,
    InjectedCrash,
    current_plan,
    fault_bytes,
    fault_point,
    use_fault_plan,
)
from repro.modules.cache import MAGIC, ModuleCache, QUARANTINE_DIR
from repro.syn.binding import TABLE

SOURCE = "#lang racket\n(define (sq x) (* x x))\n(displayln (sq 7))\n"
EXPECTED = "49\n"


def cached_runtime(tmp_path, **modules) -> Runtime:
    rt = Runtime(cache_dir=str(tmp_path / "cache"))
    for path, source in modules.items():
        rt.register_module(path, source)
    return rt


def warm_cache(tmp_path) -> str:
    """Run once to populate the cache; returns the artifact path."""
    with cached_runtime(tmp_path, m=SOURCE) as rt:
        assert rt.run("m") == EXPECTED
        [(name, _size)] = rt.cache.entries()
        return os.path.join(rt.cache.dir, name)


class TestPlanMechanics:
    def test_fault_points_are_noops_without_a_plan(self):
        assert current_plan() is None
        fault_point("cache.read")  # must not raise
        assert fault_bytes("cache.read", b"abc") == b"abc"

    def test_rules_fire_a_bounded_number_of_times(self):
        plan = FaultPlan().rule("s", "fail", times=2)
        with use_fault_plan(plan):
            for _ in range(2):
                with pytest.raises(OSError):
                    fault_point("s")
            fault_point("s")  # exhausted: behaves
        assert plan.fired == [("s", "fail"), ("s", "fail")]

    def test_prefix_sites_match(self):
        plan = FaultPlan().rule("cache.*", "fail", times=None)
        with use_fault_plan(plan):
            with pytest.raises(OSError):
                fault_point("cache.read")
            with pytest.raises(OSError):
                fault_point("cache.write")
            fault_point("other.site")

    def test_garbling_is_deterministic_per_seed(self):
        payload = bytes(range(256)) * 4
        out1 = FaultPlan(seed=42).garble(payload)
        out2 = FaultPlan(seed=42).garble(payload)
        assert out1 == out2 != payload

    def test_injected_crash_skips_except_exception(self):
        with pytest.raises(InjectedCrash):
            try:
                raise InjectedCrash("boom")
            except Exception:  # the platform's degradation paths
                pytest.fail("InjectedCrash must not be caught as Exception")


class TestCorruption:
    """Bad bytes on disk: detected, quarantined (C104), recompiled."""

    @pytest.mark.parametrize("kind", ["garble", "torn"])
    def test_corrupt_read_quarantines_and_recompiles(self, tmp_path, kind):
        warm_cache(tmp_path)
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            with use_fault_plan(FaultPlan(seed=9).rule("cache.read", kind)):
                assert rt.run("m") == EXPECTED
            assert any(d.code == "C104" for d in rt.cache.diagnostics)
            assert rt.stats.cache_hits == 0
            qdir = os.path.join(rt.cache.dir, QUARANTINE_DIR)
            assert os.listdir(qdir)
            # the recompile stored a fresh artifact over the quarantined one
            assert rt.stats.cache_stores == 1
        # and the replacement is valid: a later runtime gets a warm hit
        with cached_runtime(tmp_path, m=SOURCE) as rt2:
            assert rt2.run("m") == EXPECTED
            assert rt2.stats.cache_hits == 1

    @pytest.mark.parametrize("kind", ["garble", "torn"])
    def test_corrupt_write_is_caught_on_next_load(self, tmp_path, kind):
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            with use_fault_plan(FaultPlan(seed=5).rule("cache.write", kind)):
                assert rt.run("m") == EXPECTED  # the run itself is unharmed
        with cached_runtime(tmp_path, m=SOURCE) as rt2:
            assert rt2.run("m") == EXPECTED
            assert any(d.code == "C104" for d in rt2.cache.diagnostics)

    def test_hand_truncated_artifact(self, tmp_path):
        artifact = warm_cache(tmp_path)
        with open(artifact, "rb") as f:
            data = f.read()
        with open(artifact, "wb") as f:
            f.write(data[: len(MAGIC) + 10])  # cut inside the checksum
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            assert rt.run("m") == EXPECTED
            assert any(d.code == "C104" for d in rt.cache.diagnostics)


class TestTransientIO:
    def test_transient_read_failure_is_retried_to_a_hit(self, tmp_path):
        warm_cache(tmp_path)
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            with use_fault_plan(FaultPlan().rule("cache.read", "fail", times=2)):
                assert rt.run("m") == EXPECTED
            assert rt.stats.cache_hits == 1
            assert rt.cache.retries == 2
            assert not rt.cache.diagnostics  # fully recovered: no warning

    def test_persistent_read_failure_degrades_to_recompile(self, tmp_path):
        warm_cache(tmp_path)
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            with use_fault_plan(
                FaultPlan().rule("cache.read", "fail", times=None)
            ):
                assert rt.run("m") == EXPECTED
            assert rt.stats.cache_hits == 0
            assert rt.cache.diagnostics  # warned, structured

    def test_persistent_store_failure_warns_c103(self, tmp_path):
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            with use_fault_plan(
                FaultPlan().rule("cache.write", "fail", times=None)
            ):
                assert rt.run("m") == EXPECTED
            assert any(d.code == "C103" for d in rt.cache.diagnostics)
            assert rt.stats.cache_stores == 0
            # the failed store's temp file was cleaned up
            assert not [
                n for n in os.listdir(rt.cache.dir) if ".tmp." in n
            ]

    def test_unavailable_cache_dir_disables_with_one_c105(self, tmp_path):
        with cached_runtime(tmp_path, a=SOURCE, b="#lang racket\n(displayln 2)\n") as rt:
            with use_fault_plan(
                FaultPlan().rule("cache.makedirs", "fail", times=None)
            ):
                assert rt.run("a") == EXPECTED
                assert rt.run("b") == "2\n"
            assert rt.cache.disabled
            # one warning for the whole session, not one per store
            assert [d.code for d in rt.cache.diagnostics] == ["C105"]


class TestLocking:
    def test_contended_lock_skips_the_store(self, tmp_path):
        fcntl = pytest.importorskip("fcntl")
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            source_hash = rt.registry.source_hash("m")
            artifact = rt.cache.artifact_path("m", "racket", source_hash)
            os.makedirs(rt.cache.dir, exist_ok=True)
            fd = os.open(artifact + ".lock", os.O_CREAT | os.O_RDWR, 0o644)
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                # the "other writer" holds the lock: the run still succeeds,
                # the store is skipped silently
                assert rt.run("m") == EXPECTED
                assert rt.stats.cache_stores == 0
                assert not rt.cache.diagnostics
            finally:
                os.close(fd)
        assert not os.path.exists(artifact)

    def test_lock_failure_skips_the_store_gracefully(self, tmp_path):
        # two acquisition sites per cold compile since the writer-claim
        # protocol landed: the pre-compile claim and the store itself; when
        # both fail, the run still succeeds and the store is skipped
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            with use_fault_plan(FaultPlan().rule("cache.lock", "fail", times=2)):
                assert rt.run("m") == EXPECTED
            assert rt.stats.cache_stores == 0

    def test_lock_failure_at_claim_only_still_stores(self, tmp_path):
        # a transient lock failure at claim time degrades to an unclaimed
        # compile; the store's own acquisition then succeeds and publishes
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            with use_fault_plan(FaultPlan().rule("cache.lock", "fail", times=1)):
                assert rt.run("m") == EXPECTED
            assert rt.stats.cache_stores == 1

    def test_lock_is_released_after_store(self, tmp_path):
        artifact = warm_cache(tmp_path)
        assert not os.path.exists(artifact + ".lock")


class TestCrash:
    def test_crash_between_write_and_rename_leaves_recoverable_debris(
        self, tmp_path
    ):
        gc.collect()
        before = TABLE.entry_count()
        rt = cached_runtime(tmp_path, m=SOURCE)
        with pytest.raises(InjectedCrash):
            with use_fault_plan(FaultPlan().rule("cache.replace", "crash")):
                rt.run("m")
        cache_dir = rt.cache.dir
        # the "crash" left a torn-write temp file, never a torn artifact
        debris = [n for n in os.listdir(cache_dir) if ".tmp." in n]
        assert debris
        assert not [n for n in os.listdir(cache_dir) if n.endswith(".zo")]
        # the compilation transaction rolled the global table back
        rt.close()
        gc.collect()
        assert TABLE.entry_count() == before
        # the debris names this (live) process as its writer, so doctor
        # reports it instead of sweeping — safe to run mid-flight
        report = ModuleCache(cache_dir).doctor()
        assert report["tmp_removed"] == []
        assert [name for name, _pid in report["tmp_live"]] == debris
        assert all(pid == os.getpid() for _name, pid in report["tmp_live"])
        # once the writer is gone (simulate: re-stamp with a dead pid),
        # doctor sweeps the debris
        dead = []
        for name in debris:
            stem = name.rsplit(".tmp.", 1)[0]
            dead_name = f"{stem}.tmp.999999999"
            os.rename(
                os.path.join(cache_dir, name), os.path.join(cache_dir, dead_name)
            )
            dead.append(dead_name)
        report = ModuleCache(cache_dir).doctor()
        assert report["tmp_removed"] == dead
        assert not [n for n in os.listdir(cache_dir) if ".tmp." in n]
        # and a fresh process recompiles and stores normally
        with cached_runtime(tmp_path, m=SOURCE) as rt2:
            assert rt2.run("m") == EXPECTED
            assert rt2.stats.cache_stores == 1


class TestDoctor:
    def test_doctor_full_repair_report(self, tmp_path):
        artifact = warm_cache(tmp_path)
        cache_dir = os.path.dirname(artifact)
        # corrupt one artifact, plant torn-write debris and a stale lock
        with open(artifact, "r+b") as f:
            f.seek(len(MAGIC) + 40)
            f.write(b"\x00\x00\x00\x00")
        with open(os.path.join(cache_dir, "dead.zo.tmp.123"), "wb") as f:
            f.write(b"partial")
        with open(os.path.join(cache_dir, "orphan.zo.lock"), "wb"):
            pass
        report = ModuleCache(cache_dir).doctor()
        assert report["scanned"] == 1
        assert report["ok"] == 0
        [(name, why, dest)] = report["quarantined"]
        assert name == os.path.basename(artifact)
        assert os.path.exists(dest)
        assert report["tmp_removed"] == ["dead.zo.tmp.123"]
        assert report["locks_removed"] == ["orphan.zo.lock"]
        assert report["errors"] == []

    def test_doctor_keeps_healthy_artifacts(self, tmp_path):
        artifact = warm_cache(tmp_path)
        report = ModuleCache(os.path.dirname(artifact)).doctor()
        assert (report["scanned"], report["ok"]) == (1, 1)
        assert not report["quarantined"]
        assert os.path.exists(artifact)

    def test_doctor_on_missing_directory_reports_not_raises(self, tmp_path):
        report = ModuleCache(str(tmp_path / "absent")).doctor()
        assert report["errors"]

    def test_cli_cache_doctor(self, tmp_path, capsys, monkeypatch):
        from repro.tools.runner import main

        artifact = warm_cache(tmp_path)
        monkeypatch.setenv("REPRO_CACHE_DIR", os.path.dirname(artifact))
        assert main(["cache", "doctor"]) == 0
        out = capsys.readouterr().out
        assert "1 ok" in out
        assert "no problems found" in out
        with open(artifact, "wb") as f:
            f.write(b"garbage")
        assert main(["cache", "doctor"]) == 0
        assert "quarantined" in capsys.readouterr().out


class TestEndToEnd:
    def test_chaos_storm_never_breaks_results(self, tmp_path):
        """A multi-fault plan across several runs: outputs stay correct and
        every degradation is structured."""
        plan = (
            FaultPlan(seed=1234)
            .rule("cache.write", "garble", times=1)
            .rule("cache.read", "fail", times=2)
            .rule("cache.makedirs", "delay", times=1, delay=0.001)
        )
        outputs = []
        with use_fault_plan(plan):
            for _ in range(4):
                with cached_runtime(tmp_path, m=SOURCE) as rt:
                    outputs.append(rt.run("m"))
                    for diag in rt.cache.diagnostics:
                        assert diag.severity == "warning"
                        assert diag.code.startswith("C1")
        assert outputs == [EXPECTED] * 4
        # the storm is over: the cache settles into steady warm hits
        with cached_runtime(tmp_path, m=SOURCE) as rt:
            assert rt.run("m") == EXPECTED
            assert rt.stats.cache_hits == 1
