"""Tests for the numeric tower: generic and unsafe operations."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from repro.errors import WrongTypeError
from repro.runtime import numerics as num
from repro.runtime.stats import STATS


class TestGenericArithmetic:
    def test_integer_addition_stays_exact(self):
        assert num.generic_add(2, 3) == 5
        assert isinstance(num.generic_add(2, 3), int)

    def test_bignum_addition(self):
        assert num.generic_add(10**30, 1) == 10**30 + 1

    def test_float_contagion(self):
        result = num.generic_add(1, 2.5)
        assert result == 3.5 and isinstance(result, float)

    def test_fraction_plus_int_normalizes(self):
        result = num.generic_add(Fraction(1, 2), Fraction(1, 2))
        assert result == 1 and isinstance(result, int)

    def test_complex_contagion(self):
        result = num.generic_mul(2.0, complex(1.0, 1.0))
        assert result == complex(2.0, 2.0)

    def test_add_rejects_non_numbers(self):
        with pytest.raises(WrongTypeError):
            num.generic_add("a", 1)

    def test_add_rejects_booleans(self):
        with pytest.raises(WrongTypeError):
            num.generic_add(True, 1)

    def test_counters_increment(self):
        before = STATS.generic_dispatches
        num.generic_add(1, 2)
        assert STATS.generic_dispatches == before + 1


class TestDivision:
    def test_exact_division_produces_rational(self):
        assert num.generic_div(1, 3) == Fraction(1, 3)

    def test_exact_division_normalizes(self):
        result = num.generic_div(6, 3)
        assert result == 2 and isinstance(result, int)

    def test_exact_division_by_zero_raises(self):
        with pytest.raises(WrongTypeError):
            num.generic_div(1, 0)

    def test_float_division_by_zero_gives_infinity(self):
        assert num.generic_div(1.0, 0.0) == math.inf
        assert num.generic_div(-1.0, 0.0) == -math.inf

    def test_zero_over_float_zero_is_nan(self):
        assert math.isnan(num.generic_div(0.0, 0.0))

    def test_quotient_truncates_toward_zero(self):
        assert num.generic_quotient(7, 2) == 3
        assert num.generic_quotient(-7, 2) == -3

    def test_remainder_sign_follows_dividend(self):
        assert num.generic_remainder(-7, 2) == -1
        assert num.generic_remainder(7, -2) == 1

    def test_modulo_sign_follows_divisor(self):
        assert num.generic_modulo(-7, 2) == 1
        assert num.generic_modulo(7, -2) == -1


class TestSqrtAndFriends:
    def test_perfect_square_stays_exact(self):
        result = num.generic_sqrt(49)
        assert result == 7 and isinstance(result, int)

    def test_non_square_becomes_float(self):
        assert num.generic_sqrt(2) == math.sqrt(2)

    def test_exact_rational_square(self):
        assert num.generic_sqrt(Fraction(1, 4)) == Fraction(1, 2)

    def test_negative_gives_complex(self):
        assert num.generic_sqrt(-4) == complex(0.0, 2.0)

    def test_negative_float(self):
        assert num.generic_sqrt(-4.0) == complex(0.0, 2.0)

    def test_complex_sqrt(self):
        result = num.generic_sqrt(complex(0.0, 2.0))
        assert abs(result - complex(1.0, 1.0)) < 1e-12

    def test_magnitude_of_complex(self):
        assert num.generic_magnitude(complex(3.0, 4.0)) == 5.0

    def test_magnitude_of_real(self):
        assert num.generic_magnitude(-7) == 7

    def test_make_rectangular(self):
        assert num.generic_make_rectangular(1.0, 2.0) == complex(1.0, 2.0)

    def test_make_rectangular_exact_zero_imag_is_real(self):
        assert num.generic_make_rectangular(5, 0) == 5

    def test_real_and_imag_parts(self):
        z = complex(1.5, -2.5)
        assert num.generic_real_part(z) == 1.5
        assert num.generic_imag_part(z) == -2.5
        assert num.generic_imag_part(3) == 0

    def test_expt_exact(self):
        assert num.generic_expt(2, 10) == 1024

    def test_expt_negative_exponent_gives_rational(self):
        assert num.generic_expt(2, -2) == Fraction(1, 4)

    def test_exact_to_inexact(self):
        assert num.generic_exact_to_inexact(Fraction(1, 2)) == 0.5

    def test_inexact_to_exact(self):
        assert num.generic_inexact_to_exact(0.5) == Fraction(1, 2)


class TestComparisons:
    def test_lt_chain_types(self):
        assert num.generic_lt(1, 2)
        assert num.generic_lt(1, 1.5)
        assert num.generic_le(2, 2)

    def test_comparison_rejects_complex(self):
        with pytest.raises(WrongTypeError):
            num.generic_lt(complex(1, 1), 2)

    def test_num_eq_across_exactness(self):
        assert num.generic_num_eq(1, 1.0)

    def test_min_max_contagion(self):
        assert num.generic_min(1, 2.0) == 1.0
        assert isinstance(num.generic_min(1, 2.0), float)
        assert num.generic_max(3, 2.0) == 3.0


class TestRounding:
    def test_floor_exact(self):
        assert num.generic_floor(Fraction(7, 2)) == 3

    def test_floor_float_stays_float(self):
        assert num.generic_floor(3.7) == 3.0
        assert isinstance(num.generic_floor(3.7), float)

    def test_round_is_banker(self):
        assert num.generic_round(Fraction(5, 2)) == 2
        assert num.generic_round(Fraction(7, 2)) == 4

    def test_truncate_toward_zero(self):
        assert num.generic_truncate(-3.7) == -3.0


class TestPredicates:
    def test_number_classification(self):
        assert num.is_number(1)
        assert num.is_number(1.5)
        assert num.is_number(Fraction(1, 2))
        assert num.is_number(complex(1, 1))
        assert not num.is_number(True)
        assert not num.is_number("1")

    def test_real_excludes_complex(self):
        assert num.is_real(1.5)
        assert not num.is_real(complex(1, 1))

    def test_exact_integer(self):
        assert num.is_exact_integer(3)
        assert not num.is_exact_integer(3.0)
        assert not num.is_exact_integer(True)

    def test_flonum(self):
        assert num.is_flonum(1.0)
        assert not num.is_flonum(1)

    def test_float_complex(self):
        assert num.is_float_complex(complex(1, 2))
        assert not num.is_float_complex(1.0)


class TestUnsafeOps:
    def test_unsafe_matches_generic_on_floats(self):
        assert num.unsafe_fl_add(1.5, 2.5) == num.generic_add(1.5, 2.5)
        assert num.unsafe_fl_mul(3.0, 4.0) == num.generic_mul(3.0, 4.0)
        assert num.unsafe_fl_div(1.0, 3.0) == num.generic_div(1.0, 3.0)

    def test_unsafe_division_by_zero_matches(self):
        assert num.unsafe_fl_div(1.0, 0.0) == math.inf
        assert math.isnan(num.unsafe_fl_div(0.0, 0.0))

    def test_unsafe_ops_do_not_dispatch(self):
        before = STATS.generic_dispatches
        num.unsafe_fl_add(1.0, 2.0)
        num.unsafe_fx_add(1, 2)
        assert STATS.generic_dispatches == before

    def test_unsafe_counter(self):
        before = STATS.unsafe_ops
        num.unsafe_fl_add(1.0, 2.0)
        assert STATS.unsafe_ops == before + 1

    def test_unsafe_fx_quotient_truncates(self):
        assert num.unsafe_fx_quotient(-7, 2) == num.generic_quotient(-7, 2)
        assert num.unsafe_fx_remainder(-7, 2) == num.generic_remainder(-7, 2)

    def test_unsafe_fc_matches_generic(self):
        a, b = complex(1.0, 2.0), complex(3.0, -1.0)
        assert num.unsafe_fc_mul(a, b) == num.generic_mul(a, b)
        assert num.unsafe_fc_magnitude(a) == num.generic_magnitude(a)
