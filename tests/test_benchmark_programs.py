"""Correctness of the benchmark programs: typed and untyped versions agree,
under all optimizer configurations (the fast programs only — the benchmark
suite itself re-validates all of them against pinned outputs)."""

from __future__ import annotations

import sys

import pytest

sys.path.insert(0, ".")  # benchmarks/ is a top-level package

from benchmarks.harness import Harness
from benchmarks.programs import ALL_PROGRAMS

FAST = [p for p in ALL_PROGRAMS if p.name in ("ack", "fib", "nqueens", "fannkuch", "fft")]


@pytest.fixture(scope="module")
def harness():
    return Harness()


@pytest.mark.parametrize("program", FAST, ids=lambda p: p.name)
def test_typed_and_untyped_agree(harness, program):
    untyped = harness.run(program, "untyped")
    typed = harness.run(program, "typed/opt")
    assert untyped.output == typed.output


@pytest.mark.parametrize("program", FAST, ids=lambda p: p.name)
def test_optimizer_is_semantics_preserving(harness, program):
    with_opt = harness.run(program, "typed/opt")
    without_opt = harness.run(program, "typed/no-opt")
    assert with_opt.output == without_opt.output


@pytest.mark.parametrize("program", FAST, ids=lambda p: p.name)
def test_baseline_configuration_agrees(harness, program):
    baseline = harness.run(program, "baseline")
    untyped = harness.run(program, "untyped")
    assert baseline.output == untyped.output


def test_expected_outputs_pinned(harness):
    """Programs with pinned outputs produce exactly them (the harness
    asserts internally; this just exercises the check)."""
    for program in FAST:
        if program.expected is not None:
            result = harness.run(program, "untyped")
            assert result.output == program.expected
