"""Tests for runtime value representations and equality."""

from __future__ import annotations

import pytest

from repro.runtime import values as v
from repro.runtime.equality import eq, equal, eqv
from repro.runtime.printing import display_value, write_value


class TestSymbols:
    def test_interning(self):
        assert v.Symbol("abc") is v.Symbol("abc")

    def test_distinct_names(self):
        assert v.Symbol("a") is not v.Symbol("b")

    def test_gensym_unique(self):
        assert v.gensym("g") is not v.gensym("g")

    def test_keyword_interning(self):
        assert v.Keyword("k") is v.Keyword("k")
        assert v.Keyword("k") is not v.Symbol("k")


class TestLists:
    def test_from_to_roundtrip(self):
        assert v.to_list(v.from_list([1, 2, 3])) == [1, 2, 3]

    def test_empty(self):
        assert v.from_list([]) is v.NULL
        assert v.to_list(v.NULL) == []

    def test_improper_tail(self):
        lst = v.from_list([1, 2], tail=3)
        assert lst.car == 1 and lst.cdr.car == 2 and lst.cdr.cdr == 3

    def test_is_list(self):
        assert v.is_list(v.from_list([1, 2]))
        assert v.is_list(v.NULL)
        assert not v.is_list(v.Pair(1, 2))

    def test_list_length(self):
        assert v.list_length(v.from_list(list(range(5)))) == 5

    def test_to_list_improper_raises(self):
        with pytest.raises(ValueError):
            v.to_list(v.Pair(1, 2))

    def test_pair_iteration(self):
        assert list(v.from_list([1, 2, 3])) == [1, 2, 3]


class TestHashTable:
    def test_set_get(self):
        h = v.HashTable()
        h.set(v.Symbol("k"), 42)
        assert h.get(v.Symbol("k")) == 42

    def test_structural_keys(self):
        h = v.HashTable()
        h.set(v.from_list([1, 2]), "a")
        assert h.get(v.from_list([1, 2])) == "a"

    def test_missing_returns_default(self):
        h = v.HashTable()
        assert h.get("nope", "default") == "default"

    def test_remove_and_count(self):
        h = v.HashTable()
        h.set(1, "a")
        h.set(2, "b")
        h.remove(1)
        assert h.count() == 1 and not h.has(1)


class TestEq:
    def test_symbols(self):
        assert eq(v.Symbol("a"), v.Symbol("a"))

    def test_small_integers(self):
        assert eq(10**20, 10**20)  # deterministic across boxing

    def test_booleans_not_integers(self):
        assert not eq(True, 1)
        assert not eq(1, True)

    def test_chars(self):
        assert eq(v.Char("x"), v.Char("x"))

    def test_pairs_by_identity(self):
        p = v.Pair(1, 2)
        assert eq(p, p)
        assert not eq(v.Pair(1, 2), v.Pair(1, 2))


class TestEqv:
    def test_floats(self):
        assert eqv(1.5, 1.5)
        assert not eqv(1.5, 1.6)

    def test_nan_eqv_itself(self):
        nan = float("nan")
        assert eqv(nan, nan)

    def test_exactness_distinguished(self):
        assert not eqv(1, 1.0)


class TestEqual:
    def test_lists(self):
        assert equal(v.from_list([1, 2, 3]), v.from_list([1, 2, 3]))
        assert not equal(v.from_list([1, 2]), v.from_list([1, 2, 3]))

    def test_nested(self):
        a = v.from_list([v.from_list([1]), "x"])
        b = v.from_list([v.from_list([1]), "x"])
        assert equal(a, b)

    def test_strings(self):
        assert equal("abc", "ab" + "c")

    def test_vectors(self):
        assert equal(v.MVector([1, 2]), v.MVector([1, 2]))
        assert not equal(v.MVector([1, 2]), v.MVector([2, 1]))

    def test_boxes(self):
        assert equal(v.Box(1), v.Box(1))
        assert not equal(v.Box(1), v.Box(2))

    def test_improper(self):
        assert equal(v.Pair(1, 2), v.Pair(1, 2))


class TestPrinting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, "#t"),
            (False, "#f"),
            (42, "42"),
            (1.5, "1.5"),
            (2.0, "2.0"),
            (float("inf"), "+inf.0"),
            (float("-inf"), "-inf.0"),
            (complex(2.0, 2.0), "2.0+2.0i"),
            (complex(1.0, -0.5), "1.0-0.5i"),
            ("hi", '"hi"'),
            (v.Symbol("sym"), "sym"),
            (v.Char("a"), "#\\a"),
            (v.Char(" "), "#\\space"),
            (v.NULL, "()"),
            (v.VOID, "#<void>"),
        ],
    )
    def test_write(self, value, expected):
        assert write_value(value) == expected

    def test_write_list(self):
        assert write_value(v.from_list([1, 2, 3])) == "(1 2 3)"

    def test_write_improper(self):
        assert write_value(v.Pair(1, 2)) == "(1 . 2)"

    def test_write_vector(self):
        assert write_value(v.MVector([1, "a"])) == '#(1 "a")'

    def test_display_strings_unquoted(self):
        assert display_value("hi") == "hi"
        assert display_value(v.from_list(["a", v.Char("b")])) == "(a b)"

    def test_nan_prints(self):
        assert write_value(float("nan")) == "+nan.0"

    def test_string_escapes_roundtrip(self):
        assert write_value('a"b\nc') == '"a\\"b\\nc"'
