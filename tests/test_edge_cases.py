"""Edge-case regression tests: expander corners, hygiene stress, and
less-traveled primitives."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeReproError, WrongTypeError


class TestExpanderCorners:
    def test_begin0_returns_first_value(self, run):
        assert run(
            """#lang racket
(define b (box 0))
(displayln (begin0 (unbox b) (set-box! b 9)))
(displayln (unbox b))"""
        ) == "0\n9\n"

    def test_expression_wrapper(self, run):
        assert run("#lang racket\n(displayln (#%expression 5))") == "5\n"

    def test_local_variable_shadows_macro(self, run):
        # `when` is a macro; a formal of the same name must win locally
        assert run(
            "#lang racket\n(define (f when) (when 2))\n(displayln (f add1))"
        ) == "3\n"

    def test_recursive_syntax_rules_hygiene(self, run):
        assert run(
            """#lang racket
(define-syntax my-or
  (syntax-rules ()
    [(_) #f]
    [(_ e) e]
    [(_ e r ...) (let ([t e]) (if t t (my-or r ...)))]))
(define t 'outer)
(displayln (my-or #f #f t))"""
        ) == "outer\n"

    def test_local_macro_in_body(self, run):
        assert run(
            """#lang racket
(define (f)
  (define-syntax double (syntax-rules () [(_ e) (* 2 e)]))
  (double 21))
(displayln (f))"""
        ) == "42\n"

    def test_mutually_referencing_macros(self, run):
        assert run(
            """#lang racket
(define-syntax m1 (syntax-rules () [(_ e) (m2 e)]))
(define-syntax m2 (syntax-rules () [(_ e) (+ e 1)]))
(displayln (m1 9))"""
        ) == "10\n"

    def test_macro_generated_definitions_twice(self, run):
        assert run(
            """#lang racket
(define-syntax def2 (syntax-rules () [(_ n v) (define n v)]))
(def2 a 1)
(def2 b 2)
(displayln (+ a b))"""
        ) == "3\n"

    def test_runtime_syntax_objects(self, run):
        # quote-syntax at phase 0: syntax objects as first-class values
        assert run(
            """#lang racket
(define s (quote-syntax (a b c)))
(displayln (length (syntax->list s)))
(displayln (identifier? (car (syntax-e s))))"""
        ) == "3\n#t\n"

    def test_deeply_nested_expansion(self, run):
        nested = "0"
        for _ in range(40):
            nested = f"(wrap {nested})"
        assert run(
            "#lang racket\n"
            "(define-syntax wrap (syntax-rules () [(_ e) (+ 1 e)]))\n"
            f"(displayln {nested})"
        ) == "40\n"


class TestLessTraveledPrimitives:
    def test_cxr_compositions(self, run):
        assert run(
            """#lang racket
(define t '((1 2) (3 4)))
(displayln (list (caar t) (cadr t) (cdar t) (caddr '(1 2 3))))"""
        ) == "(1 (3 4) (2) 3)\n"

    def test_keywords_as_data(self, run):
        assert run("#lang racket\n(displayln '(#:mode fast))") == "(#:mode fast)\n"
        assert run("#lang racket\n(displayln (keyword? '#:k))") == "#t\n"

    def test_gensym_distinct(self, run):
        assert run(
            "#lang racket\n(displayln (eq? (gensym 'g) (gensym 'g)))"
        ) == "#f\n"

    def test_string_misc(self, run):
        assert run(
            """#lang racket
(displayln (string #\\a #\\b))
(displayln (make-string 3 #\\x))
(displayln (string-join (list "a" "b") "-"))
(displayln (string-contains? "hello" "ell"))"""
        ) == "ab\nxxx\na-b\n#t\n"

    def test_char_predicates(self, run):
        assert run(
            """#lang racket
(displayln (list (char-alphabetic? #\\a) (char-numeric? #\\5)
                 (char-whitespace? #\\space) (char<? #\\a #\\b)))"""
        ) == "(#t #t #t #t)\n"

    def test_number_predicates_on_floats(self, run):
        assert run(
            """#lang racket
(displayln (list (nan? +nan.0) (infinite? +inf.0) (integer? 3.0)
                 (exact? 1/2) (inexact? 2.5)))"""
        ) == "(#t #t #t #t #t)\n"

    def test_numeric_conversions(self, run):
        assert run(
            """#lang racket
(displayln (list (exact->inexact 1/4) (inexact->exact 0.25)
                 (numerator 3/4) (denominator 3/4) (gcd 12 18)))"""
        ) == "(0.25 1/4 3 4 6)\n"

    def test_rounding_family(self, run):
        assert run(
            """#lang racket
(displayln (list (floor 3/2) (ceiling 3/2) (round 5/2) (truncate -7/2)))"""
        ) == "(1 2 2 -3)\n"

    def test_trig_and_transcendental(self, run):
        assert run(
            "#lang racket\n(displayln (list (sin 0.0) (cos 0.0) (exp 0.0) (log 1.0)))"
        ) == "(0.0 1.0 1.0 0.0)\n"

    def test_atan_two_arguments(self, run):
        assert run("#lang racket\n(displayln (< 0.78 (atan 1.0 1.0) 0.79))") == "#t\n"

    def test_build_and_range(self, run):
        assert run(
            """#lang racket
(displayln (build-list 3 (lambda (i) (* i 10))))
(displayln (range 2 8 2))"""
        ) == "(0 10 20)\n(2 4 6)\n"

    def test_last_and_list_tail(self, run):
        assert run(
            """#lang racket
(displayln (list (last '(1 2 3)) (list-tail '(1 2 3) 1)))"""
        ) == "(3 (2 3))\n"

    def test_vector_misc(self, run):
        assert run(
            """#lang racket
(define v (make-vector 3 1))
(vector-fill! v 7)
(displayln (vector->list v))
(displayln (vector->list (vector-map add1 v)))
(displayln (vector->list (vector-copy v)))"""
        ) == "(7 7 7)\n(8 8 8)\n(7 7 7)\n"

    def test_sequence_to_list_rejects_non_sequences(self, run):
        with pytest.raises(WrongTypeError):
            run("#lang racket\n(sequence->list 42)")

    def test_sort_stability_via_cmp(self, run):
        assert run(
            """#lang racket
(displayln (sort (list 3 1 2 1) <))"""
        ) == "(1 1 2 3)\n"

    def test_number_string_roundtrip(self, run):
        assert run(
            """#lang racket
(displayln (string->number (number->string 3/7)))
(displayln (string->number (number->string 2.5)))"""
        ) == "3/7\n2.5\n"
