"""Tests for the fault-tolerant compilation pipeline: structured
diagnostics, multi-error recovery, guarded expansion, and transactional
compilation."""

from __future__ import annotations

from io import StringIO

import pytest

from repro import Runtime
from repro.diagnostics import CompileResult, Diagnostic, DiagnosticSession
from repro.errors import (
    CompilationFailed,
    ContractViolation,
    ExpansionLimitError,
    ModuleError,
    ReaderError,
    SyntaxExpansionError,
    TypeCheckError,
)
from repro.runtime.stats import STATS
from repro.syn.binding import TABLE
from repro.tools.repl import Repl


def drive(*inputs: str, language: str = "racket") -> str:
    repl = Repl(language)
    stdin = StringIO("\n".join(inputs) + "\n")
    stdout = StringIO()
    repl.run(stdin=stdin, stdout=stdout)
    return stdout.getvalue()


THREE_TYPE_ERRORS = """#lang simple-type
(define a : Integer 1.5)
(define b : Integer 2)
(define c : String 42)
(define d : Boolean "yes")
(displayln b)
"""


class TestMultiErrorTypechecking:
    def test_three_independent_errors_reported_at_once(self, rt):
        rt.register_module("bad", THREE_TYPE_ERRORS)
        with pytest.raises(CompilationFailed) as exc_info:
            rt.compile("bad")
        diags = exc_info.value.diagnostics
        errors = [d for d in diags if d.severity == "error"]
        assert len(errors) == 3
        assert all(d.code == "T001" for d in errors)
        lines = sorted(d.srcloc.line for d in errors)
        assert lines == [2, 4, 5]

    def test_diagnostics_carry_source_excerpts(self, rt):
        rt.register_module("bad", THREE_TYPE_ERRORS)
        with pytest.raises(CompilationFailed) as exc_info:
            rt.compile("bad")
        rendered = str(exc_info.value)
        assert "(define a : Integer 1.5)" in rendered
        assert "^" in rendered
        assert "error[T001]" in rendered

    def test_single_error_still_raises_original_type(self, rt):
        # the pre-existing single-error contract: one problem re-raises the
        # original exception, so error-class assertions keep working
        rt.register_module("bad", "#lang simple-type\n(define w : Integer 3.7)")
        with pytest.raises(TypeCheckError, match="wrong type"):
            rt.compile("bad")

    def test_typed_language_collects_multiple_errors(self, rt):
        rt.register_module(
            "bad",
            """#lang typed
(define x : Integer "one")
(define y : String 2)
(displayln x)
""",
        )
        with pytest.raises(CompilationFailed) as exc_info:
            rt.compile("bad")
        assert len(exc_info.value.diagnostics) == 2

    def test_failed_definition_does_not_cascade(self, rt):
        # `a` fails to check; uses of `a` must not add "untyped variable"
        # noise on top of the one real error
        rt.register_module(
            "bad",
            """#lang simple-type
(define a : Integer 1.5)
(define b : Integer a)
(displayln (+ a b))
""",
        )
        with pytest.raises(TypeCheckError, match="wrong type"):
            rt.compile("bad")


class TestGuardedExpansion:
    def test_self_recursive_macro_hits_fuel_not_stack(self, rt):
        rt.register_module(
            "loop",
            """#lang racket
(define-syntax loop (syntax-rules () [(loop) (loop)]))
(loop)
""",
        )
        with pytest.raises(ExpansionLimitError) as exc_info:
            rt.compile("loop")
        assert exc_info.value.code == "E004"
        assert any(f.macro == "loop" for f in exc_info.value.expansion_backtrace)

    def test_mutually_recursive_macros_hit_fuel(self, rt):
        rt.register_module(
            "pingpong",
            """#lang racket
(define-syntax ping (syntax-rules () [(ping) (pong)]))
(define-syntax pong (syntax-rules () [(pong) (ping)]))
(ping)
""",
        )
        with pytest.raises(ExpansionLimitError):
            rt.compile("pingpong")

    def test_fuel_budget_is_configurable(self):
        rt = Runtime(expansion_fuel=50)
        rt.register_module(
            "ok", "#lang racket\n(displayln (+ 1 2))"
        )
        assert rt.run("ok") == "3\n"
        rt2 = Runtime(expansion_fuel=5)
        # even a plain module needs a handful of steps; a tiny budget trips
        rt2.register_module(
            "heavy",
            "#lang racket\n" + "\n".join(f"(displayln {i})" for i in range(40)),
        )
        with pytest.raises(ExpansionLimitError):
            rt2.compile("heavy")

    def test_expansion_steps_counted(self, rt):
        rt.register_module("m", "#lang racket\n(displayln (+ 1 2))")
        rt.compile("m")
        assert STATS.expansion_steps > 0

    def test_deep_but_terminating_macro_still_works(self, rt):
        rt.register_module(
            "countdown",
            """#lang racket
(define-syntax many (syntax-rules () [(many e) e]))
(displayln (many (many (many (many 'ok)))))
""",
        )
        assert rt.run("countdown") == "ok\n"


class TestReaderRecovery:
    def test_unterminated_string_reported_with_code(self, rt):
        with pytest.raises(ReaderError) as exc_info:
            rt.register_module("bad", '#lang racket\n(displayln "oops)\n')
        assert exc_info.value.code == "R003"

    def test_unterminated_bar_symbol_reported_with_code(self, rt):
        with pytest.raises(ReaderError) as exc_info:
            rt.register_module("bad-bar", "#lang racket\n(quote |oops)\n")
        assert exc_info.value.code == "R004"

    def test_bar_symbol_roundtrips_through_writer(self, rt):
        # a symbol the reader would misparse bare must print in |...| bars
        out = rt.run_source("#lang racket\n(write (quote |-I|))\n(newline)\n(write (quote |has space|))\n")
        assert out == "|-I|\n|has space|"

    def test_multiple_reader_errors_collected(self, rt):
        source = (
            "#lang racket\n"
            "(car 1 ]\n"  # mismatched close paren
            "(displayln 'fine)\n"
            "(cdr 2 ]\n"  # and another, after resynchronizing
            "(displayln \"unterminated\n"  # R003, runs to end of input
        )
        with pytest.raises(CompilationFailed) as exc_info:
            rt.register_module("bad", source)
        codes = {d.code for d in exc_info.value.diagnostics}
        assert "R003" in codes
        assert len(exc_info.value.diagnostics) >= 3

    def test_unterminated_list_reported(self, rt):
        with pytest.raises(ReaderError) as exc_info:
            rt.register_module("bad", "#lang racket\n(displayln (+ 1 2)\n")
        assert exc_info.value.code == "R002"

    def test_missing_lang_line(self, rt):
        with pytest.raises(ReaderError) as exc_info:
            rt.register_module("bad", "(displayln 1)\n")
        assert exc_info.value.code == "R005"


class TestTransactionalCompilation:
    def test_failed_compile_leaves_registry_reusable(self, rt):
        # satellite (a): register bad source, catch the error, re-register
        # corrected source under the same path, compile cleanly
        rt.register_module("m", "#lang simple-type\n(define x : Integer 1.5)\n")
        with pytest.raises(TypeCheckError):
            rt.compile("m")
        rt.register_module(
            "m", "#lang simple-type\n(define x : Integer 1)\n(displayln x)\n"
        )
        assert rt.run("m") == "1\n"

    def test_failed_compile_rolls_back_binding_table(self, rt):
        rt.register_module(
            "m",
            """#lang racket
(define-syntax m1 (syntax-rules () [(m1) 'one]))
(undefined-variable-here)
""",
        )
        before = TABLE.snapshot()
        with pytest.raises(Exception):
            rt.compile("m")
        assert TABLE.snapshot() == before

    def test_failed_dependency_can_be_fixed_and_retried(self, rt):
        rt.register_module("dep", "#lang racket\n(provide v)\n(define v 1.5)\n")
        rt.register_module(
            "main", "#lang racket\n(require dep)\n(displayln v)\n"
        )
        assert rt.run("main") == "1.5\n"

    def test_missing_dependency_names_requirer(self, rt):
        rt.register_module("main", "#lang racket\n(require nonexistent)\n")
        with pytest.raises(ModuleError) as exc_info:
            rt.compile("main")
        assert exc_info.value.code == "M002"
        assert "main" in str(exc_info.value)

    def test_dependency_cycle_names_requirer(self, rt):
        rt.register_module("a", "#lang racket\n(require b)\n(define x 1)\n")
        rt.register_module("b", "#lang racket\n(require a)\n(define y 2)\n")
        with pytest.raises(ModuleError) as exc_info:
            rt.compile("a")
        assert exc_info.value.code == "M003"

    def test_retry_after_failed_dependency_compile(self, rt):
        # a broken dependency fails the whole transaction; fixing the
        # dependency and retrying must succeed in the same registry
        rt.register_module("dep", "#lang simple-type\n(define v : Integer 1.5)\n")
        rt.register_module(
            "main", "#lang racket\n(require dep)\n(displayln 'hi)\n"
        )
        with pytest.raises(TypeCheckError):
            rt.compile("main")
        rt.register_module(
            "dep",
            "#lang simple-type\n(provide v)\n(define v : Integer 7)\n",
        )
        assert rt.run("main") == "hi\n"


class TestCompileResultAPI:
    def test_diagnostics_mode_success(self, rt):
        rt.register_module("ok", "#lang racket\n(define x 1)\n")
        result = rt.compile("ok", diagnostics=True)
        assert isinstance(result, CompileResult)
        assert result.ok
        assert result.diagnostics == []
        assert result.module is not None

    def test_diagnostics_mode_collects_all_errors(self, rt):
        rt.register_module("bad", THREE_TYPE_ERRORS)
        result = rt.compile("bad", diagnostics=True)
        assert not result.ok
        assert len(result.diagnostics) == 3
        assert "T001" in result.render()

    def test_diagnostics_mode_single_error(self, rt):
        rt.register_module(
            "bad", "#lang simple-type\n(define x : Integer 1.5)\n"
        )
        result = rt.compile("bad", diagnostics=True)
        assert not result.ok
        assert len(result.diagnostics) == 1
        assert result.diagnostics[0].code == "T001"

    def test_diagnostic_from_error_is_structured(self):
        err = TypeCheckError("wrong type")
        diag = Diagnostic.from_error(err)
        assert diag.code == "T001"
        assert diag.severity == "error"
        assert "wrong type" in diag.message


class TestContractSrcloc:
    def test_violation_carries_boundary_srcloc(self, rt):
        rt.register_module("lib", "#lang racket\n(provide f)\n(define f 'not-a-fn)\n")
        rt.register_module(
            "main",
            """#lang simple-type
(require/typed lib [f (-> Integer Integer)])
(displayln (f 1))
""",
        )
        with pytest.raises(ContractViolation) as exc_info:
            rt.run("main")
        assert exc_info.value.code == "C001"
        assert exc_info.value.srcloc is not None
        assert exc_info.value.srcloc.source == "main"
        assert exc_info.value.srcloc.line == 2


class TestReplSurvival:
    def test_survives_reader_error(self):
        out = drive('(displayln "unterminated', "(+ 1 2)")
        assert "error:" in out
        assert "3\n" in out

    def test_survives_expansion_error(self):
        out = drive("(undefined-macro-or-var)", "(+ 2 2)")
        assert "error:" in out
        assert "4\n" in out

    def test_survives_expansion_limit(self):
        out = drive(
            "(define-syntax loop (syntax-rules () [(loop) (loop)]))",
            "(loop)",
            "(+ 3 3)",
        )
        assert "error:" in out
        assert "6\n" in out

    def test_survives_type_error(self):
        out = drive("(define x : Integer 1.5)", "(+ 4 4)", language="typed")
        assert "error:" in out
        assert "8\n" in out

    def test_survives_multiple_type_errors(self):
        out = drive(
            '(begin (define a : Integer 1.5) (define b : String 2))',
            "(+ 5 5)",
            language="typed",
        )
        assert "error:" in out
        assert "10\n" in out

    def test_survives_runtime_error(self):
        out = drive("(car '())", "(+ 6 6)")
        assert "error:" in out
        assert "12\n" in out

    def test_survives_contract_violation(self):
        out = drive(
            "(define x : Integer 5)",
            "(string-length 7)",
            "(+ 7 7)",
            language="typed",
        )
        assert "error:" in out
        assert "14\n" in out


class TestDiagnosticSession:
    def test_recover_collects_and_continues(self):
        session = DiagnosticSession("<m>")
        with session.recover():
            raise TypeCheckError("first")
        with session.recover():
            raise SyntaxExpansionError("second")
        assert len(session.errors) == 2
        with pytest.raises(CompilationFailed):
            session.raise_if_errors()

    def test_single_error_reraises_original(self):
        session = DiagnosticSession("<m>")
        original = TypeCheckError("only one")
        with session.recover():
            raise original
        with pytest.raises(TypeCheckError) as exc_info:
            session.raise_if_errors()
        assert exc_info.value is original

    def test_fatal_errors_pass_through(self):
        session = DiagnosticSession("<m>")
        with pytest.raises(ModuleError):
            with session.recover():
                raise ModuleError("module not found: x")
        assert not session.has_errors

    def test_duplicate_diagnostics_are_merged(self):
        session = DiagnosticSession("<m>")
        session.add_exception(TypeCheckError("same problem"))
        session.add_exception(TypeCheckError("same problem"))
        assert len(session.diagnostics) == 1

    def test_no_errors_is_a_no_op(self):
        session = DiagnosticSession("<m>")
        session.raise_if_errors()
