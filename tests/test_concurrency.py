"""Concurrency stress suite (parallel compilation against one cache).

N threads × M Runtimes compile an overlapping on-disk module graph against
a single shared artifact-cache directory. The pinned properties:

- **single writer per content hash** — across all concurrent Runtimes each
  artifact is stored exactly once; losers wait for the winner and load its
  artifact instead of duplicating the work;
- **flat binding table** — the global TABLE returns to its baseline entry
  count once every Runtime closes, no matter how the compiles interleaved;
- **no torn artifacts** — an injected crash mid-parallel-compile
  (``repro.faults``) leaves debris only in ``.tmp`` files; every committed
  ``.zo`` still verifies, and recovery recompiles cleanly;
- **parallel ≡ serial** — outputs and artifact bytes are identical to a
  one-Runtime serial compile, under both backends;
- ``repro cache doctor`` is safe to run while compiles are in flight;
- regression tests for the binding-table races found in this PR's audit
  (recorder/transaction context-locality, copy-on-write removal).
"""

from __future__ import annotations

import gc
import glob
import hashlib
import os
import threading

import pytest

from repro import Runtime
from repro.faults import FaultPlan, FaultRule, InjectedCrash, use_fault_plan
from repro.modules.cache import ModuleCache
from repro.runtime.values import Symbol
from repro.syn.binding import LocalBinding, TABLE
from repro.syn.scopes import Scope


def write_graph(root, n: int) -> list[str]:
    """A diamond-layered module graph: ``m_i`` requires ``m_{i-1}`` and
    ``m_{i-2}``; every module defines a macro and a provided value."""
    os.makedirs(root, exist_ok=True)
    paths = []
    for i in range(n):
        deps = [j for j in (i - 1, i - 2) if j >= 0]
        requires = "\n".join(f'(require "m{j}.rkt")' for j in deps)
        terms = " ".join([str(i)] + [f"v{j}" for j in deps])
        source = (
            "#lang racket\n"
            f"{requires}\n"
            f"(define-syntax twice{i} (syntax-rules () [(_ e) (+ e e)]))\n"
            f"(define v{i} (+ {terms}))\n"
            f"(define (f{i} x) (twice{i} (+ x v{i})))\n"
            f"(provide v{i} f{i})\n"
        )
        path = os.path.join(str(root), f"m{i}.rkt")
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)
        paths.append(path)
    return paths


def graph_value(n: int) -> int:
    """The value of ``v_{n-1}`` in the graph above, computed in Python."""
    vs: list[int] = []
    for i in range(n):
        vs.append(i + sum(vs[j] for j in (i - 1, i - 2) if j >= 0))
    return vs[-1]


def write_top(root, n: int) -> str:
    top = os.path.join(str(root), "top.rkt")
    with open(top, "w", encoding="utf-8") as f:
        f.write(
            "#lang racket\n"
            f'(require "m{n - 1}.rkt")\n'
            f"(displayln (f{n - 1} 1))\n"
        )
    return top


def artifact_digests(cache_dir) -> dict[str, str]:
    """filename → sha256 for every committed artifact in ``cache_dir``."""
    digests = {}
    for path in glob.glob(os.path.join(str(cache_dir), "*.zo")):
        with open(path, "rb") as f:
            digests[os.path.basename(path)] = hashlib.sha256(f.read()).hexdigest()
    return digests


@pytest.fixture(params=["interp", "pyc"])
def backend(request):
    return request.param


N_MODULES = 7
N_THREADS = 4


class TestConcurrentRuntimes:
    def test_threads_by_runtimes_single_writer_flat_table(self, tmp_path, backend):
        """The headline stress: N threads × N Runtimes, one cache dir."""
        paths = write_graph(tmp_path / "src", N_MODULES)
        top = write_top(tmp_path / "src", N_MODULES)
        expected = f"{2 * (1 + graph_value(N_MODULES))}\n"

        # serial reference run in its own cache
        with Runtime(cache_dir=str(tmp_path / "serial"), backend=backend) as rt:
            assert rt.run(rt.register_file(top)) == expected
        serial_digests = artifact_digests(tmp_path / "serial")
        assert len(serial_digests) == N_MODULES + 1

        gc.collect()
        baseline = TABLE.entry_count()
        shared = str(tmp_path / "shared")
        outputs: list[str] = []
        stores: list[int] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(N_THREADS)

        def worker() -> None:
            try:
                with Runtime(cache_dir=shared, backend=backend) as rt:
                    module = rt.register_file(top)
                    barrier.wait(timeout=30)
                    out = rt.run(module)
                    outputs.append(out)
                    stores.append(rt.stats.cache_stores)
            except BaseException as err:  # noqa: BLE001 - collected for assert
                errors.append(err)

        threads = [threading.Thread(target=worker) for _ in range(N_THREADS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, errors

        # every Runtime computed the same answer as the serial reference
        assert outputs == [expected] * N_THREADS

        # single writer per content hash: the graph has N+1 artifacts and
        # exactly N+1 stores happened across all four Runtimes combined —
        # contending writers waited for the winner instead of re-storing
        assert sum(stores) == N_MODULES + 1

        # no torn/odd artifacts: the shared cache holds exactly the serial
        # reference's artifacts, byte for byte
        assert artifact_digests(shared) == serial_digests

        # every Runtime closed → the global table is back to baseline
        gc.collect()
        assert TABLE.entry_count() == baseline

    def test_doctor_is_safe_mid_flight(self, tmp_path):
        """`repro cache doctor` while compiles are in flight: reports, never
        breaks the writers, and sweeps nothing that belongs to a live PID."""
        write_graph(tmp_path / "src", N_MODULES)
        top = write_top(tmp_path / "src", N_MODULES)
        shared = str(tmp_path / "shared")
        errors: list[BaseException] = []
        done = threading.Event()

        def worker() -> None:
            try:
                with Runtime(cache_dir=shared) as rt:
                    rt.run(rt.register_file(top))
            except BaseException as err:  # noqa: BLE001
                errors.append(err)
            finally:
                done.set()

        thread = threading.Thread(target=worker)
        thread.start()
        reports = []
        while not done.is_set():
            reports.append(ModuleCache(shared).doctor())
        thread.join(timeout=300)
        assert not errors, errors
        # doctor never swept an in-flight write or a live lock out from
        # under the compiling Runtime
        for report in reports:
            assert report["tmp_removed"] == []
            for _name, pid in report.get("tmp_live", []):
                assert pid == os.getpid()

    def test_injected_crash_leaves_no_torn_artifact(self, tmp_path):
        """A crash between artifact write and rename, injected into one of
        several concurrent compiles: the other Runtimes finish with the
        right answer, every *committed* artifact verifies, and the debris
        is a ``.tmp`` file for doctor — never a torn ``.zo``."""
        write_graph(tmp_path / "src", N_MODULES)
        top = write_top(tmp_path / "src", N_MODULES)
        expected = f"{2 * (1 + graph_value(N_MODULES))}\n"
        shared = str(tmp_path / "shared")
        outputs: list[str] = []
        crashes: list[BaseException] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(3)

        def worker() -> None:
            rt = Runtime(cache_dir=shared)
            try:
                module = rt.register_file(top)
                barrier.wait(timeout=30)
                outputs.append(rt.run(module))
            except InjectedCrash as err:
                crashes.append(err)
            except BaseException as err:  # noqa: BLE001
                errors.append(err)
            finally:
                rt.close()

        plan = FaultPlan(rules=[FaultRule("cache.replace", "crash", times=1)])
        with use_fault_plan(plan):
            threads = [threading.Thread(target=worker) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)

        assert not errors, errors
        assert len(crashes) == 1  # the fault fired in exactly one Runtime
        assert outputs == [expected] * 2

        # recovery: a fresh Runtime over the same cache loads every
        # committed artifact without a single corruption diagnostic and
        # recompiles whatever the crash left unwritten
        with Runtime(cache_dir=shared) as rt:
            assert rt.run(rt.register_file(top)) == expected
            assert rt.cache.diagnostics == []

        # the crash debris (if the rename hadn't happened yet by the time
        # a surviving Runtime re-stored) is at worst a .tmp file owned by
        # this live process — doctor reports it and sweeps nothing
        report = ModuleCache(shared).doctor()
        assert report["tmp_removed"] == []
        for _name, pid in report.get("tmp_live", []):
            assert pid == os.getpid()

    def test_compile_graph_thread_mode_matches_serial(self, tmp_path, backend):
        """`compile_graph(jobs=4, mode="thread")` — the in-process
        wait-for-winner path — produces byte-identical artifacts and the
        same report statuses as ``jobs=1``."""
        paths = write_graph(tmp_path / "src", N_MODULES)

        with Runtime(cache_dir=str(tmp_path / "serial"), backend=backend) as rt:
            serial = rt.compile_graph(paths, jobs=1)
        assert serial.ok

        with Runtime(cache_dir=str(tmp_path / "parallel"), backend=backend) as rt:
            parallel = rt.compile_graph(paths, jobs=4, mode="thread")
        assert parallel.ok
        assert parallel.jobs == 4

        assert artifact_digests(tmp_path / "parallel") == artifact_digests(
            tmp_path / "serial"
        )
        assert set(serial.results) == set(parallel.results)

    def test_artifact_bytes_independent_of_dep_provenance(self, tmp_path, backend):
        """A module's artifact bytes must not depend on whether its deps
        were compiled in-memory by the same Runtime or loaded from cache
        by a fresh one — the situation every parallel worker is in.

        Regression: ``marshal`` chooses between writing a string and
        emitting a back-reference by object identity and interned-ness,
        which vary with process compile history; pyc units are now
        canonicalized before marshalling so the bytes are value-determined.
        """
        mods = {
            "m0.rkt": "#lang racket\n\n(define v0 (+ 7))\n"
                      "(define-syntax tw0 (syntax-rules () [(_ e) (+ e e)]))\n"
                      "(define (f0 x) (tw0 (+ x v0)))\n(provide v0 f0)\n",
            "m1.rkt": '#lang racket/infix\n(require "m0.rkt")\n'
                      "(define v1 {7 + v0})\n(define (f1 x) (* x v1))\n"
                      "(provide v1 f1)\n",
            "m2.rkt": '#lang racket\n(require "m0.rkt")\n'
                      "(define v2 (+ 1 v0))\n(define (f2 x) (* x v2))\n"
                      "(define hidden2 37)\n(provide v2 f2)\n",
            "m3.rkt": '#lang racket/infix\n(require "m0.rkt")\n'
                      '(require "m1.rkt")\n(require "m2.rkt")\n'
                      "(define v3 {5 + v0 + v1 + v2})\n"
                      "(define (f3 x) (* x v3))\n(provide v3 f3)\n",
        }
        src = tmp_path / "src"
        os.makedirs(src, exist_ok=True)
        paths = []
        for name, text in mods.items():
            path = src / name
            path.write_text(text, encoding="utf-8")
            paths.append(str(path))

        one = str(tmp_path / "one")
        with Runtime(cache_dir=one, backend=backend) as rt:
            for path in paths:
                rt.compile(rt.register_file(path))

        split = str(tmp_path / "split")
        with Runtime(cache_dir=split, backend=backend) as rt:
            for path in paths[:3]:
                rt.compile(rt.register_file(path))
        with Runtime(cache_dir=split, backend=backend) as rt:
            rt.compile(rt.register_file(paths[3]))

        assert artifact_digests(one) == artifact_digests(split)


class TestBindingTableRaceRegressions:
    """Pin the fixes from this PR's thread-safety audit of the table."""

    def test_recorders_are_context_local_across_threads(self):
        """Two threads recording additions concurrently: each recorder
        captures only its own thread's entries (the old module-global
        recorder stack interleaved them)."""
        results: dict[str, list] = {}
        barrier = threading.Barrier(2)
        added: list[tuple] = []

        def worker(tag: str) -> None:
            scope = frozenset([Scope("local")])
            with TABLE.record_additions() as fragment:
                barrier.wait(timeout=30)
                for i in range(200):
                    name = Symbol(f"race-{tag}-{i}")
                    TABLE.add(name, scope, LocalBinding(name))
            results[tag] = list(fragment)
            added.extend(fragment)

        threads = [
            threading.Thread(target=worker, args=(tag,)) for tag in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        try:
            assert len(results["a"]) == 200 and len(results["b"]) == 200
            assert all(e[0].name.startswith("race-a-") for e in results["a"])
            assert all(e[0].name.startswith("race-b-") for e in results["b"])
        finally:
            TABLE.remove_entries(added)

    def test_rollback_does_not_destroy_concurrent_additions(self):
        """Thread A rolls back its transaction while thread B appends to the
        *same buckets*: B's entries must survive (the old snapshot/truncate
        rollback destroyed them)."""
        shared_names = [Symbol(f"shared-{i}") for i in range(50)]
        scope_a = frozenset([Scope("local")])
        scope_b = frozenset([Scope("local")])
        b_entries: list[tuple] = []
        barrier = threading.Barrier(2)

        def txn_thread() -> None:
            txn = TABLE.transaction()
            with txn:
                barrier.wait(timeout=30)
                for name in shared_names:
                    TABLE.add(name, scope_a, LocalBinding(name))
                txn.rollback()

        def adder_thread() -> None:
            barrier.wait(timeout=30)
            with TABLE.record_additions() as fragment:
                for name in shared_names:
                    TABLE.add(name, scope_b, LocalBinding(name))
            b_entries.extend(fragment)

        threads = [
            threading.Thread(target=txn_thread),
            threading.Thread(target=adder_thread),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        try:
            # every one of B's bindings is still resolvable in the table
            snapshot = TABLE.snapshot()
            for name, _phase, scopes, binding in b_entries:
                bucket_key = (name, 0)
                assert bucket_key in snapshot, f"{name} lost by A's rollback"
        finally:
            removed = TABLE.remove_entries(b_entries)
            assert removed == len(b_entries)
