"""Tests for the syntax-parse-style pattern matcher and template engine."""

from __future__ import annotations

import pytest

from repro.errors import SyntaxExpansionError
from repro.expander.pattern import compile_pattern, compile_template, syntax_parse
from repro.reader import read_string_one
from repro.runtime.values import Symbol
from repro.syn.syntax import syntax_to_datum, write_datum


def stx(text: str):
    return read_string_one(text)


def show(s) -> str:
    return write_datum(syntax_to_datum(s))


class TestBasicPatterns:
    def test_fixed_list(self):
        m = compile_pattern("(_ a b)").match(stx("(f 1 2)"))
        assert show(m["a"]) == "1" and show(m["b"]) == "2"

    def test_wrong_length_fails(self):
        assert compile_pattern("(_ a b)").match(stx("(f 1)")) is None

    def test_wildcard_binds_nothing(self):
        m = compile_pattern("(_ _ x)").match(stx("(f 1 2)"))
        assert set(m) == {"x"}

    def test_datum_literal(self):
        assert compile_pattern("(_ 42)").match(stx("(f 42)")) is not None
        assert compile_pattern("(_ 42)").match(stx("(f 43)")) is None

    def test_boolean_literal_distinct_from_integers(self):
        assert compile_pattern("(_ #t)").match(stx("(f 1)")) is None
        assert compile_pattern("(_ 1)").match(stx("(f #t)")) is None

    def test_symbol_literals(self):
        pattern = compile_pattern("(_ name : ty)", literals=(":",))
        assert pattern.match(stx("(def x : Integer)")) is not None
        assert pattern.match(stx("(def x = Integer)")) is None

    def test_non_list_fails_list_pattern(self):
        assert compile_pattern("(_ a)").match(stx("x")) is None

    def test_match_or_raise(self):
        with pytest.raises(SyntaxExpansionError):
            compile_pattern("(_ a:id)").match_or_raise(stx("(f 42)"), "who")


class TestSyntaxClasses:
    def test_id_class(self):
        pattern = compile_pattern("(_ x:id)")
        assert pattern.match(stx("(f abc)")) is not None
        assert pattern.match(stx("(f 42)")) is None

    def test_number_class(self):
        pattern = compile_pattern("(_ x:number)")
        assert pattern.match(stx("(f 1.5)")) is not None
        assert pattern.match(stx("(f abc)")) is None

    def test_integer_class(self):
        pattern = compile_pattern("(_ x:integer)")
        assert pattern.match(stx("(f 3)")) is not None
        assert pattern.match(stx("(f 3.5)")) is None

    def test_str_class(self):
        pattern = compile_pattern("(_ x:str)")
        assert pattern.match(stx('(f "s")')) is not None
        assert pattern.match(stx("(f s)")) is None

    def test_expr_class_matches_anything(self):
        pattern = compile_pattern("(_ x:expr)")
        assert pattern.match(stx("(f (a b c))")) is not None


class TestEllipsis:
    def test_simple_ellipsis(self):
        m = compile_pattern("(_ x ...)").match(stx("(f 1 2 3)"))
        assert [show(s) for s in m["x"]] == ["1", "2", "3"]

    def test_empty_ellipsis(self):
        m = compile_pattern("(_ x ...)").match(stx("(f)"))
        assert m["x"] == []

    def test_ellipsis_with_fixed_suffix(self):
        m = compile_pattern("(_ x ... last)").match(stx("(f 1 2 3)"))
        assert [show(s) for s in m["x"]] == ["1", "2"]
        assert show(m["last"]) == "3"

    def test_compound_under_ellipsis(self):
        m = compile_pattern("(_ ([x:id e] ...) body)").match(
            stx("(let ([a 1] [b 2]) a)")
        )
        assert [s.e for s in m["x"]] == [Symbol("a"), Symbol("b")]
        assert [show(s) for s in m["e"]] == ["1", "2"]

    def test_class_constraint_under_ellipsis(self):
        assert compile_pattern("(_ x:id ...)").match(stx("(f a 2)")) is None

    def test_dotted_tail(self):
        m = compile_pattern("(_ a . rest)").match(stx("(f 1 2 3)"))
        assert show(m["rest"]) == "(2 3)"

    def test_dotted_tail_improper(self):
        m = compile_pattern("(_ . rest)").match(stx("(f a . b)"))
        assert show(m["rest"]) == "(a . b)"


class TestTemplates:
    def test_substitution(self):
        tpl = compile_template("(if c t e)")
        out = tpl.fill(None, c=stx("(f)"), t=stx("1"), e=stx("2"))
        assert show(out) == "(if (f) 1 2)"

    def test_splicing(self):
        tpl = compile_template("(begin body ...)")
        out = tpl.fill(None, body=[stx("1"), stx("2")])
        assert show(out) == "(begin 1 2)"

    def test_compound_splicing(self):
        tpl = compile_template("(let-values (((x) e) ...) x ...)")
        out = tpl.fill(None, x=[stx("a"), stx("b")], e=[stx("1"), stx("2")])
        assert show(out) == "(let-values (((a) 1) ((b) 2)) a b)"

    def test_context_scopes_applied_to_introduced_names(self):
        from repro.syn.scopes import Scope
        from repro.syn.syntax import Syntax

        sc = Scope()
        ctx = Syntax(Symbol("ctx"), frozenset({sc}))
        out = compile_template("(introduced user)").fill(ctx, user=stx("u"))
        assert sc in out.e[0].scopes  # introduced gets ctx scope
        assert sc not in out.e[1].scopes  # substituted user syntax untouched

    def test_unknown_binding_rejected(self):
        tpl = compile_template("(f x)")
        with pytest.raises(ValueError):
            tpl.fill(None, not_in_template=stx("1"))

    def test_mismatched_splice_lengths_rejected(self):
        tpl = compile_template("((a b) ...)")
        with pytest.raises(ValueError):
            tpl.fill(None, a=[stx("1")], b=[stx("2"), stx("3")])

    def test_roundtrip_pattern_to_template(self):
        pattern = compile_pattern("(_ name ([x e] ...) body ...)")
        m = pattern.match(stx("(loop go ([i 0] [j 1]) (f i) (g j))"))
        tpl = compile_template("(name (x ...) (e ...) body ...)")
        assert show(tpl.fill(None, **m)) == "(go (i j) (0 1) (f i) (g j))"


class TestSyntaxParse:
    def test_clauses_in_order(self):
        clauses = [
            (compile_pattern("(_ x:number)"), lambda m: "number"),
            (compile_pattern("(_ x:id)"), lambda m: "id"),
        ]
        assert syntax_parse(stx("(f 42)"), clauses) == "number"
        assert syntax_parse(stx("(f abc)"), clauses) == "id"

    def test_no_match_raises(self):
        with pytest.raises(SyntaxExpansionError):
            syntax_parse(stx("(f 1 2)"), [(compile_pattern("(_ x)"), lambda m: m)])


class TestCacheBounds:
    """The pattern/template caches must stay bounded (they were unbounded
    dicts before) and the template cache's source-text key must not leak
    scopes between modules."""

    def test_pattern_cache_is_bounded(self):
        from repro.expander.pattern import _PATTERN_CACHE

        for i in range(_PATTERN_CACHE.maxsize + 50):
            compile_pattern(f"(_ a{i} b{i})")
        assert len(_PATTERN_CACHE) <= _PATTERN_CACHE.maxsize

    def test_template_cache_is_bounded(self):
        from repro.expander.pattern import _TEMPLATE_CACHE

        for i in range(_TEMPLATE_CACHE.maxsize + 50):
            compile_template(f"(x{i} y{i})")
        assert len(_TEMPLATE_CACHE) <= _TEMPLATE_CACHE.maxsize

    def test_lru_evicts_least_recently_used(self):
        from repro.expander.pattern import _LRUCache

        cache = _LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch "a": now "b" is the oldest
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_same_pattern_different_literals_cached_separately(self):
        p_lit = compile_pattern("(_ else x)", literals=["else"])
        p_var = compile_pattern("(_ else x)")
        assert p_lit.match(stx("(f other 1)")) is None  # literal must match
        assert p_var.match(stx("(f other 1)")) is not None  # plain variable

    def test_cached_template_does_not_leak_context_between_fills(self):
        """Two modules filling the same (source-identical, hence cached)
        template with different lexical contexts must each get their own
        scopes on introduced identifiers — the audit for keying the cache
        by source text alone."""
        from repro.syn.scopes import Scope
        from repro.syn.syntax import Syntax

        tpl_a = compile_template("(introduced x)")
        tpl_b = compile_template("(introduced x)")
        assert tpl_a is tpl_b  # same cache entry

        scope_a, scope_b = Scope("module"), Scope("module")
        ctx_a = Syntax(Symbol("ctx"), frozenset({scope_a}))
        ctx_b = Syntax(Symbol("ctx"), frozenset({scope_b}))
        out_a = tpl_a.fill(ctx_a, x=stx("1"))
        out_b = tpl_b.fill(ctx_b, x=stx("2"))
        assert scope_a in out_a.e[0].scopes and scope_b not in out_a.e[0].scopes
        assert scope_b in out_b.e[0].scopes and scope_a not in out_b.e[0].scopes
