"""Tests for the syntax-parse-style pattern matcher and template engine."""

from __future__ import annotations

import pytest

from repro.errors import SyntaxExpansionError
from repro.expander.pattern import compile_pattern, compile_template, syntax_parse
from repro.reader import read_string_one
from repro.runtime.values import Symbol
from repro.syn.syntax import syntax_to_datum, write_datum


def stx(text: str):
    return read_string_one(text)


def show(s) -> str:
    return write_datum(syntax_to_datum(s))


class TestBasicPatterns:
    def test_fixed_list(self):
        m = compile_pattern("(_ a b)").match(stx("(f 1 2)"))
        assert show(m["a"]) == "1" and show(m["b"]) == "2"

    def test_wrong_length_fails(self):
        assert compile_pattern("(_ a b)").match(stx("(f 1)")) is None

    def test_wildcard_binds_nothing(self):
        m = compile_pattern("(_ _ x)").match(stx("(f 1 2)"))
        assert set(m) == {"x"}

    def test_datum_literal(self):
        assert compile_pattern("(_ 42)").match(stx("(f 42)")) is not None
        assert compile_pattern("(_ 42)").match(stx("(f 43)")) is None

    def test_boolean_literal_distinct_from_integers(self):
        assert compile_pattern("(_ #t)").match(stx("(f 1)")) is None
        assert compile_pattern("(_ 1)").match(stx("(f #t)")) is None

    def test_symbol_literals(self):
        pattern = compile_pattern("(_ name : ty)", literals=(":",))
        assert pattern.match(stx("(def x : Integer)")) is not None
        assert pattern.match(stx("(def x = Integer)")) is None

    def test_non_list_fails_list_pattern(self):
        assert compile_pattern("(_ a)").match(stx("x")) is None

    def test_match_or_raise(self):
        with pytest.raises(SyntaxExpansionError):
            compile_pattern("(_ a:id)").match_or_raise(stx("(f 42)"), "who")


class TestSyntaxClasses:
    def test_id_class(self):
        pattern = compile_pattern("(_ x:id)")
        assert pattern.match(stx("(f abc)")) is not None
        assert pattern.match(stx("(f 42)")) is None

    def test_number_class(self):
        pattern = compile_pattern("(_ x:number)")
        assert pattern.match(stx("(f 1.5)")) is not None
        assert pattern.match(stx("(f abc)")) is None

    def test_integer_class(self):
        pattern = compile_pattern("(_ x:integer)")
        assert pattern.match(stx("(f 3)")) is not None
        assert pattern.match(stx("(f 3.5)")) is None

    def test_str_class(self):
        pattern = compile_pattern("(_ x:str)")
        assert pattern.match(stx('(f "s")')) is not None
        assert pattern.match(stx("(f s)")) is None

    def test_expr_class_matches_anything(self):
        pattern = compile_pattern("(_ x:expr)")
        assert pattern.match(stx("(f (a b c))")) is not None


class TestEllipsis:
    def test_simple_ellipsis(self):
        m = compile_pattern("(_ x ...)").match(stx("(f 1 2 3)"))
        assert [show(s) for s in m["x"]] == ["1", "2", "3"]

    def test_empty_ellipsis(self):
        m = compile_pattern("(_ x ...)").match(stx("(f)"))
        assert m["x"] == []

    def test_ellipsis_with_fixed_suffix(self):
        m = compile_pattern("(_ x ... last)").match(stx("(f 1 2 3)"))
        assert [show(s) for s in m["x"]] == ["1", "2"]
        assert show(m["last"]) == "3"

    def test_compound_under_ellipsis(self):
        m = compile_pattern("(_ ([x:id e] ...) body)").match(
            stx("(let ([a 1] [b 2]) a)")
        )
        assert [s.e for s in m["x"]] == [Symbol("a"), Symbol("b")]
        assert [show(s) for s in m["e"]] == ["1", "2"]

    def test_class_constraint_under_ellipsis(self):
        assert compile_pattern("(_ x:id ...)").match(stx("(f a 2)")) is None

    def test_dotted_tail(self):
        m = compile_pattern("(_ a . rest)").match(stx("(f 1 2 3)"))
        assert show(m["rest"]) == "(2 3)"

    def test_dotted_tail_improper(self):
        m = compile_pattern("(_ . rest)").match(stx("(f a . b)"))
        assert show(m["rest"]) == "(a . b)"


class TestTemplates:
    def test_substitution(self):
        tpl = compile_template("(if c t e)")
        out = tpl.fill(None, c=stx("(f)"), t=stx("1"), e=stx("2"))
        assert show(out) == "(if (f) 1 2)"

    def test_splicing(self):
        tpl = compile_template("(begin body ...)")
        out = tpl.fill(None, body=[stx("1"), stx("2")])
        assert show(out) == "(begin 1 2)"

    def test_compound_splicing(self):
        tpl = compile_template("(let-values (((x) e) ...) x ...)")
        out = tpl.fill(None, x=[stx("a"), stx("b")], e=[stx("1"), stx("2")])
        assert show(out) == "(let-values (((a) 1) ((b) 2)) a b)"

    def test_context_scopes_applied_to_introduced_names(self):
        from repro.syn.scopes import Scope
        from repro.syn.syntax import Syntax

        sc = Scope()
        ctx = Syntax(Symbol("ctx"), frozenset({sc}))
        out = compile_template("(introduced user)").fill(ctx, user=stx("u"))
        assert sc in out.e[0].scopes  # introduced gets ctx scope
        assert sc not in out.e[1].scopes  # substituted user syntax untouched

    def test_unknown_binding_rejected(self):
        tpl = compile_template("(f x)")
        with pytest.raises(ValueError):
            tpl.fill(None, not_in_template=stx("1"))

    def test_mismatched_splice_lengths_rejected(self):
        tpl = compile_template("((a b) ...)")
        with pytest.raises(ValueError):
            tpl.fill(None, a=[stx("1")], b=[stx("2"), stx("3")])

    def test_roundtrip_pattern_to_template(self):
        pattern = compile_pattern("(_ name ([x e] ...) body ...)")
        m = pattern.match(stx("(loop go ([i 0] [j 1]) (f i) (g j))"))
        tpl = compile_template("(name (x ...) (e ...) body ...)")
        assert show(tpl.fill(None, **m)) == "(go (i j) (0 1) (f i) (g j))"


class TestSyntaxParse:
    def test_clauses_in_order(self):
        clauses = [
            (compile_pattern("(_ x:number)"), lambda m: "number"),
            (compile_pattern("(_ x:id)"), lambda m: "id"),
        ]
        assert syntax_parse(stx("(f 42)"), clauses) == "number"
        assert syntax_parse(stx("(f abc)"), clauses) == "id"

    def test_no_match_raises(self):
        with pytest.raises(SyntaxExpansionError):
            syntax_parse(stx("(f 1 2)"), [(compile_pattern("(_ x)"), lambda m: m)])
