"""Tests for error reporting: source locations, messages, exception types."""

from __future__ import annotations

import pytest

from repro.errors import (
    ContractViolation,
    ReaderError,
    ReproError,
    RuntimeReproError,
    SyntaxExpansionError,
    TypeCheckError,
    UnboundIdentifierError,
    WrongTypeError,
)
from repro.reader import read_string_all


class TestHierarchy:
    def test_all_errors_are_repro_errors(self):
        for cls in (
            ReaderError, SyntaxExpansionError, UnboundIdentifierError,
            TypeCheckError, ContractViolation, RuntimeReproError, WrongTypeError,
        ):
            assert issubclass(cls, ReproError)

    def test_unbound_is_expansion_error(self):
        assert issubclass(UnboundIdentifierError, SyntaxExpansionError)

    def test_wrong_type_is_runtime_error(self):
        assert issubclass(WrongTypeError, RuntimeReproError)


class TestReaderLocations:
    def test_error_carries_location(self):
        with pytest.raises(ReaderError) as exc:
            read_string_all("(a\n  (b", source="prog.rkt")
        assert exc.value.srcloc is not None
        assert exc.value.srcloc.source == "prog.rkt"

    def test_location_in_message(self):
        with pytest.raises(ReaderError) as exc:
            read_string_all('"unterminated', source="f.rkt")
        assert "f.rkt:1" in str(exc.value)


class TestExpansionLocations:
    def test_unbound_identifier_points_at_use(self, run):
        with pytest.raises(UnboundIdentifierError) as exc:
            run("#lang racket\n\n(+ 1 mystery)")
        assert exc.value.srcloc is not None
        assert exc.value.srcloc.line == 3
        assert "mystery" in str(exc.value)

    def test_bad_syntax_shows_offending_form(self, run):
        with pytest.raises(SyntaxExpansionError) as exc:
            run("#lang racket\n(let bad-shape)")
        assert "let" in str(exc.value)

    def test_duplicate_definition_mentions_name(self, run):
        with pytest.raises(SyntaxExpansionError, match="duplicate definition of dup"):
            run("#lang racket\n(define dup 1)\n(define dup 2)")


class TestTypeErrorMessages:
    def test_shows_expected_and_actual(self, run):
        with pytest.raises(TypeCheckError) as exc:
            run('#lang typed\n(define x : Integer "s")')
        message = str(exc.value)
        assert "Integer" in message and "String" in message

    def test_shows_offending_expression(self, run):
        with pytest.raises(TypeCheckError) as exc:
            run("#lang simple-type\n(define x : Integer 3.7)")
        assert "3.7" in str(exc.value)

    def test_unknown_type_names_the_type(self, run):
        with pytest.raises(TypeCheckError, match="Bogus"):
            run("#lang typed\n(define x : Bogus 1)")

    def test_application_arity_message(self, run):
        with pytest.raises(TypeCheckError, match="wrong number of arguments"):
            run(
                """#lang typed
(: f (Integer -> Integer))
(define (f x) x)
(f 1 2)"""
            )


class TestRuntimeErrorMessages:
    def test_wrong_type_names_primitive_and_value(self, run):
        with pytest.raises(WrongTypeError) as exc:
            run("#lang racket\n(car 42)")
        message = str(exc.value)
        assert "car" in message and "pair?" in message and "42" in message

    def test_division_by_zero(self, run):
        with pytest.raises(WrongTypeError, match="non-zero"):
            run("#lang racket\n(/ 1 0)")

    def test_vector_bounds_message(self, run):
        with pytest.raises(RuntimeReproError, match="out of range"):
            run("#lang racket\n(vector-ref (vector 1 2) 5)")

    def test_undefined_before_definition(self, run):
        with pytest.raises(RuntimeReproError, match="referenced before definition"):
            run("#lang racket\n(displayln later)\n(define later 1)")

    def test_contract_message_has_blame(self, rt):
        rt.register_module(
            "server",
            "#lang simple-type\n(define (f [x : Integer]) : Integer x)\n(provide f)",
        )
        rt.register_module("client", '#lang racket\n(require server)\n(f "s")')
        with pytest.raises(ContractViolation) as exc:
            rt.run("client")
        assert "blaming" in str(exc.value)
        # the defensive wrapper is built at the server's definition site,
        # where the specific client is unknown: the paper's placeholder name
        assert exc.value.blame == "untyped-client"
