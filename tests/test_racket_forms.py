"""Tests for the racket language's surface macro library."""

from __future__ import annotations

import pytest

from repro.errors import RuntimeReproError, SyntaxExpansionError


class TestConditionals:
    def test_cond_first_match(self, run):
        assert run(
            "#lang racket\n(displayln (cond [#f 'a] [#t 'b] [else 'c]))"
        ) == "b\n"

    def test_cond_else(self, run):
        assert run("#lang racket\n(displayln (cond [#f 'a] [else 'c]))") == "c\n"

    def test_cond_no_match_is_void(self, run):
        assert run("#lang racket\n(cond [#f 'a])\n(displayln 'done)") == "done\n"

    def test_cond_test_only_clause_returns_test_value(self, run):
        assert run("#lang racket\n(displayln (cond [#f] [42] [else 'no]))") == "42\n"

    def test_cond_else_must_be_last(self, run):
        with pytest.raises(SyntaxExpansionError):
            run("#lang racket\n(cond [else 1] [#t 2])")

    def test_case(self, run):
        assert run(
            """#lang racket
(define (classify x) (case x [(1 2 3) 'small] [(10 20) 'round] [else 'other]))
(displayln (list (classify 2) (classify 20) (classify 99)))"""
        ) == "(small round other)\n"

    def test_case_on_symbols(self, run):
        assert run(
            "#lang racket\n(displayln (case 'b [(a) 1] [(b) 2] [else 3]))"
        ) == "2\n"

    def test_when_true(self, run):
        assert run("#lang racket\n(when #t (display 'yes))\n(newline)") == "yes\n"

    def test_when_false(self, run):
        assert run("#lang racket\n(when #f (display 'no))\n(displayln 'after)") == "after\n"

    def test_unless(self, run):
        assert run("#lang racket\n(unless #f (display 'yes))\n(newline)") == "yes\n"

    def test_and(self, run):
        assert run("#lang racket\n(displayln (list (and) (and 1 2) (and #f 2)))") == "(#t 2 #f)\n"

    def test_and_short_circuits(self, run):
        assert run(
            "#lang racket\n(and #f (error \"not reached\"))\n(displayln 'ok)"
        ) == "ok\n"

    def test_or(self, run):
        assert run("#lang racket\n(displayln (list (or) (or #f 2) (or 1 2)))") == "(#f 2 1)\n"

    def test_or_short_circuits(self, run):
        assert run(
            "#lang racket\n(displayln (or 'first (error \"not reached\")))"
        ) == "first\n"


class TestLoops:
    def test_do_loop(self, run):
        assert run(
            """#lang racket
(displayln (do ([i 0 (+ i 1)] [acc 1 (* acc 2)])
               ((= i 5) acc)))"""
        ) == "32\n"

    def test_do_loop_with_body(self, run):
        assert run(
            """#lang racket
(do ([i 0 (+ i 1)]) ((= i 3)) (display i))
(newline)"""
        ) == "012\n"

    def test_do_without_step_keeps_value(self, run):
        assert run(
            """#lang racket
(displayln (do ([x 7] [i 0 (+ i 1)]) ((= i 2) x)))"""
        ) == "7\n"

    def test_for_over_range(self, run):
        assert run(
            "#lang racket\n(for ([i (in-range 3)]) (display i))\n(newline)"
        ) == "012\n"

    def test_for_over_list(self, run):
        assert run(
            "#lang racket\n(for ([x (list 'a 'b)]) (display x))\n(newline)"
        ) == "ab\n"

    def test_for_over_vector(self, run):
        assert run(
            "#lang racket\n(for ([x (vector 1 2 3)]) (display x))\n(newline)"
        ) == "123\n"

    def test_for_list(self, run):
        assert run(
            "#lang racket\n(displayln (for/list ([x (in-range 4)]) (* x x)))"
        ) == "(0 1 4 9)\n"


class TestQuasiquote:
    def test_plain(self, run):
        assert run("#lang racket\n(displayln `(1 2 3))") == "(1 2 3)\n"

    def test_unquote(self, run):
        assert run("#lang racket\n(displayln `(1 ,(+ 1 1) 3))") == "(1 2 3)\n"

    def test_unquote_splicing(self, run):
        assert run(
            "#lang racket\n(displayln `(0 ,@(list 1 2) 3))"
        ) == "(0 1 2 3)\n"

    def test_nested_quasiquote_preserves_inner(self, run):
        assert run(
            "#lang racket\n(displayln `(a `(b ,(c))))"
        ) == "(a (quasiquote (b (unquote (c)))))\n"

    def test_dotted(self, run):
        assert run("#lang racket\n(displayln `(1 . ,(+ 1 1)))") == "(1 . 2)\n"

    def test_deep_structure(self, run):
        assert run(
            "#lang racket\n(displayln `((a ,(+ 1 2)) (b ,@(list 4 5))))"
        ) == "((a 3) (b 4 5))\n"


class TestMatch:
    def test_paper_example(self, run):
        # §3.2's match example, verbatim modulo lexical details
        assert run(
            """#lang racket
(displayln (match (list 1 2 3)
  [(list x y z) (+ x y z)]))"""
        ) == "6\n"

    def test_literal_patterns(self, run):
        assert run(
            """#lang racket
(define (f x) (match x [0 'zero] [1 'one] [_ 'many]))
(displayln (list (f 0) (f 1) (f 5)))"""
        ) == "(zero one many)\n"

    def test_cons_pattern(self, run):
        assert run(
            "#lang racket\n(displayln (match (cons 1 2) [(cons a b) (+ a b)]))"
        ) == "3\n"

    def test_quote_pattern(self, run):
        assert run(
            """#lang racket
(displayln (match 'hello ['world 'no] ['hello 'yes]))"""
        ) == "yes\n"

    def test_vector_pattern(self, run):
        assert run(
            "#lang racket\n(displayln (match (vector 1 2) [(vector a b) (* a b)]))"
        ) == "2\n"

    def test_vector_pattern_length_mismatch_falls_through(self, run):
        assert run(
            "#lang racket\n(displayln (match (vector 1) [(vector a b) 'two] [_ 'other]))"
        ) == "other\n"

    def test_predicate_pattern(self, run):
        assert run(
            """#lang racket
(define (f x) (match x [(? number? n) (list 'num n)] [_ 'other]))
(displayln (list (f 3) (f 'a)))"""
        ) == "((num 3) other)\n"

    def test_nested_patterns(self, run):
        assert run(
            """#lang racket
(displayln (match (list 1 (list 2 3))
  [(list a (list b c)) (+ a (* b c))]))"""
        ) == "7\n"

    def test_no_clause_matches_raises(self, run):
        with pytest.raises(RuntimeReproError):
            run("#lang racket\n(match 5 [(list) 'nope])")

    def test_clauses_tried_in_order(self, run):
        assert run(
            """#lang racket
(displayln (match (list 1 2)
  [(list a) 'one]
  [(list a b) 'two]
  [_ 'other]))"""
        ) == "two\n"

    def test_recursive_function_with_match(self, run):
        assert run(
            """#lang racket
(define (sum-tree t)
  (match t
    [(list l r) (+ (sum-tree l) (sum-tree r))]
    [(? number? n) n]))
(displayln (sum-tree (list (list 1 2) (list 3 (list 4 5)))))"""
        ) == "15\n"


class TestListLibrary:
    def test_map_two_lists(self, run):
        assert run(
            "#lang racket\n(displayln (map + (list 1 2) (list 10 20)))"
        ) == "(11 22)\n"

    def test_filter(self, run):
        assert run(
            "#lang racket\n(displayln (filter even? (list 1 2 3 4)))"
        ) == "(2 4)\n"

    def test_foldl(self, run):
        assert run(
            "#lang racket\n(displayln (foldl cons '() (list 1 2 3)))"
        ) == "(3 2 1)\n"

    def test_foldr(self, run):
        assert run(
            "#lang racket\n(displayln (foldr cons '() (list 1 2 3)))"
        ) == "(1 2 3)\n"

    def test_sort(self, run):
        assert run(
            "#lang racket\n(displayln (sort (list 3 1 2) <))"
        ) == "(1 2 3)\n"

    def test_assoc_and_member(self, run):
        assert run(
            """#lang racket
(displayln (assoc 'b (list (cons 'a 1) (cons 'b 2))))
(displayln (member 2 (list 1 2 3)))
(displayln (memq 'x (list 1 2)))"""
        ) == "(b . 2)\n(2 3)\n#f\n"

    def test_append_variadic(self, run):
        assert run(
            "#lang racket\n(displayln (append (list 1) (list 2) (list 3)))"
        ) == "(1 2 3)\n"

    def test_andmap_ormap(self, run):
        assert run(
            """#lang racket
(displayln (andmap even? (list 2 4)))
(displayln (ormap odd? (list 2 4)))"""
        ) == "#t\n#f\n"


class TestHashesAndBoxes:
    def test_hash_operations(self, run):
        assert run(
            """#lang racket
(define h (make-hash))
(hash-set! h 'a 1)
(hash-set! h 'b 2)
(displayln (list (hash-ref h 'a) (hash-count h) (hash-has-key? h 'c)))
(displayln (hash-ref h 'missing 'default))"""
        ) == "(1 2 #f)\ndefault\n"

    def test_hash_ref_missing_raises(self, run):
        with pytest.raises(RuntimeReproError):
            run("#lang racket\n(hash-ref (make-hash) 'k)")

    def test_boxes(self, run):
        assert run(
            """#lang racket
(define b (box 1))
(set-box! b (+ (unbox b) 10))
(displayln (unbox b))"""
        ) == "11\n"


class TestStringsAndChars:
    def test_string_operations(self, run):
        assert run(
            """#lang racket
(displayln (string-append "foo" "bar"))
(displayln (substring "hello" 1 3))
(displayln (string-length "abc"))
(displayln (string-upcase "abc"))"""
        ) == "foobar\nel\n3\nABC\n"

    def test_string_conversions(self, run):
        assert run(
            """#lang racket
(displayln (string->symbol "sym"))
(displayln (symbol->string 'sym))
(displayln (number->string 3/4))
(displayln (string->number "2.5"))"""
        ) == "sym\nsym\n3/4\n2.5\n"

    def test_string_number_parse_failure_is_false(self, run):
        assert run('#lang racket\n(displayln (string->number "abc"))') == "#f\n"

    def test_char_operations(self, run):
        assert run(
            """#lang racket
(displayln (char->integer #\\A))
(displayln (integer->char 97))
(displayln (char-upcase #\\x))"""
        ) == "65\na\nX\n"

    def test_format(self, run):
        assert run(
            '#lang racket\n(displayln (format "x=~a y=~s" 1 "two"))'
        ) == 'x=1 y="two"\n'


class TestCaseLambda:
    def test_dispatch_on_arity(self, run):
        assert run(
            """#lang racket
(define f (case-lambda
  [(a) 'one]
  [(a b) 'two]))
(displayln (list (f 1) (f 1 2)))"""
        ) == "(one two)\n"

    def test_rest_clause(self, run):
        assert run(
            """#lang racket
(define f (case-lambda
  [(a) 'one]
  [(a . rest) (length rest)]))
(displayln (list (f 1) (f 1 2 3)))"""
        ) == "(one 2)\n"

    def test_clause_order_first_match_wins(self, run):
        assert run(
            """#lang racket
(define f (case-lambda
  [args 'rest-first]
  [(a) 'never]))
(displayln (f 1))"""
        ) == "rest-first\n"

    def test_no_matching_clause_errors(self, run):
        from repro.errors import RuntimeReproError

        with pytest.raises(RuntimeReproError, match="case-lambda"):
            run("#lang racket\n((case-lambda [(a b) a]) 1)")

    def test_closure_capture(self, run):
        assert run(
            """#lang racket
(define (make n)
  (case-lambda
    [() n]
    [(delta) (+ n delta)]))
(define g (make 10))
(displayln (list (g) (g 5)))"""
        ) == "(10 15)\n"
