"""Endpoint tests for the ``repro serve`` compile-and-eval service.

Most tests drive :meth:`ReproServer.handle` directly (no sockets) — the
HTTP layer is a thin shim over it, covered by the round-trip tests at
the end. Pinned behaviour: the JSON envelope (``ok``/``error.code``/
per-request ``stats`` deltas), warm-cache hits across tenants, budget
kills as well-formed G001 replies, S400 validation, cache-fault
degradation with C-coded ``diagnostics``, and runtime pooling.
"""

from __future__ import annotations

import json
import os
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, FaultRule, use_fault_plan
from repro.serve import ReproServer
from repro.serve.server import _BadRequest

HELLO = '#lang racket\n(define x 20)\n(displayln (+ x 22))\n'

# many closure applications so a tiny step budget trips mid-eval
BUSY = (
    "#lang racket\n"
    + "\n".join(f"(define (f{j} x) (+ x {j}))" for j in range(20))
    + "\n(displayln (+ "
    + " ".join(f"(f{j} 1)" for j in range(20))
    + "))\n"
)


@pytest.fixture
def srv(tmp_path):
    with ReproServer(cache_dir=str(tmp_path / "cache")) as server:
        yield server


class TestEnvelope:
    def test_healthz(self, srv):
        status, payload = srv.handle("GET", "/healthz", None)
        assert status == 200 and payload["ok"] is True
        assert payload["requests"] >= 1

    def test_run_source(self, srv):
        status, payload = srv.handle("POST", "/run", {"source": HELLO})
        assert status == 200 and payload["ok"] is True
        assert payload["output"] == "42\n"
        assert payload["tenant"] == "default"
        assert payload["stats"]["cache_misses"] > 0  # cold
        assert payload["elapsed_ms"] > 0

    def test_run_path(self, srv, tmp_path):
        path = tmp_path / "prog.rkt"
        path.write_text(HELLO, encoding="utf-8")
        status, payload = srv.handle("POST", "/run", {"path": str(path)})
        assert status == 200 and payload["ok"] is True
        assert payload["output"] == "42\n"

    def test_compile_has_no_output(self, srv):
        status, payload = srv.handle("POST", "/compile", {"source": HELLO})
        assert status == 200 and payload["ok"] is True
        assert "output" not in payload
        assert payload["stats"]["cache_stores"] > 0

    def test_missing_file_is_s500_envelope(self, srv):
        status, payload = srv.handle(
            "POST", "/run", {"path": "/nonexistent/x.rkt"}
        )
        assert status == 200 and payload["ok"] is False
        assert payload["error"]["code"] == "S500"

    def test_routing_errors(self, srv):
        status, payload = srv.handle("GET", "/nope", None)
        assert status == 404 and payload["error"]["code"] == "S404"
        status, payload = srv.handle("GET", "/run", None)
        assert status == 405 and payload["error"]["code"] == "S405"


class TestWarmth:
    def test_same_source_is_warm_across_tenants(self, srv):
        _, cold = srv.handle("POST", "/run", {"source": HELLO, "tenant": "a"})
        assert cold["stats"]["cache_misses"] > 0
        _, warm = srv.handle("POST", "/run", {"source": HELLO, "tenant": "b"})
        assert warm["ok"] is True and warm["output"] == "42\n"
        # tenant b never compiled: the content-derived module path hit
        # the artifacts tenant a stored
        assert warm["stats"]["cache_hits"] > 0
        assert warm["stats"]["cache_misses"] == 0
        assert warm["stats"]["cache_stores"] == 0

    def test_tenant_pooling_reuses_runtimes(self, srv):
        srv.handle("POST", "/run", {"source": HELLO, "tenant": "a"})
        srv.handle("POST", "/run", {"source": HELLO, "tenant": "a"})
        assert srv.pool.reused >= 1
        _, stats = srv.handle("GET", "/stats", None)
        assert stats["runtimes"]["created"] >= 1
        assert stats["runtimes"]["reused"] >= 1


class TestBudgets:
    def test_budget_kill_is_well_formed_g001(self, srv):
        status, payload = srv.handle(
            "POST", "/run", {"source": BUSY, "budget": {"steps": 5}}
        )
        # a governed kill is a *successful* service reply, not a 5xx
        assert status == 200 and payload["ok"] is False
        assert payload["error"]["code"] == "G001"
        assert "stats" in payload
        _, stats = srv.handle("GET", "/stats", None)
        assert stats["budget_kills"].get("G001", 0) >= 1

    def test_killed_runtime_is_reusable(self, srv):
        srv.handle("POST", "/run", {"source": BUSY, "budget": {"steps": 5}})
        status, payload = srv.handle(
            "POST", "/run", {"source": HELLO, "tenant": "default"}
        )
        assert payload["ok"] is True and payload["output"] == "42\n"

    def test_default_budget_applies(self, tmp_path):
        with ReproServer(
            cache_dir=str(tmp_path / "cache"),
            default_budget={"steps": 5},
        ) as server:
            _, payload = server.handle("POST", "/run", {"source": BUSY})
            assert payload["ok"] is False
            assert payload["error"]["code"] == "G001"
            # a per-request budget overrides the default
            _, ok = server.handle(
                "POST", "/run", {"source": BUSY, "budget": {"steps": 100000}}
            )
            assert ok["ok"] is True


class TestTrace:
    def test_trace_opt_in_returns_spans(self, srv):
        status, payload = srv.handle(
            "POST", "/run", {"source": HELLO, "trace": True}
        )
        assert status == 200 and payload["ok"] is True
        assert payload["output"] == "42\n"
        trace = payload["trace"]
        assert trace["schema"] == "repro-trace/1"
        assert trace["dropped"] == 0
        assert trace["events"], "a cold compile+run must produce spans"
        for event in trace["events"]:
            assert event["kind"] in ("X", "I")
            assert isinstance(event["cat"], str) and event["cat"]
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], float)
        # the whole pipeline ran under the request recorder
        cats = {e["cat"] for e in trace["events"]}
        assert {"read", "expand", "compile"} <= cats
        # and the envelope is JSON-serializable as-is
        json.dumps(payload)

    def test_trace_sees_dialect_spans(self, srv):
        src = "#lang racket/infix\n(displayln {2 + 3 * 4})\n"
        _, payload = srv.handle("POST", "/run", {"source": src, "trace": True})
        assert payload["ok"] is True and payload["output"] == "14\n"
        cats = {e["cat"] for e in payload["trace"]["events"]}
        assert "dialect" in cats

    def test_default_path_has_no_trace(self, srv):
        _, payload = srv.handle("POST", "/run", {"source": HELLO})
        assert "trace" not in payload
        _, payload = srv.handle(
            "POST", "/run", {"source": HELLO, "trace": False}
        )
        assert "trace" not in payload

    def test_trace_must_be_boolean(self, srv):
        with pytest.raises(_BadRequest):
            srv.handle("POST", "/run", {"source": HELLO, "trace": "yes"})


class TestValidation:
    @pytest.mark.parametrize("body", [
        None,
        {},
        {"source": HELLO, "path": "x.rkt"},
        {"source": 3},
        {"path": 3},
        {"source": HELLO, "tenant": ""},
        {"source": HELLO, "budget": {"bogus": 1}},
        {"source": HELLO, "budget": "fast"},
    ])
    def test_bad_run_bodies(self, srv, body):
        with pytest.raises(_BadRequest):
            srv.handle("POST", "/run", body)

    @pytest.mark.parametrize("body", [
        {"paths": "not-a-list"},
        {"paths": [1, 2]},
        {"paths": [], "jobs": 0},
        {"paths": [], "mode": "warp"},
    ])
    def test_bad_graph_bodies(self, srv, body):
        with pytest.raises(_BadRequest):
            srv.handle("POST", "/compile", body)


class TestFaults:
    def test_cache_fault_degrades_with_diagnostics(self, srv):
        srv.handle("POST", "/run", {"source": HELLO, "tenant": "a"})
        plan = FaultPlan(rules=[FaultRule("cache.read", "garble", times=1)])
        with use_fault_plan(plan):
            _, payload = srv.handle(
                "POST", "/run", {"source": HELLO, "tenant": "b"}
            )
        # the garbled artifact is quarantined and the module recompiled:
        # the request still succeeds, carrying the C-coded warning
        assert payload["ok"] is True and payload["output"] == "42\n"
        assert payload.get("diagnostics"), payload
        assert srv.warnings >= 1


class TestGraphEndpoint:
    def test_compile_graph_over_service(self, srv, tmp_path):
        paths = []
        for i in range(3):
            req = f'(require "m{i - 1}.rkt")\n' if i else ""
            body = f"#lang racket\n{req}(define v{i} {i})\n(provide v{i})\n"
            p = tmp_path / f"m{i}.rkt"
            p.write_text(body, encoding="utf-8")
            paths.append(str(p))
        status, payload = srv.handle(
            "POST", "/compile", {"paths": paths, "jobs": 2, "mode": "thread"}
        )
        assert status == 200 and payload["ok"] is True
        assert payload["counts"]["compiled"] == 3
        assert payload["counts"]["failed"] == 0
        assert len(payload["waves"]) >= 1

    def test_graph_failure_reports_x100(self, srv, tmp_path):
        bad = tmp_path / "bad.rkt"
        bad.write_text(
            "#lang racket\n(define v no-such-binding)\n", encoding="utf-8"
        )
        status, payload = srv.handle(
            "POST", "/compile", {"paths": [str(bad)], "jobs": 1}
        )
        assert status == 200 and payload["ok"] is False
        assert payload["error"]["code"] == "X100"
        assert payload["counts"]["failed"] == 1


class TestHTTP:
    """Round-trips through the real socket layer."""

    def _post(self, url, path, body):
        data = json.dumps(body).encode("utf-8") if body is not None else b"{"
        req = urllib.request.Request(
            url + path, data=data, headers={"Content-Type": "application/json"}
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read().decode("utf-8"))

    def test_run_over_http(self, srv):
        status, payload = self._post(srv.url, "/run", {"source": HELLO})
        assert status == 200 and payload["ok"] is True
        assert payload["output"] == "42\n"

    def test_bad_request_is_http_400(self, srv):
        status, payload = self._post(srv.url, "/run", {})
        assert status == 400 and payload["error"]["code"] == "S400"

    def test_invalid_json_is_http_400(self, srv):
        status, payload = self._post(srv.url, "/run", None)  # sends b"{"
        assert status == 400 and payload["error"]["code"] == "S400"

    def test_healthz_over_http(self, srv):
        with urllib.request.urlopen(srv.url + "/healthz", timeout=60) as resp:
            payload = json.loads(resp.read().decode("utf-8"))
        assert resp.status == 200 and payload["ok"] is True
